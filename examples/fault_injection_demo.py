"""Fault injection and resilient execution on the RSU-G array.

Runs the same Potts restoration problem over the architectural
interface four times: fault-free, under transient evaluation faults,
with a unit stuck at one label, and with more dead units than the
array has spares.  The :class:`ResilientDriver` retries NACKed
evaluations, screens every unit's label statistics against its peers,
confirms suspects with an analytic probe, quarantines bad units onto
spares, and — when the array is beyond saving — finishes the solve on
the bit-faithful software sampler.  Every decision lands in a
structured incident log.

Run:  python examples/fault_injection_demo.py
"""

import numpy as np

from repro.core import new_design_config
from repro.faults import (
    FaultPlan,
    FaultyRSUDevice,
    ResiliencePolicy,
    ResilientDriver,
    UnitArrayFault,
    WireFault,
)
from repro.isa import Configure


def make_problem(h=20, w=26, m=4, seed=0):
    rng = np.random.default_rng(seed)
    target = np.zeros((h, w), dtype=int)
    target[:, w // 2 :] = m - 1
    target[h // 3 : 2 * h // 3, w // 4 : w // 2] = 1
    unary = rng.integers(0, 30, (h, w, m))
    rows = np.arange(h)[:, None]
    cols = np.arange(w)[None, :]
    unary[rows, cols, target] = 0
    return unary, target


SCENARIOS = [
    ("fault-free", FaultPlan.none(), ResiliencePolicy()),
    (
        "2% transients + noisy wire",
        FaultPlan(
            units=UnitArrayFault(n_units=4, spare_units=2, transient_rate=0.02, seed=5),
            wire=WireFault(flip_rate=2e-4, drop_rate=1e-4, seed=6),
        ),
        ResiliencePolicy(),
    ),
    (
        "unit stuck at label 0",
        FaultPlan(
            units=UnitArrayFault(n_units=4, spare_units=2, stuck_units=((1, 0),), seed=7)
        ),
        # Small grid -> few samples per unit per sweep: run the passive
        # screen at a more sensitive threshold (the probe still guards
        # against false positives).
        ResiliencePolicy(health_pvalue=1e-3),
    ),
    (
        "3 dead units, 1 spare",
        FaultPlan(
            units=UnitArrayFault(n_units=4, spare_units=1, dead_units=(0, 1, 2), seed=9)
        ),
        ResiliencePolicy(),
    ),
]


def main():
    unary, target = make_problem()
    iterations = 25
    temperatures = [25.0 * 0.85**k + 1.0 for k in range(iterations)]
    for name, plan, policy in SCENARIOS:
        device = FaultyRSUDevice(new_design_config(), np.random.default_rng(7), plan=plan)
        driver = ResilientDriver(
            device,
            unary,
            Configure("binary", singleton_weight=1, doubleton_weight=8, n_labels=4),
            policy=policy,
        )
        labels = driver.solve(iterations, temperatures)
        accuracy = (labels == target).mean()
        summary = driver.summary()
        counts = summary["incident_counts"]
        print(f"\n=== {name} ===")
        print(
            f"accuracy {accuracy:.2f} | nacks {counts.get('unit_nack', 0)}, "
            f"recovered {counts.get('recovered', 0)}, "
            f"corrupt transfers {counts.get('transfer_corrupt', 0)}"
        )
        print(
            f"quarantined units {summary['quarantined_units']} | "
            f"fell back to software: {summary['fell_back']} | "
            f"simulated backoff {summary['simulated_backoff_s']:.4f} s"
        )
        for incident in driver.incidents:
            if incident.kind in ("unit_suspect", "probe", "quarantine", "fallback"):
                print(f"  sweep {incident.sweep:2d}: {incident.to_dict()}")

    print(
        "\nThe resilient path is bit-identical to the plain driver when no"
        "\nfaults fire, and degrades to the paper's software baseline only"
        "\nwhen the array is unrecoverable."
    )


if __name__ == "__main__":
    main()
