"""Hardware budget report: area, power, entropy and pipeline timing.

Prints the new and previous RSU-G cost breakdowns, the light-source
sharing variants, the pseudo-RNG comparison, the entropy rate, and the
cycle-level timing of both pipeline designs for a representative MCMC
run — everything the paper's Sec. IV evaluation reports, from the
analytical models in repro.hw and repro.core.pipeline.

Run:  python examples/hardware_budget.py
"""

from repro.core import entropy_rate_gbps, legacy_design_config, new_design_config
from repro.core.pipeline import simulate
from repro.hw import (
    legacy_rsu_breakdown,
    new_rsu_breakdown,
    power_ratio_new_vs_legacy,
    table4_areas,
)


def main():
    print("-- Table III: new RSU-G --")
    for name, cost in new_rsu_breakdown().items():
        print(f"  {name:16s} {cost.area_um2:7.0f} um^2  {cost.power_mw:5.2f} mW")
    legacy = legacy_rsu_breakdown()["RSU Total"]
    print(f"  previous design  {legacy.area_um2:7.0f} um^2  {legacy.power_mw:5.2f} mW"
          f"  (power ratio {power_ratio_new_vs_legacy():.2f}x)")

    print("\n-- Table IV: area vs alternative RNG designs --")
    for name, area in table4_areas().items():
        print(f"  {name:18s} {area:9.0f} um^2")

    new = new_design_config()
    legacy_cfg = legacy_design_config()
    print("\n-- Entropy (1 GHz, one sample per cycle) --")
    print(f"  new design, lambda0:      {entropy_rate_gbps(new):.2f} Gb/s")
    print(f"  previous design, lambda0: {entropy_rate_gbps(legacy_cfg):.2f} Gb/s"
          f"  (paper: 2.89 Gb/s)")

    print("\n-- Pipeline timing: 64-label, 4096-variable, 100-iteration run --")
    for design, config in (("legacy", legacy_cfg), ("new", new)):
        timing = simulate(design, labels=64, variables=4096, iterations=100, config=config)
        print(f"  {design:6s}: {timing.total_cycles:>10d} cycles,"
              f" {timing.stall_cycles_per_iteration:4d} stall cycles/iteration,"
              f" {timing.throughput_labels_per_cycle:.4f} labels/cycle")


if __name__ == "__main__":
    main()
