"""Running an MRF solve over the RSU-G's architectural interface.

Compiles a Potts restoration problem into RSU command streams
(CONFIGURE / SET_TEMPERATURE / EVALUATE), executes them on the
functional device for both designs, and compares the interface traffic:
the new design updates temperature with 4 bytes and zero stalls; the
previous design streams its whole 128-byte LUT and stalls the pipeline
for every byte (the paper's Question 3, measured).

Run:  python examples/over_the_wire.py
"""

import numpy as np

from repro.core import legacy_design_config, new_design_config
from repro.isa import Configure, RSUDevice, RSUDriver


def make_problem(h=20, w=26, m=4, seed=0):
    rng = np.random.default_rng(seed)
    target = np.zeros((h, w), dtype=int)
    target[:, w // 2 :] = m - 1
    target[h // 3 : 2 * h // 3, w // 4 : w // 2] = 1
    unary = rng.integers(0, 30, (h, w, m))
    rows = np.arange(h)[:, None]
    cols = np.arange(w)[None, :]
    unary[rows, cols, target] = 0
    return unary, target


def main():
    unary, target = make_problem()
    iterations = 25
    temperatures = [25.0 * 0.85**k + 1.0 for k in range(iterations)]
    for design, config in (("new", new_design_config()),
                           ("legacy", legacy_design_config())):
        device = RSUDevice(config, np.random.default_rng(7), design=design)
        driver = RSUDriver(
            device, unary, Configure("binary", singleton_weight=1,
                                     doubleton_weight=8, n_labels=4)
        )
        labels = driver.solve(iterations, temperatures)
        accuracy = (labels == target).mean()
        traffic = driver.interface_traffic()
        print(f"{design:6s} design: accuracy {accuracy:.2f}, "
              f"{traffic['words_sent']:6d} words, "
              f"{traffic['update_bytes']:5d} temperature-update bytes, "
              f"{traffic['stall_cycles']:5d} stall cycles")
    print("\nSame EVALUATE stream on both designs; only the temperature-"
          "update\ninterface differs — the paper's 'minimal architectural"
          " modifications'.")


if __name__ == "__main__":
    main()
