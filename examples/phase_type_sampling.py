"""Phase-type sampling: the paper's future-work extension.

Chains RET exponential stages to draw hypoexponential and Erlang
absorption times (Sec. IV-D: "exploring sampling from phase-type
distributions"), and validates the empirical moments against the
analytic ones from the binned-stage model.

Run:  python examples/phase_type_sampling.py
"""

import numpy as np

from repro.core import (
    PhaseTypeSampler,
    new_design_config,
    phase_type_mean,
    phase_type_variance,
)


def main():
    config = new_design_config()
    sampler = PhaseTypeSampler(config, np.random.default_rng(0))

    print("hypoexponential chains (stage decay-rate codes -> absorption time, bins)")
    for codes in ([8], [8, 4], [8, 4, 2], [8, 4, 2, 1]):
        draws = sampler.sample(codes, 100_000)
        mean = phase_type_mean(codes, config)
        var = phase_type_variance(codes, config)
        print(f"  stages {str(codes):15s} mean {draws.mean():7.2f}"
              f" (analytic {mean:7.2f})  var {draws.var():8.2f} (analytic {var:8.2f})")

    print("\nErlang(k) at code 4: variance shrinks relative to the mean")
    for k in (1, 2, 4, 8):
        draws = sampler.erlang(4, k, 50_000)
        cv = draws.std() / draws.mean()
        print(f"  k={k}: mean {draws.mean():7.2f}  coefficient of variation {cv:.3f}"
              f"  (ideal 1/sqrt(k) = {1/np.sqrt(k):.3f})")


if __name__ == "__main__":
    main()
