"""Image denoising: a fourth MRF application on the RSU-G.

Restores a piecewise-smooth image corrupted with Gaussian and
salt-and-pepper noise by sampling gray-level labels (the paper's
future-work call for "a wider application domain").  Writes the noisy,
restored and ground-truth images as PGMs and prints PSNR per backend.

Run:  python examples/denoising_restoration.py [output_dir]
"""

import sys
from pathlib import Path

from repro.apps import DenoiseParams, solve_denoise
from repro.data import make_denoise_dataset, write_pgm


def main(output_dir="artifacts/example_denoise"):
    out = Path(output_dir)
    dataset = make_denoise_dataset("demo", (64, 80), n_levels=16, seed=12)
    params = DenoiseParams(iterations=150)
    write_pgm(out / "noisy.pgm", dataset.noisy, v_max=1.0)
    write_pgm(out / "clean.pgm", dataset.clean_image, v_max=1.0)
    print(f"noisy input PSNR: "
          f"{solve_denoise(dataset, 'greedy', params).noisy_psnr_db:.1f} dB")
    for backend in ("software", "new_rsug", "prev_rsug"):
        result = solve_denoise(dataset, backend, params, seed=4)
        write_pgm(out / f"restored_{backend}.pgm", result.restored, v_max=1.0)
        print(f"{backend:10s}: PSNR {result.psnr_db:5.1f} dB,"
              f" label accuracy {result.accuracy:.2f}")
    print(f"\nimages written under {out}/")


if __name__ == "__main__":
    main(*sys.argv[1:2])
