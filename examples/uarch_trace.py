"""Pipeline diagrams of both RSU-G microarchitectures.

Runs a short label stream through the cycle-driven machines and prints
the per-evaluation pipeline diagram, showing the new design's FIFO
decoupling and steady one-label-per-cycle throughput, and the legacy
design's LUT-rewrite stall on a temperature update.

Run:  python examples/uarch_trace.py
"""

import numpy as np

from repro.core import legacy_design_config, new_design_config
from repro.uarch import LegacyMachine, NewMachine, jobs_from_energies
from repro.uarch.trace import PipelineTrace


def main():
    jobs = jobs_from_energies(
        np.random.default_rng(0).integers(0, 256, size=(3, 5))
    )

    print("=== New design (Fig. 10): decoupled front/back end ===")
    trace = PipelineTrace()
    machine = NewMachine(
        new_design_config(), 40.0, np.random.default_rng(1), trace=trace
    )
    result = machine.run(jobs)
    print(trace.render(max_rows=15))
    print(f"total cycles: {result.total_cycles}; "
          f"FIFO held at most {result.stats['fifo_max_variables']} variables\n")

    print("=== Previous design (Fig. 2b): temperature update stalls ===")
    trace = PipelineTrace()
    machine = LegacyMachine(
        legacy_design_config(), 40.0, np.random.default_rng(2), trace=trace
    )
    result = machine.run(jobs, temperature_schedule={1: 20.0})
    print(trace.render(max_rows=8, end_cycle=40))
    print(f"total cycles: {result.total_cycles}; "
          f"{result.stats['temperature_stalls']} stall cycles for the LUT rewrite")


if __name__ == "__main__":
    main()
