"""Quickstart: sample a stereo MRF with the software baseline and an RSU-G.

Builds a small synthetic stereo problem, solves it with the float
software Gibbs sampler and with the paper's new RSU-G design, and
prints the quality of both — the paper's central claim is that the two
match.

Run:  python examples/quickstart.py
"""

from repro import load_stereo, solve_stereo
from repro.apps.stereo import StereoParams


def main():
    dataset = load_stereo("teddy", scale=0.5)
    print(f"dataset: teddy-like, {dataset.shape[0]}x{dataset.shape[1]} px,"
          f" {dataset.n_labels} disparity labels")
    params = StereoParams(iterations=150)
    software = solve_stereo(dataset, backend="software", params=params, seed=1)
    rsu = solve_stereo(dataset, backend="new_rsug", params=params, seed=1)
    legacy = solve_stereo(dataset, backend="prev_rsug", params=params, seed=1)
    print(f"software-only  : BP {software.bad_pixel:5.1f}%  RMS {software.rms:.2f}")
    print(f"new RSU-G      : BP {rsu.bad_pixel:5.1f}%  RMS {rsu.rms:.2f}")
    print(f"previous RSU-G : BP {legacy.bad_pixel:5.1f}%  RMS {legacy.rms:.2f}")
    print("\nExpected: new RSU-G tracks software; the previous design does not.")


if __name__ == "__main__":
    main()
