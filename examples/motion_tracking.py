"""Motion estimation: 2-D displacement labels in a 7x7 search window.

The paper's second application (Sec. III-D2): each pixel's label is a
motion vector; the energy uses the squared distance the previous RSU-G
natively supports.  Prints per-dataset end-point error for the software
baseline, the new RSU-G, and the LFSR-based pure-CMOS unit of Table IV.

Run:  python examples/motion_tracking.py
"""

import numpy as np

from repro import load_flow, solve_motion
from repro.apps.motion import MotionParams


def main():
    params = MotionParams(iterations=120)
    backends = ("software", "new_rsug", "cdf_lfsr")
    print(f"{'dataset':12s} " + " ".join(f"{b:>10s}" for b in backends) + "  (avg EPE, px)")
    for name in ("venus", "rubberwhale", "dimetrodon"):
        dataset = load_flow(name, scale=0.8)
        errors = [
            solve_motion(dataset, backend, params, seed=4).epe for backend in backends
        ]
        print(f"{name:12s} " + " ".join(f"{e:10.3f}" for e in errors))
    print("\nThe RSU-G and the LFSR inverse-CDF unit both track software quality"
          "\non these benchmarks (the paper's Table IV quality observation).")


if __name__ == "__main__":
    main()
