"""Design-space exploration: quality vs cost over RSU-G parameters.

Sweeps the four design parameters the paper identifies — Lambda_bits
(with/without the new techniques), Time_bits and Truncation — on one
stereo dataset, and pairs each quality number with its hardware cost
(RET-network replica count, conversion memory).  A miniature of the
paper's Secs. III-C and IV-A analysis.

Run:  python examples/design_space_exploration.py
"""

from repro.apps.stereo import StereoParams, solve_stereo
from repro.core import RSUConfig, conversion_memory_bits, new_design_config
from repro.core.pipeline import ret_circuit_replicas, ret_network_replicas
from repro.data import load_stereo


def main():
    dataset = load_stereo("poster", scale=0.45)
    params = StereoParams(iterations=120)

    print("-- Lambda_bits sweep (float time stage, scaling+cutoff on/off) --")
    for bits in (3, 4, 5):
        full = RSUConfig(lambda_bits=bits, float_time=True)
        bare = RSUConfig(
            lambda_bits=bits, scaling=False, cutoff=False, pow2_lambda=False,
            float_time=True,
        )
        bp_full = solve_stereo(dataset, "rsu", params, rsu_config=full, seed=5).bad_pixel
        bp_bare = solve_stereo(dataset, "rsu", params, rsu_config=bare, seed=5).bad_pixel
        print(f"  Lambda_bits={bits}: techniques on BP={bp_full:5.1f}%"
              f"   off BP={bp_bare:5.1f}%")

    print("\n-- Time_bits / Truncation sweep (full binned design) --")
    print(f"  {'design point':28s} {'BP%':>6s} {'circuit reps':>12s} {'network reps':>12s}")
    for time_bits, truncation in ((3, 0.05), (4, 0.3), (5, 0.5), (6, 0.5), (8, 0.7)):
        config = new_design_config(time_bits=time_bits, truncation=truncation)
        bp = solve_stereo(dataset, "rsu", params, rsu_config=config, seed=5).bad_pixel
        print(f"  Time_bits={time_bits} Truncation={truncation:<4}"
              f"          {bp:6.1f} {ret_circuit_replicas(config):12d}"
              f" {ret_network_replicas(config):12d}")

    config = new_design_config()
    print("\n-- Conversion memory (Sec. IV-B.3) --")
    print(f"  LUT:        {conversion_memory_bits(config, 'lut')} bits")
    print(f"  boundaries: {conversion_memory_bits(config, 'boundaries')} bits")


if __name__ == "__main__":
    main()
