"""Stereo depth mapping: full pipeline with disparity-map artifacts.

Solves all three stereo datasets with the software baseline and the new
RSU-G, writes gray-coded disparity maps (PGM) next to the ground truth,
and prints a quality table — a miniature of the paper's Figs. 4/9.

Run:  python examples/stereo_depth_map.py [output_dir]
"""

import sys
from pathlib import Path

from repro import load_stereo, solve_stereo
from repro.apps.stereo import StereoParams
from repro.data import write_pgm


def main(output_dir="artifacts/example_stereo"):
    out = Path(output_dir)
    params = StereoParams(iterations=200)
    print(f"{'dataset':8s} {'labels':>6s} {'software BP%':>13s} {'RSU-G BP%':>10s}")
    for name in ("teddy", "poster", "art"):
        dataset = load_stereo(name, scale=0.6)
        software = solve_stereo(dataset, "software", params, seed=2)
        rsu = solve_stereo(dataset, "new_rsug", params, seed=2)
        d_max = dataset.n_labels - 1
        write_pgm(out / f"{name}_ground_truth.pgm", dataset.gt_disparity, v_max=d_max)
        write_pgm(out / f"{name}_software.pgm", software.disparity, v_max=d_max)
        write_pgm(out / f"{name}_new_rsug.pgm", rsu.disparity, v_max=d_max)
        print(f"{name:8s} {dataset.n_labels:6d} {software.bad_pixel:13.1f}"
              f" {rsu.bad_pixel:10.1f}")
    print(f"\ndisparity maps written under {out}/ (any image viewer opens PGM)")


if __name__ == "__main__":
    main(*sys.argv[1:2])
