"""Image segmentation with the Potts MRF and BISIP metrics.

Segments a batch of synthetic images at several segment counts with the
software sampler and the new RSU-G, reporting all four BISIP metrics
(VoI, PRI, GCE, BDE) — the paper's Fig. 9d / Table I workload.

Run:  python examples/segmentation_demo.py
"""

import numpy as np

from repro import load_segmentation_suite, solve_segmentation
from repro.apps.segmentation import SegmentationParams


def main():
    params = SegmentationParams(iterations=30)
    for n_labels in (2, 4, 8):
        suite = load_segmentation_suite(count=5, n_labels=n_labels, shape=(48, 64))
        for backend in ("software", "new_rsug"):
            metrics = {"voi": [], "pri": [], "gce": [], "bde": []}
            for i, dataset in enumerate(suite):
                result = solve_segmentation(dataset, backend, params, seed=10 + i)
                for key in metrics:
                    metrics[key].append(result.metrics[key])
            summary = "  ".join(
                f"{key}={np.mean(values):.3f}" for key, values in metrics.items()
            )
            print(f"{n_labels}-label {backend:9s}: {summary}")
        print()
    print("Lower VoI/GCE/BDE and higher PRI are better; the two backends match.")


if __name__ == "__main__":
    main()
