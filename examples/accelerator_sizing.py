"""Sizing an RSU-G accelerator array for a target frame rate.

Uses the array scheduling model (repro.hw.system) to answer: how many
RSU-G units does a real-time (30 fps) MRF stereo pipeline need at SD
and HD, where does the memory wall bind, and what do the arrays cost in
silicon and power?

Run:  python examples/accelerator_sizing.py
"""

from repro.hw.accelerator import AcceleratorModel
from repro.hw.system import ArrayConfig, size_array_for_rate, sweep_timing


def main():
    iterations = 100  # MCMC sweeps per frame
    target = 1.0 / 30.0  # real-time budget per frame
    print(f"target: {iterations} sweeps within {target * 1000:.1f} ms per frame\n")
    for name, (height, width), labels in (
        ("SD stereo, 10 labels", (320, 320), 10),
        ("SD stereo, 64 labels", (320, 320), 64),
        ("HD stereo, 10 labels", (1080, 1920), 10),
        ("HD stereo, 64 labels", (1080, 1920), 64),
    ):
        sizing = size_array_for_rate(height, width, labels, iterations, target)
        if sizing["feasible"]:
            units = int(sizing["units"])
            timing = sweep_timing(height, width, labels, ArrayConfig(units=units))
            hardware = AcceleratorModel(units=units)
            print(f"{name:22s}: {units:5d} units "
                  f"({sizing['achieved_s'] * 1000:6.1f} ms/frame, "
                  f"{timing.bottleneck}-bound, "
                  f"{hardware.total_area_mm2():6.2f} mm^2, "
                  f"{hardware.total_power_w():5.2f} W)")
        else:
            print(f"{name:22s}: infeasible under the 336 GB/s memory wall "
                  f"(best {sizing['achieved_s'] * 1000:.1f} ms/frame)")


if __name__ == "__main__":
    main()
