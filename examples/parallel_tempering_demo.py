"""Parallel tempering on RSU-G replicas.

Replica exchange ("more than Gibbs sampling", the paper's future work):
several chains at a temperature ladder — one RSU-G per replica — with
periodic Metropolis swaps.  On a frustrated Potts landscape the cold
chain escapes local minima through the hot replicas and reaches lower
energy than a lone cold chain with the same sweep budget.

Run:  python examples/parallel_tempering_demo.py
"""

import numpy as np

from repro.core import NewRSUG, SoftwareSampler, label_distance_matrix
from repro.mrf import ConstantSchedule, GridMRF, MCMCSolver
from repro.mrf.tempering import ParallelTempering, geometric_ladder


def frustrated_model(h=14, w=14, seed=11):
    rng = np.random.default_rng(seed)
    unary = rng.random((h, w, 2)) * 0.2
    return GridMRF(unary, label_distance_matrix(2, "binary"), weight=0.5)


def main():
    model = frustrated_model()
    sweeps = 60
    ladder = geometric_ladder(0.02, 0.5, 4)

    single = MCMCSolver(
        model,
        SoftwareSampler(np.random.default_rng(0)),
        ConstantSchedule(ladder[0]),
        init="random",
        seed=5,
    ).run(sweeps)
    print(f"single cold chain      : final energy {single.final_energy:8.2f}")

    def rsu_factory(index):
        return NewRSUG(model.max_energy(), np.random.default_rng(40 + index))

    tempering = ParallelTempering(model, rsu_factory, ladder, seed=5)
    result = tempering.run(sweeps)
    print(f"tempered RSU replicas  : final energy {result.final_energy:8.2f}"
          f"  (swap rate {result.swap_rate:.2f}, ladder "
          + ", ".join(f"{t:.3f}" for t in ladder) + ")")
    better = result.final_energy <= single.final_energy
    print("tempering found an equal or lower energy state"
          if better else "single chain won this seed (stochastic)")


if __name__ == "__main__":
    main()
