"""Benchmark: regenerate Fig. 6 (teddy maps, scaled-only vs full stack)."""

from conftest import run_once

from repro.experiments import fig6


def test_fig6_regeneration(benchmark, bench_profile, tmp_path):
    result = run_once(
        benchmark, fig6.run, profile=bench_profile, artifact_dir=str(tmp_path)
    )
    scaled_only, full_stack = (row[1] for row in result.rows)
    assert full_stack < scaled_only  # the full stack is strictly better
