"""Ablation benchmarks for the design choices DESIGN.md calls out.

Each ablation times an end-to-end solve (or stage sweep) at design
points differing in exactly one technique and asserts the expected
quality or cost ordering:

* decay-rate scaling on/off
* probability cut-off on/off
* 2^n lambda approximation on/off (quality-neutral, area-saving)
* tie-break policy (deterministic policies inject drift)
* LUT vs comparison-based conversion cost
* truncation vs RET-network replica count
"""

import numpy as np
from conftest import run_once

from repro.apps.stereo import StereoParams, solve_stereo
from repro.core import conversion_memory_bits, new_design_config
from repro.core.pipeline import ret_network_replicas
from repro.data import load_stereo


def _solve(dataset, config, iterations, seed=3):
    params = StereoParams(iterations=iterations)
    return solve_stereo(dataset, "rsu", params, rsu_config=config, seed=seed)


def test_ablation_decay_rate_scaling(benchmark, bench_profile):
    dataset = load_stereo("poster", scale=bench_profile.sweep_scale)
    iterations = bench_profile.sweep_iterations

    def run_pair():
        with_scaling = _solve(dataset, new_design_config(), iterations)
        without = _solve(
            dataset, new_design_config(scaling=False, cutoff=False), iterations
        )
        return with_scaling.bad_pixel, without.bad_pixel

    scaled_bp, unscaled_bp = run_once(benchmark, run_pair)
    assert unscaled_bp > scaled_bp + 10.0


def test_ablation_probability_cutoff(benchmark, bench_profile):
    dataset = load_stereo("teddy", scale=bench_profile.sweep_scale)
    iterations = bench_profile.sweep_iterations

    def run_pair():
        with_cutoff = _solve(dataset, new_design_config(), iterations)
        without = _solve(dataset, new_design_config(cutoff=False), iterations)
        return with_cutoff.bad_pixel, without.bad_pixel

    cutoff_bp, no_cutoff_bp = run_once(benchmark, run_pair)
    # Cut-off removes lambda0 rounding noise (many-label convergence).
    assert cutoff_bp < no_cutoff_bp + 2.0


def test_ablation_pow2_is_quality_neutral(benchmark, bench_profile):
    dataset = load_stereo("poster", scale=bench_profile.sweep_scale)
    iterations = bench_profile.sweep_iterations

    def run_pair():
        pow2 = _solve(dataset, new_design_config(), iterations)
        exact = _solve(dataset, new_design_config(pow2_lambda=False), iterations)
        return pow2.bad_pixel, exact.bad_pixel

    pow2_bp, exact_bp = run_once(benchmark, run_pair)
    assert abs(pow2_bp - exact_bp) < 10.0  # quality-neutral
    config = new_design_config()
    assert config.unique_lambdas < config.with_(pow2_lambda=False).unique_lambdas


def test_ablation_tie_policy(benchmark, bench_profile):
    dataset = load_stereo("teddy", scale=bench_profile.sweep_scale)
    iterations = bench_profile.sweep_iterations

    def run_pair():
        random_ties = _solve(dataset, new_design_config(tie_policy="random"), iterations)
        first_ties = _solve(dataset, new_design_config(tie_policy="first"), iterations)
        return random_ties.bad_pixel, first_ties.bad_pixel

    random_bp, first_bp = run_once(benchmark, run_pair)
    # Deterministic ties drift labels toward one end (DESIGN.md sec. 4).
    assert first_bp > random_bp


def test_ablation_conversion_memory(benchmark, bench_profile):
    config = new_design_config()

    def measure():
        return (
            conversion_memory_bits(config, "lut"),
            conversion_memory_bits(config, "boundaries"),
        )

    lut_bits, boundary_bits = run_once(benchmark, measure)
    assert lut_bits == 1024 and boundary_bits == 32  # the paper's numbers


def test_ablation_truncation_vs_replicas(benchmark, bench_profile):
    config = new_design_config()

    def measure():
        return [
            ret_network_replicas(config.with_(truncation=t))
            for t in (0.004, 0.1, 0.3, 0.5, 0.7)
        ]

    replicas = run_once(benchmark, measure)
    assert replicas == sorted(replicas)
    assert replicas[0] == 1 and replicas[3] == 8  # paper's endpoints
