"""Benchmark: regenerate Fig. 5 (BP vs Lambda_bits per conversion variant)."""

from conftest import run_once

from repro.experiments import fig5


def test_fig5_regeneration(benchmark, bench_profile):
    result = run_once(benchmark, fig5.run, profile=bench_profile)
    columns = result.columns
    last = result.rows[-1]
    software_avg = result.extra["software_avg"]
    # The full technique stack reaches software-class quality.
    assert abs(last[columns.index("scaled_cutoff_pow2")] - software_avg) < 15.0
    # The unscaled variant does not.
    assert last[columns.index("int_lambda_prev_RSUG")] > software_avg + 15.0
