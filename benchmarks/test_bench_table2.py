"""Benchmark: regenerate Table II (stereo execution-time model)."""

from conftest import run_once

from repro.experiments import table2


def test_table2_regeneration(benchmark, bench_profile):
    result = run_once(benchmark, table2.run, profile=bench_profile)
    for row in result.rows:
        speedup_flt = row[4]
        assert speedup_flt > 1.5  # the RSU-augmented GPU always wins
