"""Benchmark: regenerate Fig. 3 (software vs previous RSU-G stereo BP)."""

from conftest import run_once

from repro.experiments import fig3


def test_fig3_regeneration(benchmark, bench_profile):
    result = run_once(benchmark, fig3.run, profile=bench_profile)
    assert len(result.rows) == 3
    for row in result.rows:
        assert row[2] > row[1]  # previous RSU-G is worse everywhere
