"""Perf baseline harness: experiment engine + λ-LUT fast path timings.

Times the hot paths this repo optimizes — registry experiments through
the parallel/cached execution engine and stereo solves with the
memoized λ-conversion LUT on/off — and emits ``BENCH_perf.json`` at the
repo root so later PRs have a trajectory to beat.

Three lanes:

* ``registry_engine`` — the multi-design-point ablations experiment run
  (a) sequentially with no cache (the pre-engine behaviour), (b) with
  ``jobs=4`` and a cold content-addressed cache, and (c) again with the
  warm cache.  The headline speedup compares the sequential uncached
  baseline against the best engine run; on multi-core hosts the cold
  lane shows the shard-pool win, on single-core CI the warm lane shows
  the cache win.  ``cpu_count`` is recorded so the numbers read honestly.
* ``sweep_engine`` — the CLI sweep path, same lanes.
* ``lambda_lut`` — one full stereo solve with the conversion LUT
  disabled (per-site ``np.exp``) vs enabled (integer table gather).
* ``sweep_kernel`` — the same stereo solve through the reference
  per-sweep pipeline (``use_fused=False``) vs the fused allocation-free
  sweep kernel (the solver default).  Labels are asserted byte-identical
  before either time is recorded, and the fused time is also reported
  against the PR 2 recorded ``lambda_lut.lut_s`` baseline (2.7856 s).
* ``batched_chains`` — a K=8 parallel-tempering ladder run through the
  batched ``(K, H, W)`` chain workspace vs K sequential fused replicas,
  byte-identity (labels, energy histories, swap decisions) asserted
  first.
* ``entropy_backends`` — the vectorized entropy subsystem: bulk
  ``uniforms`` draws through the bit-sliced LFSR block engine and the
  block MT19937 twist vs their scalar oracles, plus an end-to-end
  ``rng_kind=lfsr`` stereo solve on the buffered vectorized backend vs
  the scalar one.  Word streams and solve labels are asserted
  byte-identical before any time is recorded.
* ``telemetry`` — the fused stereo solve metered vs unmetered: asserts
  byte-identity, exporter round-trips, and a deterministic bound on the
  disabled-path overhead (op count × measured ``obs.active()`` probe
  cost) of under 2% of the solve.
* ``uarch_sim`` — a machine-in-the-loop stereo solve (every Gibbs batch
  through the structural ``NewMachine``): per-cycle scalar oracle vs
  the event-driven batched engine (``use_event_driven``).  Labels and
  cycle counts are asserted cycle-identical before either time is
  recorded.

Every lane asserts byte-identical results across its variants before
recording a time.  Run directly (``python benchmarks/test_bench_perf.py``)
or through pytest; ``BENCH_PERF_PROFILE=tiny`` shrinks the workload for
CI smoke lanes.

Not collected by the tier-1 suite (pytest ``testpaths`` is ``tests``).
"""

from __future__ import annotations

import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from datetime import datetime, timezone
from pathlib import Path

import numpy as np

from repro.apps.common import make_backend
from repro.apps.stereo import StereoParams, build_stereo_mrf, solve_stereo
from repro.core.convert import use_lut
from repro.core.params import new_design_config
from repro.data.stereo_data import load_stereo
from repro.mrf.annealing import geometric_for_span
from repro.mrf.solver import MCMCSolver
from repro.mrf.tempering import ParallelTempering, geometric_ladder
from repro.experiments import QUICK
from repro.experiments.ablations import run as run_ablations
from repro.experiments.engine import ExperimentEngine, use_engine
from repro.experiments.sweep import run_sweep

REPO_ROOT = Path(__file__).resolve().parents[1]
OUTPUT_PATH = REPO_ROOT / "BENCH_perf.json"

#: Workload profiles: "small" for a meaningful local baseline, "tiny"
#: for the CI perf-smoke lane (set BENCH_PERF_PROFILE=tiny).
PROFILES = {
    "small": QUICK.with_(
        sweep_scale=0.5, sweep_iterations=150,
        stereo_scale=1.0, stereo_iterations=200,
    ),
    "tiny": QUICK.with_(
        sweep_scale=0.12, sweep_iterations=8,
        stereo_scale=0.2, stereo_iterations=20,
    ),
}

PARALLEL_JOBS = 4


def _timed(func):
    """(wall seconds, result) of one call."""
    started = time.perf_counter()
    result = func()
    return time.perf_counter() - started, result


def _engine_lanes(run, cache_dir):
    """Time ``run`` under jobs=1/no-cache, jobs=4/cold, jobs=4/warm.

    Asserts all three runs produce byte-identical experiment payloads.
    """
    seq_engine = ExperimentEngine(jobs=1, use_cache=False)
    with use_engine(seq_engine):
        seq_s, baseline = _timed(run)

    cold_engine = ExperimentEngine(jobs=PARALLEL_JOBS, cache_dir=cache_dir, use_cache=True)
    with use_engine(cold_engine):
        cold_s, cold = _timed(run)

    warm_engine = ExperimentEngine(jobs=PARALLEL_JOBS, cache_dir=cache_dir, use_cache=True)
    with use_engine(warm_engine):
        warm_s, warm = _timed(run)

    assert cold.to_json() == baseline.to_json(), "parallel run diverged from sequential"
    assert warm.to_json() == baseline.to_json(), "cached run diverged from sequential"
    assert warm_engine.stats.cache_hits == warm_engine.stats.tasks

    best_engine_s = min(cold_s, warm_s)
    return {
        "design_points": cold_engine.stats.tasks,
        "jobs1_nocache_s": round(seq_s, 4),
        f"jobs{PARALLEL_JOBS}_cold_cache_s": round(cold_s, 4),
        f"jobs{PARALLEL_JOBS}_warm_cache_s": round(warm_s, 4),
        f"speedup_jobs{PARALLEL_JOBS}_vs_jobs1": round(seq_s / best_engine_s, 2),
        "results_byte_identical": True,
    }


def bench_registry_engine(profile):
    """Ablations (6 design points) through the engine lanes."""
    with tempfile.TemporaryDirectory() as cache_dir:
        lanes = _engine_lanes(
            lambda: run_ablations(profile=profile, seed=3), cache_dir
        )
    lanes["experiment"] = "ablations"
    return lanes


def bench_sweep_engine(profile):
    """CLI-style time_bits sweep through the engine lanes."""
    values = [3, 4, 5, 6, 7, 8]
    with tempfile.TemporaryDirectory() as cache_dir:
        lanes = _engine_lanes(
            lambda: run_sweep("time_bits", values, app="stereo",
                              profile=profile, seed=3),
            cache_dir,
        )
    lanes["experiment"] = f"sweep:time_bits:stereo x{len(values)}"
    return lanes


def bench_lambda_lut(profile):
    """One full stereo solve: direct per-site exp vs memoized LUT gather."""
    dataset = load_stereo("poster", scale=profile.stereo_scale)
    params = StereoParams(iterations=profile.stereo_iterations)
    config = new_design_config()

    def solve():
        return solve_stereo(dataset, "rsu", params, rsu_config=config, seed=3)

    with use_lut(False):
        direct_s, direct = _timed(solve)
    with use_lut(True):
        lut_s, lut = _timed(solve)

    assert np.array_equal(direct.disparity, lut.disparity), "LUT path diverged"
    assert direct.bad_pixel == lut.bad_pixel
    return {
        "solve": f"stereo poster scale={profile.stereo_scale} "
                 f"iters={profile.stereo_iterations}",
        "direct_exp_s": round(direct_s, 4),
        "lut_s": round(lut_s, 4),
        "speedup_lut_vs_direct": round(direct_s / lut_s, 2),
        "results_byte_identical": True,
    }


#: ``lambda_lut.lut_s`` recorded by the PR 2 baseline run of this
#: harness (small profile) — the reference the fused sweep kernel is
#: measured against.
PR2_LUT_BASELINE_S = 2.7856


def bench_sweep_kernel(profile):
    """Reference per-sweep pipeline vs the fused sweep kernel.

    Byte-identity of the final label grids is asserted before either
    time is recorded; both solves share one model, schedule and seed so
    the only variable is ``use_fused``.
    """
    dataset = load_stereo("poster", scale=profile.stereo_scale)
    params = StereoParams(iterations=profile.stereo_iterations)
    model = build_stereo_mrf(dataset, params)
    schedule = geometric_for_span(params.t0, params.t_final, params.iterations)

    def solve(fused):
        sampler = make_backend("rsu", model.max_energy(), seed=3,
                               config=new_design_config())
        solver = MCMCSolver(model, sampler, schedule, seed=3,
                            track_energy=False, use_fused=fused)
        return solver.run(params.iterations)

    # Byte-identity first, then time: best of two runs per variant to
    # damp scheduler noise (each run is a full solve, so "warm-up" means
    # OS/cache state, not algorithmic state — the solver is recreated).
    reference = solve(False)
    fused = solve(True)
    assert np.array_equal(reference.labels, fused.labels), "fused kernel diverged"
    reference_s = min(_timed(lambda: solve(False))[0] for _ in range(2))
    fused_s = min(_timed(lambda: solve(True))[0] for _ in range(2))

    return {
        "solve": f"stereo poster scale={profile.stereo_scale} "
                 f"iters={profile.stereo_iterations}",
        "reference_s": round(reference_s, 4),
        "fused_s": round(fused_s, 4),
        "speedup_fused_vs_reference": round(reference_s / fused_s, 2),
        "pr2_lut_baseline_s": PR2_LUT_BASELINE_S,
        "speedup_fused_vs_pr2_lut": round(PR2_LUT_BASELINE_S / fused_s, 2),
        "results_byte_identical": True,
    }


#: Replicas in the batched-chains lane (the paper's multi-unit layouts
#: run ladders of this order; K=8 is the ISSUE's acceptance workload).
TEMPERING_CHAINS = 8


def bench_batched_chains(profile):
    """K=8 replica-tempering ladder: batched ``(K, H, W)`` workspace vs
    K sequential fused solves.

    Byte-identity (labels, energy histories, swap decisions) is asserted
    before either time is recorded.  The ladder runs at half the sweep
    scale: replica grids in real tempering workloads are small, and that
    is exactly the regime where batching wins — per-call NumPy dispatch
    overhead dominates small grids, while on large grids the K×-bigger
    working set falls out of cache and per-chain execution is at parity
    or better (see docs/performance.md).
    """
    scale = profile.sweep_scale * 0.5
    dataset = load_stereo("poster", scale=scale)
    params = StereoParams()
    model = build_stereo_mrf(dataset, params)
    sweeps = profile.sweep_iterations
    ladder = geometric_ladder(0.05, 0.6, TEMPERING_CHAINS)

    def run(use_batched):
        tempering = ParallelTempering(
            model,
            lambda index: make_backend("rsu", model.max_energy(),
                                       seed=100 + index,
                                       config=new_design_config()),
            ladder,
            swap_interval=2,
            seed=3,
            use_batched=use_batched,
        )
        return tempering.run(sweeps)

    # Byte-identity first, then time (best of two runs per variant).
    batched = run(True)
    sequential = run(False)
    assert np.array_equal(batched.labels, sequential.labels), (
        "batched tempering diverged from sequential replicas"
    )
    assert batched.energy_history == sequential.energy_history
    assert (batched.swap_attempts, batched.swaps_accepted) == (
        sequential.swap_attempts, sequential.swaps_accepted
    )
    batched_s = min(_timed(lambda: run(True))[0] for _ in range(2))
    sequential_s = min(_timed(lambda: run(False))[0] for _ in range(2))

    return {
        "solve": f"stereo poster scale={scale} tempering "
                 f"K={TEMPERING_CHAINS} sweeps={sweeps} swap_interval=2",
        "chains": TEMPERING_CHAINS,
        "sequential_s": round(sequential_s, 4),
        "batched_s": round(batched_s, 4),
        "speedup_batched_vs_sequential": round(sequential_s / batched_s, 2),
        "results_byte_identical": True,
    }


#: Bulk-draw sizes for the entropy lane, per profile.
ENTROPY_DRAWS = {"small": 200_000, "tiny": 20_000}


def bench_entropy_backends(profile_name):
    """Scalar oracles vs the vectorized entropy subsystem.

    Two micro lanes (bulk ``uniforms`` from the 19-bit LFSR and the
    MT19937) plus one end-to-end lane (a full ``cdf_lfsr`` stereo solve
    on the buffered vectorized backend vs the scalar one).  Byte
    identity — word streams and solve labels — is asserted before any
    time is recorded.
    """
    from repro.rng import LFSR, MT19937

    draws = ENTROPY_DRAWS[profile_name]
    profile = PROFILES[profile_name]

    # --- LFSR bulk uniforms ---
    scalar_u = LFSR(width=19, seed=7, use_vectorized=False).uniforms(draws)
    vector_u = LFSR(width=19, seed=7, use_vectorized=True).uniforms(draws)
    assert np.array_equal(scalar_u, vector_u), "bit-sliced LFSR diverged"
    lfsr_scalar_s = _timed(
        lambda: LFSR(width=19, seed=7, use_vectorized=False).uniforms(draws)
    )[0]
    lfsr_vector_s = min(
        _timed(
            lambda: LFSR(width=19, seed=7, use_vectorized=True).uniforms(draws)
        )[0]
        for _ in range(3)
    )

    # --- MT19937 bulk uniforms ---
    scalar_u = MT19937(seed=7, use_vectorized=False).uniforms(draws)
    vector_u = MT19937(seed=7, use_vectorized=True).uniforms(draws)
    assert np.array_equal(scalar_u, vector_u), "block MT19937 diverged"
    mt_scalar_s = _timed(
        lambda: MT19937(seed=7, use_vectorized=False).uniforms(draws)
    )[0]
    mt_vector_s = min(
        _timed(
            lambda: MT19937(seed=7, use_vectorized=True).uniforms(draws)
        )[0]
        for _ in range(3)
    )

    # --- end-to-end cdf_lfsr stereo solve ---
    dataset = load_stereo("poster", scale=profile.stereo_scale)
    params = StereoParams(iterations=profile.stereo_iterations)
    model = build_stereo_mrf(dataset, params)
    schedule = geometric_for_span(params.t0, params.t_final, params.iterations)

    def solve(use_vectorized):
        sampler = make_backend("cdf_lfsr", model.max_energy(), seed=3,
                               use_vectorized=use_vectorized)
        solver = MCMCSolver(model, sampler, schedule, seed=3,
                            track_energy=False)
        return solver.run(params.iterations)

    reference = solve(False)
    vectorized = solve(True)
    assert np.array_equal(reference.labels, vectorized.labels), (
        "vectorized cdf_lfsr solve diverged"
    )
    solve_scalar_s = _timed(lambda: solve(False))[0]
    solve_vector_s = min(_timed(lambda: solve(True))[0] for _ in range(2))

    return {
        "uniform_draws": draws,
        "lfsr_scalar_s": round(lfsr_scalar_s, 4),
        "lfsr_vectorized_s": round(lfsr_vector_s, 4),
        "speedup_lfsr_vectorized": round(lfsr_scalar_s / lfsr_vector_s, 2),
        "mt_scalar_s": round(mt_scalar_s, 4),
        "mt_vectorized_s": round(mt_vector_s, 4),
        "speedup_mt_vectorized": round(mt_scalar_s / mt_vector_s, 2),
        "solve": f"stereo poster scale={profile.stereo_scale} "
                 f"iters={profile.stereo_iterations} rng_kind=lfsr",
        "solve_scalar_s": round(solve_scalar_s, 4),
        "solve_vectorized_s": round(solve_vector_s, 4),
        "speedup_solve_vectorized": round(solve_scalar_s / solve_vector_s, 2),
        "results_byte_identical": True,
    }


#: Machine-in-the-loop workload per profile: (stereo scale, iterations).
#: Smaller than the functional-solver lanes — the *scalar oracle* side
#: steps every pipeline latch every cycle, so this is the one lane whose
#: baseline is thousands of times slower than the functional path.
UARCH_SOLVES = {"small": (0.18, 40), "tiny": (0.08, 10)}


def bench_uarch_sim(profile_name):
    """Scalar cycle-stepped machines vs the event-driven batched engine.

    One full stereo solve with the structural ``NewMachine`` as the
    sampler backend, run on both paths.  Cycle identity — final labels,
    total cycles, and every per-batch cycle count — is asserted before
    either time is recorded.
    """
    from repro.uarch import CycleCountingBackend

    scale, iterations = UARCH_SOLVES[profile_name]
    dataset = load_stereo("poster", scale=scale)
    params = StereoParams(iterations=iterations)
    model = build_stereo_mrf(dataset, params)
    schedule = geometric_for_span(params.t0, params.t_final, params.iterations)

    def solve(use_event_driven):
        backend = CycleCountingBackend(
            new_design_config(), model.max_energy(), np.random.default_rng(5),
            use_event_driven=use_event_driven,
        )
        solver = MCMCSolver(model, backend, schedule, seed=3,
                            track_energy=False)
        return solver.run(params.iterations).labels, backend

    # Cycle identity first, then time.
    labels_event, backend_event = solve(True)
    labels_scalar, backend_scalar = solve(False)
    assert np.array_equal(labels_event, labels_scalar), (
        "event-driven machine diverged from the scalar oracle"
    )
    assert backend_event.total_cycles == backend_scalar.total_cycles
    assert backend_event.batch_cycles == backend_scalar.batch_cycles
    event_s = min(_timed(lambda: solve(True))[0] for _ in range(2))
    scalar_s = _timed(lambda: solve(False))[0]

    return {
        "solve": f"stereo poster scale={scale} iters={iterations} "
                 f"machine-in-the-loop (NewMachine)",
        "total_cycles": backend_event.total_cycles,
        "measured_throughput_labels_per_cycle": round(
            backend_event.measured_throughput(), 4
        ),
        "scalar_s": round(scalar_s, 4),
        "event_s": round(event_s, 4),
        "speedup_event_vs_scalar": round(scalar_s / event_s, 2),
        "results_cycle_identical": True,
    }


def bench_telemetry(profile):
    """Telemetry on vs off around the fused stereo solve.

    Asserts the metered solve is byte-identical to the unmetered one,
    that the exporters round-trip, and that the *disabled-path* cost is
    bounded: every metering site costs one ``obs.active()`` probe when
    telemetry is off, so the enabled run's op count times the measured
    per-probe cost bounds the disabled overhead deterministically
    (no wall-clock flakiness from comparing two noisy solve timings).
    """
    from repro.obs import telemetry as obs
    from repro.obs.exporters import (
        parse_jsonl,
        telemetry_from_events,
        to_jsonl,
        to_prometheus,
    )

    dataset = load_stereo("poster", scale=profile.stereo_scale)
    params = StereoParams(iterations=profile.stereo_iterations)
    model = build_stereo_mrf(dataset, params)
    schedule = geometric_for_span(params.t0, params.t_final, params.iterations)

    def solve():
        sampler = make_backend("rsu", model.max_energy(), seed=3,
                               config=new_design_config())
        solver = MCMCSolver(model, sampler, schedule, seed=3,
                            track_energy=False)
        return solver.run(params.iterations)

    disabled = solve()
    with obs.use_telemetry() as telemetry:
        enabled = solve()
    assert np.array_equal(disabled.labels, enabled.labels), (
        "telemetry perturbed the solve"
    )
    assert telemetry.value("solver.sweeps") == params.iterations
    assert telemetry.value("entropy.uniforms") > 0

    reloaded = telemetry_from_events(parse_jsonl(to_jsonl(telemetry)))
    assert reloaded.value("solver.flips") == telemetry.value("solver.flips")
    assert to_prometheus(telemetry).startswith("# TYPE")

    disabled_s = min(_timed(solve)[0] for _ in range(2))

    def timed_enabled():
        with obs.use_telemetry():
            return solve()

    enabled_s = min(_timed(timed_enabled)[0] for _ in range(2))

    # The disabled path of every metering site is one module-global read
    # plus an ``is None`` test; measure that probe and scale it by the
    # enabled run's op count (an upper bound on probe count per run).
    probes = 200_000
    started = time.perf_counter()
    for _ in range(probes):
        obs.active()
    probe_s = (time.perf_counter() - started) / probes
    disabled_overhead_fraction = telemetry.ops * probe_s / disabled_s
    assert disabled_overhead_fraction < 0.02, (
        f"disabled-telemetry overhead bound violated: "
        f"{disabled_overhead_fraction:.4%} of the solve"
    )

    return {
        "solve": f"stereo poster scale={profile.stereo_scale} "
                 f"iters={profile.stereo_iterations}",
        "disabled_s": round(disabled_s, 4),
        "enabled_s": round(enabled_s, 4),
        "enabled_overhead_fraction": round(enabled_s / disabled_s - 1.0, 4),
        "telemetry_ops": telemetry.ops,
        "probe_ns": round(probe_s * 1e9, 2),
        "disabled_overhead_fraction_bound": round(disabled_overhead_fraction, 6),
        "results_byte_identical": True,
    }


def _run_metadata() -> dict:
    """Provenance stamp for ``BENCH_perf.json``: who/where/when/what."""
    try:
        git_sha = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=REPO_ROOT, capture_output=True, text=True,
            timeout=10, check=True,
        ).stdout.strip()
    except (OSError, subprocess.SubprocessError):
        git_sha = "unknown"
    return {
        "git_sha": git_sha or "unknown",
        "hostname": platform.node() or "unknown",
        "generated_utc": datetime.now(timezone.utc).isoformat(timespec="seconds"),
    }


def run_perf_baseline(profile_name: str = None) -> dict:
    """Run every lane and write ``BENCH_perf.json``; returns the payload."""
    profile_name = profile_name or os.environ.get("BENCH_PERF_PROFILE", "small")
    profile = PROFILES[profile_name]
    payload = {
        "schema": 1,
        "profile": profile_name,
        "cpu_count": os.cpu_count(),
        "python": platform.python_version(),
        "parallel_jobs": PARALLEL_JOBS,
        **_run_metadata(),
        "note": (
            "speedup_jobs4_vs_jobs1 compares the sequential uncached baseline "
            "against the best engine run (cold parallel or warm cache); on a "
            "single-core host the win comes from the content-addressed result "
            "cache, on multi-core hosts additionally from the process pool. "
            "All lanes assert byte-identical results first."
        ),
        # Single-process solver lanes run first: the engine lanes spin
        # up process pools whose teardown can steal CPU from whatever
        # is timed next (painful on single-core CI hosts).
        "sweep_kernel": bench_sweep_kernel(profile),
        "batched_chains": bench_batched_chains(profile),
        "entropy_backends": bench_entropy_backends(profile_name),
        "uarch_sim": bench_uarch_sim(profile_name),
        "telemetry": bench_telemetry(profile),
        "lambda_lut": bench_lambda_lut(profile),
        "registry_engine": bench_registry_engine(profile),
        "sweep_engine": bench_sweep_engine(profile),
    }
    OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return payload


def test_perf_baseline():
    """The perf-smoke gate: lanes run, agree bit-for-bit, JSON lands."""
    payload = run_perf_baseline()
    assert OUTPUT_PATH.exists()
    assert payload["registry_engine"]["results_byte_identical"]
    assert payload["sweep_engine"]["results_byte_identical"]
    assert payload["lambda_lut"]["results_byte_identical"]
    assert payload["lambda_lut"]["speedup_lut_vs_direct"] > 0
    assert payload["sweep_kernel"]["results_byte_identical"]
    assert payload["sweep_kernel"]["speedup_fused_vs_reference"] > 0
    assert payload["batched_chains"]["results_byte_identical"]
    assert payload["batched_chains"]["speedup_batched_vs_sequential"] > 0
    assert payload["entropy_backends"]["results_byte_identical"]
    assert payload["entropy_backends"]["speedup_lfsr_vectorized"] > 0
    assert payload["entropy_backends"]["speedup_mt_vectorized"] > 0
    assert payload["entropy_backends"]["speedup_solve_vectorized"] > 0
    assert payload["uarch_sim"]["results_cycle_identical"]
    assert payload["uarch_sim"]["speedup_event_vs_scalar"] >= 5.0
    assert payload["telemetry"]["results_byte_identical"]
    assert payload["telemetry"]["disabled_overhead_fraction_bound"] < 0.02
    assert payload["git_sha"]
    assert payload["hostname"]
    assert payload["generated_utc"].endswith("+00:00")


if __name__ == "__main__":
    result = run_perf_baseline(sys.argv[1] if len(sys.argv) > 1 else None)
    print(json.dumps(result, indent=2))
