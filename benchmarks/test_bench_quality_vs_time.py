"""Benchmark: regenerate the equal-wall-clock quality comparison."""

from conftest import run_once

from repro.experiments import quality_vs_time


def test_quality_vs_time_regeneration(benchmark, bench_profile):
    result = run_once(benchmark, quality_vs_time.run, profile=bench_profile)
    for row in result.rows:
        _budget, gpu_iters, _gpu_bp, rsu_iters, _rsu_bp = row
        assert rsu_iters >= gpu_iters
    # At the tightest budget the RSU's extra iterations should not hurt.
    tightest = result.rows[0]
    assert tightest[4] <= tightest[2] + 8.0
