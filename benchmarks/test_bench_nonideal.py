"""Failure-injection benchmarks: device non-idealities vs result quality.

Validates two claims end to end:

* SPAD dark counts at realistic (kHz) rates are negligible (Sec. II-B);
* the 8-replica design's 0.4% residual-excitation budget preserves
  quality, while an under-replicated design (higher bleed-through)
  degrades it.
"""

import numpy as np
from conftest import run_once

from repro.apps.stereo import StereoParams
from repro.core import RSUGSampler, new_design_config
from repro.core.nonideal import (
    NoisyTTFSampler,
    dark_count_probability_per_window,
    residual_excitation_probability,
)
from repro.data import load_stereo
from repro.mrf.annealing import geometric_for_span
from repro.mrf.solver import MCMCSolver
from repro.apps.stereo import build_stereo_mrf
from repro.metrics import bad_pixel_percentage


def _solve_with_noise(dataset, dark_prob, bleed_prob, iterations, seed=3):
    params = StereoParams(iterations=iterations)
    model = build_stereo_mrf(dataset, params)
    config = new_design_config()
    rng = np.random.default_rng(seed)
    noisy = NoisyTTFSampler(config, rng, dark_prob=dark_prob, bleed_prob=bleed_prob)
    sampler = RSUGSampler(config, model.max_energy(), rng, ttf_sampler=noisy)
    schedule = geometric_for_span(params.t0, params.t_final, params.iterations)
    solver = MCMCSolver(model, sampler, schedule, seed=seed, track_energy=False)
    labels = solver.run(params.iterations).labels
    return bad_pixel_percentage(labels, dataset.gt_disparity)


def test_failure_injection_dark_counts(benchmark, bench_profile):
    dataset = load_stereo("poster", scale=bench_profile.sweep_scale)
    config = new_design_config()
    khz_prob = dark_count_probability_per_window(config, 1e3)

    def run_pair():
        clean = _solve_with_noise(dataset, 0.0, 0.0, bench_profile.sweep_iterations)
        dark = _solve_with_noise(dataset, khz_prob, 0.0, bench_profile.sweep_iterations)
        return clean, dark

    clean_bp, dark_bp = run_once(benchmark, run_pair)
    assert abs(dark_bp - clean_bp) < 5.0  # kHz dark counts: negligible


def test_failure_injection_bleed_through_distribution(benchmark, bench_profile):
    """Bleed-through dilutes first-to-fire probability ratios toward 1.

    Measured at the sampler level (as in Fig. 7): two labels at codes
    (8, 4) should win 2:1; spurious label-independent photons from a
    reused RET network pull the realized ratio toward 1:1.
    """
    from repro.core.base import select_first_to_fire

    config = new_design_config()
    budget = residual_excitation_probability(config, 8)  # 0.4%
    under_replicated = residual_excitation_probability(config, 1)  # 50%

    def realized_ratio(bleed_prob, samples=150_000, seed=9):
        rng = np.random.default_rng(seed)
        sampler = NoisyTTFSampler(config, rng, bleed_prob=bleed_prob)
        codes = np.tile([8, 4], (samples, 1))
        winners = select_first_to_fire(sampler.sample(codes), "random", rng)
        wins_strong = (winners == 0).sum()
        return wins_strong / (samples - wins_strong)

    def run_all():
        return realized_ratio(0.0), realized_ratio(budget), realized_ratio(under_replicated)

    clean, within, broken = run_once(benchmark, run_all)
    assert abs(within - clean) < 0.05  # the 0.4% budget preserves ratios
    # 50% bleed measurably dilutes toward 1:1 (a spurious photon only
    # preempts when it lands before the genuine one, so the shift is
    # moderate rather than catastrophic).
    assert broken < clean - 0.1


def test_failure_injection_bleed_through_quality_robust(benchmark, bench_profile):
    """End-to-end BP barely moves even at heavy bleed-through.

    With probability cut-off and unbiased tie-breaking, the label-
    independent spurious photons mostly randomize choices among the few
    surviving labels — the same robustness seen across Fig. 8's grid.
    """
    dataset = load_stereo("poster", scale=bench_profile.sweep_scale)
    config = new_design_config()
    budget = residual_excitation_probability(config, 8)

    def run_pair():
        clean = _solve_with_noise(dataset, 0.0, 0.0, bench_profile.sweep_iterations)
        within = _solve_with_noise(dataset, 0.0, budget, bench_profile.sweep_iterations)
        return clean, within

    clean_bp, within_bp = run_once(benchmark, run_pair)
    assert abs(within_bp - clean_bp) < 6.0
