"""Benchmark: regenerate Table IV (area vs alternative RNG designs)."""

from conftest import run_once

from repro.experiments import table4


def test_table4_regeneration(benchmark, bench_profile):
    result = run_once(benchmark, table4.run, profile=bench_profile)
    areas = {row[0]: row[1] for row in result.rows}
    assert areas["RSUG_noshare"] < areas["mt19937_noshare"]
    assert areas["RSUG_optimistic"] < areas["19-bit LFSR"]
