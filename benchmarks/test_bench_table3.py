"""Benchmark: regenerate Table III (new RSU-G area/power breakdown)."""

from conftest import run_once

from repro.experiments import table3


def test_table3_regeneration(benchmark, bench_profile):
    result = run_once(benchmark, table3.run, profile=bench_profile)
    totals = {row[0]: (row[1], row[2]) for row in result.rows}
    area, power = totals["RSU Total"]
    assert abs(area - 2903.0) < 1.0
    assert abs(power - 4.99) < 0.01
