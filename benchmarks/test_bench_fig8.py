"""Benchmark: regenerate Fig. 8 (BP heatmap over Time_bits x Truncation)."""

from conftest import run_once

from repro.experiments import fig8


def test_fig8_regeneration(benchmark, bench_profile):
    result = run_once(benchmark, fig8.run, profile=bench_profile)
    heatmap = result.extra["heatmap"]
    assert len(heatmap) == len(bench_profile.fig8_time_bits)
    for per_truncation in heatmap.values():
        assert len(per_truncation) == len(bench_profile.fig8_truncations)
