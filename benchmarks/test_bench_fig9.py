"""Benchmark: regenerate Fig. 9 (new RSU-G quality across applications)."""

from conftest import run_once

from repro.experiments import fig9


def test_fig9_regeneration(benchmark, bench_profile, tmp_path):
    result = run_once(
        benchmark, fig9.run, profile=bench_profile, artifact_dir=str(tmp_path)
    )
    panels = {row[0] for row in result.rows}
    assert panels == {"stereo BP%", "motion EPE", "segmentation VoI"}
    # Quality parity: new RSU-G within a modest delta of software everywhere.
    for row in result.rows:
        if row[0] == "stereo BP%":
            assert abs(row[2] - row[3]) < 15.0
