"""Shared fixtures for the benchmark suite.

Each benchmark regenerates one of the paper's tables or figures under a
reduced profile (same code paths as the full run, smaller workloads) so
the whole suite completes in minutes.  Run with::

    pytest benchmarks/ --benchmark-only
"""

import pytest

from repro.experiments import QUICK

#: Benchmark profile: the quick profile trimmed for single-round timing.
BENCH_PROFILE = QUICK.with_(
    stereo_scale=0.3,
    stereo_iterations=60,
    sweep_scale=0.25,
    sweep_iterations=40,
    motion_scale=0.4,
    motion_iterations=40,
    seg_images=3,
    seg_shape=(28, 36),
    seg_iterations=10,
    fig7_samples=50_000,
    fig8_time_bits=(3, 5),
    fig8_truncations=(0.05, 0.5),
)


@pytest.fixture(scope="session")
def bench_profile():
    """The reduced profile used by every benchmark."""
    return BENCH_PROFILE


def run_once(benchmark, func, **kwargs):
    """Benchmark ``func`` with a single round (solves are expensive)."""
    return benchmark.pedantic(func, kwargs=kwargs, rounds=1, iterations=1)
