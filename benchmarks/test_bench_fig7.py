"""Benchmark: regenerate Fig. 7 (ratio relative error vs truncation)."""

from conftest import run_once

from repro.experiments import fig7


def test_fig7_regeneration(benchmark, bench_profile):
    result = run_once(benchmark, fig7.run, profile=bench_profile)
    series = result.extra["series"]["8"]
    assert series[0] > min(series)  # low truncation is worse than the valley
    assert series[-1] > min(series)  # so is over-truncation
