"""Benchmark: regenerate Fig. 4 (teddy disparity maps)."""

from conftest import run_once

from repro.experiments import fig4


def test_fig4_regeneration(benchmark, bench_profile, tmp_path):
    result = run_once(
        benchmark, fig4.run, profile=bench_profile, artifact_dir=str(tmp_path)
    )
    assert len(result.artifacts) == 4
