"""Benchmark: regenerate Table I (std-dev of VoI across the image suite)."""

from conftest import run_once

from repro.experiments import table1


def test_table1_regeneration(benchmark, bench_profile):
    result = run_once(benchmark, table1.run, profile=bench_profile)
    measured = [row for row in result.rows if not row[0].startswith("paper")]
    assert len(measured) == 2
    software, rsu = measured
    for sw_value, rsu_value in zip(software[1:], rsu[1:]):
        assert abs(sw_value - rsu_value) < 0.5  # matching spreads
