"""Benchmarks: structural machine throughput and interface traffic."""

import numpy as np
from conftest import run_once

from repro.core import legacy_design_config, new_design_config
from repro.isa import Configure, RSUDevice, RSUDriver
from repro.uarch import LegacyMachine, NewMachine, jobs_from_energies


def test_bench_structural_machines(benchmark, bench_profile):
    """Event-driven simulation (the default) of both pipelines on one
    label stream, checked cycle-identical against the scalar oracles."""
    jobs = jobs_from_energies(
        np.random.default_rng(0).integers(0, 256, (60, 12))
    )

    def run_both():
        legacy = LegacyMachine(
            legacy_design_config(), 40.0, np.random.default_rng(1)
        ).run(jobs)
        new = NewMachine(new_design_config(), 40.0, np.random.default_rng(1)).run(jobs)
        return legacy, new

    legacy, new = run_once(benchmark, run_both)
    # Same steady-state throughput; the new design has no stalls.
    assert new.stats["temperature_stalls"] == 0
    assert abs(new.total_cycles - legacy.total_cycles) < 50
    # The timed (event-driven) results match the cycle-stepped oracles.
    for design, config, fast in (
        ("legacy", legacy_design_config(), legacy),
        ("new", new_design_config(), new),
    ):
        machine_cls = LegacyMachine if design == "legacy" else NewMachine
        oracle = machine_cls(
            config, 40.0, np.random.default_rng(1), use_event_driven=False
        ).run(jobs)
        assert fast.winners == oracle.winners
        assert fast.winner_cycle == oracle.winner_cycle
        assert fast.total_cycles == oracle.total_cycles
        assert fast.stats == oracle.stats


def test_bench_scalar_oracle_machines(benchmark, bench_profile):
    """The per-cycle scalar oracles, timed for the trajectory record."""
    jobs = jobs_from_energies(
        np.random.default_rng(0).integers(0, 256, (60, 12))
    )

    def run_both():
        legacy = LegacyMachine(
            legacy_design_config(), 40.0, np.random.default_rng(1),
            use_event_driven=False,
        ).run(jobs)
        new = NewMachine(
            new_design_config(), 40.0, np.random.default_rng(1),
            use_event_driven=False,
        ).run(jobs)
        return legacy, new

    legacy, new = run_once(benchmark, run_both)
    assert new.stats["temperature_stalls"] == 0
    assert abs(new.total_cycles - legacy.total_cycles) < 50


def test_bench_interface_traffic(benchmark, bench_profile):
    """Over-the-wire solve: new design needs 32x fewer update bytes."""
    rng = np.random.default_rng(0)
    unary = rng.integers(0, 30, (14, 18, 4))
    temperatures = [15.0] * 6

    def run_both():
        new_driver = RSUDriver(
            RSUDevice(new_design_config(), np.random.default_rng(1), "new"),
            unary, Configure("binary", 1, 8, 4),
        )
        new_driver.solve(6, temperatures)
        legacy_driver = RSUDriver(
            RSUDevice(legacy_design_config(), np.random.default_rng(1), "legacy"),
            unary, Configure("binary", 1, 8, 4),
        )
        legacy_driver.solve(6, temperatures)
        return new_driver.interface_traffic(), legacy_driver.interface_traffic()

    new_traffic, legacy_traffic = run_once(benchmark, run_both)
    assert legacy_traffic["update_bytes"] == 32 * new_traffic["update_bytes"]
    assert new_traffic["stall_cycles"] == 0
