"""Statistical quality battery for bit streams.

The paper flags the 19-bit LFSR's short period as a quality risk and
pseudo-RNGs' lack of security guarantees (Sec. IV-C).  This battery
quantifies stream quality with classic tests — monobit balance, runs,
serial correlation, block chi-square, and period detection — and is
applied to the LFSR, the MT19937 and the RSU's TTF-derived entropy in
the test suite.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro.util.errors import ConfigError, DataError


@dataclass(frozen=True)
class TestOutcome:
    """One statistical test's result."""

    name: str
    statistic: float
    p_value: float

    def passed(self, alpha: float = 0.01) -> bool:
        """True when the stream is consistent with randomness."""
        return self.p_value >= alpha


def _check_bits(bits: np.ndarray, minimum: int) -> np.ndarray:
    arr = np.asarray(bits)
    if arr.ndim != 1 or arr.size < minimum:
        raise DataError(f"need a 1-D stream of at least {minimum} bits")
    if not set(np.unique(arr)).issubset({0, 1}):
        raise DataError("stream must contain only 0/1 values")
    return arr.astype(np.int64)


def monobit_test(bits: np.ndarray) -> TestOutcome:
    """NIST frequency (monobit) test: are ones and zeros balanced?"""
    arr = _check_bits(bits, 100)
    s = abs(2 * arr.sum() - arr.size) / math.sqrt(arr.size)
    p_value = math.erfc(s / math.sqrt(2))
    return TestOutcome("monobit", float(s), float(p_value))


def runs_test(bits: np.ndarray) -> TestOutcome:
    """NIST runs test: is the number of 0/1 runs as expected?"""
    arr = _check_bits(bits, 100)
    pi = arr.mean()
    if abs(pi - 0.5) >= 2.0 / math.sqrt(arr.size):
        return TestOutcome("runs", float("inf"), 0.0)  # fails the precondition
    runs = 1 + int((arr[1:] != arr[:-1]).sum())
    n = arr.size
    expected = 2 * n * pi * (1 - pi)
    statistic = abs(runs - expected) / (2 * math.sqrt(2 * n) * pi * (1 - pi))
    p_value = math.erfc(statistic / math.sqrt(2))
    return TestOutcome("runs", float(statistic), float(p_value))


def serial_correlation_test(bits: np.ndarray, lag: int = 1) -> TestOutcome:
    """Lag-``lag`` autocorrelation of the stream, normal under H0."""
    arr = _check_bits(bits, 100)
    if lag < 1 or lag >= arr.size:
        raise ConfigError(f"lag must be in [1, {arr.size}), got {lag}")
    x = arr.astype(np.float64) - arr.mean()
    denom = float(x @ x)
    if denom == 0:
        return TestOutcome("serial_correlation", float("inf"), 0.0)
    rho = float(x[:-lag] @ x[lag:]) / denom
    z = rho * math.sqrt(arr.size - lag)
    p_value = math.erfc(abs(z) / math.sqrt(2))
    return TestOutcome("serial_correlation", float(z), float(p_value))


def block_chi_square_test(bits: np.ndarray, block_bits: int = 4) -> TestOutcome:
    """Chi-square uniformity of non-overlapping ``block_bits`` words."""
    arr = _check_bits(bits, 100)
    if not 1 <= block_bits <= 16:
        raise ConfigError(f"block_bits must be in [1, 16], got {block_bits}")
    n_blocks = arr.size // block_bits
    if n_blocks < 5 * (1 << block_bits):
        raise DataError("stream too short for the requested block size")
    words = arr[: n_blocks * block_bits].reshape(n_blocks, block_bits)
    weights = np.int64(1) << np.arange(block_bits - 1, -1, -1, dtype=np.int64)
    values = words @ weights
    counts = np.bincount(values, minlength=1 << block_bits)
    expected = n_blocks / (1 << block_bits)
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    dof = (1 << block_bits) - 1
    p_value = _chi2_sf(chi2, dof)
    return TestOutcome("block_chi_square", chi2, p_value)


def detect_period(bits: np.ndarray, max_period: int) -> Optional[int]:
    """Smallest period <= max_period, or None if aperiodic in the window.

    Detects the LFSR's short cycle: the stream must be at least twice
    ``max_period`` long.
    """
    arr = _check_bits(bits, 4)
    if max_period < 1 or arr.size < 2 * max_period:
        raise ConfigError("stream must be at least 2 * max_period bits")
    for period in range(1, max_period + 1):
        if np.array_equal(arr[: arr.size - period], arr[period:]):
            return period
    return None


def _chi2_sf(value: float, dof: int) -> float:
    """Chi-square survival function via the regularized gamma function."""
    from scipy import special

    return float(special.gammaincc(dof / 2.0, value / 2.0))


def stream_bits(source, n_bits: int, word_bits: int = 32) -> np.ndarray:
    """Materialize ``n_bits`` stream bits from a generator or BitSource.

    Dispatch, most direct form first:

    * a ``.bits(count)`` generator (:class:`~repro.rng.lfsr.LFSR`) emits
      raw bits through its vectorized block path;
    * a ``.words(count)`` generator (:class:`~repro.rng.mt19937.MT19937`)
      has its 32-bit words unpacked MSB-first;
    * any :class:`~repro.rng.streams.BitSource` (including
      :class:`~repro.rng.streams.BufferedBitSource` wrappers) has its
      uniforms requantized onto the ``word_bits`` grid and unpacked
      MSB-first — for a word-backed source (e.g. an LFSR source with
      ``word_bits=19``) this recovers the underlying words exactly.

    The vectorized generators make multi-million-bit batteries cheap:
    the stream is produced in one block call, not a Python loop.
    """
    if n_bits < 1:
        raise ConfigError(f"n_bits must be >= 1, got {n_bits}")
    if hasattr(source, "bits"):
        return np.asarray(source.bits(n_bits), dtype=np.uint8)
    if not 1 <= word_bits <= 53:
        raise ConfigError(f"word_bits must be in [1, 53], got {word_bits}")
    if hasattr(source, "words"):
        word_bits = 32  # .words generators emit 32-bit output words
        n_words = -(-n_bits // word_bits)
        words = np.asarray(source.words(n_words), dtype=np.uint64)
    elif hasattr(source, "uniforms"):
        n_words = -(-n_bits // word_bits)
        uniforms = np.asarray(source.uniforms(n_words), dtype=np.float64)
        words = np.floor(uniforms * float(1 << word_bits)).astype(np.uint64)
    else:
        raise ConfigError(
            f"cannot extract bits from {type(source).__name__}: "
            "need .bits, .words, or .uniforms"
        )
    positions = np.arange(word_bits - 1, -1, -1, dtype=np.uint64)
    unpacked = (words[:, None] >> positions) & np.uint64(1)
    return unpacked.reshape(-1)[:n_bits].astype(np.uint8)


def run_battery(
    bits,
    block_bits: int = 4,
    *,
    n_bits: Optional[int] = None,
    word_bits: int = 32,
) -> Dict[str, TestOutcome]:
    """All tests as a dict keyed by test name.

    ``bits`` may be a materialized 0/1 array (the classic form) or any
    bit/word/uniform source accepted by :func:`stream_bits`, in which
    case ``n_bits`` selects how much of the stream to test — the battery
    then consumes directly from the generator's vectorized block path.
    """
    if not isinstance(bits, np.ndarray) and any(
        hasattr(bits, attr) for attr in ("bits", "words", "uniforms")
    ):
        if n_bits is None:
            raise ConfigError("testing a stream source requires n_bits")
        bits = stream_bits(bits, n_bits, word_bits=word_bits)
    return {
        outcome.name: outcome
        for outcome in (
            monobit_test(bits),
            runs_test(bits),
            serial_correlation_test(bits),
            block_chi_square_test(bits, block_bits),
        )
    }
