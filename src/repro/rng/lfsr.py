"""Fibonacci linear-feedback shift registers.

The paper's most aggressive pseudo-RNG baseline is a 19-bit LFSR
(Table IV).  A maximal-length LFSR of width ``w`` cycles through all
``2**w - 1`` nonzero states, which is why the paper flags its "relatively
short period" as a quality risk for applications beyond the three it
evaluates.
"""

from __future__ import annotations

from typing import Iterator, List

import numpy as np

from repro.util.errors import ConfigError

#: Maximal-length tap sets (1-indexed from the output bit) for common
#: widths, from the standard table of primitive polynomials over GF(2).
TAPS_BY_WIDTH = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    7: (7, 6),
    8: (8, 6, 5, 4),
    11: (11, 9),
    15: (15, 14),
    16: (16, 15, 13, 4),
    19: (19, 18, 17, 14),
    23: (23, 18),
    31: (31, 28),
}


class LFSR:
    """Fibonacci LFSR emitting one bit per :meth:`step`.

    Parameters
    ----------
    width:
        Register width in bits.  Must appear in :data:`TAPS_BY_WIDTH`
        unless explicit ``taps`` are supplied.
    seed:
        Initial register state; any nonzero value modulo ``2**width``.
    taps:
        Optional explicit tap positions (1-indexed, position ``width`` is
        the oldest bit).
    """

    def __init__(self, width: int = 19, seed: int = 1, taps: tuple = ()):
        if width < 2:
            raise ConfigError(f"LFSR width must be >= 2, got {width}")
        if not taps:
            if width not in TAPS_BY_WIDTH:
                raise ConfigError(
                    f"no known maximal taps for width {width}; pass taps explicitly"
                )
            taps = TAPS_BY_WIDTH[width]
        if any(t < 1 or t > width for t in taps):
            raise ConfigError(f"taps {taps} out of range for width {width}")
        self.width = width
        self.taps = tuple(taps)
        self._mask = (1 << width) - 1
        state = seed & self._mask
        if state == 0:
            raise ConfigError("LFSR seed must be nonzero modulo 2**width")
        self._state = state

    @property
    def state(self) -> int:
        """Current register contents."""
        return self._state

    @property
    def period(self) -> int:
        """Period of a maximal-length register of this width."""
        return (1 << self.width) - 1

    def getstate(self) -> dict:
        """Snapshot of the full generator state (picklable, plain data).

        The register contents are the entire state; width/taps are
        included so :meth:`setstate` can refuse a snapshot taken from a
        differently configured register.
        """
        return {"kind": "lfsr", "width": self.width, "taps": self.taps,
                "state": self._state}

    def setstate(self, state: dict) -> None:
        """Restore a :meth:`getstate` snapshot; bit-exact continuation."""
        if state.get("kind") != "lfsr":
            raise ConfigError(f"not an LFSR state snapshot: {state!r}")
        if state["width"] != self.width or tuple(state["taps"]) != self.taps:
            raise ConfigError(
                f"LFSR state is for width={state['width']} taps={state['taps']}, "
                f"this register has width={self.width} taps={self.taps}"
            )
        value = int(state["state"]) & self._mask
        if value == 0:
            raise ConfigError("LFSR state must be nonzero modulo 2**width")
        self._state = value

    def step(self) -> int:
        """Advance one clock and return the output bit (LSB before shift).

        Fibonacci right-shift form: for the primitive polynomial
        ``x^w + x^t2 + ... + 1`` (taps ``(w, t2, ...)``) the feedback is
        the XOR of bits ``w - tap`` — tap ``w`` contributes the output
        bit itself, keeping the update invertible.
        """
        out = self._state & 1
        feedback = 0
        for tap in self.taps:
            feedback ^= (self._state >> (self.width - tap)) & 1
        self._state = (self._state >> 1) | (feedback << (self.width - 1))
        return out

    def bits(self, count: int) -> np.ndarray:
        """Return the next ``count`` output bits as a uint8 array."""
        return np.fromiter((self.step() for _ in range(count)), dtype=np.uint8, count=count)

    def words(self, count: int, bits_per_word: int) -> np.ndarray:
        """Pack the next ``count * bits_per_word`` bits MSB-first into ints."""
        stream = self.bits(count * bits_per_word).reshape(count, bits_per_word)
        weights = np.int64(1) << np.arange(bits_per_word - 1, -1, -1, dtype=np.int64)
        return stream.astype(np.int64) @ weights

    def next_word(self, bits_per_word: int) -> int:
        """Pack the next ``bits_per_word`` bits MSB-first into one integer.

        Allocation-free scalar counterpart of :meth:`words`: the first
        bit emitted lands in the most significant position, exactly the
        packing order of the array path, so interleaving the two styles
        keeps the bit stream aligned.
        """
        word = 0
        for _ in range(bits_per_word):
            word = (word << 1) | self.step()
        return word

    def uniforms(
        self, count: int, bits_per_word: int = 19, out: np.ndarray = None
    ) -> np.ndarray:
        """Return ``count`` floats in [0, 1) built from packed words.

        With ``out`` (a float64 ``(count,)`` buffer) the words are
        packed scalar-by-scalar into the caller's buffer — zero
        allocations, and bit-identical values: a ``bits_per_word``-bit
        word is exactly representable in a double, and dividing by a
        power of two is exact, so the Python and NumPy divisions agree
        to the last ulp.
        """
        if out is None:
            return self.words(count, bits_per_word) / float(1 << bits_per_word)
        scale = float(1 << bits_per_word)
        for index in range(count):
            out[index] = self.next_word(bits_per_word) / scale
        return out

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.step()


def cycle_states(width: int, seed: int = 1, limit: int = 1 << 20) -> List[int]:
    """Enumerate register states until the cycle closes (testing helper).

    Raises :class:`ConfigError` if the cycle does not close within
    ``limit`` steps, which would indicate a non-maximal tap set escaping
    its orbit — useful in tests validating :data:`TAPS_BY_WIDTH`.
    """
    reg = LFSR(width, seed)
    first = reg.state
    states = [first]
    for _ in range(limit):
        reg.step()
        if reg.state == first:
            return states
        states.append(reg.state)
    raise ConfigError(f"cycle did not close within {limit} steps for width {width}")
