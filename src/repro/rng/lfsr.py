"""Fibonacci linear-feedback shift registers.

The paper's most aggressive pseudo-RNG baseline is a 19-bit LFSR
(Table IV).  A maximal-length LFSR of width ``w`` cycles through all
``2**w - 1`` nonzero states, which is why the paper flags its "relatively
short period" as a quality risk for applications beyond the three it
evaluates.

Two execution paths produce the *same* bit stream:

* the **scalar oracle** — :meth:`LFSR.step` one clock at a time, kept
  alive behind ``use_vectorized=False`` and used by the byte-identity
  regressions;
* the **bit-sliced block path** (the default) — the register's GF(2)
  transition matrix (:mod:`repro.rng.gf2`) jump-ahead places ``64·S``
  lane phases of the register, the lanes are transposed into ``width``
  bit planes (one uint64 word per 64 lanes), and each vectorized step
  advances *all* lanes one clock with a handful of packed XOR word ops
  while emitting one pre-packed 64-bit output word per plane word.
  Identical output bits, orders of magnitude fewer Python operations.

Jump-ahead is public: :meth:`LFSR.jump` advances ``k`` steps in
``O(w² log k)``, and :meth:`LFSR.spawn` derives ``n`` deterministic
substream registers at provably disjoint stream offsets.
"""

from __future__ import annotations

from typing import Iterator, List, Optional

import numpy as np

from repro.rng import gf2
from repro.rng.streams import _check_out
from repro.util.errors import ConfigError

#: Maximal-length tap sets (1-indexed from the output bit) for common
#: widths, from the standard table of primitive polynomials over GF(2).
TAPS_BY_WIDTH = {
    3: (3, 2),
    4: (4, 3),
    5: (5, 3),
    7: (7, 6),
    8: (8, 6, 5, 4),
    11: (11, 9),
    15: (15, 14),
    16: (16, 15, 13, 4),
    19: (19, 18, 17, 14),
    23: (23, 18),
    31: (31, 28),
}

#: Below this many requested bits the scalar loop beats the block
#: engine's lane-placement setup, so ``bits`` routes to the oracle.
_VECTOR_MIN_BITS = 256

#: Upper bound on 64-lane superwords per block call (2**15 lanes): more
#: lanes amortize the per-step Python cost, fewer keep jump-ahead
#: placement cheap; each lane covers at least ~4096 bits before the cap.
_MAX_SUPERWORDS = 512


class LFSR:
    """Fibonacci LFSR emitting one bit per :meth:`step`.

    Parameters
    ----------
    width:
        Register width in bits.  Must appear in :data:`TAPS_BY_WIDTH`
        unless explicit ``taps`` are supplied.
    seed:
        Initial register state; any nonzero value modulo ``2**width``.
    taps:
        Optional explicit tap positions (1-indexed, position ``width`` is
        the oldest bit).
    use_vectorized:
        Route :meth:`bits`/:meth:`words`/:meth:`uniforms` through the
        bit-sliced block engine (byte-identical to the scalar path).
        ``False`` keeps every draw on the scalar oracle.
    """

    def __init__(
        self,
        width: int = 19,
        seed: int = 1,
        taps: tuple = (),
        use_vectorized: bool = True,
    ):
        if width < 2:
            raise ConfigError(f"LFSR width must be >= 2, got {width}")
        if not taps:
            if width not in TAPS_BY_WIDTH:
                raise ConfigError(
                    f"no known maximal taps for width {width}; pass taps explicitly"
                )
            taps = TAPS_BY_WIDTH[width]
        if any(t < 1 or t > width for t in taps):
            raise ConfigError(f"taps {taps} out of range for width {width}")
        self.width = width
        self.taps = tuple(taps)
        self.use_vectorized = bool(use_vectorized)
        self._mask = (1 << width) - 1
        self._step_matrix = gf2.lfsr_step_matrix(width, self.taps)
        state = seed & self._mask
        if state == 0:
            raise ConfigError("LFSR seed must be nonzero modulo 2**width")
        self._state = state

    @property
    def state(self) -> int:
        """Current register contents."""
        return self._state

    @property
    def period(self) -> int:
        """Period of a maximal-length register of this width."""
        return (1 << self.width) - 1

    def getstate(self) -> dict:
        """Snapshot of the full generator state (picklable, plain data).

        The register contents are the entire state; width/taps are
        included so :meth:`setstate` can refuse a snapshot taken from a
        differently configured register.  ``use_vectorized`` is a
        config switch, not stream state: snapshots move freely between
        scalar and vectorized registers.
        """
        return {"kind": "lfsr", "width": self.width, "taps": self.taps,
                "state": self._state}

    def setstate(self, state: dict) -> None:
        """Restore a :meth:`getstate` snapshot; bit-exact continuation."""
        if state.get("kind") != "lfsr":
            raise ConfigError(f"not an LFSR state snapshot: {state!r}")
        if state["width"] != self.width or tuple(state["taps"]) != self.taps:
            raise ConfigError(
                f"LFSR state is for width={state['width']} taps={state['taps']}, "
                f"this register has width={self.width} taps={self.taps}"
            )
        value = int(state["state"]) & self._mask
        if value == 0:
            raise ConfigError("LFSR state must be nonzero modulo 2**width")
        self._state = value

    def step(self) -> int:
        """Advance one clock and return the output bit (LSB before shift).

        Fibonacci right-shift form: for the primitive polynomial
        ``x^w + x^t2 + ... + 1`` (taps ``(w, t2, ...)``) the feedback is
        the XOR of bits ``w - tap`` — tap ``w`` contributes the output
        bit itself, keeping the update invertible.
        """
        out = self._state & 1
        feedback = 0
        for tap in self.taps:
            feedback ^= (self._state >> (self.width - tap)) & 1
        self._state = (self._state >> 1) | (feedback << (self.width - 1))
        return out

    def jump(self, count: int) -> "LFSR":
        """Advance the register ``count`` clocks without emitting bits.

        Square-and-multiply on the GF(2) transition matrix makes this
        ``O(width² log count)``, so arbitrary offsets — including the
        ``period // n`` substream strides of :meth:`spawn` — cost
        microseconds.  Byte-identical to ``count`` calls of
        :meth:`step` with the outputs discarded.  Returns ``self``.
        """
        self._state = gf2.advance_state(self._step_matrix, self._state, count)
        return self

    def spawn(self, n: int, stride: Optional[int] = None) -> List["LFSR"]:
        """Derive ``n`` deterministic substream registers by jump-ahead.

        Substream ``i`` starts at the current state advanced ``i *
        stride`` clocks (``self`` is left untouched; substream 0 is a
        plain copy).  The default stride ``period // n`` partitions one
        full period into equal segments, so for a maximal-length
        polynomial the substreams are **provably disjoint** as long as
        each consumes fewer than ``stride`` bits: segment ``i`` covers
        stream positions ``[i*stride, (i+1)*stride)`` of the parent
        register's own future output.  Pass an explicit ``stride`` for
        non-maximal tap sets or custom placements.
        """
        if n < 1:
            raise ConfigError(f"spawn count must be >= 1, got {n}")
        if stride is None:
            stride = self.period // n
        if stride < 1:
            raise ConfigError(
                f"substream stride must be >= 1, got {stride} "
                f"(n={n} exceeds the period?)"
            )
        children: List["LFSR"] = []
        state = self._state
        for index in range(n):
            if index:
                state = gf2.advance_state(self._step_matrix, state, stride)
            child = LFSR(self.width, seed=1, taps=self.taps,
                         use_vectorized=self.use_vectorized)
            child._state = state
            children.append(child)
        return children

    def bits(self, count: int) -> np.ndarray:
        """Return the next ``count`` output bits as a uint8 array.

        Routed through the bit-sliced block engine when vectorization is
        on and the request is large enough to amortize lane placement;
        the stream (and the register state afterwards) is identical
        either way.
        """
        if (
            not self.use_vectorized
            or count < _VECTOR_MIN_BITS
            or self.width > 32
            or not np.little_endian
        ):
            return self._bits_scalar(count)
        return self._bits_vectorized(count)

    def _bits_scalar(self, count: int) -> np.ndarray:
        """Scalar oracle: one :meth:`step` per output bit."""
        return np.fromiter((self.step() for _ in range(count)), dtype=np.uint8, count=count)

    def _bits_vectorized(self, count: int) -> np.ndarray:
        """Bit-sliced block generation of ``count`` stream-ordered bits.

        Layout: ``64·S`` lanes, lane ``ℓ`` jump-ahead-placed at phase
        ``ℓ·n_steps`` so it owns the contiguous stream chunk
        ``[ℓ·n_steps, (ℓ+1)·n_steps)``.  The lanes are transposed into
        ``width`` bit planes (plane ``b``, word ``s``, bit ``j`` = bit
        ``b`` of lane ``64s + j``); one vectorized step then emits
        plane 0 — 64 pre-packed output bits per superword — and clocks
        every lane with ``len(taps) - 1`` packed XORs (the plane list
        rotates for the right shift, the feedback plane is appended).
        Afterwards the register jumps to ``T**count`` of its old state,
        exactly where the scalar path would have left it.
        """
        superwords = max(1, min(_MAX_SUPERWORDS, count // 4096))
        lanes = 64 * superwords
        n_steps = -(-count // lanes)

        # Jump-ahead lane placement by prefix doubling: lanes [m, 2m)
        # are lanes [0, m) advanced m·n_steps clocks.
        starts = np.zeros(lanes, dtype=np.uint64)
        starts[0] = self._state
        jump_mat = gf2.mat_pow(self._step_matrix, n_steps)
        filled = 1
        while filled < lanes:
            take = min(filled, lanes - filled)
            starts[filled:filled + take] = gf2.mat_vec_array(jump_mat, starts[:take])
            filled += take
            if filled < lanes:
                jump_mat = gf2.mat_mul(jump_mat, jump_mat)

        # Transpose lane states into bit planes.
        one = np.uint64(1)
        shifts = np.arange(64, dtype=np.uint64)
        planes = [
            np.bitwise_or.reduce(
                ((starts >> np.uint64(b)) & one).reshape(superwords, 64) << shifts,
                axis=1,
            )
            for b in range(self.width)
        ]

        feedback_planes = tuple(self.width - tap for tap in self.taps)
        out_words = np.empty((n_steps, superwords), dtype=np.uint64)
        for k in range(n_steps):
            out_words[k] = planes[0]
            if len(feedback_planes) > 1:
                fb = planes[feedback_planes[0]] ^ planes[feedback_planes[1]]
                for index in feedback_planes[2:]:
                    fb ^= planes[index]
            else:
                fb = planes[feedback_planes[0]].copy()
            planes.pop(0)
            planes.append(fb)

        # Little-endian uint64 -> bit j of word s is lane 64s + j, so a
        # plain transpose restores chunk-contiguous stream order.
        raw = np.unpackbits(out_words.view(np.uint8), bitorder="little")
        stream = raw.reshape(n_steps, lanes).T.reshape(-1)[:count]
        self.jump(count)
        return stream

    def words(self, count: int, bits_per_word: int) -> np.ndarray:
        """Pack the next ``count * bits_per_word`` bits MSB-first into ints."""
        stream = self.bits(count * bits_per_word).reshape(count, bits_per_word)
        weights = np.int64(1) << np.arange(bits_per_word - 1, -1, -1, dtype=np.int64)
        return stream.astype(np.int64) @ weights

    def next_word(self, bits_per_word: int) -> int:
        """Pack the next ``bits_per_word`` bits MSB-first into one integer.

        Allocation-free scalar counterpart of :meth:`words`: the first
        bit emitted lands in the most significant position, exactly the
        packing order of the array path, so interleaving the two styles
        keeps the bit stream aligned.
        """
        word = 0
        for _ in range(bits_per_word):
            word = (word << 1) | self.step()
        return word

    def uniforms(
        self,
        count: int,
        bits_per_word: int = 19,
        out: Optional[np.ndarray] = None,
    ) -> np.ndarray:
        """Return ``count`` floats in [0, 1) built from packed words.

        With ``out`` (a float64 ``(count,)`` buffer, validated) the
        words land in the caller's buffer.  The vectorized path packs a
        whole block at once; the scalar oracle packs word by word with
        zero allocations.  Either way the values are bit-identical: a
        ``bits_per_word``-bit word is exactly representable in a double,
        and dividing by a power of two is exact, so the Python and NumPy
        divisions agree to the last ulp.
        """
        scale = float(1 << bits_per_word)
        if out is None:
            return self.words(count, bits_per_word) / scale
        _check_out(count, out)
        if self.use_vectorized and count * bits_per_word >= _VECTOR_MIN_BITS:
            np.divide(self.words(count, bits_per_word), scale, out=out)
            return out
        for index in range(count):
            out[index] = self.next_word(bits_per_word) / scale
        return out

    def __iter__(self) -> Iterator[int]:
        while True:
            yield self.step()


def cycle_states(width: int, seed: int = 1, limit: int = 1 << 20) -> List[int]:
    """Enumerate register states until the cycle closes (testing helper).

    Raises :class:`ConfigError` if the cycle does not close within
    ``limit`` steps, which would indicate a non-maximal tap set escaping
    its orbit — useful in tests validating :data:`TAPS_BY_WIDTH`.
    """
    reg = LFSR(width, seed)
    first = reg.state
    states = [first]
    for _ in range(limit):
        reg.step()
        if reg.state == first:
            return states
        states.append(reg.state)
    raise ConfigError(f"cycle did not close within {limit} steps for width {width}")
