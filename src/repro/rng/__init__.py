"""Pseudo-random number generator substrate.

The paper compares the RSU-G against pure-CMOS sampling units built on a
19-bit LFSR, a Mersenne Twister (mt19937), and Intel's DRNG (Table IV).
This package implements the two pseudo-RNGs from scratch, plus a common
:class:`BitSource` protocol used by the inverse-CDF sampler backend in
:mod:`repro.core.cdf_sampler`.
"""

from repro.rng.lfsr import LFSR, TAPS_BY_WIDTH, cycle_states
from repro.rng.mt19937 import MT19937
from repro.rng.streams import (
    BitSource,
    LFSRBitSource,
    MTBitSource,
    NumpyBitSource,
    generator_state,
    set_generator_state,
    uniform_from_bits,
)

__all__ = [
    "LFSR",
    "TAPS_BY_WIDTH",
    "cycle_states",
    "MT19937",
    "BitSource",
    "LFSRBitSource",
    "MTBitSource",
    "NumpyBitSource",
    "generator_state",
    "set_generator_state",
    "uniform_from_bits",
]
