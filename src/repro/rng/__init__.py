"""Pseudo-random number generator substrate.

The paper compares the RSU-G against pure-CMOS sampling units built on a
19-bit LFSR, a Mersenne Twister (mt19937), and Intel's DRNG (Table IV).
This package implements the two pseudo-RNGs from scratch — each with a
scalar oracle and a byte-identical vectorized block path — plus a common
:class:`BitSource` protocol used by the inverse-CDF sampler backend in
:mod:`repro.core.cdf_sampler`, a :class:`BufferedBitSource` block
prefetcher, and GF(2) jump-ahead machinery (:mod:`repro.rng.gf2`) for
deterministic substreams.
"""

from repro.rng.lfsr import LFSR, TAPS_BY_WIDTH, cycle_states
from repro.rng.mt19937 import MT19937
from repro.rng.streams import (
    BitSource,
    BufferedBitSource,
    DEFAULT_PREFETCH_BLOCK,
    LFSRBitSource,
    MTBitSource,
    NumpyBitSource,
    generator_state,
    set_generator_state,
    uniform_from_bits,
)

__all__ = [
    "LFSR",
    "TAPS_BY_WIDTH",
    "cycle_states",
    "MT19937",
    "BitSource",
    "BufferedBitSource",
    "DEFAULT_PREFETCH_BLOCK",
    "LFSRBitSource",
    "MTBitSource",
    "NumpyBitSource",
    "generator_state",
    "set_generator_state",
    "uniform_from_bits",
]
