"""From-scratch MT19937 (Mersenne Twister) implementation.

Matsumoto & Nishimura's mt19937 is the pseudo-RNG whose VLSI area the
paper scales to 15 nm for Table IV.  This implementation follows the
reference algorithm exactly, so its output can be checked against the
published test vector (seed 5489 → first output 3499211612).
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigError

_N = 624
_M = 397
_MATRIX_A = 0x9908B0DF
_UPPER_MASK = 0x80000000
_LOWER_MASK = 0x7FFFFFFF
_WORD_MASK = 0xFFFFFFFF


class MT19937:
    """Reference Mersenne Twister with 32-bit output words."""

    def __init__(self, seed: int = 5489):
        if not 0 <= seed <= _WORD_MASK:
            raise ConfigError(f"seed must fit in 32 bits, got {seed}")
        self._mt = [0] * _N
        self._index = _N
        self._mt[0] = seed
        for i in range(1, _N):
            prev = self._mt[i - 1]
            self._mt[i] = (1812433253 * (prev ^ (prev >> 30)) + i) & _WORD_MASK

    def getstate(self) -> dict:
        """Snapshot of the full generator state (picklable, plain data)."""
        return {"kind": "mt19937", "mt": list(self._mt), "index": self._index}

    def setstate(self, state: dict) -> None:
        """Restore a :meth:`getstate` snapshot; bit-exact continuation."""
        if state.get("kind") != "mt19937":
            raise ConfigError(f"not an MT19937 state snapshot: {state!r}")
        mt = [int(word) & _WORD_MASK for word in state["mt"]]
        if len(mt) != _N:
            raise ConfigError(f"MT19937 state needs {_N} words, got {len(mt)}")
        index = int(state["index"])
        if not 0 <= index <= _N:
            raise ConfigError(f"MT19937 index must be in [0, {_N}], got {index}")
        self._mt = mt
        self._index = index

    def _generate(self) -> None:
        mt = self._mt
        for i in range(_N):
            y = (mt[i] & _UPPER_MASK) | (mt[(i + 1) % _N] & _LOWER_MASK)
            nxt = mt[(i + _M) % _N] ^ (y >> 1)
            if y & 1:
                nxt ^= _MATRIX_A
            mt[i] = nxt
        self._index = 0

    def next_u32(self) -> int:
        """Return the next tempered 32-bit word."""
        if self._index >= _N:
            self._generate()
        y = self._mt[self._index]
        self._index += 1
        y ^= y >> 11
        y ^= (y << 7) & 0x9D2C5680
        y ^= (y << 15) & 0xEFC60000
        y ^= y >> 18
        return y & _WORD_MASK

    def words(self, count: int) -> np.ndarray:
        """Return the next ``count`` 32-bit words as uint64."""
        return np.fromiter(
            (self.next_u32() for _ in range(count)), dtype=np.uint64, count=count
        )

    def uniforms(self, count: int, out: np.ndarray = None) -> np.ndarray:
        """Return ``count`` floats in [0, 1) with 32-bit granularity.

        With ``out`` (a float64 ``(count,)`` buffer) the tempered words
        are written scalar-by-scalar into the caller's buffer — zero
        allocations, bit-identical values (a 32-bit word is exactly
        representable in a double and the power-of-two division is
        exact).
        """
        if out is None:
            return self.words(count).astype(np.float64) / float(1 << 32)
        scale = float(1 << 32)
        for index in range(count):
            out[index] = self.next_u32() / scale
        return out
