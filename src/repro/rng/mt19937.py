"""From-scratch MT19937 (Mersenne Twister) implementation.

Matsumoto & Nishimura's mt19937 is the pseudo-RNG whose VLSI area the
paper scales to 15 nm for Table IV.  This implementation follows the
reference algorithm exactly, so its output can be checked against the
published test vector (seed 5489 → first output 3499211612).

Two execution paths produce the *same* word stream:

* the **scalar oracle** — per-word :meth:`MT19937.next_u32` with the
  reference one-at-a-time twist, kept alive behind
  ``use_vectorized=False``;
* the **block path** (the default) — the 624-word twist is evaluated as
  three NumPy slice assignments (split exactly at the points where the
  sequential recurrence starts consuming words the same twist already
  rewrote, so each slice reads only finished values) plus a scalar
  fix-up for the final word, and tempering is applied to whole output
  blocks at once.  :meth:`words`/:meth:`uniforms` emit from the
  tempered block instead of looping ``next_u32``.

Both paths share the ``(mt, index)`` state representation, so scalar
and vectorized draws interleave freely and snapshots transfer between
them.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.rng.streams import _check_out
from repro.util.errors import ConfigError

_N = 624
_M = 397
_MATRIX_A = 0x9908B0DF
_UPPER_MASK = 0x80000000
_LOWER_MASK = 0x7FFFFFFF
_WORD_MASK = 0xFFFFFFFF


def _temper_block(block: np.ndarray) -> np.ndarray:
    """Vectorized output tempering of raw state words (uint32 in/uint64 out).

    uint32 arithmetic wraps modulo 2**32, which matches the scalar
    path's explicit ``& _WORD_MASK`` masking bit for bit.
    """
    y = block.astype(np.uint32, copy=True)
    y ^= y >> np.uint32(11)
    y ^= (y << np.uint32(7)) & np.uint32(0x9D2C5680)
    y ^= (y << np.uint32(15)) & np.uint32(0xEFC60000)
    y ^= y >> np.uint32(18)
    return y.astype(np.uint64)


class MT19937:
    """Reference Mersenne Twister with 32-bit output words.

    ``use_vectorized`` routes :meth:`words`/:meth:`uniforms` (and block
    regeneration) through the NumPy twist; ``False`` keeps every draw on
    the scalar oracle.  Output is byte-identical either way.
    """

    def __init__(self, seed: int = 5489, use_vectorized: bool = True):
        if not 0 <= seed <= _WORD_MASK:
            raise ConfigError(f"seed must fit in 32 bits, got {seed}")
        self.use_vectorized = bool(use_vectorized)
        self._mt = [0] * _N
        self._index = _N
        # Tempered copy of the current block, kept by the vectorized
        # twist so `words` serves plain slices; None = recompute.
        self._tempered: Optional[np.ndarray] = None
        self._mt[0] = seed
        for i in range(1, _N):
            prev = self._mt[i - 1]
            self._mt[i] = (1812433253 * (prev ^ (prev >> 30)) + i) & _WORD_MASK

    def getstate(self) -> dict:
        """Snapshot of the full generator state (picklable, plain data).

        ``use_vectorized`` is a config switch, not stream state:
        snapshots move freely between scalar and vectorized twisters.
        """
        return {"kind": "mt19937", "mt": list(self._mt), "index": self._index}

    def setstate(self, state: dict) -> None:
        """Restore a :meth:`getstate` snapshot; bit-exact continuation."""
        if state.get("kind") != "mt19937":
            raise ConfigError(f"not an MT19937 state snapshot: {state!r}")
        mt = [int(word) & _WORD_MASK for word in state["mt"]]
        if len(mt) != _N:
            raise ConfigError(f"MT19937 state needs {_N} words, got {len(mt)}")
        index = int(state["index"])
        if not 0 <= index <= _N:
            raise ConfigError(f"MT19937 index must be in [0, {_N}], got {index}")
        self._mt = mt
        self._index = index
        self._tempered = None

    def _generate(self) -> None:
        """Scalar oracle twist: the reference word-at-a-time recurrence."""
        mt = self._mt
        for i in range(_N):
            y = (mt[i] & _UPPER_MASK) | (mt[(i + 1) % _N] & _LOWER_MASK)
            nxt = mt[(i + _M) % _N] ^ (y >> 1)
            if y & 1:
                nxt ^= _MATRIX_A
            mt[i] = nxt
        self._index = 0
        self._tempered = None

    def _twist_block(self) -> None:
        """Vectorized twist of the whole 624-word block.

        The sequential recurrence reads ``mt[i - 227]`` for ``i >= 227``
        — values the same twist pass already rewrote — so the block is
        split at 227-word boundaries: each NumPy slice then reads only
        words finished by an earlier slice (or untouched old words), and
        the final word, whose ``y`` mixes the new ``mt[0]``, is fixed up
        scalar.  Byte-identical to :meth:`_generate`.
        """
        mt = np.array(self._mt, dtype=np.uint32)
        upper = np.uint32(_UPPER_MASK)
        lower = np.uint32(_LOWER_MASK)
        matrix_a = np.uint32(_MATRIX_A)
        one = np.uint32(1)
        gap = _N - _M  # 227: the read-after-write lag of the recurrence
        segments = (
            (0, gap, mt[_M:_N]),            # reads old mt[397:624]
            (gap, 2 * gap, mt[0:gap]),      # reads new mt[0:227] (segment 1)
            (2 * gap, _N - 1, mt[gap:_M - 1]),  # reads new mt[227:396] (segment 2)
        )
        for lo, hi, src in segments:
            y = (mt[lo:hi] & upper) | (mt[lo + 1:hi + 1] & lower)
            mt[lo:hi] = src ^ (y >> one) ^ ((y & one) * matrix_a)
        y = (int(mt[_N - 1]) & _UPPER_MASK) | (int(mt[0]) & _LOWER_MASK)
        last = int(mt[_M - 1]) ^ (y >> 1)
        if y & 1:
            last ^= _MATRIX_A
        mt[_N - 1] = last & _WORD_MASK
        self._mt = mt.tolist()
        self._index = 0
        self._tempered = _temper_block(mt)

    def _regenerate(self) -> None:
        if self.use_vectorized:
            self._twist_block()
        else:
            self._generate()

    def next_u32(self) -> int:
        """Return the next tempered 32-bit word."""
        if self._index >= _N:
            self._regenerate()
        y = self._mt[self._index]
        self._index += 1
        y ^= y >> 11
        y ^= (y << 7) & 0x9D2C5680
        y ^= (y << 15) & 0xEFC60000
        y ^= y >> 18
        return y & _WORD_MASK

    def words(self, count: int) -> np.ndarray:
        """Return the next ``count`` 32-bit words as uint64.

        The vectorized path drains the in-flight block, then twists and
        tempers whole 624-word blocks; partial consumption leaves
        ``index`` mid-block exactly like the scalar loop would.
        """
        if not self.use_vectorized:
            return np.fromiter(
                (self.next_u32() for _ in range(count)), dtype=np.uint64, count=count
            )
        out = np.empty(count, dtype=np.uint64)
        filled = 0
        while filled < count:
            if self._index >= _N:
                self._regenerate()
            take = min(_N - self._index, count - filled)
            if self._tempered is not None:
                out[filled:filled + take] = self._tempered[
                    self._index:self._index + take
                ]
            else:
                block = np.asarray(
                    self._mt[self._index:self._index + take], dtype=np.uint32
                )
                out[filled:filled + take] = _temper_block(block)
            self._index += take
            filled += take
        return out

    def uniforms(self, count: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Return ``count`` floats in [0, 1) with 32-bit granularity.

        With ``out`` (a float64 ``(count,)`` buffer, validated) the
        tempered words land in the caller's buffer — bit-identical
        values either way (a 32-bit word is exactly representable in a
        double and the power-of-two division is exact).
        """
        scale = float(1 << 32)
        if out is None:
            return self.words(count).astype(np.float64) / scale
        _check_out(count, out)
        if self.use_vectorized:
            np.divide(self.words(count), scale, out=out)
            return out
        for index in range(count):
            out[index] = self.next_u32() / scale
        return out
