"""GF(2) linear algebra for LFSR jump-ahead and bit-parallel lanes.

One LFSR clock is a linear map over GF(2): with the register written as
a bit vector ``s`` (bit 0 = the next output bit), the update is
``s' = T s`` for a fixed ``width x width`` transition matrix ``T``.
Everything the vectorized entropy subsystem needs follows from that
observation:

* ``T**k`` (computed by square-and-multiply) advances the register ``k``
  steps in ``O(width**2 log k)`` instead of ``O(k)`` — the *jump-ahead*
  primitive behind :meth:`repro.rng.lfsr.LFSR.jump` and
  :meth:`~repro.rng.lfsr.LFSR.spawn`;
* applying ``T**n`` to a whole *vector* of register states at once
  (:func:`mat_vec_array`) places the lane phases of the bit-sliced
  block generator, so 64·S parallel lanes can be seeded from one
  register in ``O(log lanes)`` vectorized jumps.

Matrices are stored as tuples of integer row masks: bit ``j`` of
``rows[i]`` is the coefficient of input bit ``j`` in output bit ``i``,
so ``(T s)_i = parity(rows[i] & s)``.  Squarings of each distinct step
matrix are memoized in a module-level cache — they depend only on
``(width, taps)``, not on register state, so every LFSR instance with
the same polynomial shares them.
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.util.errors import ConfigError

#: A GF(2) matrix: row ``i`` is an int mask over the input bits.
Matrix = Tuple[int, ...]

#: Memoized squarings per step matrix: ``cache[T] == [T, T^2, T^4, ...]``.
_SQUARINGS: Dict[Matrix, List[Matrix]] = {}


def lfsr_step_matrix(width: int, taps: Sequence[int]) -> Matrix:
    """Transition matrix of one Fibonacci right-shift LFSR clock.

    Mirrors :meth:`repro.rng.lfsr.LFSR.step`: bit ``i`` of the new state
    is old bit ``i + 1`` (the right shift) except the top bit, which is
    the XOR of the tap positions ``width - tap``.
    """
    if width < 2:
        raise ConfigError(f"LFSR width must be >= 2, got {width}")
    rows = [1 << (i + 1) for i in range(width - 1)]
    feedback = 0
    for tap in taps:
        if not 1 <= tap <= width:
            raise ConfigError(f"tap {tap} out of range for width {width}")
        feedback |= 1 << (width - tap)
    rows.append(feedback)
    return tuple(rows)


def identity(width: int) -> Matrix:
    """The GF(2) identity matrix."""
    return tuple(1 << i for i in range(width))


def mat_vec(rows: Matrix, state: int) -> int:
    """Apply ``rows`` to one integer state: out bit i = parity(rows[i] & s)."""
    out = 0
    for i, mask in enumerate(rows):
        out |= (bin(mask & state).count("1") & 1) << i
    return out


def mat_mul(a: Matrix, b: Matrix) -> Matrix:
    """Composition ``a ∘ b`` (apply ``b`` first): row i = XOR of b[k] over set bits k of a[i]."""
    out = []
    for row in a:
        acc = 0
        rest = row
        while rest:
            low = rest & -rest
            acc ^= b[low.bit_length() - 1]
            rest ^= low
        out.append(acc)
    return tuple(out)


def _squarings_for(step: Matrix, upto_bit: int) -> List[Matrix]:
    """``[T, T^2, T^4, ...]`` covering exponent bit ``upto_bit``, memoized."""
    powers = _SQUARINGS.setdefault(step, [step])
    while len(powers) <= upto_bit:
        powers.append(mat_mul(powers[-1], powers[-1]))
    return powers


def mat_pow(step: Matrix, exponent: int) -> Matrix:
    """``step ** exponent`` by square-and-multiply over the memoized squarings."""
    if exponent < 0:
        raise ConfigError(f"matrix exponent must be >= 0, got {exponent}")
    result = identity(len(step))
    if exponent == 0:
        return result
    powers = _squarings_for(step, exponent.bit_length() - 1)
    for bit in range(exponent.bit_length()):
        if (exponent >> bit) & 1:
            result = mat_mul(powers[bit], result)
    return result


def advance_state(step: Matrix, state: int, count: int) -> int:
    """``T**count · state`` without materializing ``T**count``.

    Applies only the power-of-two factors whose exponent bit is set —
    ``O(width log count)`` parity operations, the jump-ahead fast path.
    """
    if count < 0:
        raise ConfigError(f"jump count must be >= 0, got {count}")
    if count == 0:
        return state
    powers = _squarings_for(step, count.bit_length() - 1)
    for bit in range(count.bit_length()):
        if (count >> bit) & 1:
            state = mat_vec(powers[bit], state)
    return state


def mat_vec_array(rows: Matrix, states: np.ndarray) -> np.ndarray:
    """Apply ``rows`` to a whole uint64 vector of register states at once.

    The parity of each masked state is computed with a shift-XOR fold
    (valid for masks below 2**32, i.e. register widths up to 32 — the
    widest entry in :data:`repro.rng.lfsr.TAPS_BY_WIDTH` is 31).  Used
    to double the filled lane prefix during jump-ahead lane placement.
    """
    out = np.zeros_like(states)
    one = np.uint64(1)
    for i, mask in enumerate(rows):
        if mask == 0:
            continue
        parity = states & np.uint64(mask)
        parity ^= parity >> np.uint64(16)
        parity ^= parity >> np.uint64(8)
        parity ^= parity >> np.uint64(4)
        parity ^= parity >> np.uint64(2)
        parity ^= parity >> np.uint64(1)
        out |= (parity & one) << np.uint64(i)
    return out
