"""Uniform-variate sources shared by sampler backends.

A :class:`BitSource` is anything that can produce a vector of floats in
[0, 1).  The NumPy generator is the default (and models an ideal true
RNG such as the RSU's RET entropy or Intel's DRNG); the LFSR and
MT19937 wrappers expose the pseudo-RNG baselines through the same
protocol so the inverse-CDF sampler can run on any of them.

Every source supports an allocation-free buffered path,
``uniforms(count, out=buffer)``, mirroring the ``rng.random(out=)``
prefetch the fused TTF stage uses: the variates (and the underlying
generator state advance) are identical to the allocating call, they
just land in a caller-owned buffer — so pseudo-RNG backends on the
fused sweep path stop reallocating per half-sweep.

:class:`BufferedBitSource` adds the block-prefetch layer on top: it
draws ``block``-sized slabs from the wrapped source in one vectorized
call and serves ``uniforms(count, out=)`` requests from the cached
plane, so per-half-sweep draws of a few hundred variates stop paying
the generator's per-call setup.  Its :meth:`~BufferedBitSource.getstate`
snapshot captures the wrapped state *plus* the buffer cursor, keeping
checkpoint/resume (:mod:`repro.mrf.checkpoint`) byte-identical even
when a snapshot lands mid-block.
"""

from __future__ import annotations

import copy
from typing import Optional, Protocol, TYPE_CHECKING

import numpy as np

from repro.obs import telemetry as obs
from repro.util.errors import ConfigError


def _record_uniforms(count: int) -> None:
    """Telemetry hook: ``count`` uniforms produced by a generator.

    Counts production at the generator-facing sources only (ideal numpy,
    LFSR, MT19937) — a :class:`BufferedBitSource` serving cached floats
    records nothing itself, so slab prefetching never double counts
    (its refills land here through the wrapped source, plus the
    dedicated ``entropy.slab_*`` counters).
    """
    tel = obs.active()
    if tel is not None:
        tel.inc("entropy.uniforms", count)

if TYPE_CHECKING:  # annotation-only: streams must import before lfsr/mt19937
    from repro.rng.lfsr import LFSR
    from repro.rng.mt19937 import MT19937


def generator_state(rng: np.random.Generator) -> dict:
    """Deep-copied state snapshot of a :class:`numpy.random.Generator`.

    The snapshot is plain picklable data (NumPy's own bit-generator
    state dict), so it can ride inside checkpoint files; restore it with
    :func:`set_generator_state` for a bit-exact continuation.
    """
    return copy.deepcopy(rng.bit_generator.state)


def set_generator_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a :func:`generator_state` snapshot onto ``rng``."""
    rng.bit_generator.state = copy.deepcopy(state)


def _check_out(count: int, out: np.ndarray) -> None:
    """Validate a caller-owned ``uniforms`` buffer: shape and dtype."""
    if out.shape != (count,):
        raise ConfigError(
            f"uniforms out buffer must have shape ({count},), got {out.shape}"
        )
    if out.dtype != np.float64:
        raise ConfigError(
            f"uniforms out buffer must be float64, got dtype {out.dtype}"
        )


class BitSource(Protocol):
    """Protocol for uniform-variate producers."""

    def uniforms(self, count: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Return ``count`` floats in [0, 1), filling ``out`` if given.

        The buffered call draws the identical variates in the identical
        order as the allocating one — same generator state afterwards.
        """
        ...

    def getstate(self) -> dict:
        """Picklable snapshot of the full generator state."""
        ...

    def setstate(self, state: dict) -> None:
        """Restore a :meth:`getstate` snapshot; bit-exact continuation."""
        ...


class NumpyBitSource:
    """Ideal uniform source backed by :class:`numpy.random.Generator`."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def uniforms(self, count: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        _record_uniforms(count)
        if out is None:
            return self._rng.random(count)
        _check_out(count, out)
        self._rng.random(out=out)
        return out

    def getstate(self) -> dict:
        return {"kind": "numpy", "state": generator_state(self._rng)}

    def setstate(self, state: dict) -> None:
        if state.get("kind") != "numpy":
            raise ConfigError(f"not a NumpyBitSource state snapshot: {state!r}")
        set_generator_state(self._rng, state["state"])


class LFSRBitSource:
    """Uniform source built from a :class:`repro.rng.LFSR`."""

    def __init__(self, lfsr: "LFSR", bits_per_word: int = 19):
        self._lfsr = lfsr
        self._bits_per_word = bits_per_word

    def uniforms(self, count: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        _record_uniforms(count)
        return self._lfsr.uniforms(count, self._bits_per_word, out=out)

    def getstate(self) -> dict:
        return self._lfsr.getstate()

    def setstate(self, state: dict) -> None:
        self._lfsr.setstate(state)


class MTBitSource:
    """Uniform source built from the from-scratch :class:`MT19937`."""

    def __init__(self, mt: "MT19937"):
        self._mt = mt

    def uniforms(self, count: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        _record_uniforms(count)
        return self._mt.uniforms(count, out=out)

    def getstate(self) -> dict:
        return self._mt.getstate()

    def setstate(self, state: dict) -> None:
        self._mt.setstate(state)


#: Default prefetch slab: 2**15 variates keeps refills rare on solver
#: workloads while a mid-block resume regenerates at most one slab.
DEFAULT_PREFETCH_BLOCK = 1 << 15


class BufferedBitSource:
    """Block-prefetching wrapper around any :class:`BitSource`.

    Draws ``block`` uniforms from the wrapped source per refill (one
    vectorized call into the generator's block engine) and serves
    requests from the cached plane.  The served float sequence is
    *identical* to calling the wrapped source directly — prefetching
    only moves where the generator work happens — so wrapping a source
    never changes solve results.

    State capture keeps the compact inner snapshot plus buffer
    coordinates: ``getstate`` records the wrapped source's state *as of
    the start of the current slab* along with how many variates the slab
    holds and how many have been served.  ``setstate`` restores the
    inner state, regenerates the slab deterministically, and repositions
    the cursor — byte-identical continuation even when a checkpoint
    lands mid-block, without persisting the floats themselves.
    """

    def __init__(self, source, block: int = DEFAULT_PREFETCH_BLOCK):
        if block < 1:
            raise ConfigError(f"prefetch block must be >= 1, got {block}")
        self._source = source
        self._block = int(block)
        self._buf = np.empty(0, dtype=np.float64)
        self._cursor = 0
        # Wrapped state at the start of the current (empty) slab.
        self._slab_state = source.getstate()

    @property
    def source(self):
        """The wrapped source (shared state: draws advance this object)."""
        return self._source

    def _refill(self, need: int) -> None:
        self._slab_state = self._source.getstate()
        self._buf = self._source.uniforms(max(self._block, need))
        self._cursor = 0
        tel = obs.active()
        if tel is not None:
            tel.inc("entropy.slab_refills")
            tel.inc("entropy.slab_uniforms", self._buf.size)

    def uniforms(self, count: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        if out is None:
            target = np.empty(count, dtype=np.float64)
        else:
            _check_out(count, out)
            target = out
        filled = 0
        while filled < count:
            available = self._buf.size - self._cursor
            if available == 0:
                self._refill(count - filled)
                continue
            take = min(available, count - filled)
            target[filled:filled + take] = self._buf[self._cursor:self._cursor + take]
            self._cursor += take
            filled += take
        return target

    def getstate(self) -> dict:
        return {
            "kind": "buffered",
            "block": self._block,
            "inner": copy.deepcopy(self._slab_state),
            "drawn": int(self._buf.size),
            "cursor": int(self._cursor),
        }

    def setstate(self, state: dict) -> None:
        if state.get("kind") != "buffered":
            # A bare inner-source snapshot (e.g. a checkpoint written
            # before prefetching existed): restore it and start a fresh
            # slab there — same float stream, buffer just refills lazily.
            self._source.setstate(state)
            self._slab_state = self._source.getstate()
            self._buf = np.empty(0, dtype=np.float64)
            self._cursor = 0
            return
        drawn = int(state["drawn"])
        cursor = int(state["cursor"])
        if drawn < 0 or not 0 <= cursor <= drawn:
            raise ConfigError(
                f"buffered cursor {cursor} outside drawn slab of {drawn}"
            )
        self._source.setstate(state["inner"])
        self._slab_state = self._source.getstate()
        self._buf = (
            self._source.uniforms(drawn) if drawn else np.empty(0, dtype=np.float64)
        )
        self._cursor = cursor


def uniform_from_bits(words: np.ndarray, bits: int) -> np.ndarray:
    """Map integer ``words`` with ``bits`` of entropy onto [0, 1)."""
    return np.asarray(words, dtype=np.float64) / float(1 << bits)
