"""Uniform-variate sources shared by sampler backends.

A :class:`BitSource` is anything that can produce a vector of floats in
[0, 1).  The NumPy generator is the default (and models an ideal true
RNG such as the RSU's RET entropy or Intel's DRNG); the LFSR and
MT19937 wrappers expose the pseudo-RNG baselines through the same
protocol so the inverse-CDF sampler can run on any of them.

Every source supports an allocation-free buffered path,
``uniforms(count, out=buffer)``, mirroring the ``rng.random(out=)``
prefetch the fused TTF stage uses: the variates (and the underlying
generator state advance) are identical to the allocating call, they
just land in a caller-owned buffer — so pseudo-RNG backends on the
fused sweep path stop reallocating per half-sweep.
"""

from __future__ import annotations

import copy
from typing import Optional, Protocol

import numpy as np

from repro.rng.lfsr import LFSR
from repro.rng.mt19937 import MT19937
from repro.util.errors import ConfigError


def generator_state(rng: np.random.Generator) -> dict:
    """Deep-copied state snapshot of a :class:`numpy.random.Generator`.

    The snapshot is plain picklable data (NumPy's own bit-generator
    state dict), so it can ride inside checkpoint files; restore it with
    :func:`set_generator_state` for a bit-exact continuation.
    """
    return copy.deepcopy(rng.bit_generator.state)


def set_generator_state(rng: np.random.Generator, state: dict) -> None:
    """Restore a :func:`generator_state` snapshot onto ``rng``."""
    rng.bit_generator.state = copy.deepcopy(state)


def _check_out(count: int, out: np.ndarray) -> None:
    if out.shape != (count,):
        raise ConfigError(
            f"uniforms out buffer must have shape ({count},), got {out.shape}"
        )


class BitSource(Protocol):
    """Protocol for uniform-variate producers."""

    def uniforms(self, count: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        """Return ``count`` floats in [0, 1), filling ``out`` if given.

        The buffered call draws the identical variates in the identical
        order as the allocating one — same generator state afterwards.
        """
        ...

    def getstate(self) -> dict:
        """Picklable snapshot of the full generator state."""
        ...

    def setstate(self, state: dict) -> None:
        """Restore a :meth:`getstate` snapshot; bit-exact continuation."""
        ...


class NumpyBitSource:
    """Ideal uniform source backed by :class:`numpy.random.Generator`."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def uniforms(self, count: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        if out is None:
            return self._rng.random(count)
        _check_out(count, out)
        self._rng.random(out=out)
        return out

    def getstate(self) -> dict:
        return {"kind": "numpy", "state": generator_state(self._rng)}

    def setstate(self, state: dict) -> None:
        if state.get("kind") != "numpy":
            raise ConfigError(f"not a NumpyBitSource state snapshot: {state!r}")
        set_generator_state(self._rng, state["state"])


class LFSRBitSource:
    """Uniform source built from a :class:`repro.rng.LFSR`."""

    def __init__(self, lfsr: LFSR, bits_per_word: int = 19):
        self._lfsr = lfsr
        self._bits_per_word = bits_per_word

    def uniforms(self, count: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        if out is not None:
            _check_out(count, out)
        return self._lfsr.uniforms(count, self._bits_per_word, out=out)

    def getstate(self) -> dict:
        return self._lfsr.getstate()

    def setstate(self, state: dict) -> None:
        self._lfsr.setstate(state)


class MTBitSource:
    """Uniform source built from the from-scratch :class:`MT19937`."""

    def __init__(self, mt: MT19937):
        self._mt = mt

    def uniforms(self, count: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        if out is not None:
            _check_out(count, out)
        return self._mt.uniforms(count, out=out)

    def getstate(self) -> dict:
        return self._mt.getstate()

    def setstate(self, state: dict) -> None:
        self._mt.setstate(state)


def uniform_from_bits(words: np.ndarray, bits: int) -> np.ndarray:
    """Map integer ``words`` with ``bits`` of entropy onto [0, 1)."""
    return np.asarray(words, dtype=np.float64) / float(1 << bits)
