"""Uniform-variate sources shared by sampler backends.

A :class:`BitSource` is anything that can produce a vector of floats in
[0, 1).  The NumPy generator is the default (and models an ideal true
RNG such as the RSU's RET entropy or Intel's DRNG); the LFSR and
MT19937 wrappers expose the pseudo-RNG baselines through the same
protocol so the inverse-CDF sampler can run on any of them.
"""

from __future__ import annotations

from typing import Protocol

import numpy as np

from repro.rng.lfsr import LFSR
from repro.rng.mt19937 import MT19937


class BitSource(Protocol):
    """Protocol for uniform-variate producers."""

    def uniforms(self, count: int) -> np.ndarray:
        """Return ``count`` floats in the half-open interval [0, 1)."""
        ...


class NumpyBitSource:
    """Ideal uniform source backed by :class:`numpy.random.Generator`."""

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def uniforms(self, count: int) -> np.ndarray:
        return self._rng.random(count)


class LFSRBitSource:
    """Uniform source built from a :class:`repro.rng.LFSR`."""

    def __init__(self, lfsr: LFSR, bits_per_word: int = 19):
        self._lfsr = lfsr
        self._bits_per_word = bits_per_word

    def uniforms(self, count: int) -> np.ndarray:
        return self._lfsr.uniforms(count, self._bits_per_word)


class MTBitSource:
    """Uniform source built from the from-scratch :class:`MT19937`."""

    def __init__(self, mt: MT19937):
        self._mt = mt

    def uniforms(self, count: int) -> np.ndarray:
        return self._mt.uniforms(count)


def uniform_from_bits(words: np.ndarray, bits: int) -> np.ndarray:
    """Map integer ``words`` with ``bits`` of entropy onto [0, 1)."""
    return np.asarray(words, dtype=np.float64) / float(1 << bits)
