"""Discrete RSU-G accelerator model (paper Sec. II-C).

The prior work's discrete accelerator packs 336 RSU-G units behind a
336 GB/s memory system and reports 21x / 54x speedups for image
segmentation (5 labels) and motion estimation (49 labels).  This model
reproduces that roofline: the accelerator is either sampling-throughput
bound (units x 1 label/cycle) or memory-bandwidth bound (each variable
update moves its neighbourhood labels and unary row).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.hw.area_power import new_rsu_breakdown
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class AcceleratorModel:
    """A discrete accelerator built from RSU-G units."""

    units: int = 336
    frequency_hz: float = 1.0e9
    memory_bandwidth_bytes: float = 336.0e9
    #: Bytes moved per variable update: packed neighbour labels, the
    #: variable's unary entries and the writeback.  Calibrated so the
    #: 5-label segmentation speedup lands near the prior work's 21x.
    bytes_per_variable_base: float = 48.0
    bytes_per_label: float = 1.5

    def __post_init__(self):
        if self.units < 1:
            raise ConfigError(f"units must be >= 1, got {self.units}")
        if self.frequency_hz <= 0 or self.memory_bandwidth_bytes <= 0:
            raise ConfigError("frequency and bandwidth must be positive")

    def sampling_time(self, variables: int, labels: int, iterations: int) -> float:
        """Seconds if limited only by aggregate sampling throughput."""
        evaluations = float(variables) * labels * iterations
        return evaluations / (self.units * self.frequency_hz)

    def memory_time(self, variables: int, labels: int, iterations: int) -> float:
        """Seconds if limited only by memory bandwidth."""
        bytes_moved = (
            float(variables)
            * iterations
            * (self.bytes_per_variable_base + self.bytes_per_label * labels)
        )
        return bytes_moved / self.memory_bandwidth_bytes

    def solve_time(self, variables: int, labels: int, iterations: int) -> float:
        """Roofline: the binding constraint decides."""
        if variables < 1 or labels < 1 or iterations < 1:
            raise ConfigError("variables, labels and iterations must be >= 1")
        return max(
            self.sampling_time(variables, labels, iterations),
            self.memory_time(variables, labels, iterations),
        )

    def is_memory_bound(self, variables: int, labels: int, iterations: int) -> bool:
        """True when the memory system, not the units, limits throughput."""
        return self.memory_time(variables, labels, iterations) > self.sampling_time(
            variables, labels, iterations
        )

    def total_area_mm2(self) -> float:
        """Total RSU-G silicon area of the array (mm^2)."""
        per_unit = new_rsu_breakdown()["RSU Total"].area_um2
        return self.units * per_unit / 1e6

    def total_power_w(self) -> float:
        """Total RSU-G power of the array (W)."""
        per_unit = new_rsu_breakdown()["RSU Total"].power_mw
        return self.units * per_unit / 1e3


def speedup_vs_gpu(
    variables: int,
    labels: int,
    iterations: int = 100,
    accelerator: AcceleratorModel = AcceleratorModel(),
) -> float:
    """Accelerator speedup over the GPU baseline of :mod:`repro.hw.perf`.

    Reproduces the shape of the prior work's 21x (few labels) to 54x
    (many labels) discrete-accelerator results.
    """
    from repro.hw.perf import GPUModel

    gpu_time = GPUModel().solve_time(variables, labels, iterations, "float")
    return gpu_time / accelerator.solve_time(variables, labels, iterations)
