"""Pure-CMOS alternative sampling-unit area models (Table IV).

An alternative sampling unit replaces the RET stage with an RNG plus a
CDF LUT (see :mod:`repro.core.cdf_sampler` for the functional model).
Area constants are calibrated to Table IV: the mt19937 core scaled to
15 nm, the per-unit sampling base (energy calculation, CDF LUT and
comparator), the 19-bit LFSR, and the AES-256 stage of Intel's DRNG.
Sharing amortizes the RNG core over ``n`` sampling units:
``area(n) = base + rng_interface + rng_core / n``.
"""

from __future__ import annotations

from typing import Dict

from repro.hw.area_power import rsu_area_with_sharing
from repro.util.errors import ConfigError

#: Per-unit pseudo-RNG sampling base: energy calc + CDF LUT + comparator.
PSEUDO_SAMPLING_BASE_UM2 = 2096.0
#: Buffering/interface overhead for distributing shared mt19937 words.
MT19937_INTERFACE_UM2 = 157.0
#: mt19937 core (Watanabe & Abe VLSI, scaled 2005 process -> 15 nm).
MT19937_CORE_UM2 = 17016.0
#: 19-bit LFSR: 19 flip-flops plus feedback XORs.
LFSR19_UM2 = 90.0
#: AES-256 stage of the Intel DRNG (one of its three stages); one DRNG
#: supports only one sampling unit given its throughput.
INTEL_DRNG_PART_UM2 = 3721.0


def mt19937_unit_area(share: int) -> float:
    """Per-unit area with one mt19937 core shared by ``share`` units."""
    if share < 1:
        raise ConfigError(f"share must be >= 1, got {share}")
    return PSEUDO_SAMPLING_BASE_UM2 + MT19937_INTERFACE_UM2 + MT19937_CORE_UM2 / share


def lfsr_unit_area() -> float:
    """Per-unit area of the 19-bit LFSR design (not worth sharing)."""
    return PSEUDO_SAMPLING_BASE_UM2 + LFSR19_UM2


def drng_unit_area() -> float:
    """Per-unit area charged for the Intel DRNG alternative (AES part only)."""
    return INTEL_DRNG_PART_UM2


def table4_areas() -> Dict[str, float]:
    """All Table IV rows (um^2), true-RNG and pseudo-RNG designs."""
    return {
        "RSUG_noshare": rsu_area_with_sharing("noshare"),
        "RSUG_4share": rsu_area_with_sharing("4share"),
        "RSUG_optimistic": rsu_area_with_sharing("optimistic"),
        "Intel DRNG (part)": drng_unit_area(),
        "19-bit LFSR": lfsr_unit_area(),
        "mt19937_noshare": mt19937_unit_area(1),
        "mt19937_4share": mt19937_unit_area(4),
        "mt19937_208share": mt19937_unit_area(208),
    }
