"""System-level model: mapping an MRF grid onto an array of RSU-Gs.

The accelerator of :mod:`repro.hw.accelerator` is a roofline; this
module models the *schedule*: the checkerboard constraint partitions
each sweep into two batches of conditionally independent variables,
which are striped across the unit array.  It accounts for

* per-batch unit utilization (a batch of B variables on U units takes
  ``ceil(B / U)`` variable slots);
* per-variable pipeline occupancy (M cycles at one label/cycle plus the
  fill latency once per batch);
* double-buffered memory transfers overlapped with compute, going
  serial when the bandwidth cannot keep up.

Output: cycles per sweep and per full solve, utilization, and the
binding bottleneck — the level of detail needed to size an array for a
target frame rate.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict

from repro.core.params import RSUConfig, new_design_config
from repro.core.pipeline import new_variable_latency
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class ArrayConfig:
    """An RSU-G array and its memory system."""

    units: int = 336
    frequency_hz: float = 1.0e9
    memory_bandwidth_bytes: float = 336.0e9
    bytes_per_variable: float = 24.0

    def __post_init__(self):
        if self.units < 1:
            raise ConfigError(f"units must be >= 1, got {self.units}")
        if self.frequency_hz <= 0 or self.memory_bandwidth_bytes <= 0:
            raise ConfigError("frequency and bandwidth must be positive")
        if self.bytes_per_variable <= 0:
            raise ConfigError("bytes_per_variable must be positive")


@dataclass(frozen=True)
class SweepTiming:
    """Timing of one checkerboard sweep on the array."""

    compute_cycles: int
    memory_cycles: int
    total_cycles: int
    utilization: float
    bottleneck: str


def sweep_timing(
    height: int,
    width: int,
    labels: int,
    array: ArrayConfig = ArrayConfig(),
    config: RSUConfig = None,
) -> SweepTiming:
    """Cycles for one full sweep (both colour classes).

    Each colour class holds about half the pixels; the class's
    variables stream through the units in waves of ``units`` at a time.
    A unit processes its wave's variable in ``M`` cycles (steady state),
    with one pipeline fill per wave boundary; memory supplies
    ``bytes_per_variable`` per variable, double-buffered against
    compute.
    """
    if height < 1 or width < 1 or labels < 1:
        raise ConfigError("height, width and labels must be >= 1")
    if config is None:
        config = new_design_config()
    fill = new_variable_latency(labels, config) - labels
    total_compute = 0
    total_memory_cycles = 0
    pixels = height * width
    class_sizes = [(pixels + 1) // 2, pixels // 2]
    array_units = array.units
    bytes_per_cycle = array.memory_bandwidth_bytes / array.frequency_hz
    for size in class_sizes:
        waves = math.ceil(size / array_units)
        # Units in a wave run concurrently; a wave takes M cycles, plus
        # the fill once per colour class (the pipeline stays primed
        # between waves of the same class).
        compute = fill + waves * labels
        memory = math.ceil(size * array.bytes_per_variable / bytes_per_cycle)
        total_compute += compute
        total_memory_cycles += memory
    total = max(total_compute, total_memory_cycles)
    ideal = pixels * labels / array_units
    utilization = min(1.0, ideal / total)
    bottleneck = "memory" if total_memory_cycles > total_compute else "compute"
    return SweepTiming(
        compute_cycles=total_compute,
        memory_cycles=total_memory_cycles,
        total_cycles=total,
        utilization=utilization,
        bottleneck=bottleneck,
    )


def solve_time_seconds(
    height: int,
    width: int,
    labels: int,
    iterations: int,
    array: ArrayConfig = ArrayConfig(),
    config: RSUConfig = None,
) -> float:
    """Wall-clock seconds for a full MCMC solve on the array."""
    if iterations < 1:
        raise ConfigError(f"iterations must be >= 1, got {iterations}")
    timing = sweep_timing(height, width, labels, array, config)
    return iterations * timing.total_cycles / array.frequency_hz


def expected_attempts(transient_rate: float, max_retries: int) -> float:
    """Mean EVALUATE issues per variable under per-attempt failures.

    A variable whose evaluation fails with probability ``r`` per attempt
    is retried up to ``max_retries`` times, so it issues
    ``1 + r + r^2 + ... + r^k`` attempts in expectation — the compute
    inflation a transiently faulty array pays for retry-based recovery.
    """
    if not 0.0 <= transient_rate < 1.0:
        raise ConfigError(
            f"transient_rate must be in [0, 1), got {transient_rate}"
        )
    if max_retries < 0:
        raise ConfigError(f"max_retries must be >= 0, got {max_retries}")
    return sum(transient_rate**k for k in range(max_retries + 1))


def degraded_units(array: ArrayConfig, quarantined: int, spare_units: int = 0) -> int:
    """Units left in the schedule after quarantine-and-remap.

    The first ``spare_units`` quarantined units are replaced one-for-one
    by spares (no throughput loss); further quarantines shrink the
    active array.  Raises once no unit is left — the performance-model
    counterpart of the driver's fall-back-to-software condition.
    """
    if quarantined < 0 or spare_units < 0:
        raise ConfigError("quarantined and spare_units must be >= 0")
    remaining = array.units - max(0, quarantined - spare_units)
    if remaining < 1:
        raise ConfigError(
            f"{quarantined} quarantined units exhaust the array of "
            f"{array.units} (+{spare_units} spares)"
        )
    return remaining


def degraded_sweep_timing(
    height: int,
    width: int,
    labels: int,
    array: ArrayConfig = ArrayConfig(),
    config: RSUConfig = None,
    quarantined: int = 0,
    spare_units: int = 0,
    transient_rate: float = 0.0,
    max_retries: int = 4,
) -> SweepTiming:
    """Sweep timing of a degraded array running resilient execution.

    Composes :func:`sweep_timing` on the post-quarantine unit count with
    the retry inflation of :func:`expected_attempts`: retried variables
    re-enter the schedule, stretching compute (and their memory refetch)
    by the expected attempt count.
    """
    remaining = degraded_units(array, quarantined, spare_units)
    effective = ArrayConfig(
        units=remaining,
        frequency_hz=array.frequency_hz,
        memory_bandwidth_bytes=array.memory_bandwidth_bytes,
        bytes_per_variable=array.bytes_per_variable,
    )
    base = sweep_timing(height, width, labels, effective, config)
    attempts = expected_attempts(transient_rate, max_retries)
    compute = math.ceil(base.compute_cycles * attempts)
    memory = math.ceil(base.memory_cycles * attempts)
    total = max(compute, memory)
    # Retries are wasted slots: useful work stays what the clean sweep
    # needed, so utilization falls as cycles inflate.
    utilization = min(1.0, base.utilization * base.total_cycles / total)
    return SweepTiming(
        compute_cycles=compute,
        memory_cycles=memory,
        total_cycles=total,
        utilization=utilization,
        bottleneck="memory" if memory > compute else "compute",
    )


def size_array_for_rate(
    height: int,
    width: int,
    labels: int,
    iterations: int,
    target_seconds: float,
    array: ArrayConfig = ArrayConfig(),
    max_units: int = 16_384,
) -> Dict[str, float]:
    """Smallest unit count meeting a latency target (or the memory wall).

    Returns the chosen unit count, the achieved time, and whether the
    target is reachable at all under the array's memory bandwidth.
    """
    if target_seconds <= 0:
        raise ConfigError("target_seconds must be positive")
    low, high = 1, max_units
    best = None
    while low <= high:
        mid = (low + high) // 2
        candidate = ArrayConfig(
            units=mid,
            frequency_hz=array.frequency_hz,
            memory_bandwidth_bytes=array.memory_bandwidth_bytes,
            bytes_per_variable=array.bytes_per_variable,
        )
        achieved = solve_time_seconds(height, width, labels, iterations, candidate)
        if achieved <= target_seconds:
            best = (mid, achieved)
            high = mid - 1
        else:
            low = mid + 1
    if best is None:
        floor_time = solve_time_seconds(
            height, width, labels, iterations,
            ArrayConfig(
                units=max_units,
                frequency_hz=array.frequency_hz,
                memory_bandwidth_bytes=array.memory_bandwidth_bytes,
                bytes_per_variable=array.bytes_per_variable,
            ),
        )
        return {"feasible": False, "units": float(max_units), "achieved_s": floor_time}
    return {"feasible": True, "units": float(best[0]), "achieved_s": best[1]}
