"""Physical calibration: design parameters to device quantities.

Maps an :class:`~repro.core.params.RSUConfig` onto physical units using
the paper's stated operating point — a 1 GHz pipeline clock with an 8x
clock multiplier reading the SPAD through a shift register, giving a
125 ps unit time bin (Sec. IV-B.5) — and the RET physics: the decay
rate of an ensemble scales with chromophore concentration, so the four
networks on a waveguide at 1x/2x/4x/8x concentration realize the 2^n
code set.

Checks the model exposes:

* bin duration and detection-window length in seconds;
* the base decay rate lambda0 in Hz each code multiplies;
* the fluorescence-photon budget per evaluation (how many photons the
  QDLED pulse must yield for the SPAD to see the first one);
* feasibility guards (bins no finer than the paper's 125 ps, rates
  within what RET ensembles reach).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.params import RSUConfig
from repro.core.pipeline import BINS_PER_CYCLE
from repro.util.errors import ConfigError

#: The paper's pipeline clock.
DEFAULT_CLOCK_HZ = 1.0e9
#: Finest practical bin (1 GHz x 8 multiplier): 125 ps (Sec. IV-B.5).
MIN_BIN_SECONDS = 125e-12
#: RET ensemble decay rates demonstrated in the enabling work span
#: roughly MHz..10 GHz depending on concentration and chromophore.
MAX_DECAY_RATE_HZ = 2.0e10


@dataclass(frozen=True)
class PhysicalOperatingPoint:
    """Physical realization of one design point."""

    clock_hz: float
    bin_seconds: float
    window_seconds: float
    lambda0_hz: float
    concentrations: tuple
    max_decay_rate_hz: float

    @property
    def window_bins(self) -> int:
        """Number of unit bins in the detection window."""
        return round(self.window_seconds / self.bin_seconds)


def operating_point(
    config: RSUConfig, clock_hz: float = DEFAULT_CLOCK_HZ
) -> PhysicalOperatingPoint:
    """Physical quantities of a design point at a given clock."""
    if clock_hz <= 0:
        raise ConfigError(f"clock_hz must be positive, got {clock_hz}")
    bin_seconds = 1.0 / (clock_hz * BINS_PER_CYCLE)
    if bin_seconds < MIN_BIN_SECONDS - 1e-18:
        raise ConfigError(
            f"bin of {bin_seconds * 1e12:.0f} ps is below the practical "
            f"{MIN_BIN_SECONDS * 1e12:.0f} ps limit (clock multipliers)"
        )
    window_seconds = config.time_bins * bin_seconds
    lambda0_hz = config.lambda0_per_bin / bin_seconds
    concentrations = tuple(
        1 << exponent for exponent in range(config.unique_lambdas)
    )
    top_rate = lambda0_hz * concentrations[-1]
    if top_rate > MAX_DECAY_RATE_HZ:
        raise ConfigError(
            f"peak decay rate {top_rate:.2e} Hz exceeds what RET ensembles "
            f"reach ({MAX_DECAY_RATE_HZ:.0e} Hz); lower the clock or "
            f"raise Truncation"
        )
    return PhysicalOperatingPoint(
        clock_hz=clock_hz,
        bin_seconds=bin_seconds,
        window_seconds=window_seconds,
        lambda0_hz=lambda0_hz,
        concentrations=concentrations,
        max_decay_rate_hz=top_rate,
    )


def photon_budget(config: RSUConfig, detection_efficiency: float = 0.25) -> float:
    """Expected excited chromophores needed per evaluation.

    The SPAD must detect the *first* fluorescence photon; with detector
    efficiency ``eta`` the ensemble needs on the order of ``1 / eta``
    emitted photons for a reliable first-photon timestamp, independent
    of the decay rate (the rate shapes *when*, not *whether*).
    """
    if not 0 < detection_efficiency <= 1:
        raise ConfigError(
            f"detection_efficiency must be in (0, 1], got {detection_efficiency}"
        )
    # One extra factor covers evaluations truncated at the window edge:
    # the network must still have been excited even though no photon was
    # counted in time.
    miss = config.truncation
    return (1.0 / detection_efficiency) / max(1e-12, 1.0 - miss)


def summarize(config: RSUConfig, clock_hz: float = DEFAULT_CLOCK_HZ) -> Dict[str, float]:
    """Human-oriented physical summary of a design point."""
    point = operating_point(config, clock_hz)
    return {
        "clock_ghz": point.clock_hz / 1e9,
        "bin_ps": point.bin_seconds * 1e12,
        "window_ns": point.window_seconds * 1e9,
        "lambda0_mhz": point.lambda0_hz / 1e6,
        "peak_rate_ghz": point.max_decay_rate_hz / 1e9,
        "concentrations": len(point.concentrations),
        "photons_per_eval": photon_budget(config),
        "mean_ttf_ns_at_lambda0": 1e9 / point.lambda0_hz,
    }
