"""Sampling energy efficiency: power, entropy rate, and energy/sample.

Reproduces the paper's efficiency comparison against the Intel DRNG
(Sec. II-C: the RSU-G "only consumes 13% of the power in similar area"
while producing 2.89 Gb/s against the DRNG's 6.4 Gb/s): each design's
power, entropy throughput, pJ per sample and mW per Gb/s, from the
area/power models plus the entropy model.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict

from repro.core.entropy import entropy_rate_gbps
from repro.core.params import RSUConfig, legacy_design_config, new_design_config
from repro.hw.area_power import legacy_rsu_breakdown, new_rsu_breakdown
from repro.util.errors import ConfigError

#: Intel DRNG reference point (Sec. II-C and [22]).
INTEL_DRNG_GBPS = 6.4
#: Power such that the legacy RSU-G's 3.91 mW is 13% of it.
INTEL_DRNG_MW = 3.91 / 0.13


@dataclass(frozen=True)
class EfficiencyRow:
    """One design's sampling-efficiency figures."""

    name: str
    power_mw: float
    entropy_gbps: float
    samples_per_second: float

    def __post_init__(self):
        if self.power_mw <= 0 or self.entropy_gbps <= 0:
            raise ConfigError("power and entropy rate must be positive")

    @property
    def mw_per_gbps(self) -> float:
        """Power per unit entropy throughput."""
        return self.power_mw / self.entropy_gbps

    @property
    def pj_per_sample(self) -> float:
        """Energy per drawn sample in picojoules."""
        return self.power_mw * 1e-3 / self.samples_per_second * 1e12


def rsu_efficiency(
    config: RSUConfig = None, legacy: bool = False, frequency_hz: float = 1.0e9
) -> EfficiencyRow:
    """Efficiency of an RSU-G design at one sample per cycle."""
    if config is None:
        config = legacy_design_config() if legacy else new_design_config()
    breakdown = legacy_rsu_breakdown() if legacy else new_rsu_breakdown()
    power = breakdown["RSU Total"].power_mw
    entropy = entropy_rate_gbps(config, code=1, frequency_hz=frequency_hz)
    return EfficiencyRow(
        name="prev RSU-G" if legacy else "new RSU-G",
        power_mw=power,
        entropy_gbps=entropy,
        samples_per_second=frequency_hz,
    )


def drng_efficiency() -> EfficiencyRow:
    """The Intel DRNG reference row (32-bit outputs at 6.4 Gb/s)."""
    return EfficiencyRow(
        name="Intel DRNG",
        power_mw=INTEL_DRNG_MW,
        entropy_gbps=INTEL_DRNG_GBPS,
        samples_per_second=INTEL_DRNG_GBPS * 1e9 / 32.0,
    )


def efficiency_table(frequency_hz: float = 1.0e9) -> Dict[str, EfficiencyRow]:
    """All rows keyed by design name."""
    rows = [
        rsu_efficiency(legacy=False, frequency_hz=frequency_hz),
        rsu_efficiency(legacy=True, frequency_hz=frequency_hz),
        drng_efficiency(),
    ]
    return {row.name: row for row in rows}


def power_fraction_vs_drng(legacy: bool = True) -> float:
    """The paper's 13% headline (previous design vs the DRNG)."""
    rsu = rsu_efficiency(legacy=legacy)
    return rsu.power_mw / INTEL_DRNG_MW
