"""Analytical performance model for Table II (stereo execution time).

The paper measures a best-effort GPU implementation against the same
GPU augmented with RSU-Gs.  Offline we model both analytically:

* **GPU baseline** — every pixel-label evaluation costs the energy
  computation plus the expensive sample generation (the paper quotes
  600-800 cycles for library samplers); the GPU supplies
  ``cores * frequency`` cycles/s derated by an occupancy factor that
  saturates with image size (small images underutilize the GPU, which
  is visible in the paper's SD-vs-HD scaling).
* **RSU-augmented GPU** — sampling and energy evaluation move into the
  RSU-Gs at one label per cycle per unit; the GPU retains per-pixel
  staging work (neighbour gathers, input packing, writeback).

Constants are calibrated to the paper's SD column; EXPERIMENTS.md
records the deviation on the HD column (the model is conservative for
the RSU at HD).  The *shape* — the RSU-G wins everywhere, with larger
gains at higher label counts — is what the model reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.util.errors import ConfigError

#: Iterations assumed per stereo solve (the paper does not state its
#: Table II iteration count; 100 reproduces the magnitudes).
DEFAULT_ITERATIONS = 100


@dataclass(frozen=True)
class GPUModel:
    """Throughput model of the baseline GPU."""

    cores: int = 2048
    frequency_hz: float = 1.0e9
    half_utilization_pixels: float = 86_000.0
    sample_cycles: float = 700.0
    energy_cycles: float = 80.0
    int8_speedup: float = 1.11  # int8 energy+sampling runs ~10% faster

    def utilization(self, pixels: int) -> float:
        """Occupancy factor in (0, 1), saturating with image size."""
        if pixels < 1:
            raise ConfigError(f"pixels must be >= 1, got {pixels}")
        return pixels / (pixels + self.half_utilization_pixels)

    def cycles_per_second(self, pixels: int) -> float:
        """Effective delivered cycles/s at a given image size."""
        return self.cores * self.frequency_hz * self.utilization(pixels)

    def solve_time(
        self, pixels: int, labels: int, iterations: int, precision: str = "float"
    ) -> float:
        """Seconds for an MCMC stereo solve on the GPU alone."""
        if precision not in ("float", "int8"):
            raise ConfigError(f"precision must be 'float' or 'int8', got {precision!r}")
        per_label = self.sample_cycles + self.energy_cycles
        cycles = iterations * pixels * labels * per_label
        if precision == "int8":
            cycles /= self.int8_speedup
        return cycles / self.cycles_per_second(pixels)


@dataclass(frozen=True)
class RSUAugmentedModel:
    """Model of the GPU augmented with RSU-G units."""

    gpu: GPUModel = GPUModel()
    effective_units: int = 12
    rsu_frequency_hz: float = 1.0e9
    staging_cycles_per_pixel: float = 1800.0
    #: Steady-state label evaluations per cycle per unit.  1.0 is the
    #: design target (Question 3); pass a measured value — e.g.
    #: ``CycleCountingBackend.measured_throughput()`` from a structural
    #: machine-in-the-loop solve — to ground the model in simulation.
    labels_per_cycle: float = 1.0

    def solve_time(self, pixels: int, labels: int, iterations: int) -> float:
        """Seconds for the same solve with sampling offloaded to RSU-Gs."""
        if not 0 < self.labels_per_cycle <= 1.0:
            raise ConfigError(
                f"labels_per_cycle must be in (0, 1], got {self.labels_per_cycle}"
            )
        staging = (
            iterations * pixels * self.staging_cycles_per_pixel
        ) / self.gpu.cycles_per_second(pixels)
        sampling = (iterations * pixels * labels) / (
            self.effective_units * self.rsu_frequency_hz * self.labels_per_cycle
        )
        return staging + sampling


#: The Table II configurations: (name, (height, width), labels).
TABLE2_CONFIGS: Tuple[tuple, ...] = (
    ("320x320 SD, 10-label", (320, 320), 10),
    ("320x320 SD, 64-label", (320, 320), 64),
    ("1920x1080 HD, 10-label", (1080, 1920), 10),
    ("1920x1080 HD, 64-label", (1080, 1920), 64),
)

#: The paper's measured values for side-by-side reporting (seconds).
PAPER_TABLE2: Dict[str, Dict[str, float]] = {
    "320x320 SD, 10-label": {"GPU_float": 0.078, "GPU_int8": 0.070, "RSUG_aug": 0.025},
    "320x320 SD, 64-label": {"GPU_float": 0.401, "GPU_int8": 0.378, "RSUG_aug": 0.071},
    "1920x1080 HD, 10-label": {"GPU_float": 0.894, "GPU_int8": 0.784, "RSUG_aug": 0.220},
    "1920x1080 HD, 64-label": {"GPU_float": 6.522, "GPU_int8": 5.870, "RSUG_aug": 1.067},
}


def table2_model(
    iterations: int = DEFAULT_ITERATIONS,
    gpu: GPUModel = GPUModel(),
    rsu: RSUAugmentedModel = None,
) -> Dict[str, Dict[str, float]]:
    """Modeled Table II: execution times and speedups per configuration."""
    if iterations < 1:
        raise ConfigError(f"iterations must be >= 1, got {iterations}")
    if rsu is None:
        rsu = RSUAugmentedModel(gpu=gpu)
    table = {}
    for name, (height, width), labels in TABLE2_CONFIGS:
        pixels = height * width
        t_float = gpu.solve_time(pixels, labels, iterations, "float")
        t_int8 = gpu.solve_time(pixels, labels, iterations, "int8")
        t_rsu = rsu.solve_time(pixels, labels, iterations)
        table[name] = {
            "GPU_float": t_float,
            "GPU_int8": t_int8,
            "RSUG_aug": t_rsu,
            "Speedup_flt": t_float / t_rsu,
            "Speedup_int8": t_int8 / t_rsu,
        }
    return table
