"""Optical and CMOS component area/power models.

First-principles-style constants calibrated so the compositions
reproduce the paper's published totals (Table III, and the ratios
quoted in Sec. IV-C: the new RET circuit is 0.7x area / 0.5x power of
the previous one, the new RSU is 1.27x power at equal area, the
comparison-based converter is 0.46x area / 0.22x power of the LUT).
Every constant is documented; EXPERIMENTS.md records where computed
values deviate from the paper.

The new RET circuit (Fig. 11) contains one light-source set — 8 QDLEDs
each driving a waveguide coupled to 4 RET networks of 1x/2x/4x/8x
concentration — plus per-unit detection: 32 SPADs, a 32-to-1 MUX and
the QDLED counter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.params import RSUConfig
from repro.core.pipeline import ret_circuit_replicas, ret_network_replicas
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class ComponentCost:
    """Area (um^2) and power (mW) of one block."""

    name: str
    area_um2: float
    power_mw: float

    def __post_init__(self):
        if self.area_um2 < 0 or self.power_mw < 0:
            raise ConfigError(f"negative cost for {self.name}")

    def scaled(self, count: float) -> "ComponentCost":
        """Cost of ``count`` instances."""
        if count < 0:
            raise ConfigError(f"count must be >= 0, got {count}")
        return ComponentCost(self.name, self.area_um2 * count, self.power_mw * count)


# --- Optical device unit costs (per instance) -------------------------------
#: Quantum-dot LED, fixed drive (no intensity control).
QDLED = ComponentCost("qdled", area_um2=60.0, power_mw=0.004)
#: Straight waveguide segment, pitch equal to half a QDLED width.
WAVEGUIDE = ComponentCost("waveguide", area_um2=20.0, power_mw=0.0)
#: One RET-network ensemble spot on a waveguide.
RET_NETWORK = ComponentCost("ret_network", area_um2=5.0, power_mw=0.0)
#: Single-photon avalanche detector.
SPAD = ComponentCost("spad", area_um2=9.0, power_mw=0.001)
#: SPAD-select MUX plus the QDLED counter.
SELECT_LOGIC = ComponentCost("select_logic", area_um2=32.0, power_mw=0.016)

# --- Legacy optical costs ----------------------------------------------------
#: Intensity-controlled QDLED bank of the previous design: one QDLED per
#: intensity level (2**(Lambda_bits-1) with the default 4-bit code), per
#: RET-circuit replica, plus drive logic.  Calibrated so the previous
#: RET circuit is 1600 um^2 / 0.16 mW (the paper's 0.7x / 0.5x ratios).
LEGACY_RET_CIRCUIT = ComponentCost("legacy_ret_circuit", area_um2=1600.0, power_mw=0.16)


def new_ret_circuit(config: RSUConfig = None) -> dict:
    """Component inventory of the new design's RET circuit.

    Returns a dict of :class:`ComponentCost` split into the shareable
    light-source set (QDLEDs, waveguides, RET networks) and the
    per-unit detection logic (SPADs, MUX, counter) — the split Table IV
    amortizes across sharing RSU-Gs.
    """
    if config is None:
        from repro.core.params import new_design_config

        config = new_design_config()
    n_waveguides = ret_network_replicas(config)  # 8 at Truncation=0.5
    n_concentrations = config.unique_lambdas  # 4 at Lambda_bits=4
    n_networks = n_waveguides * n_concentrations
    light = {
        "qdleds": QDLED.scaled(n_waveguides),
        "waveguides": WAVEGUIDE.scaled(n_waveguides),
        "ret_networks": RET_NETWORK.scaled(n_networks),
    }
    detection = {
        "spads": SPAD.scaled(n_networks),
        "select_logic": SELECT_LOGIC,
    }
    return {"light_source": light, "detection": detection}


def ret_circuit_totals(config: RSUConfig = None) -> ComponentCost:
    """Total new RET-circuit cost (paper: 1120 um^2, 0.08 mW)."""
    inventory = new_ret_circuit(config)
    area = power = 0.0
    for group in inventory.values():
        for cost in group.values():
            area += cost.area_um2
            power += cost.power_mw
    return ComponentCost("ret_circuit", area, power)


def shareable_light_area(config: RSUConfig = None) -> float:
    """Area of the light-source set a group of RSU-Gs can share."""
    light = new_ret_circuit(config)["light_source"]
    return sum(cost.area_um2 for cost in light.values())


# --- CMOS blocks of the new design (15 nm estimates) -------------------------
#: Energy-computation unit with squared/absolute/binary distance support
#: (the main power increase over the previous design, Sec. IV-C).
ENERGY_UNIT = ComponentCost("energy_unit", area_um2=420.0, power_mw=1.70)
#: Label-energy FIFO decoupling the front and back ends (64 x 8 bits).
ENERGY_FIFO = ComponentCost("energy_fifo", area_um2=260.0, power_mw=0.55)
#: Min-energy tracking registers and the scaling subtractor.
SCALING_LOGIC = ComponentCost("scaling_logic", area_um2=96.0, power_mw=0.24)
#: Comparison-based energy-to-lambda converter with shadow registers for
#: stall-free temperature updates.
BOUNDARY_CONVERTER = ComponentCost("boundary_converter", area_um2=112.0, power_mw=0.30)
#: Clock-multiplied shift registers reading the SPAD outputs (4 replicas).
TIMING_REGISTERS = ComponentCost("timing_registers", area_um2=100.0, power_mw=0.35)
#: First-to-fire selection comparator.
SELECTION = ComponentCost("selection", area_um2=80.0, power_mw=0.25)
#: Architectural interface incl. the 8-bit temperature-update port.
INTERFACE = ComponentCost("interface", area_um2=60.0, power_mw=0.10)

NEW_CMOS_BLOCKS = (
    ENERGY_UNIT,
    ENERGY_FIFO,
    SCALING_LOGIC,
    BOUNDARY_CONVERTER,
    TIMING_REGISTERS,
    SELECTION,
    INTERFACE,
)

#: Label-value LUT supporting the three distance functions (Table III's
#: separate "LUT" row; 64 labels of 6 bits plus decode).
LABEL_LUT = ComponentCost("label_lut", area_um2=655.0, power_mw=1.42)

#: Previous design's CMOS (squared distance only, no FIFO/scaling) plus
#: its energy-to-intensity LUT.  Calibrated so the legacy RSU totals
#: 2903 um^2 / 3.91 mW (Sec. II-C: 0.0029 mm^2, 3.91 mW).
LEGACY_CMOS = ComponentCost("legacy_cmos", area_um2=648.0, power_mw=2.33)
LEGACY_ENERGY_LUT = ComponentCost("legacy_energy_lut", area_um2=655.0, power_mw=1.42)

#: LUT-based energy-to-lambda converter the comparison scheme replaces;
#: the paper reports the comparison design is 0.46x area / 0.22x power.
LUT_CONVERTER = ComponentCost(
    "lut_converter",
    area_um2=BOUNDARY_CONVERTER.area_um2 / 0.46,
    power_mw=BOUNDARY_CONVERTER.power_mw / 0.22,
)


def cmos_totals() -> ComponentCost:
    """Total new-design CMOS circuitry (paper: 1128 um^2, 3.49 mW)."""
    area = sum(block.area_um2 for block in NEW_CMOS_BLOCKS)
    power = sum(block.power_mw for block in NEW_CMOS_BLOCKS)
    return ComponentCost("cmos_circuitry", area, power)


def timing_window_check(config: RSUConfig) -> dict:
    """Replica requirements at a design point (used by ablation benches)."""
    return {
        "ret_circuit_replicas": ret_circuit_replicas(config),
        "ret_network_replicas": ret_network_replicas(config),
    }
