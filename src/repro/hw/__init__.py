"""Hardware models: area, power, performance, and replica math.

Reproduces the paper's hardware evaluation — Table II (performance),
Table III (new RSU-G area/power) and Table IV (area vs alternative RNG
designs) — from documented per-component constants, plus the replica
arithmetic of Sec. IV-B (observation-window and truncation replicas).
"""

from repro.hw.accelerator import AcceleratorModel, speedup_vs_gpu
from repro.hw.calibration import operating_point, photon_budget, summarize
from repro.hw.efficiency import (
    EfficiencyRow,
    drng_efficiency,
    efficiency_table,
    power_fraction_vs_drng,
    rsu_efficiency,
)
from repro.hw.area_power import (
    OPTIMISTIC_CMOS_UNDER_WAVEGUIDE_UM2,
    legacy_rsu_breakdown,
    new_rsu_breakdown,
    power_ratio_new_vs_legacy,
    rsu_area_with_sharing,
)
from repro.hw.components import (
    ComponentCost,
    cmos_totals,
    new_ret_circuit,
    ret_circuit_totals,
    shareable_light_area,
    timing_window_check,
)
from repro.hw.perf import (
    DEFAULT_ITERATIONS,
    PAPER_TABLE2,
    TABLE2_CONFIGS,
    GPUModel,
    RSUAugmentedModel,
    table2_model,
)
from repro.hw.system import (
    ArrayConfig,
    SweepTiming,
    degraded_sweep_timing,
    degraded_units,
    expected_attempts,
    size_array_for_rate,
    solve_time_seconds,
    sweep_timing,
)
from repro.hw.rng_alternatives import (
    drng_unit_area,
    lfsr_unit_area,
    mt19937_unit_area,
    table4_areas,
)

__all__ = [
    "operating_point",
    "photon_budget",
    "summarize",
    "EfficiencyRow",
    "drng_efficiency",
    "efficiency_table",
    "power_fraction_vs_drng",
    "rsu_efficiency",
    "ArrayConfig",
    "SweepTiming",
    "degraded_sweep_timing",
    "degraded_units",
    "expected_attempts",
    "size_array_for_rate",
    "solve_time_seconds",
    "sweep_timing",
    "AcceleratorModel",
    "speedup_vs_gpu",
    "OPTIMISTIC_CMOS_UNDER_WAVEGUIDE_UM2",
    "legacy_rsu_breakdown",
    "new_rsu_breakdown",
    "power_ratio_new_vs_legacy",
    "rsu_area_with_sharing",
    "ComponentCost",
    "cmos_totals",
    "new_ret_circuit",
    "ret_circuit_totals",
    "shareable_light_area",
    "timing_window_check",
    "DEFAULT_ITERATIONS",
    "PAPER_TABLE2",
    "TABLE2_CONFIGS",
    "GPUModel",
    "RSUAugmentedModel",
    "table2_model",
    "drng_unit_area",
    "lfsr_unit_area",
    "mt19937_unit_area",
    "table4_areas",
]
