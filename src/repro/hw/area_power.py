"""RSU-G area/power roll-ups: Table III and the RSU rows of Table IV.

Composes the component models of :mod:`repro.hw.components` into the
paper's reported totals:

* Table III — new RSU-G breakdown: RET circuit 1120 um^2 / 0.08 mW,
  CMOS circuitry 1128 / 3.49, LUT 655 / 1.42, total 2903 / 4.99.
* Table IV RSU rows — noshare 2903, 4share 2303 (light-source set
  amortized by 4), optimistic 1867 (light source fully amortized and
  CMOS partially under the waveguide footprint).
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.core.params import RSUConfig, new_design_config
from repro.hw.components import (
    LABEL_LUT,
    LEGACY_CMOS,
    LEGACY_ENERGY_LUT,
    LEGACY_RET_CIRCUIT,
    ComponentCost,
    cmos_totals,
    ret_circuit_totals,
    shareable_light_area,
)
from repro.util.errors import ConfigError

#: CMOS area that can sit beneath the waveguide footprint in the
#: optimistic layout (calibrated to Table IV's RSUG_optimistic row).
OPTIMISTIC_CMOS_UNDER_WAVEGUIDE_UM2 = 236.0


def new_rsu_breakdown(config: Optional[RSUConfig] = None) -> Dict[str, ComponentCost]:
    """Table III rows for the new design."""
    if config is None:
        config = new_design_config()
    ret = ret_circuit_totals(config)
    cmos = cmos_totals()
    rows = {
        "RET Circuit": ret,
        "CMOS Circuitry": cmos,
        "LUT": LABEL_LUT,
    }
    total_area = sum(cost.area_um2 for cost in rows.values())
    total_power = sum(cost.power_mw for cost in rows.values())
    rows["RSU Total"] = ComponentCost("rsu_total", total_area, total_power)
    return rows


def legacy_rsu_breakdown() -> Dict[str, ComponentCost]:
    """Previous design totals (Sec. II-C: 0.0029 mm^2, 3.91 mW)."""
    rows = {
        "RET Circuit": LEGACY_RET_CIRCUIT,
        "CMOS Circuitry": LEGACY_CMOS,
        "LUT": LEGACY_ENERGY_LUT,
    }
    total_area = sum(cost.area_um2 for cost in rows.values())
    total_power = sum(cost.power_mw for cost in rows.values())
    rows["RSU Total"] = ComponentCost("rsu_total", total_area, total_power)
    return rows


def power_ratio_new_vs_legacy() -> float:
    """The headline 1.27x power figure."""
    new = new_rsu_breakdown()["RSU Total"].power_mw
    legacy = legacy_rsu_breakdown()["RSU Total"].power_mw
    return new / legacy


def rsu_area_with_sharing(sharing: str, config: Optional[RSUConfig] = None) -> float:
    """Per-unit RSU-G area under a light-source sharing scheme (um^2).

    ``noshare``: each RSU-G owns its full RET circuit.
    ``4share``: four RSU-Gs amortize one light-source set.
    ``optimistic``: many RSU-Gs share the light source (amortized area
    negligible) and part of the CMOS resides beneath the waveguides.
    """
    if config is None:
        config = new_design_config()
    total = new_rsu_breakdown(config)["RSU Total"].area_um2
    light = shareable_light_area(config)
    if sharing == "noshare":
        return total
    if sharing == "4share":
        return total - light + light / 4.0
    if sharing == "optimistic":
        return total - light - OPTIMISTIC_CMOS_UNDER_WAVEGUIDE_UM2
    raise ConfigError(
        f"unknown sharing scheme {sharing!r}; expected noshare/4share/optimistic"
    )
