"""``repro-obs`` — offline telemetry trace inspection.

``repro-obs report --trace run.jsonl`` reloads a JSONL trace written by
``rsu-experiments run --telemetry --trace-out run.jsonl`` (or by
:func:`repro.obs.write_jsonl`) and prints the summary table; ``--format
prom`` re-emits it as Prometheus text instead.  The same commands are
reachable as the ``obs`` subcommand of ``rsu-experiments``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.exporters import load_trace, render_report, to_prometheus
from repro.util.errors import ReproError


def add_obs_parser(subparsers) -> None:
    """Attach the ``report`` subcommand to an argparse subparsers object."""
    report = subparsers.add_parser(
        "report", help="summarize a JSONL telemetry trace"
    )
    report.add_argument(
        "--trace", required=True, help="path to a telemetry JSONL trace"
    )
    report.add_argument(
        "--format",
        choices=("table", "prom", "jsonl"),
        default="table",
        help="output format (default: human table)",
    )
    report.set_defaults(obs_command=run_report)


def run_report(args: argparse.Namespace) -> int:
    telemetry = load_trace(args.trace)
    if args.format == "prom":
        sys.stdout.write(to_prometheus(telemetry))
    elif args.format == "jsonl":
        from repro.obs.exporters import to_jsonl

        sys.stdout.write(to_jsonl(telemetry))
    else:
        print(render_report(telemetry))
    return 0


def _main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-obs", description="telemetry trace tools"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)
    add_obs_parser(subparsers)
    args = parser.parse_args(argv)
    return args.obs_command(args)


def main(argv: Optional[List[str]] = None) -> int:
    try:
        return _main(argv)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
