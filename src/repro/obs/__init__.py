"""repro.obs — the unified telemetry subsystem.

Counters, gauges, histogram timers, and nestable spans behind a
process-wide enable switch (:func:`enable` / :func:`use_telemetry`),
plus exporters (JSONL trace, Prometheus text, human report table).
See docs/observability.md for the metric catalogue.
"""

from repro.obs.exporters import (
    derived_metrics,
    load_trace,
    parse_jsonl,
    prometheus_name,
    render_report,
    telemetry_from_events,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.obs.telemetry import (
    DEFAULT_MAX_SPAN_EVENTS,
    SNAPSHOT_VERSION,
    Counter,
    Gauge,
    Histogram,
    SpanEvent,
    Telemetry,
    active,
    disable,
    enable,
    enabled,
    use_telemetry,
)

__all__ = [
    "Counter",
    "DEFAULT_MAX_SPAN_EVENTS",
    "Gauge",
    "Histogram",
    "SNAPSHOT_VERSION",
    "SpanEvent",
    "Telemetry",
    "active",
    "derived_metrics",
    "disable",
    "enable",
    "enabled",
    "load_trace",
    "parse_jsonl",
    "prometheus_name",
    "render_report",
    "telemetry_from_events",
    "to_jsonl",
    "to_prometheus",
    "use_telemetry",
    "write_jsonl",
]
