"""Zero-dependency telemetry core: counters, gauges, histograms, spans.

The measurement plane every hot layer reports into.  A
:class:`Telemetry` instance is a registry of named instruments —

* **counters** — monotonically increasing totals (samples drawn,
  uniforms consumed, cache hits);
* **gauges** — last-written values (current energy, chain count);
* **histograms** — streaming ``count/total/min/max`` summaries of an
  observed quantity (per-sweep acceptance rate, task latency);
* **spans** — nested timed regions recorded against the monotonic
  clock, each closing into a ``span.<name>`` histogram plus a bounded
  ring of :class:`SpanEvent` records for the JSONL trace exporter.

Instrumented code never holds a Telemetry directly; it asks for the
process-wide ambient instance through :func:`active`, which returns
``None`` unless someone called :func:`enable` (or entered
:func:`use_telemetry`).  The disabled path is therefore a single module
read plus an ``is None`` check per instrumentation site — no objects,
no dict lookups, no clock reads — which is what keeps the fused-sweep
and batched-chains hot loops within their 2% overhead bound (the
``telemetry`` lane of ``benchmarks/test_bench_perf.py`` asserts it).

Snapshots are plain JSON-serializable dicts (:meth:`Telemetry.snapshot`)
and merge associatively (:meth:`Telemetry.merge`), so worker processes
can meter independently and the parent can fold their counts into one
run-wide view — the experiment engine does exactly that.
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Deque, Dict, Optional

from repro.util.errors import ConfigError, DataError

#: Snapshot schema version (bump when the dict shape changes).
SNAPSHOT_VERSION = 1

#: Default capacity of the span-event ring buffer.
DEFAULT_MAX_SPAN_EVENTS = 65_536


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("value",)

    def __init__(self, value: float = 0):
        self.value = value

    def inc(self, amount: float = 1) -> None:
        if amount < 0:
            raise ConfigError(f"counters only increase, got {amount}")
        self.value += amount


class Gauge:
    """Last-written value (NaN until first set)."""

    __slots__ = ("value",)

    def __init__(self, value: float = float("nan")):
        self.value = value

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Streaming summary of an observed quantity."""

    __slots__ = ("count", "total", "min", "max")

    def __init__(self):
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        value = float(value)
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        return self.total / self.count if self.count else float("nan")

    def to_dict(self) -> dict:
        return {
            "count": self.count,
            "total": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
        }

    def merge_dict(self, other: dict) -> None:
        count = int(other["count"])
        if count == 0:
            return
        self.count += count
        self.total += float(other["total"])
        if other["min"] is not None and float(other["min"]) < self.min:
            self.min = float(other["min"])
        if other["max"] is not None and float(other["max"]) > self.max:
            self.max = float(other["max"])


@dataclass(frozen=True)
class SpanEvent:
    """One closed span: name, start offset (s), duration (s), nest depth."""

    name: str
    start_s: float
    duration_s: float
    depth: int


class Telemetry:
    """Registry of named counters, gauges, histograms, and spans.

    Instruments are created on first use; names are free-form but the
    convention is dotted ``layer.metric`` (``solver.flips``,
    ``entropy.uniforms`` — see docs/observability.md for the catalogue).
    ``ops`` counts every recording operation performed while enabled;
    the perf bench uses it to bound what the *disabled* path would have
    paid in ``active()`` checks.
    """

    def __init__(self, max_span_events: int = DEFAULT_MAX_SPAN_EVENTS):
        if max_span_events < 1:
            raise ConfigError(
                f"max_span_events must be >= 1, got {max_span_events}"
            )
        self.counters: Dict[str, Counter] = {}
        self.gauges: Dict[str, Gauge] = {}
        self.histograms: Dict[str, Histogram] = {}
        self.spans: Deque[SpanEvent] = deque(maxlen=max_span_events)
        self.spans_dropped = 0
        self.merged_snapshots = 0
        self.ops = 0
        self._epoch = time.perf_counter()
        self._depth = 0

    # ------------------------------------------------------------------
    # Instrument access

    def counter(self, name: str) -> Counter:
        instrument = self.counters.get(name)
        if instrument is None:
            instrument = self.counters[name] = Counter()
        return instrument

    def gauge(self, name: str) -> Gauge:
        instrument = self.gauges.get(name)
        if instrument is None:
            instrument = self.gauges[name] = Gauge()
        return instrument

    def histogram(self, name: str) -> Histogram:
        instrument = self.histograms.get(name)
        if instrument is None:
            instrument = self.histograms[name] = Histogram()
        return instrument

    # ------------------------------------------------------------------
    # Recording

    def inc(self, name: str, amount: float = 1) -> None:
        """Increment counter ``name`` by ``amount``."""
        self.ops += 1
        self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        """Write gauge ``name``."""
        self.ops += 1
        self.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record one observation into histogram ``name``."""
        self.ops += 1
        self.histogram(name).observe(value)

    @contextmanager
    def span(self, name: str):
        """Timed, nestable region; closes into ``span.<name>``.

        The duration lands in the ``span.<name>`` histogram and the
        event (with its start offset and nesting depth) in the bounded
        span ring — oldest events are dropped and counted once the ring
        is full, so a long run's telemetry stays O(ring size).
        """
        self.ops += 1
        depth = self._depth
        self._depth = depth + 1
        start = time.perf_counter()
        try:
            yield self
        finally:
            duration = time.perf_counter() - start
            self._depth = depth
            self.histogram(f"span.{name}").observe(duration)
            if len(self.spans) == self.spans.maxlen:
                self.spans_dropped += 1
            self.spans.append(
                SpanEvent(name, start - self._epoch, duration, depth)
            )

    def time_call(self, name: str, func):
        """Run ``func()`` inside :meth:`span`; returns its result."""
        with self.span(name):
            return func()

    # ------------------------------------------------------------------
    # Snapshot / merge

    def snapshot(self) -> dict:
        """JSON-serializable summary (no span events — see exporters).

        The snapshot is what crosses process boundaries: counters,
        gauges, histogram summaries, and the span-ring drop count.  It
        pickles/JSON-encodes cheaply and merges associatively.
        """
        return {
            "version": SNAPSHOT_VERSION,
            "counters": {k: v.value for k, v in sorted(self.counters.items())},
            "gauges": {k: v.value for k, v in sorted(self.gauges.items())},
            "histograms": {
                k: v.to_dict() for k, v in sorted(self.histograms.items())
            },
            "spans_dropped": self.spans_dropped,
        }

    def merge(self, snapshot: dict) -> None:
        """Fold a :meth:`snapshot` (e.g. from a worker process) into this.

        Counters and histogram summaries add; gauges take the incoming
        value (last write wins — the merged snapshot is the newer
        observation).  Merging is associative and order-insensitive for
        everything except gauges.
        """
        if not isinstance(snapshot, dict) or "counters" not in snapshot:
            raise DataError(f"not a telemetry snapshot: {snapshot!r}")
        version = snapshot.get("version")
        if version != SNAPSHOT_VERSION:
            raise DataError(
                f"telemetry snapshot version {version!r} != {SNAPSHOT_VERSION}"
            )
        for name, value in snapshot["counters"].items():
            self.counter(name).inc(value)
        for name, value in snapshot.get("gauges", {}).items():
            self.gauge(name).set(value)
        for name, summary in snapshot.get("histograms", {}).items():
            self.histogram(name).merge_dict(summary)
        self.spans_dropped += int(snapshot.get("spans_dropped", 0))
        self.merged_snapshots += 1

    # ------------------------------------------------------------------
    # Convenience reads

    def value(self, name: str, default: float = 0) -> float:
        """Counter value by name (``default`` when never incremented)."""
        instrument = self.counters.get(name)
        return instrument.value if instrument is not None else default


# ----------------------------------------------------------------------
# Process-wide enable switch

_ACTIVE: Optional[Telemetry] = None


def active() -> Optional[Telemetry]:
    """The ambient :class:`Telemetry`, or ``None`` when disabled.

    This is *the* hot-path hook: instrumented code does
    ``tel = active()`` and skips everything on ``None``.
    """
    return _ACTIVE


def enabled() -> bool:
    """Whether telemetry is currently collecting."""
    return _ACTIVE is not None


def enable(telemetry: Optional[Telemetry] = None) -> Telemetry:
    """Install ``telemetry`` (or a fresh instance) as the ambient one."""
    global _ACTIVE
    _ACTIVE = telemetry if telemetry is not None else Telemetry()
    return _ACTIVE


def disable() -> Optional[Telemetry]:
    """Stop collecting; returns the instance that was active."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = None
    return previous


@contextmanager
def use_telemetry(telemetry: Optional[Telemetry] = None):
    """Scope an ambient Telemetry for a ``with`` block (nestable)."""
    global _ACTIVE
    previous = _ACTIVE
    instance = telemetry if telemetry is not None else Telemetry()
    _ACTIVE = instance
    try:
        yield instance
    finally:
        _ACTIVE = previous
