"""Telemetry exporters: JSONL event stream, Prometheus text, report table.

Three consumers, three formats:

* :func:`to_jsonl` / :func:`write_jsonl` — one JSON object per line
  (``meta``, ``counter``, ``gauge``, ``histogram``, ``span`` records),
  machine-readable and streamable; :func:`parse_jsonl` and
  :func:`telemetry_from_events` round-trip it back into a
  :class:`~repro.obs.telemetry.Telemetry` for offline reporting
  (``rsu-experiments obs report --trace run.jsonl``).
* :func:`to_prometheus` — the Prometheus text exposition format
  (``# TYPE`` headers, sanitized ``repro_``-prefixed names) for
  scraping or diffing.
* :func:`render_report` — the human summary table the ``obs report``
  CLI prints: counters, gauges, histograms with count/mean/min/max,
  plus derived headline rates (acceptance rate, cache hit rate,
  µarch stall fraction) when their inputs are present.
"""

from __future__ import annotations

import io
import json
import os
import re
from typing import Dict, Iterable, List, Optional

from repro.obs.telemetry import SNAPSHOT_VERSION, SpanEvent, Telemetry
from repro.util.errors import DataError

#: JSONL trace format version.
TRACE_VERSION = 1

#: Record types a JSONL trace may contain.
RECORD_TYPES = ("meta", "counter", "gauge", "histogram", "span")


# ----------------------------------------------------------------------
# JSONL event stream


def iter_records(telemetry: Telemetry) -> Iterable[dict]:
    """The trace records of one Telemetry, meta line first."""
    yield {
        "type": "meta",
        "version": TRACE_VERSION,
        "snapshot_version": SNAPSHOT_VERSION,
        "spans_dropped": telemetry.spans_dropped,
        "merged_snapshots": telemetry.merged_snapshots,
    }
    for name, counter in sorted(telemetry.counters.items()):
        yield {"type": "counter", "name": name, "value": counter.value}
    for name, gauge in sorted(telemetry.gauges.items()):
        value = gauge.value
        yield {
            "type": "gauge",
            "name": name,
            "value": None if value != value else value,  # NaN -> null
        }
    for name, histogram in sorted(telemetry.histograms.items()):
        yield {"type": "histogram", "name": name, **histogram.to_dict()}
    for event in telemetry.spans:
        yield {
            "type": "span",
            "name": event.name,
            "start_s": round(event.start_s, 9),
            "duration_s": round(event.duration_s, 9),
            "depth": event.depth,
        }


def to_jsonl(telemetry: Telemetry) -> str:
    """Serialize to the JSONL trace format (trailing newline included)."""
    out = io.StringIO()
    for record in iter_records(telemetry):
        out.write(json.dumps(record, sort_keys=True, separators=(",", ":")))
        out.write("\n")
    return out.getvalue()


def write_jsonl(telemetry: Telemetry, path: os.PathLike) -> None:
    """Write the JSONL trace to ``path``."""
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(to_jsonl(telemetry))


#: Required fields per record type (beyond ``type``).
_REQUIRED_FIELDS = {
    "meta": ("version",),
    "counter": ("name", "value"),
    "gauge": ("name", "value"),
    "histogram": ("name", "count", "total", "min", "max"),
    "span": ("name", "start_s", "duration_s", "depth"),
}


def parse_jsonl(text: str) -> List[dict]:
    """Parse and validate a JSONL trace; raises :class:`DataError`.

    Every line must be a JSON object with a known ``type`` and that
    type's required fields — a truncated or hand-mangled trace fails
    loudly instead of silently reporting partial metrics.
    """
    records: List[dict] = []
    for lineno, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except ValueError as exc:
            raise DataError(f"trace line {lineno} is not JSON: {exc}") from exc
        if not isinstance(record, dict):
            raise DataError(f"trace line {lineno} is not an object")
        kind = record.get("type")
        if kind not in RECORD_TYPES:
            raise DataError(f"trace line {lineno} has unknown type {kind!r}")
        missing = [f for f in _REQUIRED_FIELDS[kind] if f not in record]
        if missing:
            raise DataError(
                f"trace line {lineno} ({kind}) is missing fields {missing}"
            )
        records.append(record)
    if not records or records[0].get("type") != "meta":
        raise DataError("trace must start with a meta record")
    return records


def telemetry_from_events(records: List[dict]) -> Telemetry:
    """Rebuild a Telemetry from parsed trace records (for offline reports)."""
    telemetry = Telemetry()
    for record in records:
        kind = record["type"]
        if kind == "meta":
            telemetry.spans_dropped += int(record.get("spans_dropped", 0))
        elif kind == "counter":
            telemetry.counter(record["name"]).inc(record["value"])
        elif kind == "gauge":
            if record["value"] is not None:
                telemetry.gauge(record["name"]).set(record["value"])
        elif kind == "histogram":
            telemetry.histogram(record["name"]).merge_dict(record)
        elif kind == "span":
            telemetry.spans.append(
                SpanEvent(
                    record["name"],
                    float(record["start_s"]),
                    float(record["duration_s"]),
                    int(record["depth"]),
                )
            )
    return telemetry


def load_trace(path: os.PathLike) -> Telemetry:
    """Read a JSONL trace file back into a Telemetry."""
    with open(path, encoding="utf-8") as handle:
        return telemetry_from_events(parse_jsonl(handle.read()))


# ----------------------------------------------------------------------
# Prometheus text format

_NAME_RE = re.compile(r"[^a-zA-Z0-9_]")


def prometheus_name(name: str, prefix: str = "repro_") -> str:
    """Sanitize a dotted metric name into a Prometheus identifier."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return prefix + sanitized


def to_prometheus(telemetry: Telemetry) -> str:
    """Prometheus text exposition: counters, gauges, histogram summaries."""
    lines: List[str] = []
    for name, counter in sorted(telemetry.counters.items()):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} counter")
        lines.append(f"{metric} {counter.value:g}")
    for name, gauge in sorted(telemetry.gauges.items()):
        if gauge.value != gauge.value:  # NaN: never written
            continue
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} gauge")
        lines.append(f"{metric} {gauge.value:g}")
    for name, histogram in sorted(telemetry.histograms.items()):
        metric = prometheus_name(name)
        lines.append(f"# TYPE {metric} summary")
        lines.append(f"{metric}_count {histogram.count:g}")
        lines.append(f"{metric}_sum {histogram.total:g}")
        if histogram.count:
            lines.append(f"{metric}_min {histogram.min:g}")
            lines.append(f"{metric}_max {histogram.max:g}")
    return "\n".join(lines) + "\n"


# ----------------------------------------------------------------------
# Human report


def _rate(numerator: float, denominator: float) -> Optional[float]:
    return numerator / denominator if denominator else None


def derived_metrics(telemetry: Telemetry) -> Dict[str, float]:
    """Headline rates computable from the recorded counters."""
    derived: Dict[str, float] = {}
    pairs = (
        ("acceptance_rate", "solver.flips", "solver.site_updates"),
        ("swap_accept_rate", "tempering.swaps_accepted", "tempering.swap_attempts"),
        ("uarch_stall_fraction", "uarch.stalls", "uarch.cycles"),
    )
    for label, num, den in pairs:
        value = _rate(telemetry.value(num), telemetry.value(den))
        if value is not None:
            derived[label] = value
    hits = telemetry.value("engine.cache_hits")
    misses = telemetry.value("engine.cache_misses")
    if hits or misses:
        derived["cache_hit_rate"] = hits / (hits + misses)
    samples = telemetry.value("sampler.samples")
    uniforms = telemetry.value("entropy.uniforms")
    if samples and uniforms:
        derived["entropy_uniforms_per_sample"] = uniforms / samples
    return derived


def _table(title: str, rows: List[tuple], header: tuple) -> List[str]:
    if not rows:
        return []
    widths = [
        max(len(str(header[col])), max(len(str(row[col])) for row in rows))
        for col in range(len(header))
    ]
    lines = [title]
    lines.append("  " + "  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  " + "  ".join("-" * w for w in widths))
    for row in rows:
        cells = [str(row[0]).ljust(widths[0])]
        cells += [str(c).rjust(w) for c, w in zip(row[1:], widths[1:])]
        lines.append("  " + "  ".join(cells))
    return lines


def _fmt(value: float) -> str:
    if value != value:
        return "nan"
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.6g}"


def render_report(telemetry: Telemetry) -> str:
    """The ``obs report`` summary: one text block, deterministic order."""
    sections: List[str] = []
    derived = derived_metrics(telemetry)
    if derived:
        sections += _table(
            "derived",
            [(name, _fmt(value)) for name, value in sorted(derived.items())],
            ("metric", "value"),
        )
        sections.append("")
    counter_rows = [
        (name, _fmt(c.value)) for name, c in sorted(telemetry.counters.items())
    ]
    sections += _table("counters", counter_rows, ("counter", "value"))
    if counter_rows:
        sections.append("")
    gauge_rows = [
        (name, _fmt(g.value))
        for name, g in sorted(telemetry.gauges.items())
        if g.value == g.value
    ]
    sections += _table("gauges", gauge_rows, ("gauge", "value"))
    if gauge_rows:
        sections.append("")
    histogram_rows = [
        (name, h.count, _fmt(h.mean), _fmt(h.min), _fmt(h.max))
        for name, h in sorted(telemetry.histograms.items())
        if h.count
    ]
    sections += _table(
        "histograms", histogram_rows, ("histogram", "count", "mean", "min", "max")
    )
    if telemetry.spans_dropped:
        sections.append("")
        sections.append(f"(span ring dropped {telemetry.spans_dropped} oldest events)")
    if not sections:
        return "telemetry is empty (nothing was recorded)"
    return "\n".join(sections).rstrip()
