"""Structural (cycle-driven) microarchitecture simulators of the RSU-G.

While :mod:`repro.core.pipeline` provides closed-form timing, this
package *executes* the two pipelines cycle by cycle:

* :class:`LegacyMachine` — the previous design (Fig. 2b): label
  decrement, energy computation, energy-to-intensity LUT, replicated
  multi-cycle RET sampling, selection; the LUT rewrite on a temperature
  update stalls the whole pipeline.
* :class:`NewMachine` — the new design (Fig. 10): the energy FIFO
  decouples the front end (variable v+1) from the back end (variable
  v); min-energy tracking and scaling subtraction feed the
  comparison-based converter; the RET circuit cycles a QDLED counter
  over replicated network sets whose reuse interval is checked every
  cycle; temperature updates stream into shadow boundary registers with
  zero stalls.

Both machines draw their TTFs from the same functional
:class:`~repro.core.ttf.TTFSampler`, so their outputs are
distributionally identical to the functional simulators — the tests
assert that, plus the structural invariants (no structural hazards, at
most two variables resident in the FIFO, no RET-network reuse before
the residual-excitation rest interval).

Both machines default to the event-driven batched engine in
:mod:`repro.uarch.events` (``use_event_driven=True``), which computes
the identical :class:`MachineResult` — cycle for cycle, bit for bit —
from scheduled events and vectorized numpy instead of per-cycle latch
stepping.  The scalar loops remain as the oracles (and run whenever a
:class:`PipelineTrace` is attached).
"""

from repro.uarch.backend import CycleCountingBackend, MachineBackend
from repro.uarch.events import (
    EventQueue,
    JobStream,
    stream_from_jobs,
    stream_from_matrix,
    ttf_bins_from_uniforms,
)
from repro.uarch.trace import PipelineTrace, TraceEvent
from repro.uarch.machines import (
    LegacyMachine,
    MachineResult,
    NewDesignMachine,
    NewMachine,
    PreviousDesignMachine,
    VariableJob,
    jobs_from_energies,
)

__all__ = [
    "PipelineTrace",
    "TraceEvent",
    "CycleCountingBackend",
    "MachineBackend",
    "EventQueue",
    "JobStream",
    "stream_from_jobs",
    "stream_from_matrix",
    "ttf_bins_from_uniforms",
    "LegacyMachine",
    "MachineResult",
    "NewDesignMachine",
    "NewMachine",
    "PreviousDesignMachine",
    "VariableJob",
    "jobs_from_energies",
]
