"""Pipeline event tracing and text rendering.

A :class:`PipelineTrace` collects ``(cycle, stage, variable, label)``
events from a structural machine and renders them as a text pipeline
diagram — one row per label evaluation, one column per cycle, stage
letters marking where the evaluation was each cycle.  Useful for
documentation, debugging, and the ``examples/uarch_trace.py`` demo.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Dict, Iterable, List, Optional, Tuple

from repro.util.errors import ConfigError

#: Stage display letters, in pipeline order.
STAGE_LETTERS = {
    "issue": "I",
    "energy": "E",
    "convert": "C",
    "fifo": "F",
    "scale": "S",
    "ret": "R",
    "select": "W",
    "stall": "x",
}


@dataclass
class TraceEvent:
    """One pipeline occurrence."""

    cycle: int
    stage: str
    variable: int
    label: int


@dataclass
class PipelineTrace:
    """Collects events in a bounded ring buffer.

    The buffer holds the **most recent** ``max_events`` events — on a
    long run the interesting end-of-run behaviour survives while memory
    stays O(``max_events``) no matter how many cycles execute.
    ``dropped`` counts the overwritten (oldest) events, so a consumer
    can tell a complete trace from a windowed one.  Tracing is opt-in:
    machines run untraced (``trace=None``) unless one is passed, and an
    untraced run touches no trace storage at all.
    """

    max_events: int = 100_000
    events: Deque[TraceEvent] = field(default_factory=deque)
    dropped: int = 0

    def __post_init__(self):
        if self.max_events < 1:
            raise ConfigError("max_events must be >= 1")
        initial: Iterable[TraceEvent] = self.events
        self.events = deque(initial, maxlen=self.max_events)

    def record(self, cycle: int, stage: str, variable: int, label: int) -> None:
        """Append one event (overwrites the oldest beyond ``max_events``)."""
        if stage not in STAGE_LETTERS:
            raise ConfigError(f"unknown stage {stage!r}")
        if len(self.events) == self.max_events:
            self.dropped += 1
        self.events.append(TraceEvent(cycle, stage, variable, label))

    def by_evaluation(self) -> Dict[Tuple[int, int], List[TraceEvent]]:
        """Events grouped per (variable, label), cycle-ordered."""
        grouped: Dict[Tuple[int, int], List[TraceEvent]] = {}
        for event in self.events:
            grouped.setdefault((event.variable, event.label), []).append(event)
        for events in grouped.values():
            events.sort(key=lambda e: e.cycle)
        return grouped

    def last_cycle(self) -> int:
        """Largest recorded cycle."""
        if not self.events:
            raise ConfigError("trace is empty")
        return max(event.cycle for event in self.events)

    def render(
        self,
        max_rows: int = 24,
        start_cycle: int = 0,
        end_cycle: Optional[int] = None,
    ) -> str:
        """Text pipeline diagram: rows = evaluations, columns = cycles."""
        if not self.events:
            raise ConfigError("trace is empty")
        end = self.last_cycle() if end_cycle is None else end_cycle
        if end < start_cycle:
            raise ConfigError("end_cycle must be >= start_cycle")
        width = end - start_cycle + 1
        lines = [
            "evaluation  " + "".join(str(c % 10) for c in range(start_cycle, end + 1))
        ]
        grouped = self.by_evaluation()
        for (variable, label), events in list(grouped.items())[:max_rows]:
            row = [" "] * width
            for event in events:
                if start_cycle <= event.cycle <= end:
                    row[event.cycle - start_cycle] = STAGE_LETTERS[event.stage]
            lines.append(f"v{variable:<3}l{label:<4}  " + "".join(row))
        if len(grouped) > max_rows:
            lines.append(f"... ({len(grouped) - max_rows} more evaluations)")
        legend = "  ".join(f"{letter}={name}" for name, letter in STAGE_LETTERS.items())
        lines.append(legend)
        if self.dropped:
            lines.append(
                f"(windowed trace: {self.dropped} oldest events dropped, "
                f"{len(self.events)} retained)"
            )
        return "\n".join(lines)

    def occupancy(self, stage: str) -> Dict[int, int]:
        """Events per cycle for one stage (utilization profile)."""
        if stage not in STAGE_LETTERS:
            raise ConfigError(f"unknown stage {stage!r}")
        counts: Dict[int, int] = {}
        for event in self.events:
            if event.stage == stage:
                counts[event.cycle] = counts.get(event.cycle, 0) + 1
        return counts
