"""Cycle-driven structural models of the two RSU-G pipelines.

Scheduling conventions (matching :mod:`repro.core.pipeline`):

* one label issues per cycle (the decrement stage);
* the RET observation window spans ``2**Time_bits / 8`` cycles;
* previous design (Fig. 2b): issue -> energy -> LUT -> RET window ->
  selection, giving the paper's ``7 + (M - 1)`` single-variable latency
  at the 4-cycle window;
* new design (Fig. 10): issue -> energy -> FIFO insert (+ min
  tracking); the back end pops a variable only once its minimum energy
  is latched, then scale-subtract -> boundary compare -> RET window ->
  selection.

RET-network bookkeeping in the new design follows Fig. 11: 8 waveguides
(one QDLED each) x 4 concentrations; a QDLED counter advancing once per
observation window selects the active waveguide, so each waveguide
rests ``replicas`` windows between excitations — satisfying the 99.6%
residual-excitation target by construction.  The figure leaves one case
ambiguous: two labels issued *within the same window* that request the
same concentration land on the same physical network.  The machine
either counts these conflicts (``conflict_policy="count"``, default —
the literal reading of the figure) or stalls the second issue into the
next window (``"stall"``, which preserves physics at a throughput
cost); the tests quantify both.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

import numpy as np

from repro.core.base import select_first_to_fire
from repro.core.convert import cached_boundary_table, cached_legacy_lut
from repro.core.params import RSUConfig
from repro.core.pipeline import (
    legacy_temperature_stall,
    ret_network_replicas,
    sampling_window_cycles,
)
from repro.core.ttf import TTFSampler
from repro.uarch.trace import PipelineTrace
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class VariableJob:
    """One random-variable evaluation: quantized energies per label."""

    variable_id: int
    energies: np.ndarray  # (M,) int64 quantized energies

    def __post_init__(self):
        arr = np.asarray(self.energies)
        if arr.ndim != 1 or arr.size < 1:
            raise ConfigError("energies must be a non-empty 1-D array")


@dataclass
class MachineResult:
    """Outcome of a structural simulation run."""

    winners: Dict[int, int]
    winner_cycle: Dict[int, int]
    total_cycles: int
    stats: Dict[str, int] = field(default_factory=dict)

    def latency(self, variable_id: int, issue_cycle: int) -> int:
        """Inclusive cycle span from first issue to selection."""
        return self.winner_cycle[variable_id] - issue_cycle + 1


def jobs_from_energies(quantized: np.ndarray) -> List[VariableJob]:
    """Wrap an ``(n_vars, M)`` quantized-energy matrix into jobs.

    Rejects empty matrices and non-integer dtypes up front: both used
    to slip through and only fail (confusingly) deep inside the
    machines — an empty run loop that never terminates, or float
    energies silently truncated by the LUT index.
    """
    arr = np.asarray(quantized)
    if arr.ndim != 2:
        raise ConfigError(f"expected (n_vars, M), got shape {arr.shape}")
    if arr.shape[0] < 1 or arr.shape[1] < 1:
        raise ConfigError(f"jobs must be non-empty, got shape {arr.shape}")
    if not np.issubdtype(arr.dtype, np.integer):
        raise ConfigError(
            f"quantized energies must have an integer dtype, got {arr.dtype}"
        )
    return [VariableJob(i, arr[i]) for i in range(arr.shape[0])]


class _SelectionTracker:
    """Collects per-variable TTFs and picks winners on completion."""

    def __init__(self, tie_policy: str, rng: np.random.Generator):
        self._tie_policy = tie_policy
        self._rng = rng
        self._ttfs: Dict[int, list] = {}
        self._expected: Dict[int, int] = {}

    def expect(self, variable_id: int, labels: int) -> None:
        self._ttfs[variable_id] = [None] * labels
        self._expected[variable_id] = labels

    def deliver(self, variable_id: int, label: int, ttf: int) -> Optional[int]:
        """Record one TTF; return the winner when the variable completes."""
        slot = self._ttfs[variable_id]
        slot[label] = ttf
        self._expected[variable_id] -= 1
        if self._expected[variable_id] == 0:
            ttf_row = np.asarray([slot], dtype=np.int64)
            winner = select_first_to_fire(ttf_row, self._tie_policy, self._rng)[0]
            del self._ttfs[variable_id], self._expected[variable_id]
            return int(winner)
        return None


class LegacyMachine:
    """Structural model of the previous RSU-G design (Fig. 2b)."""

    def __init__(
        self,
        config: RSUConfig,
        temperature_grid: float,
        rng: np.random.Generator,
        interface_bits: int = 8,
        trace: Optional[PipelineTrace] = None,
        use_event_driven: bool = True,
    ):
        if config.scaling or config.cutoff:
            raise ConfigError("the legacy machine models the unscaled design")
        self._trace = trace
        self.config = config
        self.window = sampling_window_cycles(config)
        self._ttf_sampler = TTFSampler(config, rng)
        self._rng = rng
        self._interface_bits = interface_bits
        self._lut = cached_legacy_lut(temperature_grid, config)
        self._use_event_driven = use_event_driven

    def update_temperature(self, temperature_grid: float) -> int:
        """Rewrite the energy-to-intensity LUT; returns the stall cycles."""
        self._lut = cached_legacy_lut(temperature_grid, self.config)
        return legacy_temperature_stall(self.config, self._interface_bits)

    def _event_path_active(self) -> bool:
        """Event-driven runs need no per-cycle observation (tracing) and
        binned time (the float-time stage has no cycle semantics)."""
        return (
            self._use_event_driven
            and self._trace is None
            and not self.config.float_time
        )

    def run(
        self,
        jobs: Sequence[VariableJob],
        temperature_schedule: Optional[Dict[int, float]] = None,
    ) -> MachineResult:
        """Execute the jobs; ``temperature_schedule`` maps a job index to
        a new grid temperature applied (with a pipeline stall) before
        that job issues."""
        if not jobs:
            raise ConfigError("jobs must be non-empty")
        if self._event_path_active():
            from repro.uarch.events import run_legacy_machine, stream_from_jobs

            return run_legacy_machine(
                self, stream_from_jobs(jobs), temperature_schedule
            )
        return self._run_scalar(jobs, temperature_schedule)

    def run_matrix(
        self,
        quantized: np.ndarray,
        temperature_schedule: Optional[Dict[int, float]] = None,
    ) -> MachineResult:
        """Run an ``(n_vars, M)`` quantized-energy matrix directly.

        The machine-in-the-loop hot path: the event engine consumes the
        matrix as one flat stream, skipping per-variable
        :class:`VariableJob` construction entirely.  Falls back to
        :func:`jobs_from_energies` + the scalar oracle when the event
        path is unavailable.  Identical results either way.
        """
        if self._event_path_active():
            from repro.uarch.events import run_legacy_machine, stream_from_matrix

            return run_legacy_machine(
                self, stream_from_matrix(quantized), temperature_schedule
            )
        return self._run_scalar(jobs_from_energies(quantized), temperature_schedule)

    def _run_scalar(
        self,
        jobs: Sequence[VariableJob],
        temperature_schedule: Optional[Dict[int, float]] = None,
    ) -> MachineResult:
        """Cycle-exact oracle: step every latch, every cycle."""
        temperature_schedule = temperature_schedule or {}
        selection = _SelectionTracker(self.config.tie_policy, self._rng)
        issue_queue = deque()
        issue_cycle_of: Dict[int, int] = {}
        for index, job in enumerate(jobs):
            selection.expect(job.variable_id, len(job.energies))
            if index in temperature_schedule:
                issue_queue.append(("stall", index))
            for label in range(len(job.energies) - 1, -1, -1):
                issue_queue.append((job, label))

        issue_latch = None  # (var, label, quantized energy)
        energy_latch = None  # (var, label, quantized energy)
        lut_latch = None  # (var, label, code)
        units_busy_until = [-1] * self.window
        completions: Dict[int, list] = {}
        winners: Dict[int, int] = {}
        winner_cycle: Dict[int, int] = {}
        stats = {"hazard_stalls": 0, "temperature_stalls": 0}
        stall_remaining = 0
        cycle = 0
        guard = 0
        while len(winners) < len(jobs):
            # 1. RET completions feed selection (a window of one cycle
            # completes in the scheduling cycle itself; its result is
            # latched into selection on the next cycle, hence <=).
            for due in sorted(k for k in completions if k <= cycle):
                for variable_id, label, ttf in completions.pop(due):
                    if self._trace is not None:
                        self._trace.record(cycle, "select", variable_id, label)
                    winner = selection.deliver(variable_id, label, ttf)
                    if winner is not None:
                        winners[variable_id] = winner
                        winner_cycle[variable_id] = cycle
            # 2. LUT latch issues into a free RET unit.
            if lut_latch is not None:
                unit = next(
                    (u for u, busy in enumerate(units_busy_until) if busy < cycle), None
                )
                if unit is None:
                    stats["hazard_stalls"] += 1
                else:
                    variable_id, label, code = lut_latch
                    units_busy_until[unit] = cycle + self.window - 1
                    ttf = int(self._ttf_sampler.sample(np.array([[code]]))[0, 0])
                    completions.setdefault(cycle + self.window - 1, []).append(
                        (variable_id, label, ttf)
                    )
                    if self._trace is not None:
                        for offset in range(self.window):
                            self._trace.record(cycle + offset, "ret", variable_id, label)
                    lut_latch = None
            # 3. Energy latch advances through the LUT.
            if lut_latch is None and energy_latch is not None:
                variable_id, label, energy = energy_latch
                lut_latch = (variable_id, label, int(self._lut[energy]))
                if self._trace is not None:
                    self._trace.record(cycle, "convert", variable_id, label)
                energy_latch = None
            # 4. Issue latch advances through energy computation.
            if energy_latch is None and issue_latch is not None:
                energy_latch = issue_latch
                if self._trace is not None:
                    self._trace.record(cycle, "energy", issue_latch[0], issue_latch[1])
                issue_latch = None
            # 5. Issue stage (with temperature stalls).
            if stall_remaining > 0:
                stall_remaining -= 1
                stats["temperature_stalls"] += 1
                if self._trace is not None:
                    self._trace.record(cycle, "stall", -1, -1)
            elif issue_latch is None and issue_queue:
                head = issue_queue[0]
                if head[0] == "stall":
                    issue_queue.popleft()
                    job_index = head[1]
                    stall_remaining = self.update_temperature(
                        temperature_schedule[job_index]
                    )
                else:
                    job, label = issue_queue.popleft()
                    if label == len(job.energies) - 1:
                        issue_cycle_of[job.variable_id] = cycle
                    issue_latch = (job.variable_id, label, int(job.energies[label]))
                    if self._trace is not None:
                        self._trace.record(cycle, "issue", job.variable_id, label)
            cycle += 1
            guard += 1
            if guard > 10_000_000:
                raise ConfigError("legacy machine did not terminate")
        if self._trace is not None:
            # Traced runs surface the trace-ring window in the result so
            # a consumer can tell a complete trace from a truncated one.
            # Untraced runs (including the event path) omit the keys, so
            # event-vs-scalar stats identity is unaffected.
            stats["trace_events"] = len(self._trace.events)
            stats["trace_dropped"] = self._trace.dropped
        result = MachineResult(winners, winner_cycle, cycle, stats)
        result.stats["issue_cycles"] = issue_cycle_of  # type: ignore[assignment]
        return result


#: Paper-facing name for the Fig. 2b machine.
PreviousDesignMachine = LegacyMachine


class NewMachine:
    """Structural model of the new RSU-G design (Fig. 10 / Fig. 11)."""

    def __init__(
        self,
        config: RSUConfig,
        temperature_grid: float,
        rng: np.random.Generator,
        conflict_policy: str = "count",
        trace: Optional[PipelineTrace] = None,
        use_event_driven: bool = True,
    ):
        self._trace = trace
        if not (config.scaling and config.cutoff and config.pow2_lambda):
            raise ConfigError("the new machine models the full technique stack")
        if conflict_policy not in ("count", "stall"):
            raise ConfigError(f"unknown conflict_policy {conflict_policy!r}")
        self.config = config
        self.window = sampling_window_cycles(config)
        self.waveguides = ret_network_replicas(config)
        self.concentrations = config.unique_lambdas
        self._ttf_sampler = TTFSampler(config, rng)
        self._rng = rng
        self._bounds = cached_boundary_table(temperature_grid, config)
        self._shadow_bounds = None
        self._conflict_policy = conflict_policy
        self._use_event_driven = use_event_driven

    def update_temperature(self, temperature_grid: float) -> int:
        """Stage new boundaries in the shadow registers; zero stalls."""
        self._shadow_bounds = cached_boundary_table(temperature_grid, self.config)
        return 0

    def _event_path_active(self) -> bool:
        """Event-driven runs need no per-cycle observation (tracing) and
        binned time (the float-time stage has no cycle semantics)."""
        return (
            self._use_event_driven
            and self._trace is None
            and not self.config.float_time
        )

    def _convert(self, scaled_energy: int) -> int:
        """Comparison-based energy-to-lambda conversion."""
        code = self.config.lambda_max_code
        for bound in self._bounds:
            if scaled_energy <= bound + 1e-12:
                return code
            code //= 2
        return 0

    def run(
        self,
        jobs: Sequence[VariableJob],
        temperature_schedule: Optional[Dict[int, float]] = None,
    ) -> MachineResult:
        """Execute the jobs through the decoupled pipeline."""
        if not jobs:
            raise ConfigError("jobs must be non-empty")
        if self._event_path_active():
            from repro.uarch.events import run_new_machine, stream_from_jobs

            return run_new_machine(self, stream_from_jobs(jobs), temperature_schedule)
        return self._run_scalar(jobs, temperature_schedule)

    def run_matrix(
        self,
        quantized: np.ndarray,
        temperature_schedule: Optional[Dict[int, float]] = None,
    ) -> MachineResult:
        """Run an ``(n_vars, M)`` quantized-energy matrix directly (see
        :meth:`LegacyMachine.run_matrix`)."""
        if self._event_path_active():
            from repro.uarch.events import run_new_machine, stream_from_matrix

            return run_new_machine(
                self, stream_from_matrix(quantized), temperature_schedule
            )
        return self._run_scalar(jobs_from_energies(quantized), temperature_schedule)

    def _run_scalar(
        self,
        jobs: Sequence[VariableJob],
        temperature_schedule: Optional[Dict[int, float]] = None,
    ) -> MachineResult:
        """Cycle-exact oracle: step every latch, every cycle."""
        temperature_schedule = temperature_schedule or {}
        selection = _SelectionTracker(self.config.tie_policy, self._rng)
        for job in jobs:
            selection.expect(job.variable_id, len(job.energies))

        # Front-end state.
        job_index = 0
        label_index = None  # decrementing label counter of the current job
        issue_latch = None
        energy_latch = None
        min_tracker = None
        issue_cycle_of: Dict[int, int] = {}
        # FIFO entries: (variable_id, label, quantized energy); a
        # variable becomes poppable once its minimum is latched.
        fifo: deque = deque()
        latched_min: Dict[int, int] = {}
        fifo_variables: deque = deque()  # ids in FIFO order
        # Back-end state.
        scale_latch = None
        compare_latch = None
        completions: Dict[int, list] = {}
        network_last_use: Dict[tuple, int] = {}
        winners: Dict[int, int] = {}
        winner_cycle: Dict[int, int] = {}
        stats = {
            "network_conflicts": 0,
            "conflict_stalls": 0,
            "fifo_max_entries": 0,
            "fifo_max_variables": 0,
            "reuse_violations": 0,
            "temperature_stalls": 0,
        }
        cycle = 0
        guard = 0
        while len(winners) < len(jobs):
            window_index = cycle // self.window
            active_waveguide = window_index % self.waveguides
            # 1. Completions feed selection (<= drains the window-of-one
            # case, whose result latches the cycle after it completes).
            for due in sorted(k for k in completions if k <= cycle):
                for variable_id, label, ttf in completions.pop(due):
                    if self._trace is not None:
                        self._trace.record(cycle, "select", variable_id, label)
                    winner = selection.deliver(variable_id, label, ttf)
                    if winner is not None:
                        winners[variable_id] = winner
                        winner_cycle[variable_id] = cycle
                        if self._shadow_bounds is not None:
                            # Swap shadow boundary registers at the
                            # variable boundary — no stall.
                            self._bounds = self._shadow_bounds
                            self._shadow_bounds = None
            # 2. Compare latch issues to the RET circuit.
            if compare_latch is not None:
                variable_id, label, code = compare_latch
                proceed = True
                if code > 0:
                    network = (active_waveguide, int(np.log2(code)))
                    last = network_last_use.get(network)
                    if last is not None and last == window_index:
                        stats["network_conflicts"] += 1
                        if self._conflict_policy == "stall":
                            stats["conflict_stalls"] += 1
                            proceed = False
                    elif last is not None and window_index - last < self.waveguides:
                        stats["reuse_violations"] += 1
                    if proceed:
                        network_last_use[network] = window_index
                if proceed:
                    ttf = int(self._ttf_sampler.sample(np.array([[code]]))[0, 0])
                    completions.setdefault(cycle + self.window - 1, []).append(
                        (variable_id, label, ttf)
                    )
                    if self._trace is not None:
                        for offset in range(self.window):
                            self._trace.record(cycle + offset, "ret", variable_id, label)
                    compare_latch = None
            # 3. Scale latch advances through the comparators.
            if compare_latch is None and scale_latch is not None:
                variable_id, label, scaled = scale_latch
                compare_latch = (variable_id, label, self._convert(scaled))
                if self._trace is not None:
                    self._trace.record(cycle, "convert", variable_id, label)
                scale_latch = None
            # 4. FIFO pop (only for a variable whose minimum is latched).
            if scale_latch is None and fifo and fifo[0][0] in latched_min:
                variable_id, label, energy = fifo.popleft()
                scale_latch = (variable_id, label, energy - latched_min[variable_id])
                if self._trace is not None:
                    self._trace.record(cycle, "scale", variable_id, label)
                if not fifo or fifo[0][0] != variable_id:
                    if fifo_variables and fifo_variables[0] == variable_id:
                        fifo_variables.popleft()
            # 5. Energy latch inserts into the FIFO and updates the min.
            if energy_latch is not None:
                variable_id, label, energy = energy_latch
                fifo.append((variable_id, label, energy))
                if self._trace is not None:
                    self._trace.record(cycle, "fifo", variable_id, label)
                if not fifo_variables or fifo_variables[-1] != variable_id:
                    fifo_variables.append(variable_id)
                if min_tracker is None:
                    min_tracker = energy
                else:
                    min_tracker = min(min_tracker, energy)
                if label == 0:  # last label of the variable: latch the min
                    latched_min[variable_id] = min_tracker
                    min_tracker = None
                energy_latch = None
            stats["fifo_max_entries"] = max(stats["fifo_max_entries"], len(fifo))
            stats["fifo_max_variables"] = max(
                stats["fifo_max_variables"], len(fifo_variables)
            )
            # 6. Issue latch computes the energy.
            if energy_latch is None and issue_latch is not None:
                energy_latch = issue_latch
                if self._trace is not None:
                    self._trace.record(cycle, "energy", issue_latch[0], issue_latch[1])
                issue_latch = None
            # 7. Issue stage: label decrement over the current job.
            if issue_latch is None and job_index < len(jobs):
                job = jobs[job_index]
                if label_index is None:
                    if job_index in temperature_schedule:
                        self.update_temperature(temperature_schedule[job_index])
                    label_index = len(job.energies) - 1
                    issue_cycle_of[job.variable_id] = cycle
                issue_latch = (
                    job.variable_id,
                    label_index,
                    int(job.energies[label_index]),
                )
                if self._trace is not None:
                    self._trace.record(cycle, "issue", job.variable_id, label_index)
                if label_index == 0:
                    job_index += 1
                    label_index = None
                else:
                    label_index -= 1
            cycle += 1
            guard += 1
            if guard > 10_000_000:
                raise ConfigError("new machine did not terminate")
        if self._trace is not None:
            # See LegacyMachine._run_scalar: only traced runs carry the
            # trace-window keys, so event-vs-scalar stats stay identical.
            stats["trace_events"] = len(self._trace.events)
            stats["trace_dropped"] = self._trace.dropped
        result = MachineResult(winners, winner_cycle, cycle, stats)
        result.stats["issue_cycles"] = issue_cycle_of  # type: ignore[assignment]
        return result


#: Paper-facing name for the Fig. 10/11 machine.
NewDesignMachine = NewMachine
