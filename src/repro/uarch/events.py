"""Event-driven batched timing engine for the structural RSU-G machines.

The scalar machines in :mod:`repro.uarch.machines` step **every cycle**
and, inside the cycle loop, scan every pending completion and every
FIFO slot.  That is the right shape for an oracle — each latch is
explicit and every paper figure maps onto one ``if`` — but it makes
machine-in-the-loop solves O(cycles · state) with a large Python
constant: one ``rng.random((1, 1))`` NumPy round-trip *per label*, one
``sorted(completions)`` scan *per cycle*.

This module recomputes the **same machine, cycle for cycle**, from its
scheduled events instead:

* **Issue events** are closed-form: both front ends issue one label per
  cycle, so the issue cycle of every evaluation is a cumulative sum over
  the job stream (plus, for the previous design, the LUT-rewrite stall
  blocks).
* **Completion events** replace the per-cycle ``sorted(completions)``
  scan: a RET observation scheduled at cycle ``r`` *is* its completion
  event at ``r + window - 1`` — nothing needs to be discovered by
  polling.  Idle cycles are never visited.
* **Back-end occupancy** of the new design is a pair of max-plus
  recurrences over the pop/convert/RET latches.  Under
  ``conflict_policy="count"`` nothing feeds back into timing, so the
  recurrence collapses to one ``np.maximum.accumulate``; under
  ``"stall"`` the RET-network conflicts do feed back, and a genuine
  event loop (one step per *evaluation*, not per cycle) walks the
  :class:`EventQueue` of winner deliveries and shadow-register updates.
* **Entropy** is drawn in one batched ``rng.random(total)`` call.  The
  scalar machine consumes one uniform per RET issue and, under the
  ``random`` tie policy, one row of uniforms per variable completion —
  interleaved in cycle order.  A NumPy ``Generator`` fills a bulk
  request from the identical double stream as repeated scalar requests,
  so slicing the bulk draw at the event-ordered offsets reproduces the
  scalar values bit for bit *and* leaves the generator in the identical
  final state.

The result is proven cycle-identical to the scalar oracle — same
winners, same winner cycles, same total cycles, same stats dict — by
``tests/test_uarch_events.py`` across designs, conflict policies,
``Time_bits``, label counts and temperature schedules, plus an
end-to-end machine-in-the-loop solve.

Not handled here (the machines fall back to the scalar oracle): runs
with a :class:`~repro.uarch.trace.PipelineTrace` attached (tracing
wants the per-cycle walk) and ``float_time`` configs (the idealized
IEEE-time stage is not part of the binned hardware design).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.convert import cached_boundary_table, cached_legacy_lut
from repro.core.params import RSUConfig
from repro.core.pipeline import legacy_temperature_stall
from repro.core.ttf import cutoff_bin, no_sample_bin
from repro.util.errors import ConfigError

#: Sentinel "minus infinity" for the max-plus recurrences (int64-safe).
_NEG = np.int64(-(1 << 60))


class EventQueue:
    """Minimal time-ordered event core (binary heap, FIFO within a cycle).

    The batched paths schedule completions arithmetically, but the
    ``stall`` conflict policy genuinely interleaves three event kinds —
    winner deliveries, shadow-register updates, RET issues — whose
    order feeds back into timing.  This queue keeps them sorted by
    ``(cycle, insertion order)`` so the walk advances from event to
    event, never cycle to cycle.
    """

    __slots__ = ("_heap", "_tick")

    def __init__(self):
        self._heap: list = []
        self._tick = 0

    def __len__(self) -> int:
        return len(self._heap)

    def push(self, cycle: int, payload) -> None:
        """Schedule ``payload`` at ``cycle``."""
        heapq.heappush(self._heap, (cycle, self._tick, payload))
        self._tick += 1

    def peek_cycle(self) -> Optional[int]:
        """Cycle of the earliest pending event (None when empty)."""
        return self._heap[0][0] if self._heap else None

    def pop_due(self, cycle: int) -> List[Tuple[int, object]]:
        """Pop every event scheduled at or before ``cycle``, in order."""
        due = []
        while self._heap and self._heap[0][0] <= cycle:
            item = heapq.heappop(self._heap)
            due.append((item[0], item[2]))
        return due


@dataclass
class JobStream:
    """Canonical flat view of a job list, in *evaluation* order.

    Both machines issue a job's labels with a decrementing counter
    (label ``M-1`` first), so evaluation order within a job is reversed
    label order; ``energies_eval`` stores energies in that order.
    """

    variable_ids: List[int]
    labels_per_job: np.ndarray  # (V,) int64
    offsets: np.ndarray  # (V + 1,) int64 prefix sums into the flat arrays
    energies_eval: np.ndarray  # (N,) int64 quantized energies, eval order

    @property
    def n_jobs(self) -> int:
        return len(self.variable_ids)

    @property
    def n_evals(self) -> int:
        return int(self.offsets[-1])


def stream_from_jobs(jobs: Sequence) -> JobStream:
    """Flatten a ``VariableJob`` sequence (labels reversed per job)."""
    labels_per_job = np.asarray([len(job.energies) for job in jobs], dtype=np.int64)
    offsets = np.zeros(len(jobs) + 1, dtype=np.int64)
    np.cumsum(labels_per_job, out=offsets[1:])
    energies_eval = np.concatenate(
        [np.asarray(job.energies)[::-1].astype(np.int64) for job in jobs]
    )
    return JobStream(
        [job.variable_id for job in jobs], labels_per_job, offsets, energies_eval
    )


def stream_from_matrix(quantized: np.ndarray) -> JobStream:
    """Flatten an ``(n_vars, M)`` quantized-energy matrix without
    materializing per-variable job objects (the backend hot path)."""
    arr = np.asarray(quantized)
    if arr.ndim != 2 or arr.shape[0] < 1 or arr.shape[1] < 1:
        raise ConfigError(f"expected a non-empty (n_vars, M) matrix, got {arr.shape}")
    n_vars, labels = arr.shape
    labels_per_job = np.full(n_vars, labels, dtype=np.int64)
    offsets = np.arange(n_vars + 1, dtype=np.int64) * labels
    energies_eval = np.ascontiguousarray(arr[:, ::-1]).astype(np.int64).reshape(-1)
    return JobStream(list(range(n_vars)), labels_per_job, offsets, energies_eval)


def ttf_bins_from_uniforms(
    config: RSUConfig, codes: np.ndarray, uniforms: np.ndarray
) -> np.ndarray:
    """Binned TTFs for pre-drawn uniforms; bit-identical to
    :meth:`repro.core.ttf.TTFSampler.sample` lane for lane.

    The scalar machines call ``sample(np.array([[code]]))`` once per
    label; every op past the uniform draw is elementwise, so running the
    identical op chain over the whole evaluation vector produces the
    identical bins — provided ``uniforms[i]`` is the very double the
    scalar call would have drawn (the caller's interleaving contract).
    """
    active = codes > 0
    rates = codes[active].astype(np.float64) * config.lambda0_per_bin
    continuous = np.log1p(-uniforms[active])
    np.negative(continuous, out=continuous)
    continuous /= rates
    bins = np.ceil(continuous, out=continuous)
    if config.clamp_to_tmax:
        np.minimum(bins, config.time_bins, out=bins)
    else:
        bins[bins > config.time_bins] = no_sample_bin(config)
    ttf = np.full(codes.shape, cutoff_bin(config), dtype=np.int64)
    ttf[active] = bins
    return ttf


def _interleaved_uniforms(
    rng: np.random.Generator,
    ret_cycles: np.ndarray,
    delivery_last: np.ndarray,
    labels_per_job: np.ndarray,
    tie_random: bool,
):
    """One bulk draw covering every uniform the scalar machine consumes.

    Per cycle the scalar machine drains completions (step 1 — a
    ``random`` tie-break row of ``M`` uniforms when a variable
    completes) *before* issuing to the RET stage (step 2 — one uniform
    per evaluation).  Encoding each event as ``2 * cycle + phase``
    (selection phase 0, TTF phase 1) and prefix-summing the draw counts
    in that order yields each event's offset into the single bulk draw.

    Returns ``(ttf_uniforms, sel_pool, sel_starts)``; the selection pair
    is ``(None, None)`` for deterministic tie policies.
    """
    n_evals = ret_cycles.size
    if not tie_random:
        return rng.random(n_evals), None, None
    keys = np.concatenate([ret_cycles * 2 + 1, delivery_last * 2])
    counts = np.concatenate(
        [np.ones(n_evals, dtype=np.int64), labels_per_job.astype(np.int64)]
    )
    order = np.argsort(keys, kind="stable")
    starts_sorted = np.zeros(order.size, dtype=np.int64)
    np.cumsum(counts[order][:-1], out=starts_sorted[1:])
    starts = np.empty_like(starts_sorted)
    starts[order] = starts_sorted
    pool = rng.random(int(counts.sum()))
    ttf_uniforms = pool[starts[:n_evals]]
    return ttf_uniforms, pool, starts[n_evals:]


def _select_winners(
    stream: JobStream,
    ttf_eval: np.ndarray,
    tie_policy: str,
    sel_pool: Optional[np.ndarray],
    sel_starts: Optional[np.ndarray],
) -> np.ndarray:
    """Per-variable first-to-fire winners, batched over equal label counts.

    Mirrors :func:`repro.core.base.select_first_to_fire` on each
    variable's TTF row (indexed by *label*, so the eval-order flat array
    is reversed per job): integer keys ``ttf * M + order`` and a row
    argmin.  Rows are grouped by label count so one vectorized argmin
    covers each group; per-row results are unchanged by the grouping.
    """
    winners = np.empty(stream.n_jobs, dtype=np.int64)
    job_labels = stream.labels_per_job
    for labels in np.unique(job_labels):
        labels = int(labels)
        jobs_idx = np.nonzero(job_labels == labels)[0]
        # Eval order is label M-1 .. 0: position offset + (M-1-label).
        gather = stream.offsets[jobs_idx][:, None] + (
            labels - 1 - np.arange(labels, dtype=np.int64)
        )
        rows = ttf_eval[gather]  # (n_group, M), indexed by label
        if tie_policy == "first":
            order = np.broadcast_to(np.arange(labels, dtype=np.int64), rows.shape)
        elif tie_policy == "last":
            order = np.broadcast_to(
                np.arange(labels - 1, -1, -1, dtype=np.int64), rows.shape
            )
        else:  # random — the uniform rows the scalar tracker would draw
            u_rows = sel_pool[
                sel_starts[jobs_idx][:, None] + np.arange(labels, dtype=np.int64)
            ]
            order = np.argsort(u_rows, axis=1).astype(np.int64)
        keys = rows * np.int64(labels) + order
        winners[jobs_idx] = np.argmin(keys, axis=1)
    return winners


def _finish(
    stream: JobStream,
    machine,
    codes_eval: np.ndarray,
    ret_cycles: np.ndarray,
    delivery_last: np.ndarray,
    issue_start: np.ndarray,
    stats: Dict[str, int],
):
    """Shared tail: batched entropy, TTF binning, selection, result dicts."""
    from repro.uarch.machines import MachineResult  # local: avoid cycle

    config = machine.config
    ttf_uniforms, sel_pool, sel_starts = _interleaved_uniforms(
        machine._rng,
        ret_cycles,
        delivery_last,
        stream.labels_per_job,
        config.tie_policy == "random",
    )
    ttf_eval = ttf_bins_from_uniforms(config, codes_eval, ttf_uniforms)
    winner_labels = _select_winners(
        stream, ttf_eval, config.tie_policy, sel_pool, sel_starts
    )
    winners = {
        vid: int(winner_labels[j]) for j, vid in enumerate(stream.variable_ids)
    }
    winner_cycle = {
        vid: int(delivery_last[j]) for j, vid in enumerate(stream.variable_ids)
    }
    stats["issue_cycles"] = {
        vid: int(issue_start[j]) for j, vid in enumerate(stream.variable_ids)
    }
    total_cycles = int(delivery_last[-1]) + 1
    return MachineResult(winners, winner_cycle, total_cycles, stats)


def _eval_index_within_job(stream: JobStream) -> np.ndarray:
    """Position of each evaluation within its job (0-based, eval order)."""
    return np.arange(stream.n_evals, dtype=np.int64) - np.repeat(
        stream.offsets[:-1], stream.labels_per_job
    )


def _delivery_cycles(ret_cycles: np.ndarray, window: int) -> np.ndarray:
    """Selection-latch cycle of each completion event.

    A multi-cycle window's TTF is drained in the window's last cycle
    (``r + window - 1``); a single-cycle window completes in its own
    issue cycle, after that cycle's drain step already ran, so it
    latches one cycle later.
    """
    return ret_cycles + (window - 1 if window > 1 else 1)


# ---------------------------------------------------------------------------
# Previous design (Fig. 2b)
# ---------------------------------------------------------------------------


def run_legacy_machine(
    machine, stream: JobStream, temperature_schedule: Optional[Dict[int, float]]
):
    """Event-driven run of :class:`~repro.uarch.machines.LegacyMachine`.

    The previous design is a hazard-free in-order pipe (the RET stage is
    replicated ``window``-fold, so with one issue per cycle a unit is
    always free): issue at ``t``, energy at ``t+1``, LUT at ``t+2``, RET
    issue at ``t+3``, completion at ``t+2+window``.  Only the issue
    stream needs computing — a temperature update inserts ``1 + stall``
    dead cycles (the update command's issue slot plus the LUT rewrite)
    ahead of its job — and every downstream event follows by fixed
    offsets.  The LUT *epoch* of each evaluation is its convert cycle
    searched against the rewrite cycles: the scalar machine rewrites the
    LUT the moment the update pops, so the tail of the preceding job
    (already issued, not yet converted) reads the new table; the
    searchsorted reproduces that boundary exactly.
    """
    temperature_schedule = temperature_schedule or {}
    config = machine.config
    window = machine.window
    stall = legacy_temperature_stall(config, machine._interface_bits)

    issue_start = np.empty(stream.n_jobs, dtype=np.int64)
    rewrite_cycles: List[int] = []
    rewrite_temps: List[float] = []
    cursor = 0
    for j in range(stream.n_jobs):
        if j in temperature_schedule:
            rewrite_cycles.append(cursor)
            rewrite_temps.append(temperature_schedule[j])
            cursor += 1 + stall
        issue_start[j] = cursor
        cursor += int(stream.labels_per_job[j])

    issue_eval = np.repeat(issue_start, stream.labels_per_job) + _eval_index_within_job(
        stream
    )
    convert_cycles = issue_eval + 2
    ret_cycles = issue_eval + 3
    delivery = _delivery_cycles(ret_cycles, window)
    delivery_last = delivery[stream.offsets[1:] - 1]

    # LUT epoch per evaluation: a rewrite at cycle c is visible to
    # conversions at cycles > c (the rewrite happens in the issue step,
    # after that cycle's convert step already ran).
    tables = [machine._lut] + [
        cached_legacy_lut(temp, config) for temp in rewrite_temps
    ]
    if rewrite_cycles:
        epoch = np.searchsorted(
            np.asarray(rewrite_cycles, dtype=np.int64), convert_cycles, side="left"
        )
        stacked = np.stack(tables)
        codes_eval = stacked[epoch, stream.energies_eval]
        machine._lut = tables[-1]  # match the scalar machine's end state
    else:
        codes_eval = machine._lut[stream.energies_eval]

    stats = {
        "hazard_stalls": 0,
        "temperature_stalls": stall * len(rewrite_cycles),
    }
    return _finish(
        stream, machine, codes_eval, ret_cycles, delivery_last, issue_start, stats
    )


# ---------------------------------------------------------------------------
# New design (Fig. 10 / Fig. 11)
# ---------------------------------------------------------------------------


def _boundary_codes(
    bounds: np.ndarray, scaled: np.ndarray, config: RSUConfig
) -> np.ndarray:
    """Comparison-based conversion over pre-scaled integer energies.

    Same construction as
    :func:`repro.core.convert.lambda_codes_by_boundaries`: one
    searchsorted against ``bounds + 1e-12`` (the scalar comparators'
    slop, bit for bit), then a gather of the halving code ladder.
    """
    interval = np.searchsorted(bounds + 1e-12, scaled, side="left")
    ladder = np.concatenate(
        [
            config.lambda_max_code >> np.arange(bounds.size, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
        ]
    )
    return ladder[interval]


def _scaled_energies(stream: JobStream) -> np.ndarray:
    """Per-evaluation ``energy - min(job energies)`` (the scaling stage)."""
    mins = np.minimum.reduceat(stream.energies_eval, stream.offsets[:-1])
    return stream.energies_eval - np.repeat(mins, stream.labels_per_job)


def _new_front_end(stream: JobStream) -> Tuple[np.ndarray, np.ndarray]:
    """Issue cycles and back-end availability of the decoupled front end.

    The front end never stalls: evaluation ``i`` issues at cycle ``i``.
    A job becomes poppable two cycles after its minimum latches (the
    latch lands in the FIFO-insert step of cycle ``issue(label 0) + 2``,
    and the pop step of a cycle runs before that cycle's insert step):
    ``avail(j) = first_issue(j) + M_j + 2``.
    """
    issue_start = stream.offsets[:-1].copy()
    avail = issue_start + stream.labels_per_job + 2
    return issue_start, avail


def _swap_epochs(
    machine,
    stream: JobStream,
    temperature_schedule: Dict[int, float],
    delivery_last: np.ndarray,
) -> Tuple[np.ndarray, List[np.ndarray]]:
    """Boundary-register epochs from the shadow-swap event walk.

    Updates arm the shadow registers in the issue step of their job's
    first cycle; the next winner delivery (a strictly later cycle —
    deliveries run before issues within a cycle) swaps them in.  Returns
    the swap cycles and the boundary table active from each swap on
    (index 0 is the pre-run table).
    """
    update_cycles = sorted(
        (int(stream.offsets[j]), temperature_schedule[j])
        for j in temperature_schedule
        if 0 <= j < stream.n_jobs
    )
    tables = [machine._bounds]
    swap_cycles: List[int] = []
    shadow = None
    cursor = 0
    for j in range(stream.n_jobs):
        delivery = int(delivery_last[j])
        while cursor < len(update_cycles) and update_cycles[cursor][0] < delivery:
            shadow = update_cycles[cursor][1]
            cursor += 1
        if shadow is not None:
            swap_cycles.append(delivery)
            tables.append(cached_boundary_table(shadow, machine.config))
            shadow = None
    machine._bounds = tables[-1]
    machine._shadow_bounds = None
    return np.asarray(swap_cycles, dtype=np.int64), tables


def _codes_by_epoch(
    convert_cycles: np.ndarray,
    scaled: np.ndarray,
    swap_cycles: np.ndarray,
    tables: List[np.ndarray],
    config: RSUConfig,
) -> np.ndarray:
    """Convert each evaluation against the boundary table live at its
    convert cycle (a swap at cycle ``d`` covers converts at ``>= d``)."""
    if swap_cycles.size == 0:
        return _boundary_codes(tables[0], scaled, config)
    epoch = np.searchsorted(swap_cycles, convert_cycles, side="right")
    codes = np.empty(scaled.shape, dtype=np.int64)
    for index, bounds in enumerate(tables):
        mask = epoch == index
        if np.any(mask):
            codes[mask] = _boundary_codes(bounds, scaled[mask], config)
    return codes


def _fifo_stats(
    stream: JobStream, pop_cycles: np.ndarray, stats: Dict[str, int]
) -> None:
    """High-water marks of the energy FIFO, from insert/pop event times.

    Entry ``i`` is inserted in cycle ``i + 2``; the machine samples the
    occupancy once per cycle after both the pop and the insert step, so
    the entry count at an insert cycle ``c`` is ``(inserts <= c) -
    (pops <= c)`` — and the maximum over all cycles is attained at
    insert cycles, the only moments occupancy grows.  Same construction
    per *variable* using each job's first insert and last pop.
    """
    n = stream.n_evals
    insert_cycles = np.arange(n, dtype=np.int64) + 2
    entries = np.arange(1, n + 1, dtype=np.int64) - np.searchsorted(
        pop_cycles, insert_cycles, side="right"
    )
    stats["fifo_max_entries"] = max(0, int(entries.max()))

    first_insert = stream.offsets[:-1] + 2
    last_pop = pop_cycles[stream.offsets[1:] - 1]
    variables = np.arange(1, stream.n_jobs + 1, dtype=np.int64) - np.searchsorted(
        last_pop, first_insert, side="right"
    )
    stats["fifo_max_variables"] = max(0, int(variables.max()))


def _count_policy_conflicts(
    ret_cycles: np.ndarray,
    codes_eval: np.ndarray,
    window: int,
    waveguides: int,
    stats: Dict[str, int],
) -> None:
    """Network-conflict stats for ``conflict_policy="count"``.

    Every same-code RET issue after the first within one observation
    window is a conflict (the active waveguide is a function of the
    window index, so the colliding network is fully keyed by
    ``(window, code)``).  Reuse violations are counted per first issue
    of a network in a new window whose rest gap is short — with the
    QDLED counter rotating the waveguide every window the gap between
    uses of one physical network is always a multiple of ``waveguides``,
    so the faithful computation below lands on the scalar oracle's zero.
    """
    active = codes_eval > 0
    n_active = int(np.count_nonzero(active))
    if n_active == 0:
        stats["network_conflicts"] = 0
        stats["reuse_violations"] = 0
        return
    window_index = ret_cycles[active] // window
    conc = np.log2(codes_eval[active]).astype(np.int64)
    n_conc = int(conc.max()) + 1
    pair_key = window_index * n_conc + conc
    unique_pairs = np.unique(pair_key)
    stats["network_conflicts"] = n_active - unique_pairs.size
    # Unique (network, window) uses, sorted; short gaps within one
    # physical network are violations.
    uniq_wi = unique_pairs // n_conc
    uniq_conc = unique_pairs % n_conc
    network = (uniq_wi % waveguides) * n_conc + uniq_conc
    order = np.lexsort((uniq_wi, network))
    network, uniq_wi = network[order], uniq_wi[order]
    same = network[1:] == network[:-1]
    gaps = uniq_wi[1:] - uniq_wi[:-1]
    stats["reuse_violations"] = int(np.count_nonzero(same & (gaps < waveguides)))


def run_new_machine(
    machine, stream: JobStream, temperature_schedule: Optional[Dict[int, float]]
):
    """Event-driven run of :class:`~repro.uarch.machines.NewMachine`.

    Back-end latch recurrences (steps ordered RET < convert < pop
    within a cycle; ``p``/``c``/``r`` are the cycles evaluation ``i``
    enters the scale latch, compare latch and RET stage)::

        p(i) = max(c(i-1), avail(job(i)))      # pop when scale latch frees
        c(i) = max(p(i) + 1, r(i-1))           # convert when compare frees
        r(i) = first conflict-free cycle >= c(i) + 1

    Under ``conflict_policy="count"`` every attempt succeeds, the
    system is max-plus linear and one ``np.maximum.accumulate`` yields
    every latch time.  Under ``"stall"`` a same-window same-code issue
    parks in the compare latch until the window turns — timing now
    depends on the codes, which depend on the boundary epochs, which
    depend on earlier winner deliveries — so an :class:`EventQueue`
    walk advances evaluation by evaluation, draining due
    delivery/update events before each convert.
    """
    temperature_schedule = temperature_schedule or {}
    config = machine.config
    window = machine.window
    waveguides = machine.waveguides
    issue_start, avail = _new_front_end(stream)
    scaled = _scaled_energies(stream)
    n = stream.n_evals

    stats = {
        "network_conflicts": 0,
        "conflict_stalls": 0,
        "fifo_max_entries": 0,
        "fifo_max_variables": 0,
        "reuse_violations": 0,
        "temperature_stalls": 0,
    }

    if machine._conflict_policy == "count":
        # Max-plus closed form: c(i) = i + 1 + max_{k<=i}(avail(k) - k)
        # with avail(k) defined at each job's first evaluation.
        shift = np.full(n, _NEG, dtype=np.int64)
        shift[stream.offsets[:-1]] = stream.labels_per_job + 2
        convert_cycles = (
            np.arange(n, dtype=np.int64) + 1 + np.maximum.accumulate(shift)
        )
        pop_cycles = convert_cycles - 1
        ret_cycles = convert_cycles + 1
        delivery_last = _delivery_cycles(ret_cycles, window)[stream.offsets[1:] - 1]
        swap_cycles, tables = _swap_epochs(
            machine, stream, temperature_schedule, delivery_last
        )
        codes_eval = _codes_by_epoch(
            convert_cycles, scaled, swap_cycles, tables, config
        )
        _count_policy_conflicts(ret_cycles, codes_eval, window, waveguides, stats)
    else:
        codes_eval, pop_cycles, ret_cycles, delivery_last = _stall_policy_walk(
            machine, stream, temperature_schedule, avail, scaled, stats
        )

    _fifo_stats(stream, pop_cycles, stats)
    return _finish(
        stream, machine, codes_eval, ret_cycles, delivery_last, issue_start, stats
    )


def _stall_policy_walk(
    machine,
    stream: JobStream,
    temperature_schedule: Dict[int, float],
    avail: np.ndarray,
    scaled: np.ndarray,
    stats: Dict[str, int],
):
    """Sequential event walk for ``conflict_policy="stall"``.

    One iteration per *evaluation* (never per cycle): due winner
    deliveries swap the boundary registers, the evaluation converts
    against the live table, and a blocked RET issue fast-forwards to the
    next window boundary, charging the skipped cycles as conflict
    stalls exactly as the scalar retry loop does.
    """
    config = machine.config
    window = machine.window
    waveguides = machine.waveguides
    n = stream.n_evals
    last_eval_of_job = stream.offsets[1:] - 1
    job_of_eval = np.repeat(
        np.arange(stream.n_jobs, dtype=np.int64), stream.labels_per_job
    )
    updates = sorted(
        (int(stream.offsets[j]), temperature_schedule[j])
        for j in temperature_schedule
        if 0 <= j < stream.n_jobs
    )
    # Per-epoch scaled-energy -> code table: the boundary comparison
    # depends only on the integer scaled energy, so one small gather
    # table per epoch replaces the per-evaluation comparator walk.
    code_lut_domain = int(scaled.max()) + 1
    domain = np.arange(code_lut_domain, dtype=np.int64)
    code_lut = _boundary_codes(machine._bounds, domain, config)
    final_bounds = machine._bounds
    shadow: Optional[float] = None
    update_cursor = 0

    deliveries = EventQueue()
    network_last_use: Dict[Tuple[int, int], int] = {}
    pop_cycles = np.empty(n, dtype=np.int64)
    ret_cycles = np.empty(n, dtype=np.int64)
    codes_eval = np.empty(n, dtype=np.int64)
    delivery_last = np.empty(stream.n_jobs, dtype=np.int64)
    conv_prev = int(_NEG)
    ret_prev = int(_NEG)
    is_first = np.zeros(n, dtype=bool)
    is_first[stream.offsets[:-1]] = True

    for i in range(n):
        job = int(job_of_eval[i])
        pop = max(conv_prev, int(avail[job])) if is_first[i] else conv_prev
        convert = max(pop + 1, ret_prev)
        # Drain deliveries due by the convert cycle: each swaps in the
        # latest shadow armed strictly before it.
        while deliveries.peek_cycle() is not None and deliveries.peek_cycle() <= convert:
            (cycle, _), = deliveries.pop_due(deliveries.peek_cycle())
            while update_cursor < len(updates) and updates[update_cursor][0] < cycle:
                shadow = updates[update_cursor][1]
                update_cursor += 1
            if shadow is not None:
                final_bounds = cached_boundary_table(shadow, config)
                code_lut = _boundary_codes(final_bounds, domain, config)
                shadow = None
        code = int(code_lut[scaled[i]])
        attempt = convert + 1
        if code > 0:
            conc = code.bit_length() - 1  # int(log2) of a power of two
            while True:
                window_index = attempt // window
                key = (window_index % waveguides, conc)
                last = network_last_use.get(key)
                if last == window_index:
                    stats["network_conflicts"] += 1
                    stats["conflict_stalls"] += 1
                    attempt += 1
                    continue
                if last is not None and window_index - last < waveguides:
                    stats["reuse_violations"] += 1
                network_last_use[key] = window_index
                break
        pop_cycles[i] = pop
        ret_cycles[i] = attempt
        codes_eval[i] = code
        conv_prev, ret_prev = convert, attempt
        if i == last_eval_of_job[job]:
            delivered = attempt + (window - 1 if window > 1 else 1)
            delivery_last[job] = delivered
            deliveries.push(delivered, job)

    machine._bounds = final_bounds
    machine._shadow_bounds = None
    return codes_eval, pop_cycles, ret_cycles, delivery_last
