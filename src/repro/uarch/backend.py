"""Machine-in-the-loop sampler backend.

Wraps a structural :class:`~repro.uarch.machines.NewMachine` (or
:class:`LegacyMachine`) as a :class:`~repro.core.base.SamplerBackend`,
so an entire MCMC application solve can run through the cycle-driven
pipeline model — the strongest end-to-end validation that the
microarchitecture implements the functional semantics.  It also
accumulates cycle counts, giving measured (not closed-form) throughput
for a real workload.
"""

from __future__ import annotations

import numpy as np

from typing import Dict

from repro.core.base import SamplerBackend
from repro.core.energy import EnergyStage
from repro.core.params import RSUConfig
from repro.obs import telemetry as obs
from repro.uarch.machines import LegacyMachine, NewMachine
from repro.util.errors import ConfigError


class MachineBackend(SamplerBackend):
    """Runs every Gibbs batch through a structural pipeline machine.

    Parameters
    ----------
    config:
        Design point; selects the machine variant (the full technique
        stack runs on :class:`NewMachine`, the unscaled legacy stack on
        :class:`LegacyMachine`).
    energy_full_scale:
        Raw-energy full scale for the 8-bit front end.
    rng:
        Entropy source shared by the machine's RET model.

    use_event_driven:
        Route each batch through the event-driven engine
        (:mod:`repro.uarch.events`, default) or the per-cycle scalar
        oracle.  Both produce identical labels and cycle counts; the
        event path is the fast one.
    conflict_policy:
        RET-network conflict handling for the new-design machine:
        ``"count"`` (default) tallies conflicts without timing impact,
        ``"stall"`` delays the conflicting issue into the next window —
        the configuration under which ``uarch.stalls`` telemetry is
        non-zero on real workloads.  Ignored by the legacy machine.

    Notes
    -----
    Machines are cached per grid temperature (the annealing schedule
    revisits only a few quantized temperatures, and a machine carries no
    run-to-run state beyond the shared RNG), so conversion tables are
    built once per temperature, not once per batch.  Total cycles across
    all batches accumulate in :attr:`total_cycles`.
    """

    name = "machine"

    def __init__(
        self,
        config: RSUConfig,
        energy_full_scale: float,
        rng: np.random.Generator,
        use_event_driven: bool = True,
        conflict_policy: str = "count",
    ):
        new_style = config.scaling and config.cutoff and config.pow2_lambda
        legacy_style = not (config.scaling or config.cutoff or config.pow2_lambda)
        if not (new_style or legacy_style):
            raise ConfigError(
                "MachineBackend supports the full technique stack or the "
                "fully legacy stack"
            )
        self.config = config
        self.energy_stage = EnergyStage(config.energy_bits, energy_full_scale)
        self._rng = rng
        self._new_style = new_style
        self._use_event_driven = use_event_driven
        self._conflict_policy = conflict_policy
        self._machines: Dict[float, object] = {}
        self.total_cycles = 0
        self.batches = 0

    def _machine_for(self, grid_temperature: float):
        machine = self._machines.get(grid_temperature)
        if machine is None:
            if self._new_style:
                machine = NewMachine(
                    self.config,
                    grid_temperature,
                    self._rng,
                    conflict_policy=self._conflict_policy,
                    use_event_driven=self._use_event_driven,
                )
            else:
                machine = LegacyMachine(
                    self.config,
                    grid_temperature,
                    self._rng,
                    use_event_driven=self._use_event_driven,
                )
            self._machines[grid_temperature] = machine
        return machine

    def _sample_batch(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        quantized = self.energy_stage.quantize(energies)
        grid_temperature = self.energy_stage.quantized_temperature(temperature)
        machine = self._machine_for(grid_temperature)
        result = machine.run_matrix(quantized)
        self.total_cycles += result.total_cycles
        self.batches += 1
        tel = obs.active()
        if tel is not None:
            tel.inc("uarch.batches")
            tel.inc("uarch.cycles", result.total_cycles)
            tel.inc("uarch.labels", quantized.size)
            stats = result.stats or {}
            stalls = sum(
                value for key, value in stats.items() if key.endswith("stalls")
            )
            tel.inc("uarch.stalls", stalls)
            tel.inc("uarch.network_conflicts", stats.get("network_conflicts", 0))
            tel.inc("uarch.trace_dropped", stats.get("trace_dropped", 0))
        return np.fromiter(
            (result.winners[v] for v in range(quantized.shape[0])),
            dtype=np.int64,
            count=quantized.shape[0],
        )


class CycleCountingBackend(MachineBackend):
    """MachineBackend that also records per-batch cycle counts."""

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self.batch_cycles = []
        self.batch_labels = []

    def _sample_batch(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        before = self.total_cycles
        labels = super()._sample_batch(energies, temperature)
        self.batch_cycles.append(self.total_cycles - before)
        self.batch_labels.append(int(np.prod(energies.shape)))
        return labels

    def measured_throughput(self) -> float:
        """Label evaluations per cycle, measured across all batches."""
        if not self.batch_cycles:
            raise ConfigError("no batches have been sampled yet")
        return float(sum(self.batch_labels) / sum(self.batch_cycles))
