"""First-order grid Markov Random Field model.

The three applications share one MRF shape (Fig. 1): a 4-connected
pixel grid where the energy of assigning label ``i`` to site ``s`` is

    E(s, i) = unary(s, i) + weight * sum_{n in N4(s)} dist(i, label_n)

with an application-specific unary cost volume and label-distance
matrix.  The model exposes vectorized per-colour-class energy
evaluation for the chromatic Gibbs sweep in :mod:`repro.mrf.solver`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.util.errors import ConfigError, DataError


@dataclass
class GridMRF:
    """A pairwise MRF on an H x W 4-connected grid.

    Parameters
    ----------
    unary:
        Cost volume of shape ``(H, W, M)``: the singleton energy of each
        label at each pixel.
    pairwise:
        Label-distance matrix of shape ``(M, M)`` (the doubleton energy
        before weighting); built by
        :func:`repro.core.distance.label_distance_matrix`.
    weight:
        Doubleton weight multiplying the pairwise term.
    connectivity:
        Neighbourhood order: 4 (first-order, the paper's model) or 8
        (second-order, adding the diagonals — an extension for the
        "wider application domain" future work).  8-connectivity needs
        a 4-colour sweep schedule (see :func:`coloring_masks`).
    """

    unary: np.ndarray
    pairwise: np.ndarray
    weight: float
    connectivity: int = 4
    _padded_pairwise: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        self.unary = np.ascontiguousarray(self.unary, dtype=np.float64)
        self.pairwise = np.ascontiguousarray(self.pairwise, dtype=np.float64)
        if self.unary.ndim != 3:
            raise DataError(f"unary must be (H, W, M), got shape {self.unary.shape}")
        m = self.unary.shape[2]
        if self.pairwise.shape != (m, m):
            raise DataError(
                f"pairwise must be ({m}, {m}) to match unary, got {self.pairwise.shape}"
            )
        if not np.allclose(self.pairwise, self.pairwise.T):
            raise DataError("pairwise distance matrix must be symmetric")
        if self.weight < 0:
            raise ConfigError(f"weight must be >= 0, got {self.weight}")
        if self.connectivity not in (4, 8):
            raise ConfigError(f"connectivity must be 4 or 8, got {self.connectivity}")
        # Row M is the "missing neighbour" sentinel contributing zero.
        padded = np.zeros((m + 1, m), dtype=np.float64)
        padded[:m] = self.pairwise
        self._padded_pairwise = padded

    @property
    def shape(self) -> tuple:
        """(H, W) grid shape."""
        return self.unary.shape[:2]

    @property
    def n_labels(self) -> int:
        """Number of labels M."""
        return self.unary.shape[2]

    @property
    def padded_pairwise(self) -> np.ndarray:
        """``(M + 1, M)`` pairwise table with the sentinel row.

        Row ``M`` is the "missing neighbour" row of zeros, so a gather
        indexed by a label grid padded with sentinel ``M`` contributes
        nothing at the border.  Shared with the fused sweep kernel
        (:mod:`repro.mrf.kernel`), which indexes it per direction
        instead of materializing the ``(connectivity, N, M)`` stack.
        """
        return self._padded_pairwise

    def max_energy(self) -> float:
        """Upper bound on any site energy; used as the RSU full scale."""
        return float(
            self.unary.max() + self.connectivity * self.weight * self.pairwise.max()
        )

    def _neighbor_labels(self, labels: np.ndarray) -> np.ndarray:
        """Stack of neighbour labels with sentinel M outside the grid.

        Returns shape ``(connectivity, H, W)``; the first four entries
        are up, down, left, right, followed by the diagonals when
        ``connectivity == 8``.
        """
        h, w = labels.shape
        m = self.n_labels
        padded = np.full((h + 2, w + 2), m, dtype=np.int64)
        padded[1:-1, 1:-1] = labels
        stacks = [
            padded[0:-2, 1:-1],  # up
            padded[2:, 1:-1],  # down
            padded[1:-1, 0:-2],  # left
            padded[1:-1, 2:],  # right
        ]
        if self.connectivity == 8:
            stacks += [
                padded[0:-2, 0:-2],  # up-left
                padded[0:-2, 2:],  # up-right
                padded[2:, 0:-2],  # down-left
                padded[2:, 2:],  # down-right
            ]
        return np.stack(stacks)

    def site_energies(self, labels: np.ndarray, mask: np.ndarray) -> np.ndarray:
        """Energies of every label at the masked sites.

        Parameters
        ----------
        labels:
            Current label grid, shape ``(H, W)``.
        mask:
            Boolean grid selecting the sites to evaluate (one colour
            class of the checkerboard).

        Returns
        -------
        numpy.ndarray
            Shape ``(mask.sum(), M)`` energies in raster order of the
            masked sites.
        """
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != self.shape:
            raise DataError(f"labels shape {labels.shape} != grid shape {self.shape}")
        neighbors = self._neighbor_labels(labels)[:, mask]  # (connectivity, N)
        pair = self._padded_pairwise[neighbors].sum(axis=0)  # (N, M)
        return self.unary[mask] + self.weight * pair

    def total_energy(self, labels: np.ndarray) -> float:
        """Total MRF energy of a labeling (each edge counted once)."""
        labels = np.asarray(labels, dtype=np.int64)
        if labels.shape != self.shape:
            raise DataError(f"labels shape {labels.shape} != grid shape {self.shape}")
        h, w = self.shape
        rows = np.arange(h)[:, None]
        cols = np.arange(w)[None, :]
        unary_sum = float(self.unary[rows, cols, labels].sum())
        horizontal = self.pairwise[labels[:, :-1], labels[:, 1:]].sum()
        vertical = self.pairwise[labels[:-1, :], labels[1:, :]].sum()
        total = float(horizontal + vertical)
        if self.connectivity == 8:
            main_diag = self.pairwise[labels[:-1, :-1], labels[1:, 1:]].sum()
            anti_diag = self.pairwise[labels[:-1, 1:], labels[1:, :-1]].sum()
            total += float(main_diag + anti_diag)
        return unary_sum + self.weight * total


def checkerboard_masks(shape: tuple) -> tuple:
    """The two conditionally independent colour classes of a 4-grid."""
    h, w = shape
    if h < 1 or w < 1:
        raise DataError(f"grid shape must be positive, got {shape}")
    rows = np.arange(h)[:, None]
    cols = np.arange(w)[None, :]
    even = (rows + cols) % 2 == 0
    return even, ~even


def coloring_masks(shape: tuple, connectivity: int = 4) -> tuple:
    """Conditionally independent colour classes for a grid sweep.

    4-connectivity admits the two-colour checkerboard; 8-connectivity
    needs four colours (the 2x2 block pattern) so no two same-colour
    sites share an edge or diagonal.
    """
    if connectivity == 4:
        return checkerboard_masks(shape)
    if connectivity != 8:
        raise DataError(f"connectivity must be 4 or 8, got {connectivity}")
    h, w = shape
    if h < 1 or w < 1:
        raise DataError(f"grid shape must be positive, got {shape}")
    rows = np.arange(h)[:, None] % 2
    cols = np.arange(w)[None, :] % 2
    return tuple(
        (rows == r) & (cols == c) for r in (0, 1) for c in (0, 1)
    )
