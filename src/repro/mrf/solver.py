"""MCMC solver: chromatic Gibbs sweeps with a pluggable sampler backend.

This is the outer loop of Fig. 1.  Each iteration performs one full
sweep of the grid in checkerboard order: all even-parity sites are
resampled simultaneously (they are conditionally independent given the
odd sites), then all odd sites.  The per-site categorical draw is
delegated to a :class:`~repro.core.base.SamplerBackend`, so the same
solver runs the float software baseline, either RSU-G design, or a
pseudo-RNG unit — exactly how the paper's functional simulator swaps
the sampling inner loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional

import numpy as np

from repro.core.base import SamplerBackend
from repro.mrf.annealing import Schedule
from repro.mrf.checkpoint import (
    CheckpointWriter,
    SolveCheckpoint,
    resolve_checkpoint,
)
from repro.mrf.kernel import SweepWorkspace
from repro.mrf.model import GridMRF, coloring_masks
from repro.obs import telemetry as obs
from repro.rng.streams import generator_state, set_generator_state
from repro.util.errors import ConfigError


@dataclass
class SolveResult:
    """Outcome of an MCMC run."""

    labels: np.ndarray
    energy_history: List[float] = field(default_factory=list)
    temperature_history: List[float] = field(default_factory=list)

    @property
    def iterations(self) -> int:
        """Number of completed sweeps."""
        return len(self.energy_history)

    @property
    def final_energy(self) -> float:
        """Total MRF energy after the last sweep."""
        if not self.energy_history:
            raise ConfigError("no iterations were run")
        return self.energy_history[-1]


class MCMCSolver:
    """Gibbs/simulated-annealing solver over a :class:`GridMRF`.

    Parameters
    ----------
    model:
        The MRF to sample.
    sampler:
        Backend drawing labels from per-site energies.
    schedule:
        Annealing schedule supplying the per-iteration temperature.
    init:
        Initial labeling: ``"unary"`` (argmin of the unary term, the
        usual data-cost initialization), ``"random"``, or an explicit
        ``(H, W)`` integer array.
    seed:
        Seed for the solver's own randomness (initialization).
    track_energy:
        Record the total energy after every sweep.  Costs one full
        energy evaluation per iteration; disable for benchmarks.
    use_fused:
        Run :meth:`run`'s sweeps through the fused allocation-free
        kernel (:class:`repro.mrf.kernel.SweepWorkspace`, the default).
        ``False`` keeps the reference per-sweep pipeline — byte-identical
        by contract (``tests/test_mrf_kernel.py`` enforces it), retained
        as the oracle and for A/B benchmarking.
    """

    def __init__(
        self,
        model: GridMRF,
        sampler: SamplerBackend,
        schedule: Schedule,
        init: object = "unary",
        seed: int = 0,
        track_energy: bool = True,
        use_fused: bool = True,
    ):
        self.model = model
        self.sampler = sampler
        self.schedule = schedule
        self.track_energy = track_energy
        self.use_fused = use_fused
        self._rng = np.random.default_rng(seed)
        self._masks = coloring_masks(model.shape, model.connectivity)
        self._init = init
        self._workspace: Optional[SweepWorkspace] = None
        # Resolved once: sweep() runs twice per iteration on the hot path.
        self._wants_current = bool(getattr(sampler, "wants_current_labels", False))

    @property
    def workspace(self) -> SweepWorkspace:
        """The solver's fused sweep workspace (created on first use)."""
        if self._workspace is None:
            self._workspace = SweepWorkspace(self.model, self._masks)
        return self._workspace

    def initial_labels(self) -> np.ndarray:
        """Build the starting labeling according to ``init``."""
        if isinstance(self._init, str):
            if self._init == "unary":
                return np.argmin(self.model.unary, axis=2).astype(np.int64)
            if self._init == "random":
                return self._rng.integers(
                    0, self.model.n_labels, size=self.model.shape, dtype=np.int64
                )
            raise ConfigError(f"unknown init {self._init!r}")
        labels = np.asarray(self._init, dtype=np.int64)
        if labels.shape != self.model.shape:
            raise ConfigError(
                f"init labels shape {labels.shape} != grid shape {self.model.shape}"
            )
        if labels.min() < 0 or labels.max() >= self.model.n_labels:
            raise ConfigError("init labels out of range")
        return labels.copy()

    def sweep(self, labels: np.ndarray, temperature: float) -> np.ndarray:
        """One full checkerboard sweep, in place; returns ``labels``.

        Backends that set ``wants_current_labels`` (e.g. the
        Metropolis-Hastings samplers, whose proposal is relative to the
        current state) receive the sites' current labels through
        ``sample_given_current``.
        """
        for mask in self._masks:
            energies = self.model.site_energies(labels, mask)
            if self._wants_current:
                labels[mask] = self.sampler.sample_given_current(
                    energies, temperature, labels[mask]
                )
            else:
                labels[mask] = self.sampler.sample(energies, temperature)
        return labels

    def snapshot(self, sweep: int, labels: np.ndarray, result: SolveResult) -> SolveCheckpoint:
        """Resumable checkpoint after ``sweep`` completed sweeps.

        Captures a copy of the labels, the recorded histories, and the
        full RNG state of both the solver (initialization generator) and
        the sampler backend — everything :meth:`run` needs to continue
        byte-identically from this point.
        """
        return SolveCheckpoint(
            kind="solver",
            sweep=sweep,
            labels=np.array(labels, dtype=np.int64, copy=True),
            rng={
                "solver": generator_state(self._rng),
                "sampler": self.sampler.getstate(),
            },
            history={
                "energy": list(result.energy_history),
                "temperature": list(result.temperature_history),
            },
            meta={"shape": tuple(self.model.shape), "sampler": self.sampler.name},
        )

    def _restore(self, checkpoint: SolveCheckpoint, iterations: int):
        """(start sweep, labels, prefilled result) from a checkpoint."""
        if checkpoint.sweep >= iterations:
            raise ConfigError(
                f"checkpoint already has {checkpoint.sweep} sweeps; "
                f"cannot resume a {iterations}-sweep run"
            )
        labels = np.array(checkpoint.labels, dtype=np.int64, copy=True)
        if labels.shape != self.model.shape:
            raise ConfigError(
                f"checkpoint labels shape {labels.shape} != grid shape {self.model.shape}"
            )
        expected = checkpoint.meta.get("sampler")
        if expected is not None and expected != self.sampler.name:
            raise ConfigError(
                f"checkpoint was taken with sampler {expected!r}, "
                f"this solver uses {self.sampler.name!r}"
            )
        set_generator_state(self._rng, checkpoint.rng["solver"])
        self.sampler.setstate(checkpoint.rng["sampler"])
        result = SolveResult(
            labels=labels,
            energy_history=list(checkpoint.history["energy"]),
            temperature_history=list(checkpoint.history["temperature"]),
        )
        return checkpoint.sweep, labels, result

    def run(
        self,
        iterations: int,
        callback: Optional[Callable[[int, np.ndarray, float], None]] = None,
        *,
        checkpoint_every: int = 0,
        checkpoint_path=None,
        checkpoint_sink=None,
        resume=None,
    ) -> SolveResult:
        """Run ``iterations`` sweeps and return the result.

        ``callback(iteration, labels, temperature)`` is invoked after
        each sweep (labels passed by reference; copy if retained).

        ``checkpoint_every=N`` snapshots the solve every N sweeps to
        ``checkpoint_path`` (atomic checksummed envelope) and/or
        ``checkpoint_sink`` (a callable).  ``resume`` accepts a
        :class:`~repro.mrf.checkpoint.SolveCheckpoint` or a path to one;
        the resumed run continues byte-identically — same labels, same
        histories, same RNG stream consumption — as if never interrupted.
        """
        if iterations < 1:
            raise ConfigError(f"iterations must be >= 1, got {iterations}")
        writer = CheckpointWriter(checkpoint_every, checkpoint_path, checkpoint_sink)
        checkpoint = resolve_checkpoint(resume, "solver")
        if checkpoint is not None:
            start, labels, result = self._restore(checkpoint, iterations)
        else:
            start = 0
            labels = self.initial_labels()
            result = SolveResult(labels=labels)
        workspace = self.workspace if self.use_fused else None
        if workspace is not None:
            workspace.bind(labels)
        tel = obs.active()
        prev_labels = labels.copy() if tel is not None else None
        for k in range(start, iterations):
            temperature = self.schedule.temperature(k)
            if tel is not None:
                with tel.span("solver.sweep"):
                    if workspace is not None:
                        workspace.sweep(
                            labels, temperature, self.sampler, self._wants_current
                        )
                    else:
                        self.sweep(labels, temperature)
            elif workspace is not None:
                workspace.sweep(labels, temperature, self.sampler, self._wants_current)
            else:
                self.sweep(labels, temperature)
            result.temperature_history.append(temperature)
            if self.track_energy:
                result.energy_history.append(self.model.total_energy(labels))
            else:
                result.energy_history.append(float("nan"))
            if tel is not None:
                flips = int(np.count_nonzero(labels != prev_labels))
                np.copyto(prev_labels, labels)
                tel.inc("solver.sweeps")
                tel.inc("solver.flips", flips)
                tel.inc("solver.site_updates", labels.size)
                tel.observe("solver.acceptance_rate", flips / labels.size)
                tel.set_gauge("solver.temperature", temperature)
                if self.track_energy:
                    tel.set_gauge("solver.energy", result.energy_history[-1])
            if callback is not None:
                callback(k, labels, temperature)
                if workspace is not None:
                    # The callback may have mutated the labels it was
                    # handed; resynchronize the padded mirror.
                    workspace.bind(labels)
            writer.maybe_emit(k + 1, lambda: self.snapshot(k + 1, labels, result))
        result.labels = labels
        return result
