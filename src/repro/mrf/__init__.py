"""Markov Random Field substrate: grid model, annealing, MCMC solver."""

from repro.mrf.annealing import (
    ConstantSchedule,
    GeometricSchedule,
    LinearSchedule,
    Schedule,
    geometric_for_span,
)
from repro.mrf.batch import BatchedSweepWorkspace, EnsembleResult, EnsembleSolver
from repro.mrf.checkpoint import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointWriter,
    SolveCheckpoint,
    load_checkpoint,
    save_checkpoint,
)
from repro.mrf.kernel import SweepWorkspace
from repro.mrf.model import GridMRF, checkerboard_masks, coloring_masks
from repro.mrf.solver import MCMCSolver, SolveResult
from repro.mrf.tempering import (
    ParallelTempering,
    TemperingResult,
    geometric_ladder,
    swap_log_alpha,
    swap_probability,
)

__all__ = [
    "ConstantSchedule",
    "GeometricSchedule",
    "LinearSchedule",
    "Schedule",
    "geometric_for_span",
    "GridMRF",
    "checkerboard_masks",
    "coloring_masks",
    "MCMCSolver",
    "SolveResult",
    "SweepWorkspace",
    "CHECKPOINT_FORMAT_VERSION",
    "CheckpointWriter",
    "SolveCheckpoint",
    "load_checkpoint",
    "save_checkpoint",
    "BatchedSweepWorkspace",
    "EnsembleResult",
    "EnsembleSolver",
    "ParallelTempering",
    "TemperingResult",
    "geometric_ladder",
    "swap_log_alpha",
    "swap_probability",
]
