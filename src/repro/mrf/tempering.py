"""Parallel tempering (replica exchange) over grid MRFs.

Another "more than Gibbs sampling" extension (Sec. IV-D): several
chains run at a ladder of fixed temperatures; periodically, adjacent
chains propose to swap their states with the Metropolis acceptance

    P(swap) = min(1, exp((1/T_i - 1/T_j) * (E_i - E_j))),

which preserves each chain's stationary distribution while letting the
cold chain escape local minima through the hot ones.  Each chain uses
an independent sampler backend, so tempering runs identically on the
software baseline or on RSU-G hardware models (one RSU-G per replica —
exactly the multi-unit layouts of Sec. IV-B.6).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence

import numpy as np

from repro.core.base import SamplerBackend
from repro.mrf.annealing import ConstantSchedule
from repro.mrf.model import GridMRF
from repro.mrf.solver import MCMCSolver
from repro.util.errors import ConfigError


@dataclass
class TemperingResult:
    """Outcome of a replica-exchange run."""

    labels: np.ndarray  # the coldest chain's final state
    temperatures: List[float]
    energy_history: List[List[float]]  # per sweep, per chain
    swap_attempts: int = 0
    swaps_accepted: int = 0

    @property
    def swap_rate(self) -> float:
        """Fraction of proposed swaps accepted."""
        if self.swap_attempts == 0:
            return 0.0
        return self.swaps_accepted / self.swap_attempts

    @property
    def final_energy(self) -> float:
        """Cold-chain energy after the last sweep."""
        return self.energy_history[-1][0]


class ParallelTempering:
    """Replica-exchange sampler over a shared :class:`GridMRF`.

    Parameters
    ----------
    model:
        The MRF all replicas sample.
    sampler_factory:
        Called once per replica (with the replica index) to build its
        backend — independent entropy per chain.
    temperatures:
        Ladder, coldest first; must be strictly increasing.
    swap_interval:
        Sweeps between swap rounds.
    """

    def __init__(
        self,
        model: GridMRF,
        sampler_factory: Callable[[int], SamplerBackend],
        temperatures: Sequence[float],
        swap_interval: int = 1,
        seed: int = 0,
    ):
        temps = list(temperatures)
        if len(temps) < 2:
            raise ConfigError("need at least two replicas")
        if any(t <= 0 for t in temps):
            raise ConfigError("temperatures must be positive")
        if any(b <= a for a, b in zip(temps, temps[1:])):
            raise ConfigError("temperatures must be strictly increasing")
        if swap_interval < 1:
            raise ConfigError("swap_interval must be >= 1")
        self.model = model
        self.temperatures = temps
        self.swap_interval = swap_interval
        self._rng = np.random.default_rng(seed)
        self._solvers = [
            MCMCSolver(
                model,
                sampler_factory(index),
                ConstantSchedule(temperature),
                init="random",
                seed=seed + index,
                track_energy=False,
            )
            for index, temperature in enumerate(temps)
        ]

    def run(self, sweeps: int) -> TemperingResult:
        """Run all replicas for ``sweeps`` sweeps with periodic swaps."""
        if sweeps < 1:
            raise ConfigError("sweeps must be >= 1")
        states = [solver.initial_labels() for solver in self._solvers]
        result = TemperingResult(
            labels=states[0], temperatures=self.temperatures, energy_history=[]
        )
        for sweep_index in range(sweeps):
            energies = []
            for solver, temperature, labels in zip(
                self._solvers, self.temperatures, states
            ):
                solver.sweep(labels, temperature)
                energies.append(self.model.total_energy(labels))
            if (sweep_index + 1) % self.swap_interval == 0:
                # Alternate even/odd adjacent pairs across rounds.
                start = (sweep_index // self.swap_interval) % 2
                for i in range(start, len(states) - 1, 2):
                    result.swap_attempts += 1
                    if self._accept_swap(energies[i], energies[i + 1], i):
                        states[i], states[i + 1] = states[i + 1], states[i]
                        energies[i], energies[i + 1] = energies[i + 1], energies[i]
                        result.swaps_accepted += 1
            result.energy_history.append(energies)
        result.labels = states[0]
        return result

    def _accept_swap(self, energy_cold: float, energy_hot: float, index: int) -> bool:
        beta_cold = 1.0 / self.temperatures[index]
        beta_hot = 1.0 / self.temperatures[index + 1]
        log_alpha = (beta_cold - beta_hot) * (energy_cold - energy_hot)
        return math.log(self._rng.random() + 1e-300) < min(0.0, log_alpha)


def geometric_ladder(t_cold: float, t_hot: float, replicas: int) -> List[float]:
    """Geometrically spaced temperature ladder, coldest first."""
    if t_cold <= 0 or t_hot <= t_cold:
        raise ConfigError("need 0 < t_cold < t_hot")
    if replicas < 2:
        raise ConfigError("replicas must be >= 2")
    ratio = (t_hot / t_cold) ** (1.0 / (replicas - 1))
    return [t_cold * ratio**k for k in range(replicas)]
