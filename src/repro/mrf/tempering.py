"""Parallel tempering (replica exchange) over grid MRFs.

Another "more than Gibbs sampling" extension (Sec. IV-D): several
chains run at a ladder of fixed temperatures; periodically, adjacent
chains propose to swap their states with the Metropolis acceptance

    P(swap) = min(1, exp((1/T_i - 1/T_j) * (E_i - E_j))),

which preserves each chain's stationary distribution while letting the
cold chain escape local minima through the hot ones.  Each chain uses
an independent sampler backend, so tempering runs identically on the
software baseline or on RSU-G hardware models (one RSU-G per replica —
exactly the multi-unit layouts of Sec. IV-B.6).

The replica ladder is the canonical batched-chain workload: by default
the whole ladder sweeps through one
:class:`~repro.mrf.batch.BatchedSweepWorkspace` (all replicas stacked
into a ``(K, H, W)`` tensor, one fused dispatch per colour class), and
the swap rounds draw their uniforms as one block per round.
``use_batched=False`` keeps the replicas on K sequential fused
workspaces; both paths are byte-identical — same labels, same energy
histories, same swap decisions, same consumption of every RNG stream —
which ``tests/test_mrf_batch.py`` enforces.
"""

from __future__ import annotations

import math
from contextlib import nullcontext
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence

import numpy as np

from repro.core.base import SamplerBackend
from repro.mrf.annealing import ConstantSchedule
from repro.mrf.batch import BatchedSweepWorkspace
from repro.mrf.checkpoint import (
    CheckpointWriter,
    SolveCheckpoint,
    resolve_checkpoint,
)
from repro.mrf.model import GridMRF, coloring_masks
from repro.mrf.solver import MCMCSolver
from repro.obs import telemetry as obs
from repro.rng.streams import generator_state, set_generator_state
from repro.util.errors import ConfigError


def swap_log_alpha(
    t_cold: float, t_hot: float, energy_cold: float, energy_hot: float
) -> float:
    """Log of the (unclamped) replica-swap Metropolis ratio."""
    beta_cold = 1.0 / t_cold
    beta_hot = 1.0 / t_hot
    return (beta_cold - beta_hot) * (energy_cold - energy_hot)


def swap_probability(
    t_cold: float, t_hot: float, energy_cold: float, energy_hot: float
) -> float:
    """Acceptance probability ``min(1, exp(log_alpha))``, overflow-safe.

    The exponent is clamped to ``min(0, log_alpha)`` *before* ``exp``:
    a favourable swap (``log_alpha >= 0``) accepts with probability
    exactly 1.0, and a huge positive ``log_alpha`` — easy to produce
    with a steep ladder and a large energy gap — can never raise
    ``OverflowError`` out of ``math.exp``.
    """
    return math.exp(min(0.0, swap_log_alpha(t_cold, t_hot, energy_cold, energy_hot)))


@dataclass
class TemperingResult:
    """Outcome of a replica-exchange run."""

    labels: np.ndarray  # the coldest chain's final state
    temperatures: List[float]
    energy_history: List[List[float]]  # per sweep, per chain
    swap_attempts: int = 0
    swaps_accepted: int = 0

    @property
    def swap_rate(self) -> float:
        """Fraction of proposed swaps accepted."""
        if self.swap_attempts == 0:
            return 0.0
        return self.swaps_accepted / self.swap_attempts

    @property
    def final_energy(self) -> float:
        """Cold-chain energy after the last sweep."""
        return self.energy_history[-1][0]


class ParallelTempering:
    """Replica-exchange sampler over a shared :class:`GridMRF`.

    Parameters
    ----------
    model:
        The MRF all replicas sample.
    sampler_factory:
        Called once per replica (with the replica index) to build its
        backend — independent entropy per chain.
    temperatures:
        Ladder, coldest first; must be strictly increasing.
    swap_interval:
        Sweeps between swap rounds.
    use_batched:
        Sweep the whole ladder through one
        :class:`~repro.mrf.batch.BatchedSweepWorkspace` (the default).
        ``False`` runs K sequential fused workspaces — byte-identical
        by contract, retained as the oracle and for A/B benchmarking.
    """

    def __init__(
        self,
        model: GridMRF,
        sampler_factory: Callable[[int], SamplerBackend],
        temperatures: Sequence[float],
        swap_interval: int = 1,
        seed: int = 0,
        use_batched: bool = True,
    ):
        temps = list(temperatures)
        if len(temps) < 2:
            raise ConfigError("need at least two replicas")
        if any(t <= 0 for t in temps):
            raise ConfigError("temperatures must be positive")
        if any(b <= a for a, b in zip(temps, temps[1:])):
            raise ConfigError("temperatures must be strictly increasing")
        if swap_interval < 1:
            raise ConfigError("swap_interval must be >= 1")
        self.model = model
        self.temperatures = temps
        self.swap_interval = swap_interval
        self.use_batched = use_batched
        self._rng = np.random.default_rng(seed)
        self._solvers = [
            MCMCSolver(
                model,
                sampler_factory(index),
                ConstantSchedule(temperature),
                init="random",
                seed=seed + index,
                track_energy=False,
            )
            for index, temperature in enumerate(temps)
        ]

    def snapshot(
        self, sweep: int, states: np.ndarray, result: TemperingResult
    ) -> SolveCheckpoint:
        """Resumable checkpoint of the whole ladder after ``sweep`` sweeps.

        Captures every replica's label grid (chain-stacked), the swap
        generator, each replica's solver and sampler RNG state, and the
        swap bookkeeping — the complete state both the batched and the
        sequential run paths consume.
        """
        return SolveCheckpoint(
            kind="tempering",
            sweep=sweep,
            labels=np.array(states, dtype=np.int64, copy=True),
            rng={
                "swap": generator_state(self._rng),
                "chains": [
                    {
                        "solver": generator_state(solver._rng),
                        "sampler": solver.sampler.getstate(),
                    }
                    for solver in self._solvers
                ],
            },
            history={
                "energy": [list(row) for row in result.energy_history],
                "swap_attempts": result.swap_attempts,
                "swaps_accepted": result.swaps_accepted,
            },
            meta={
                "shape": tuple(self.model.shape),
                "temperatures": list(self.temperatures),
            },
        )

    def _restore(self, checkpoint: SolveCheckpoint, sweeps: int):
        """(start sweep, (K, H, W) states, prefilled result) from a checkpoint."""
        if checkpoint.sweep >= sweeps:
            raise ConfigError(
                f"checkpoint already has {checkpoint.sweep} sweeps; "
                f"cannot resume a {sweeps}-sweep run"
            )
        chains = len(self._solvers)
        states = np.array(checkpoint.labels, dtype=np.int64, copy=True)
        expected = (chains,) + self.model.shape
        if states.shape != expected:
            raise ConfigError(
                f"checkpoint states shape {states.shape} != ladder shape {expected}"
            )
        saved_temps = checkpoint.meta.get("temperatures")
        if saved_temps is not None and list(saved_temps) != list(self.temperatures):
            raise ConfigError(
                f"checkpoint ladder {saved_temps} != this ladder {self.temperatures}"
            )
        set_generator_state(self._rng, checkpoint.rng["swap"])
        for solver, chain_state in zip(self._solvers, checkpoint.rng["chains"]):
            set_generator_state(solver._rng, chain_state["solver"])
            solver.sampler.setstate(chain_state["sampler"])
        result = TemperingResult(
            labels=states[0],
            temperatures=self.temperatures,
            energy_history=[list(row) for row in checkpoint.history["energy"]],
            swap_attempts=checkpoint.history["swap_attempts"],
            swaps_accepted=checkpoint.history["swaps_accepted"],
        )
        return checkpoint.sweep, states, result

    def run(
        self,
        sweeps: int,
        *,
        checkpoint_every: int = 0,
        checkpoint_path=None,
        checkpoint_sink=None,
        resume=None,
    ) -> TemperingResult:
        """Run all replicas for ``sweeps`` sweeps with periodic swaps.

        ``checkpoint_every=N`` snapshots the ladder every N sweeps to
        ``checkpoint_path`` / ``checkpoint_sink``; ``resume`` accepts a
        ``tempering`` :class:`~repro.mrf.checkpoint.SolveCheckpoint` (or
        a path) and continues byte-identically on either run path.
        """
        if sweeps < 1:
            raise ConfigError("sweeps must be >= 1")
        writer = CheckpointWriter(checkpoint_every, checkpoint_path, checkpoint_sink)
        checkpoint = resolve_checkpoint(resume, "tempering")
        if self.use_batched:
            return self._run_batched(sweeps, writer, checkpoint)
        return self._run_sequential(sweeps, writer, checkpoint)

    def _swap_round(
        self, sweep_index: int, energies: List[float], result: TemperingResult
    ) -> List[int]:
        """Decide one round of adjacent-pair swaps; returns accepted indices.

        Alternates even/odd pair alignment across rounds.  The round's
        uniforms come from one block draw — bit-identical values and
        generator state to the per-pair scalar draws they replace — but
        each comparison stays scalar ``math.log`` (``math.log`` and
        ``np.log`` differ in the last ulp on some platforms, and the
        sequential oracle uses the former).
        """
        start = (sweep_index // self.swap_interval) % 2
        pairs = list(range(start, len(self.temperatures) - 1, 2))
        accepted: List[int] = []
        if not pairs:
            return accepted
        draws = self._rng.random(len(pairs))
        for j, i in enumerate(pairs):
            result.swap_attempts += 1
            log_alpha = swap_log_alpha(
                self.temperatures[i],
                self.temperatures[i + 1],
                energies[i],
                energies[i + 1],
            )
            if math.log(draws[j] + 1e-300) < min(0.0, log_alpha):
                energies[i], energies[i + 1] = energies[i + 1], energies[i]
                result.swaps_accepted += 1
                accepted.append(i)
        tel = obs.active()
        if tel is not None:
            tel.inc("tempering.swap_attempts", len(pairs))
            tel.inc("tempering.swaps_accepted", len(accepted))
        return accepted

    def _run_sequential(
        self,
        sweeps: int,
        writer: Optional[CheckpointWriter] = None,
        checkpoint: Optional[SolveCheckpoint] = None,
    ) -> TemperingResult:
        if checkpoint is not None:
            start, stacked, result = self._restore(checkpoint, sweeps)
            states = [np.ascontiguousarray(stacked[k]) for k in range(len(self._solvers))]
            result.labels = states[0]
        else:
            start = 0
            states = [solver.initial_labels() for solver in self._solvers]
            result = TemperingResult(
                labels=states[0], temperatures=self.temperatures, energy_history=[]
            )
        for solver, labels in zip(self._solvers, states):
            solver.workspace.bind(labels)
        tel = obs.active()
        for sweep_index in range(start, sweeps):
            energies = []
            with tel.span("tempering.sweep") if tel is not None else nullcontext():
                for solver, temperature, labels in zip(
                    self._solvers, self.temperatures, states
                ):
                    # The workspace rebinds automatically when a swap handed
                    # this replica a different label array.
                    solver.workspace.sweep(
                        labels, temperature, solver.sampler, solver._wants_current
                    )
                    energies.append(self.model.total_energy(labels))
            if tel is not None:
                tel.inc("tempering.sweeps", 1)
            if (sweep_index + 1) % self.swap_interval == 0:
                for i in self._swap_round(sweep_index, energies, result):
                    states[i], states[i + 1] = states[i + 1], states[i]
            result.energy_history.append(energies)
            if writer is not None:
                writer.maybe_emit(
                    sweep_index + 1,
                    lambda: self.snapshot(sweep_index + 1, np.stack(states), result),
                )
        result.labels = states[0]
        return result

    def _run_batched(
        self,
        sweeps: int,
        writer: Optional[CheckpointWriter] = None,
        checkpoint: Optional[SolveCheckpoint] = None,
    ) -> TemperingResult:
        chains = len(self._solvers)
        if checkpoint is not None:
            start, states, result = self._restore(checkpoint, sweeps)
        else:
            start = 0
            states = np.stack([solver.initial_labels() for solver in self._solvers])
            result = TemperingResult(
                labels=states[0], temperatures=self.temperatures, energy_history=[]
            )
        samplers = [solver.sampler for solver in self._solvers]
        wants = [solver._wants_current for solver in self._solvers]
        masks = coloring_masks(self.model.shape, self.model.connectivity)
        workspace = BatchedSweepWorkspace(self.model, masks, chains)
        workspace.bind(states)
        tel = obs.active()
        for sweep_index in range(start, sweeps):
            with tel.span("tempering.sweep") if tel is not None else nullcontext():
                workspace.sweep(states, self.temperatures, samplers, wants)
                energies = [
                    self.model.total_energy(states[k]) for k in range(chains)
                ]
            if tel is not None:
                tel.inc("tempering.sweeps", 1)
            if (sweep_index + 1) % self.swap_interval == 0:
                accepted = self._swap_round(sweep_index, energies, result)
                for i in accepted:
                    # Fancy-index row assignment copies the RHS first,
                    # so this swaps the two chains' contents in place.
                    states[[i, i + 1]] = states[[i + 1, i]]
                if accepted:
                    # The padded mirrors of the swapped chains are stale;
                    # resynchronize wholesale before the next sweep.
                    workspace.bind(states)
            result.energy_history.append(energies)
            if writer is not None:
                writer.maybe_emit(
                    sweep_index + 1,
                    lambda: self.snapshot(sweep_index + 1, states, result),
                )
        result.labels = states[0].copy()
        return result

    def _accept_swap(self, energy_cold: float, energy_hot: float, index: int) -> bool:
        """Single-pair acceptance (kept for direct testing)."""
        log_alpha = swap_log_alpha(
            self.temperatures[index],
            self.temperatures[index + 1],
            energy_cold,
            energy_hot,
        )
        return math.log(self._rng.random() + 1e-300) < min(0.0, log_alpha)


def geometric_ladder(t_cold: float, t_hot: float, replicas: int) -> List[float]:
    """Geometrically spaced temperature ladder, coldest first."""
    if t_cold <= 0 or t_hot <= t_cold:
        raise ConfigError("need 0 < t_cold < t_hot")
    if replicas < 2:
        raise ConfigError("replicas must be >= 2")
    ratio = (t_hot / t_cold) ** (1.0 / (replicas - 1))
    return [t_cold * ratio**k for k in range(replicas)]
