"""Fused, allocation-free sweep kernel for the chromatic Gibbs loop.

The paper's performance argument (Sec. V) is that an array of RSU-G
units evaluates one whole colour class in parallel each cycle.  The
software analogue is a fused batch kernel: everything that is constant
for the run — the checkerboard masks, the neighbour topology, the unary
gather, every intermediate buffer — is computed or allocated exactly
once, and each half-sweep then flows through preallocated workspaces
with ``out=`` ufuncs.

Compared with the reference path
(:meth:`~repro.mrf.model.GridMRF.site_energies` +
:meth:`~repro.core.base.SamplerBackend.sample`), which rebuilds the
padded label grid, restacks the neighbour views, regathers the constant
unary block and allocates ~10 full-size arrays per colour class per
sweep, the kernel's only steady-state allocations are the transient
pairwise/LUT row-gather results (fancy indexing's fast path beats any
buffer-reusing gather — see :meth:`SweepWorkspace.class_energies`), and
the downstream sampling stages work on compressed active lanes instead
of full arrays.

Byte-identity with the reference path — same labels, same energy
history, same consumption of every RNG stream — is a hard contract,
enforced by ``tests/test_mrf_kernel.py`` across backends x tie policies
x ``float_time`` x LUT on/off.  The solver keeps the reference path
alive under ``use_fused=False`` as the oracle.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

import numpy as np

from repro.core.base import SamplerBackend, SampleScratch
from repro.mrf.model import GridMRF
from repro.util.errors import DataError


class _ClassPlan:
    """Precomputed geometry and buffers for one colour class."""

    __slots__ = (
        "site_flat",
        "pad_flat",
        "gather_idx",
        "unary",
        "neighbors",
        "pair",
        "energies",
        "labels_out",
        "current",
        "scratch",
    )

    def __init__(self, model: GridMRF, mask: np.ndarray, padded_width: int):
        rows, cols = np.nonzero(mask)  # raster order == boolean-mask order
        n = rows.size
        m = model.n_labels
        conn = model.connectivity
        self.site_flat = rows * model.shape[1] + cols
        center = (rows + 1) * padded_width + (cols + 1)
        self.pad_flat = center
        # Flat offsets into the padded grid, in the exact stacking order
        # of GridMRF._neighbor_labels: up, down, left, right, then the
        # diagonals for 8-connectivity.
        offsets = [-padded_width, padded_width, -1, 1]
        if conn == 8:
            offsets += [
                -padded_width - 1,
                -padded_width + 1,
                padded_width - 1,
                padded_width + 1,
            ]
        self.gather_idx = np.empty((conn, n), dtype=np.int64)
        for d, offset in enumerate(offsets):
            np.add(center, offset, out=self.gather_idx[d])
        # The unary block of this class never changes: gather it once.
        self.unary = np.ascontiguousarray(model.unary[mask])
        self.neighbors = np.empty((conn, n), dtype=np.int64)
        self.pair = np.empty((n, m), dtype=np.float64)
        self.energies = np.empty((n, m), dtype=np.float64)
        self.labels_out = np.empty(n, dtype=np.intp)
        self.current = np.empty(n, dtype=np.int64)
        self.scratch = SampleScratch()


class SweepWorkspace:
    """Reusable state for fused checkerboard sweeps over one MRF.

    Created once per :meth:`repro.mrf.solver.MCMCSolver.run`; owns the
    persistent sentinel-padded label grid, the per-colour-class flat
    neighbour-gather indices, the constant unary gathers, and every
    reusable output buffer (energies, quantized codes, lambda codes, TTF
    bins, selection keys — the latter via each class's
    :class:`~repro.core.base.SampleScratch`).

    The padded grid mirrors the bound label array; :meth:`sweep` keeps
    it in sync incrementally (scattering only the resampled sites), and
    :meth:`bind` resynchronizes it wholesale — the solver calls that
    once per run and after every user callback, since a callback may
    mutate the labels it is handed.
    """

    def __init__(self, model: GridMRF, masks: Sequence[np.ndarray]):
        self.model = model
        h, w = model.shape
        total = 0
        for mask in masks:
            if mask.shape != model.shape:
                raise DataError(
                    f"mask shape {mask.shape} != grid shape {model.shape}"
                )
            total += int(mask.sum())
        if total != h * w:
            raise DataError("colour classes must partition the grid")
        self._padded = np.full((h + 2, w + 2), model.n_labels, dtype=np.int64)
        self._padded_flat = self._padded.reshape(-1)
        self._interior = self._padded[1:-1, 1:-1]
        self._classes: List[_ClassPlan] = [
            _ClassPlan(model, mask, w + 2) for mask in masks
        ]
        self._pairwise = model.padded_pairwise
        self._weight = model.weight
        self._bound: Optional[np.ndarray] = None

    @property
    def nbytes(self) -> int:
        """Total bytes of preallocated workspace (diagnostics/tests)."""
        per_class = sum(
            sum(getattr(plan, name).nbytes for name in (
                "site_flat", "pad_flat", "gather_idx", "unary", "neighbors",
                "pair", "energies", "labels_out", "current",
            )) + plan.scratch.nbytes
            for plan in self._classes
        )
        return per_class + self._padded.nbytes

    def bind(self, labels: np.ndarray) -> None:
        """Synchronize the padded mirror with ``labels`` (full copy)."""
        if labels.shape != self.model.shape:
            raise DataError(
                f"labels shape {labels.shape} != grid shape {self.model.shape}"
            )
        if not labels.flags.c_contiguous:
            # The scatter writes through a flat view; a non-contiguous
            # grid would silently reshape-copy instead of aliasing.
            raise DataError("fused sweeps require a C-contiguous label grid")
        np.copyto(self._interior, labels)
        self._bound = labels

    def class_energies(self, index: int) -> np.ndarray:
        """Fill and return the energy buffer of colour class ``index``.

        Bit-identical to ``model.site_energies(labels, mask)``: the
        per-direction row gathers are accumulated in the same sequential
        order as the reference's ``sum(axis=0)`` over the
        ``(connectivity, N, M)`` stack (NumPy reduces the leading axis
        slice by slice), and ``unary + weight * pair`` commutes exactly
        in IEEE arithmetic.

        The row gathers use fancy indexing, not ``np.take(..., out=)``:
        NumPy's mapiter fast path makes ``pairwise[rows]`` about 3x
        faster than ``take`` with an output buffer, which outweighs
        reusing a ``(connectivity, N, M)`` stack.  The transient
        ``(N, M)`` gather results are the kernel's only steady-state
        allocations.
        """
        plan = self._classes[index]
        np.take(self._padded_flat, plan.gather_idx, out=plan.neighbors)
        np.add(
            self._pairwise[plan.neighbors[0]],
            self._pairwise[plan.neighbors[1]],
            out=plan.pair,
        )
        for d in range(2, plan.neighbors.shape[0]):
            plan.pair += self._pairwise[plan.neighbors[d]]
        np.multiply(plan.pair, self._weight, out=plan.energies)
        plan.energies += plan.unary
        return plan.energies

    def sweep(
        self,
        labels: np.ndarray,
        temperature: float,
        sampler: SamplerBackend,
        wants_current: bool = False,
    ) -> np.ndarray:
        """One full fused checkerboard sweep, in place; returns ``labels``.

        Mirrors :meth:`repro.mrf.solver.MCMCSolver.sweep` exactly:
        colour classes in order, each resampled from energies that see
        every earlier class's fresh labels.  Backends that need the
        sites' current labels (``wants_current``) go through
        ``sample_given_current`` on the workspace energy buffer; all
        others take the fused ``sample_into`` path.
        """
        if labels is not self._bound:
            self.bind(labels)
        labels_flat = labels.reshape(-1)
        for index, plan in enumerate(self._classes):
            energies = self.class_energies(index)
            if wants_current:
                np.take(labels_flat, plan.site_flat, out=plan.current)
                new_labels = sampler.sample_given_current(
                    energies, temperature, plan.current
                )
            else:
                new_labels = sampler.sample_into(
                    energies, temperature, plan.labels_out, plan.scratch
                )
            labels_flat[plan.site_flat] = new_labels
            self._padded_flat[plan.pad_flat] = new_labels
        return labels
