"""Batched multi-chain execution: K chains through one fused workspace.

The paper's accelerator earns its throughput by running many RSU-G
units at once (Sec. IV-B.6 multi-unit layouts, the 1024-unit array),
and its "beyond Gibbs" extensions — parallel tempering, multi-seed
ensembles — are exactly the workloads that run K independent chains
over one shared MRF.  Executing those chains as K separate
:class:`~repro.mrf.solver.MCMCSolver` runs invokes the fused kernel K
times per sweep, paying K× the Python/NumPy dispatch overhead for
identical geometry.

:class:`BatchedSweepWorkspace` stacks the chains into one ``(K, H, W)``
label tensor: the per-colour-class neighbour gathers span the chain
axis (one flat index array covers all K padded mirrors), the energy
accumulation runs over ``(K * n_class, n_labels)`` blocks, and the
sampler backends' ``sample_chains_into`` classmethods fill one entropy
slab per chain before batching the elementwise math — so every NumPy
call amortizes over K chains.

**Byte-identity is the hard contract**, exactly as for the single-chain
fused kernel: a batched K-chain run produces the same labels, the same
energy histories, and consumes every chain's RNG stream identically to
K sequential fused solves.  ``tests/test_mrf_batch.py`` enforces this
across backends, tie policies, and LUT on/off, and bounds the batched
kernel's steady-state allocations with ``tracemalloc``.

:class:`EnsembleSolver` builds multi-seed restarts (best-of-K
selection) on top; :class:`repro.mrf.tempering.ParallelTempering` runs
its replica ladder through the same workspace.
"""

from __future__ import annotations

from contextlib import nullcontext
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

import numpy as np

from repro.core.base import SamplerBackend, SampleScratch
from repro.mrf.annealing import Schedule
from repro.mrf.checkpoint import (
    CheckpointWriter,
    SolveCheckpoint,
    resolve_checkpoint,
)
from repro.mrf.model import GridMRF, coloring_masks
from repro.mrf.solver import MCMCSolver, SolveResult
from repro.obs import telemetry as obs
from repro.rng.streams import generator_state, set_generator_state
from repro.util.errors import ConfigError, DataError


class _BatchedClassPlan:
    """Chain-spanning geometry and buffers for one colour class."""

    __slots__ = (
        "site_flat",
        "site_flat_kn",
        "pad_flat",
        "gather_idx",
        "unary",
        "neighbors",
        "pair",
        "energies",
        "labels_out",
        "current",
        "scratch",
    )

    def __init__(
        self, model: GridMRF, mask: np.ndarray, padded_width: int, n_chains: int
    ):
        rows, cols = np.nonzero(mask)  # raster order == boolean-mask order
        n = rows.size
        m = model.n_labels
        conn = model.connectivity
        h, w = model.shape
        # Per-chain flat indices, offset by each chain's slab stride so a
        # single gather/scatter spans all K label grids at once.
        site_one = rows * w + cols
        pad_one = (rows + 1) * padded_width + (cols + 1)
        site_strides = np.arange(n_chains, dtype=np.int64) * np.int64(h * w)
        pad_strides = np.arange(n_chains, dtype=np.int64) * np.int64(
            (h + 2) * padded_width
        )
        self.site_flat_kn = site_strides[:, None] + site_one
        self.site_flat = np.ascontiguousarray(self.site_flat_kn.reshape(-1))
        self.pad_flat = np.ascontiguousarray(
            (pad_strides[:, None] + pad_one).reshape(-1)
        )
        # Flat offsets into the padded grids, in the exact stacking order
        # of GridMRF._neighbor_labels: up, down, left, right, then the
        # diagonals for 8-connectivity.  Chain slabs are contiguous, so
        # one offset works for every chain.
        offsets = [-padded_width, padded_width, -1, 1]
        if conn == 8:
            offsets += [
                -padded_width - 1,
                -padded_width + 1,
                padded_width - 1,
                padded_width + 1,
            ]
        self.gather_idx = np.empty((conn, n_chains * n), dtype=np.int64)
        for d, offset in enumerate(offsets):
            np.add(self.pad_flat, offset, out=self.gather_idx[d])
        # The unary block is constant and identical for every chain:
        # gather it once, broadcast at add time.
        self.unary = np.ascontiguousarray(model.unary[mask])
        self.neighbors = np.empty((conn, n_chains * n), dtype=np.int64)
        self.pair = np.empty((n_chains * n, m), dtype=np.float64)
        self.energies = np.empty((n_chains, n, m), dtype=np.float64)
        self.labels_out = np.empty((n_chains, n), dtype=np.intp)
        self.current = np.empty(n, dtype=np.int64)
        self.scratch = SampleScratch()


class BatchedSweepWorkspace:
    """Reusable state for fused checkerboard sweeps over K stacked chains.

    The batched analogue of :class:`repro.mrf.kernel.SweepWorkspace`:
    one ``(K, H+2, W+2)`` sentinel-padded mirror covers every chain, the
    per-colour-class flat gather indices span the chain axis, and each
    half-sweep samples all K chains' sites through a single
    ``sample_chains_into`` dispatch (per-chain RNG streams, shared
    elementwise math).

    Chains are independent by construction — no index crosses a chain
    slab — so results are byte-identical to K sequential
    single-chain workspaces, which ``tests/test_mrf_batch.py`` enforces.
    """

    def __init__(
        self, model: GridMRF, masks: Sequence[np.ndarray], n_chains: int
    ):
        if n_chains < 1:
            raise ConfigError(f"n_chains must be >= 1, got {n_chains}")
        self.model = model
        self.n_chains = n_chains
        h, w = model.shape
        total = 0
        for mask in masks:
            if mask.shape != model.shape:
                raise DataError(
                    f"mask shape {mask.shape} != grid shape {model.shape}"
                )
            total += int(mask.sum())
        if total != h * w:
            raise DataError("colour classes must partition the grid")
        self._padded = np.full(
            (n_chains, h + 2, w + 2), model.n_labels, dtype=np.int64
        )
        self._padded_flat = self._padded.reshape(-1)
        self._interior = self._padded[:, 1:-1, 1:-1]
        self._classes: List[_BatchedClassPlan] = [
            _BatchedClassPlan(model, mask, w + 2, n_chains) for mask in masks
        ]
        self._pairwise = model.padded_pairwise
        self._weight = model.weight
        self._bound: Optional[np.ndarray] = None

    @property
    def nbytes(self) -> int:
        """Total bytes of preallocated workspace (diagnostics/tests)."""
        per_class = sum(
            sum(getattr(plan, name).nbytes for name in (
                "site_flat", "pad_flat", "gather_idx", "unary", "neighbors",
                "pair", "energies", "labels_out", "current",
            )) + plan.scratch.nbytes
            for plan in self._classes
        )
        return per_class + self._padded.nbytes

    def bind(self, labels: np.ndarray) -> None:
        """Synchronize the padded mirrors with ``labels`` (full copy).

        ``labels`` must be a C-contiguous ``(K, H, W)`` int array — the
        scatter writes through a flat view, so a non-contiguous tensor
        would silently reshape-copy instead of aliasing.
        """
        expected = (self.n_chains,) + self.model.shape
        if labels.shape != expected:
            raise DataError(
                f"labels shape {labels.shape} != chain-stacked shape {expected}"
            )
        if not labels.flags.c_contiguous:
            raise DataError("batched sweeps require a C-contiguous label tensor")
        np.copyto(self._interior, labels)
        self._bound = labels

    def class_energies(self, index: int) -> np.ndarray:
        """Fill and return the ``(K, n_class, n_labels)`` energy block.

        Bit-identical, chain for chain, to the single-chain
        :meth:`~repro.mrf.kernel.SweepWorkspace.class_energies`: the
        rows of the flattened ``(K * n_class, n_labels)`` views are just
        the K chains' rows stacked chain-major, every accumulation op is
        elementwise, and the broadcast unary add touches each element
        exactly as the per-chain add does.
        """
        plan = self._classes[index]
        np.take(self._padded_flat, plan.gather_idx, out=plan.neighbors)
        np.add(
            self._pairwise[plan.neighbors[0]],
            self._pairwise[plan.neighbors[1]],
            out=plan.pair,
        )
        for d in range(2, plan.neighbors.shape[0]):
            plan.pair += self._pairwise[plan.neighbors[d]]
        energies_flat = plan.energies.reshape(plan.pair.shape)
        np.multiply(plan.pair, self._weight, out=energies_flat)
        plan.energies += plan.unary[None]
        return plan.energies

    def sweep(
        self,
        labels: np.ndarray,
        temperatures: Sequence[float],
        samplers: Sequence[SamplerBackend],
        wants_current: Sequence[bool],
    ) -> np.ndarray:
        """One fused checkerboard sweep of every chain, in place.

        ``labels`` is the bound ``(K, H, W)`` tensor; chain ``k`` sweeps
        at ``temperatures[k]`` with ``samplers[k]``.  When every chain
        shares one backend type and none needs the current labels, each
        colour class is sampled through a single ``sample_chains_into``
        call; otherwise the per-chain loop runs — both byte-identical to
        K sequential fused sweeps.
        """
        if labels is not self._bound:
            self.bind(labels)
        if not (len(samplers) == len(wants_current) == self.n_chains):
            raise DataError(
                f"need {self.n_chains} samplers/flags, got "
                f"{len(samplers)}/{len(wants_current)}"
            )
        batched = not any(wants_current) and (
            len({type(sampler) for sampler in samplers}) == 1
        )
        labels_flat = labels.reshape(-1)
        for index, plan in enumerate(self._classes):
            energies = self.class_energies(index)
            if batched:
                type(samplers[0]).sample_chains_into(
                    list(samplers), energies, temperatures, plan.labels_out,
                    plan.scratch,
                )
            else:
                for k, sampler in enumerate(samplers):
                    if wants_current[k]:
                        np.take(labels_flat, plan.site_flat_kn[k], out=plan.current)
                        plan.labels_out[k] = sampler.sample_given_current(
                            energies[k], temperatures[k], plan.current
                        )
                    else:
                        sampler.sample_into(
                            energies[k], temperatures[k], plan.labels_out[k],
                            plan.scratch,
                        )
            new_labels = plan.labels_out.reshape(-1)
            labels_flat[plan.site_flat] = new_labels
            self._padded_flat[plan.pad_flat] = new_labels
        return labels


@dataclass
class EnsembleResult:
    """Outcome of a multi-seed ensemble run (best-of-K restarts)."""

    chain_labels: np.ndarray  # (K, H, W), one final label grid per chain
    energy_histories: List[List[float]]  # per chain, per sweep
    temperature_history: List[float]
    best_chain: int
    best_energy: float = field(default=float("nan"))

    @property
    def n_chains(self) -> int:
        """Number of independent restarts."""
        return self.chain_labels.shape[0]

    @property
    def labels(self) -> np.ndarray:
        """The winning chain's final label grid."""
        return self.chain_labels[self.best_chain]

    def best_result(self) -> SolveResult:
        """The winning chain as a plain :class:`SolveResult`."""
        return SolveResult(
            labels=self.chain_labels[self.best_chain],
            energy_history=list(self.energy_histories[self.best_chain]),
            temperature_history=list(self.temperature_history),
        )


class EnsembleSolver:
    """Multi-seed restart ensemble over one MRF with best-of-K selection.

    Runs K independent chains — chain ``k`` gets ``sampler_factory(k)``
    and solver seed ``seed + k`` — through one shared annealing
    schedule, then keeps the chain with the lowest final energy (ties
    go to the lowest chain index).  Chain 0 reproduces the single-chain
    ``MCMCSolver(model, sampler_factory(0), schedule, seed=seed)`` run
    exactly, so enabling restarts can only improve the returned energy.

    Parameters mirror :class:`~repro.mrf.solver.MCMCSolver`;
    ``use_batched=False`` keeps K sequential solver runs as the
    byte-identical oracle for tests and A/B timing.
    """

    def __init__(
        self,
        model: GridMRF,
        sampler_factory,
        schedule: Schedule,
        chains: int,
        init: object = "unary",
        seed: int = 0,
        track_energy: bool = True,
        use_batched: bool = True,
    ):
        if chains < 1:
            raise ConfigError(f"chains must be >= 1, got {chains}")
        self.model = model
        self.schedule = schedule
        self.track_energy = track_energy
        self.use_batched = use_batched
        self._solvers = [
            MCMCSolver(
                model,
                sampler_factory(index),
                schedule,
                init=init,
                seed=seed + index,
                track_energy=track_energy,
            )
            for index in range(chains)
        ]

    @property
    def n_chains(self) -> int:
        return len(self._solvers)

    def snapshot(
        self,
        sweep: int,
        states: np.ndarray,
        histories: List[List[float]],
        temperature_history: List[float],
    ) -> SolveCheckpoint:
        """Resumable checkpoint of the whole ensemble after ``sweep`` sweeps."""
        return SolveCheckpoint(
            kind="ensemble",
            sweep=sweep,
            labels=np.array(states, dtype=np.int64, copy=True),
            rng={
                "chains": [
                    {
                        "solver": generator_state(solver._rng),
                        "sampler": solver.sampler.getstate(),
                    }
                    for solver in self._solvers
                ],
            },
            history={
                "energy": [list(row) for row in histories],
                "temperature": list(temperature_history),
            },
            meta={"shape": tuple(self.model.shape), "chains": self.n_chains},
        )

    def _restore(self, checkpoint: SolveCheckpoint, iterations: int):
        """(start sweep, states, histories, temperature history)."""
        if checkpoint.sweep >= iterations:
            raise ConfigError(
                f"checkpoint already has {checkpoint.sweep} sweeps; "
                f"cannot resume a {iterations}-sweep run"
            )
        states = np.array(checkpoint.labels, dtype=np.int64, copy=True)
        expected = (self.n_chains,) + self.model.shape
        if states.shape != expected:
            raise ConfigError(
                f"checkpoint states shape {states.shape} != ensemble shape {expected}"
            )
        for solver, chain_state in zip(self._solvers, checkpoint.rng["chains"]):
            set_generator_state(solver._rng, chain_state["solver"])
            solver.sampler.setstate(chain_state["sampler"])
        histories = [list(row) for row in checkpoint.history["energy"]]
        temperature_history = list(checkpoint.history["temperature"])
        return checkpoint.sweep, states, histories, temperature_history

    def run(
        self,
        iterations: int,
        *,
        checkpoint_every: int = 0,
        checkpoint_path=None,
        checkpoint_sink=None,
        resume=None,
    ) -> EnsembleResult:
        """Run every chain for ``iterations`` sweeps; pick the best.

        ``checkpoint_every=N`` snapshots all K chains every N sweeps
        (batched path; the K-sequential oracle runs its chains to
        completion one by one, so it cannot emit ensemble-wide
        snapshots).  ``resume`` accepts an ``ensemble``
        :class:`~repro.mrf.checkpoint.SolveCheckpoint` (or a path) and
        continues byte-identically on either path.
        """
        if iterations < 1:
            raise ConfigError(f"iterations must be >= 1, got {iterations}")
        writer = CheckpointWriter(checkpoint_every, checkpoint_path, checkpoint_sink)
        checkpoint = resolve_checkpoint(resume, "ensemble")
        if self.use_batched and self.n_chains > 1:
            return self._run_batched(iterations, writer, checkpoint)
        if writer.enabled:
            raise ConfigError(
                "ensemble checkpointing requires the batched path "
                "(use_batched=True and chains > 1)"
            )
        return self._run_sequential(iterations, checkpoint)

    def _run_sequential(
        self, iterations: int, checkpoint: Optional[SolveCheckpoint] = None
    ) -> EnsembleResult:
        chain_resumes: List[Optional[SolveCheckpoint]] = [None] * self.n_chains
        if checkpoint is not None:
            # Split the ensemble snapshot into per-chain solver
            # checkpoints; each sequential chain resumes independently.
            start, states, histories, temperature_history = self._restore(
                checkpoint, iterations
            )
            chain_resumes = [
                SolveCheckpoint(
                    kind="solver",
                    sweep=start,
                    labels=states[k],
                    rng=checkpoint.rng["chains"][k],
                    history={
                        "energy": histories[k],
                        "temperature": temperature_history,
                    },
                )
                for k in range(self.n_chains)
            ]
        results = [
            solver.run(iterations, resume=chain_resume)
            for solver, chain_resume in zip(self._solvers, chain_resumes)
        ]
        return self._assemble(
            np.stack([result.labels for result in results]),
            [result.energy_history for result in results],
            results[0].temperature_history,
        )

    def _run_batched(
        self,
        iterations: int,
        writer: Optional[CheckpointWriter] = None,
        checkpoint: Optional[SolveCheckpoint] = None,
    ) -> EnsembleResult:
        chains = self.n_chains
        if checkpoint is not None:
            start, states, histories, temperature_history = self._restore(
                checkpoint, iterations
            )
        else:
            start = 0
            states = np.stack([solver.initial_labels() for solver in self._solvers])
            histories = [[] for _ in range(chains)]
            temperature_history = []
        samplers = [solver.sampler for solver in self._solvers]
        wants = [solver._wants_current for solver in self._solvers]
        masks = coloring_masks(self.model.shape, self.model.connectivity)
        workspace = BatchedSweepWorkspace(self.model, masks, chains)
        workspace.bind(states)
        tel = obs.active()
        if tel is not None:
            tel.set_gauge("ensemble.chains", chains)
        for iteration in range(start, iterations):
            temperature = self.schedule.temperature(iteration)
            with tel.span("ensemble.sweep") if tel is not None else nullcontext():
                workspace.sweep(states, [temperature] * chains, samplers, wants)
            if tel is not None:
                tel.inc("ensemble.sweeps", 1)
            temperature_history.append(temperature)
            for k in range(chains):
                histories[k].append(
                    self.model.total_energy(states[k])
                    if self.track_energy
                    else float("nan")
                )
            if writer is not None:
                writer.maybe_emit(
                    iteration + 1,
                    lambda: self.snapshot(
                        iteration + 1, states, histories, temperature_history
                    ),
                )
        return self._assemble(states, histories, temperature_history)

    def _assemble(
        self,
        chain_labels: np.ndarray,
        histories: List[List[float]],
        temperature_history: List[float],
    ) -> EnsembleResult:
        # Selection energies: the recorded finals when tracking, one
        # explicit evaluation per chain otherwise — identical values in
        # the batched and sequential paths since the labels are.
        if self.track_energy:
            finals = [history[-1] for history in histories]
        else:
            finals = [
                self.model.total_energy(chain_labels[k])
                for k in range(chain_labels.shape[0])
            ]
        best = int(np.argmin(finals))
        return EnsembleResult(
            chain_labels=chain_labels,
            energy_histories=histories,
            temperature_history=temperature_history,
            best_chain=best,
            best_energy=float(finals[best]),
        )
