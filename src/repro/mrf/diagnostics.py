"""MCMC convergence and correctness diagnostics.

Tools the paper's quality methodology implies but does not spell out:
checking that chains converge (energy traces, autocorrelation,
effective sample size, Gelman-Rubin R-hat across independent chains)
and that a sampler backend actually targets the Boltzmann distribution
(exact enumeration on tiny MRFs).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Optional, Sequence

import numpy as np

from repro.core.base import SamplerBackend
from repro.mrf.annealing import ConstantSchedule
from repro.mrf.model import GridMRF
from repro.mrf.solver import MCMCSolver
from repro.util.errors import ConfigError, DataError


def autocorrelation(series: np.ndarray, max_lag: int) -> np.ndarray:
    """Normalized autocorrelation of a scalar trace for lags 0..max_lag."""
    trace = np.asarray(series, dtype=np.float64)
    if trace.ndim != 1 or trace.size < 2:
        raise DataError("series must be 1-D with at least 2 samples")
    if not 0 < max_lag < trace.size:
        raise ConfigError(f"max_lag must be in (0, {trace.size}), got {max_lag}")
    centered = trace - trace.mean()
    variance = float(centered @ centered)
    if variance == 0:
        return np.concatenate([[1.0], np.zeros(max_lag)])
    return np.array(
        [1.0]
        + [
            float(centered[:-lag] @ centered[lag:]) / variance
            for lag in range(1, max_lag + 1)
        ]
    )


def effective_sample_size(series: np.ndarray, max_lag: Optional[int] = None) -> float:
    """ESS via the initial-positive-sequence estimator."""
    trace = np.asarray(series, dtype=np.float64)
    n = trace.size
    if max_lag is None:
        max_lag = min(n - 1, 200)
    rho = autocorrelation(trace, max_lag)
    total = 0.0
    for lag in range(1, max_lag + 1):
        if rho[lag] <= 0:
            break
        total += rho[lag]
    return float(n / (1.0 + 2.0 * total))


def gelman_rubin(chains: Sequence[np.ndarray]) -> float:
    """Potential scale reduction factor (R-hat) across scalar chains.

    Values near 1 indicate the chains have mixed; > ~1.1 indicates
    non-convergence.
    """
    arrays = [np.asarray(c, dtype=np.float64) for c in chains]
    if len(arrays) < 2:
        raise ConfigError("gelman_rubin needs at least 2 chains")
    length = min(a.size for a in arrays)
    if length < 4:
        raise ConfigError("chains must have at least 4 samples")
    stacked = np.stack([a[-length:] for a in arrays])
    m, n = stacked.shape
    chain_means = stacked.mean(axis=1)
    within = stacked.var(axis=1, ddof=1).mean()
    between = n * chain_means.var(ddof=1)
    if within == 0:
        return 1.0
    pooled = (n - 1) / n * within + between / n
    return float(np.sqrt(pooled / within))


def enumerate_boltzmann(model: GridMRF, temperature: float) -> Dict[tuple, float]:
    """Exact Boltzmann distribution over all labelings of a tiny MRF.

    Only feasible for ``n_labels ** (H*W)`` up to a few million; raises
    otherwise.  Used to validate sampler correctness end to end.
    """
    h, w = model.shape
    m = model.n_labels
    count = m ** (h * w)
    if count > 2_000_000:
        raise ConfigError(f"state space too large to enumerate: {count}")
    if temperature <= 0:
        raise ConfigError(f"temperature must be positive, got {temperature}")
    energies = {}
    for assignment in product(range(m), repeat=h * w):
        labels = np.asarray(assignment, dtype=np.int64).reshape(h, w)
        energies[assignment] = model.total_energy(labels)
    values = np.array(list(energies.values()))
    logits = -values / temperature
    logits -= logits.max()
    weights = np.exp(logits)
    weights /= weights.sum()
    return dict(zip(energies.keys(), weights))


def empirical_state_distribution(
    model: GridMRF,
    sampler: SamplerBackend,
    temperature: float,
    sweeps: int,
    burn_in: int,
    seed: int = 0,
) -> Dict[tuple, float]:
    """Visit frequencies of full labelings along a Gibbs chain."""
    if sweeps <= burn_in:
        raise ConfigError("sweeps must exceed burn_in")
    solver = MCMCSolver(
        model,
        sampler,
        ConstantSchedule(temperature),
        init="random",
        seed=seed,
        track_energy=False,
    )
    counts: Dict[tuple, int] = {}

    def record(iteration, labels, _temperature):
        if iteration >= burn_in:
            key = tuple(int(v) for v in labels.ravel())
            counts[key] = counts.get(key, 0) + 1

    solver.run(sweeps, callback=record)
    total = sum(counts.values())
    return {state: count / total for state, count in counts.items()}


def total_variation_distance(
    p: Dict[tuple, float], q: Dict[tuple, float]
) -> float:
    """TV distance between two distributions over discrete states."""
    keys = set(p) | set(q)
    return 0.5 * sum(abs(p.get(k, 0.0) - q.get(k, 0.0)) for k in keys)
