"""Simulated-annealing temperature schedules.

The stereo and motion solvers use simulated annealing (Sec. III-A):
energies are divided by a temperature that decreases each iteration so
that every label is nearly equiprobable at the start and the chain
converges to low-energy labelings at the end.  In an RSU-G the schedule
folds into the lambda boundary registers each iteration (Sec. IV-B.3).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.errors import ConfigError
from repro.util.validation import check_positive


class Schedule:
    """Base class: maps an iteration index to a temperature."""

    def temperature(self, iteration: int) -> float:
        """Temperature for iteration ``iteration`` (0-based)."""
        raise NotImplementedError


@dataclass(frozen=True)
class ConstantSchedule(Schedule):
    """Fixed temperature (plain Gibbs sampling, used for segmentation)."""

    value: float

    def __post_init__(self):
        check_positive("value", self.value)

    def temperature(self, iteration: int) -> float:
        return self.value


@dataclass(frozen=True)
class GeometricSchedule(Schedule):
    """``T_k = max(t0 * rate**k, t_min)`` — the standard SA schedule."""

    t0: float
    rate: float
    t_min: float = 1e-3

    def __post_init__(self):
        check_positive("t0", self.t0)
        check_positive("t_min", self.t_min)
        if not 0.0 < self.rate < 1.0:
            raise ConfigError(f"rate must be in (0, 1), got {self.rate}")
        if self.t_min > self.t0:
            raise ConfigError("t_min must not exceed t0")

    def temperature(self, iteration: int) -> float:
        if iteration < 0:
            raise ConfigError(f"iteration must be >= 0, got {iteration}")
        return max(self.t0 * self.rate**iteration, self.t_min)


@dataclass(frozen=True)
class LinearSchedule(Schedule):
    """Linear ramp from ``t0`` to ``t_min`` over ``steps`` iterations."""

    t0: float
    t_min: float
    steps: int

    def __post_init__(self):
        check_positive("t0", self.t0)
        check_positive("t_min", self.t_min)
        if self.steps < 1:
            raise ConfigError(f"steps must be >= 1, got {self.steps}")
        if self.t_min > self.t0:
            raise ConfigError("t_min must not exceed t0")

    def temperature(self, iteration: int) -> float:
        if iteration < 0:
            raise ConfigError(f"iteration must be >= 0, got {iteration}")
        if iteration >= self.steps:
            return self.t_min
        fraction = iteration / self.steps
        return self.t0 + (self.t_min - self.t0) * fraction


def geometric_for_span(
    t0: float, t_final: float, iterations: int, t_min: float = 1e-3
) -> GeometricSchedule:
    """Geometric schedule hitting ``t_final`` at the last iteration.

    Convenience used by the applications to tune SA to the iteration
    budget (the paper tunes temperature and annealing rate per dataset).
    """
    check_positive("t0", t0)
    check_positive("t_final", t_final)
    if iterations < 2:
        raise ConfigError(f"iterations must be >= 2, got {iterations}")
    if t_final >= t0:
        raise ConfigError("t_final must be below t0")
    rate = (t_final / t0) ** (1.0 / (iterations - 1))
    return GeometricSchedule(t0=t0, rate=rate, t_min=t_min)
