"""Checkpoint/resume for the MCMC solvers — byte-identical continuation.

A paper-scale evaluation runs minutes-to-hours of Gibbs sweeps per
design point; an interruption (preemption, OOM, SIGTERM from a job
scheduler) should cost at most one checkpoint interval, not the whole
solve.  A :class:`SolveCheckpoint` captures everything the three solver
front ends (:class:`~repro.mrf.solver.MCMCSolver`,
:class:`~repro.mrf.tempering.ParallelTempering`,
:class:`~repro.mrf.batch.EnsembleSolver`) need to continue *exactly*
where they stopped:

* the label grid(s) — ``(H, W)`` for a single chain, ``(K, H, W)``
  stacked for tempering ladders and ensembles;
* the completed sweep index and the recorded histories (energy,
  temperature, swap bookkeeping) so the resumed result equals the
  uninterrupted one entry for entry;
* the **full RNG state** of every stream the run consumes — the
  solver-level generator plus each sampler backend's
  :meth:`~repro.core.base.SamplerBackend.getstate` snapshot (NumPy
  generators, LFSR registers, MT19937 state vectors; for buffered
  sources the snapshot also carries the prefetch-slab cursor, so a
  checkpoint landing mid-block resumes byte-identically without
  persisting the buffered floats themselves).

The hard contract, enforced by ``tests/test_mrf_checkpoint.py``: a
solve interrupted at *any* checkpoint and resumed produces byte-identical
labels, energies, and RNG stream positions to the uninterrupted oracle,
on every backend.

On disk a checkpoint is a pickle inside the checksummed envelope of
:mod:`repro.util.integrity` (same format as the result cache), written
atomically — a crash mid-checkpoint leaves the previous checkpoint
intact, and a truncated/corrupt file is reported as a structured
:class:`~repro.util.integrity.EnvelopeError` instead of resuming from
garbage.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable, Optional, Union

import numpy as np

from repro.util.errors import ConfigError
from repro.util.integrity import dump_envelope, load_envelope

#: Bump when the checkpoint payload layout changes incompatibly.
CHECKPOINT_FORMAT_VERSION = 1

#: Checkpoint kinds, one per solver front end.
KINDS = ("solver", "tempering", "ensemble")


@dataclass
class SolveCheckpoint:
    """One resumable snapshot of an in-flight solve."""

    kind: str
    sweep: int  # completed sweeps at snapshot time
    labels: np.ndarray  # (H, W) or (K, H, W) copy, chain-stacked
    rng: dict  # named RNG/backend state snapshots
    history: dict = field(default_factory=dict)  # recorded per-sweep bookkeeping
    meta: dict = field(default_factory=dict)  # shape/backend hints for validation

    def __post_init__(self):
        if self.kind not in KINDS:
            raise ConfigError(f"unknown checkpoint kind {self.kind!r}; expected {KINDS}")
        if self.sweep < 0:
            raise ConfigError(f"sweep must be >= 0, got {self.sweep}")


def save_checkpoint(checkpoint: SolveCheckpoint, path: os.PathLike) -> None:
    """Persist ``checkpoint`` atomically inside the checksummed envelope."""
    dump_envelope(path, checkpoint, CHECKPOINT_FORMAT_VERSION)


def load_checkpoint(path: os.PathLike) -> SolveCheckpoint:
    """Load and verify a checkpoint written by :func:`save_checkpoint`."""
    checkpoint = load_envelope(path, CHECKPOINT_FORMAT_VERSION)
    if not isinstance(checkpoint, SolveCheckpoint):
        raise ConfigError(
            f"checkpoint file holds a {type(checkpoint).__name__}, "
            "not a SolveCheckpoint"
        )
    return checkpoint


def resolve_checkpoint(
    resume: Union[SolveCheckpoint, str, os.PathLike, None], kind: str
) -> Optional[SolveCheckpoint]:
    """Normalize a ``resume=`` argument: checkpoint object, path, or None."""
    if resume is None:
        return None
    checkpoint = (
        resume if isinstance(resume, SolveCheckpoint) else load_checkpoint(resume)
    )
    if checkpoint.kind != kind:
        raise ConfigError(
            f"cannot resume a {kind!r} run from a {checkpoint.kind!r} checkpoint"
        )
    return checkpoint


class CheckpointWriter:
    """Periodic checkpoint emitter shared by the solver front ends.

    ``every`` is the sweep interval (0 disables); a due snapshot is
    built by the caller's ``make`` thunk and routed to ``path`` (atomic
    envelope write, same file each time — the latest checkpoint wins)
    and/or ``sink`` (a callable, e.g. a test capturing snapshots or a
    driver shipping them elsewhere).
    """

    def __init__(
        self,
        every: int = 0,
        path: Optional[os.PathLike] = None,
        sink: Optional[Callable[[SolveCheckpoint], None]] = None,
    ):
        if every < 0:
            raise ConfigError(f"checkpoint interval must be >= 0, got {every}")
        if every and path is None and sink is None:
            raise ConfigError(
                "checkpointing enabled but neither a path nor a sink was given"
            )
        self.every = every
        self.path = path
        self.sink = sink

    @property
    def enabled(self) -> bool:
        return self.every > 0

    def due(self, completed_sweeps: int) -> bool:
        """Whether a snapshot should be taken after ``completed_sweeps``."""
        return self.enabled and completed_sweeps % self.every == 0

    def emit(self, checkpoint: SolveCheckpoint) -> None:
        """Route one snapshot to the configured destinations."""
        if self.path is not None:
            save_checkpoint(checkpoint, self.path)
        if self.sink is not None:
            self.sink(checkpoint)

    def maybe_emit(
        self, completed_sweeps: int, make: Callable[[], SolveCheckpoint]
    ) -> None:
        """Build (lazily) and emit a snapshot when one is due."""
        if self.due(completed_sweeps):
            self.emit(make())
