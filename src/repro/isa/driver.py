"""Host-side driver: compiles MRF sweeps into RSU command streams.

The driver owns the application model (quantized unary costs, the
energy-stage configuration, the annealing schedule in grid units) and
talks to an :class:`~repro.isa.device.RSUDevice` purely through encoded
command words — the same contract a real host/accelerator pair would
have.  A full chromatic-Gibbs solve thus runs "over the wire",
exercising configuration, per-iteration temperature updates and every
variable evaluation through the architectural interface.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.convert import boundary_table
from repro.isa.commands import (
    Command,
    Configure,
    Evaluate,
    SetTemperature,
    decode_stream,
    encode_stream,
)
from repro.isa.device import LEGACY_UPDATE_BYTES, NEW_UPDATE_BYTES, RSUDevice
from repro.mrf.model import checkerboard_masks
from repro.util.errors import ConfigError, DataError


class RSUDriver:
    """Runs a grid MRF problem on a device through the command interface.

    Parameters
    ----------
    device:
        The functional unit (new or legacy design).
    unary:
        Quantized singleton costs, shape ``(H, W, M)`` with 8-bit
        values.
    configure:
        The energy-stage configuration command to issue at start.
    """

    def __init__(
        self,
        device: RSUDevice,
        unary: np.ndarray,
        configure: Configure,
    ):
        arr = np.asarray(unary, dtype=np.int64)
        if arr.ndim != 3:
            raise DataError(f"unary must be (H, W, M), got {arr.shape}")
        if arr.shape[2] != configure.n_labels:
            raise ConfigError("configure.n_labels must match the unary volume")
        if arr.min() < 0 or arr.max() > 255:
            raise DataError("unary costs must be 8-bit")
        self.device = device
        self.shape = arr.shape[:2]
        self.n_labels = arr.shape[2]
        self._unary3d = arr
        self._configure = configure
        self._masks = checkerboard_masks(self.shape)
        self.words_sent = 0
        device.load_unary(arr.reshape(-1, self.n_labels))
        self._send([configure])

    # -- wire helpers ------------------------------------------------------
    def _send(self, commands: List[Command]) -> List[object]:
        words = encode_stream(commands)
        self.words_sent += len(words)
        return self.device.execute(decode_stream(words), words=len(words))

    # -- temperature updates -------------------------------------------------
    def temperature_commands(self, grid_temperature: float) -> List[Command]:
        """The update transfers for the device's design."""
        if grid_temperature <= 0:
            raise ConfigError("grid_temperature must be positive")
        if self.device.design == "new":
            bounds = boundary_table(grid_temperature, self.device.config)
            payloads = np.clip(np.floor(bounds), 0, 255).astype(int)
            if len(payloads) > NEW_UPDATE_BYTES:
                raise ConfigError("boundary set exceeds the update port")
            commands: List[Command] = [
                SetTemperature(index, int(value))
                for index, value in enumerate(payloads)
            ]
            # Pad unused registers with the saturated boundary.
            for index in range(len(payloads), NEW_UPDATE_BYTES):
                commands.append(SetTemperature(index, 255))
            return commands
        # Legacy: stream the packed 4-bit LUT (two entries per byte).
        from repro.core.convert import legacy_lut

        lut = legacy_lut(grid_temperature, self.device.config)
        clipped = np.clip(lut, 0, 15).astype(int)
        commands = []
        for index in range(LEGACY_UPDATE_BYTES):
            low = clipped[2 * index]
            high = clipped[2 * index + 1]
            commands.append(SetTemperature(index, int(low | (high << 4))))
        return commands

    def set_temperature(self, grid_temperature: float) -> None:
        """Issue a temperature update over the wire."""
        self._send(self.temperature_commands(grid_temperature))

    # -- sweeps --------------------------------------------------------------
    def _evaluate_commands(
        self, labels: np.ndarray, mask: np.ndarray
    ) -> Tuple[List[Command], np.ndarray]:
        height, width = self.shape
        sites = np.flatnonzero(mask.ravel())
        rows, cols = np.nonzero(mask)
        commands: List[Command] = []
        for site, row, col in zip(sites, rows, cols):
            neighbors = []
            valid = 0
            for position, (dy, dx) in enumerate(((-1, 0), (1, 0), (0, -1), (0, 1))):
                ny, nx = row + dy, col + dx
                if 0 <= ny < height and 0 <= nx < width:
                    neighbors.append(int(labels[ny, nx]))
                    valid |= 1 << position
                else:
                    neighbors.append(0)
            commands.append(
                Evaluate(site=int(site), neighbors=tuple(neighbors), valid_mask=valid)
            )
        return commands, mask

    def sweep(self, labels: np.ndarray, grid_temperature: float) -> np.ndarray:
        """One full checkerboard sweep through the interface, in place."""
        labels = np.asarray(labels)
        if labels.shape != self.shape:
            raise DataError(f"labels shape {labels.shape} != grid {self.shape}")
        self.set_temperature(grid_temperature)
        for mask in self._masks:
            commands, _ = self._evaluate_commands(labels, mask)
            responses = self._send(commands)
            labels[mask] = np.asarray(responses, dtype=np.int64)
        return labels

    def solve(
        self,
        iterations: int,
        temperatures: List[float],
        init: Optional[np.ndarray] = None,
        seed: int = 0,
    ) -> np.ndarray:
        """Full MCMC solve over the wire.

        ``temperatures`` supplies the grid-unit temperature per
        iteration (length >= iterations).
        """
        if iterations < 1:
            raise ConfigError("iterations must be >= 1")
        if len(temperatures) < iterations:
            raise ConfigError("need one temperature per iteration")
        if init is None:
            labels = np.argmin(self._unary3d, axis=2).astype(np.int64)
        else:
            labels = np.asarray(init, dtype=np.int64).copy()
        for k in range(iterations):
            self.sweep(labels, temperatures[k])
        return labels

    def interface_traffic(self) -> Dict[str, int]:
        """Words sent and the device's view of the same stream."""
        return {
            "words_sent": self.words_sent,
            "device_words": self.device.stats.words_consumed,
            "update_bytes": self.device.stats.update_bytes,
            "stall_cycles": self.device.stats.stall_cycles,
        }
