"""Architectural interface of the RSU-G: command set, device, driver.

The paper's Question 3 asks whether the new microarchitecture changes
the *architectural* interface.  This package makes the interface
concrete: a small command set (32-bit words) a host issues to an RSU-G
functional unit —

* ``CONFIGURE`` — distance function and energy weights, once per
  application (Sec. IV-B.1's configurable energy calculation);
* ``SET_TEMPERATURE`` — streams the lambda boundary registers through
  the 8-bit temperature port, once per annealing iteration (the only
  interface *addition* of the new design, Sec. IV-B);
* ``EVALUATE`` — one variable evaluation: neighbour labels plus a
  singleton-cost reference; returns the sampled label;
* ``READ_STATUS`` — counters for driver-side pacing.

:class:`~repro.isa.device.RSUDevice` consumes encoded streams with
bit-accurate sampling semantics (it shares the functional stage models
with :class:`~repro.core.rsu.RSUGSampler`);
:class:`~repro.isa.driver.RSUDriver` compiles MRF sweeps into command
streams, so a whole solve can run "over the wire" and the interface
compatibility between the two designs can be tested directly.
"""

from repro.isa.commands import (
    Command,
    Configure,
    Evaluate,
    ReadStatus,
    SetTemperature,
    decode_stream,
    encode_stream,
)
from repro.isa.device import DeviceStats, RSUDevice
from repro.isa.driver import RSUDriver

__all__ = [
    "Command",
    "Configure",
    "Evaluate",
    "ReadStatus",
    "SetTemperature",
    "decode_stream",
    "encode_stream",
    "DeviceStats",
    "RSUDevice",
    "RSUDriver",
]
