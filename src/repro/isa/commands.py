"""RSU-G command encoding: 32-bit words over the host interface.

Formats (op in bits [31:28]):

* ``CONFIGURE`` (op 1): ``[27:26]`` distance kind, ``[25:20]``
  singleton weight, ``[19:14]`` doubleton weight, ``[13:7]`` label
  count, ``[6:3]`` output shift.
* ``SET_TEMPERATURE`` (op 2): ``[27:20]`` transfer index, ``[19:12]``
  payload byte.  The new design streams 4 boundary bytes into shadow
  registers; the previous design must stream all 128 LUT bytes and
  stalls while they land.
* ``EVALUATE`` (op 3, two words): word0 ``[27:0]`` site index; word1
  ``[27:24]`` neighbour-valid mask, ``[23:0]`` four 6-bit neighbour
  labels.
* ``READ_STATUS`` (op 4): no operands; the device appends a counters
  snapshot to its response queue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, List, Tuple, Union

import numpy as np

from repro.core.distance import DISTANCE_KINDS
from repro.util.errors import ConfigError, DataError

OP_CONFIGURE = 1
OP_SET_TEMPERATURE = 2
OP_EVALUATE = 3
OP_READ_STATUS = 4

_WORD_MASK = 0xFFFFFFFF
#: Six-bit label fields: up to 64 labels (the paper's maximum).
MAX_LABELS = 64
#: Sentinel in a neighbour field when the valid-mask bit is clear.
NEIGHBOR_FIELD_MASK = 0x3F


@dataclass(frozen=True)
class Configure:
    """Application-start configuration of the energy stage."""

    distance: str
    singleton_weight: int
    doubleton_weight: int
    n_labels: int
    output_shift: int = 0

    def __post_init__(self):
        if self.distance not in DISTANCE_KINDS:
            raise ConfigError(f"distance must be one of {DISTANCE_KINDS}")
        for name, value, top in (
            ("singleton_weight", self.singleton_weight, 63),
            ("doubleton_weight", self.doubleton_weight, 63),
            ("output_shift", self.output_shift, 15),
        ):
            if not 0 <= value <= top:
                raise ConfigError(f"{name} must be in [0, {top}], got {value}")
        if not 1 <= self.n_labels <= MAX_LABELS:
            raise ConfigError(f"n_labels must be in [1, {MAX_LABELS}]")


@dataclass(frozen=True)
class SetTemperature:
    """One 8-bit transfer of a temperature update."""

    index: int
    payload: int

    def __post_init__(self):
        if not 0 <= self.index <= 255:
            raise ConfigError(f"index must be in [0, 255], got {self.index}")
        if not 0 <= self.payload <= 255:
            raise ConfigError(f"payload must be a byte, got {self.payload}")


@dataclass(frozen=True)
class Evaluate:
    """One variable evaluation: site index plus neighbour labels."""

    site: int
    neighbors: Tuple[int, int, int, int]
    valid_mask: int

    def __post_init__(self):
        if not 0 <= self.site < (1 << 28):
            raise ConfigError(f"site must fit 28 bits, got {self.site}")
        if len(self.neighbors) != 4:
            raise ConfigError("exactly four neighbour fields required")
        if any(not 0 <= n <= NEIGHBOR_FIELD_MASK for n in self.neighbors):
            raise ConfigError("neighbour labels must fit 6 bits")
        if not 0 <= self.valid_mask <= 0xF:
            raise ConfigError(f"valid_mask must fit 4 bits, got {self.valid_mask}")


@dataclass(frozen=True)
class ReadStatus:
    """Request a counters snapshot."""


Command = Union[Configure, SetTemperature, Evaluate, ReadStatus]

_DISTANCE_CODES = {kind: i for i, kind in enumerate(DISTANCE_KINDS)}
_DISTANCE_FROM_CODE = dict(enumerate(DISTANCE_KINDS))


def encode(command: Command) -> List[int]:
    """Encode one command into its 32-bit word(s)."""
    if isinstance(command, Configure):
        word = (
            (OP_CONFIGURE << 28)
            | (_DISTANCE_CODES[command.distance] << 26)
            | (command.singleton_weight << 20)
            | (command.doubleton_weight << 14)
            | (command.n_labels << 7)
            | (command.output_shift << 3)
        )
        return [word & _WORD_MASK]
    if isinstance(command, SetTemperature):
        word = (OP_SET_TEMPERATURE << 28) | (command.index << 20) | (command.payload << 12)
        return [word & _WORD_MASK]
    if isinstance(command, Evaluate):
        word0 = (OP_EVALUATE << 28) | command.site
        packed = 0
        for position, neighbor in enumerate(command.neighbors):
            packed |= neighbor << (6 * position)
        word1 = (command.valid_mask << 24) | packed
        return [word0 & _WORD_MASK, word1 & _WORD_MASK]
    if isinstance(command, ReadStatus):
        return [(OP_READ_STATUS << 28) & _WORD_MASK]
    raise ConfigError(f"unknown command {command!r}")


def encode_stream(commands: Iterable[Command]) -> List[int]:
    """Encode a command sequence into a flat word stream."""
    words: List[int] = []
    for command in commands:
        words.extend(encode(command))
    return words


def decode_stream(words: Iterable[int]) -> List[Command]:
    """Decode a word stream back into commands (inverse of encode).

    Malformed input — a value that is not a 32-bit word, an unknown
    opcode, a truncated two-word command, or field contents that fail
    the command's own validation (e.g. a corrupted CONFIGURE with an
    out-of-range label count) — raises :class:`DataError` carrying the
    word index and byte offset of the offending word, so wire-corruption
    faults are catchable and diagnosable at the transfer boundary.
    """
    iterator = iter(words)
    commands: List[Command] = []
    offset = 0

    def malformed(detail: str) -> DataError:
        return DataError(
            f"malformed command stream at word {offset} (byte {offset * 4}): {detail}"
        )

    for word in iterator:
        if not isinstance(word, (int, np.integer)):
            raise malformed(f"expected an integer word, got {type(word).__name__}")
        if not 0 <= word <= _WORD_MASK:
            raise malformed(f"word {word!r} does not fit 32 bits")
        opcode = word >> 28
        try:
            if opcode == OP_CONFIGURE:
                commands.append(
                    Configure(
                        distance=_DISTANCE_FROM_CODE[(word >> 26) & 0x3],
                        singleton_weight=(word >> 20) & 0x3F,
                        doubleton_weight=(word >> 14) & 0x3F,
                        n_labels=(word >> 7) & 0x7F,
                        output_shift=(word >> 3) & 0xF,
                    )
                )
            elif opcode == OP_SET_TEMPERATURE:
                commands.append(
                    SetTemperature(
                        index=(word >> 20) & 0xFF, payload=(word >> 12) & 0xFF
                    )
                )
            elif opcode == OP_EVALUATE:
                try:
                    word1 = next(iterator)
                except StopIteration:
                    raise malformed("truncated EVALUATE: missing second word")
                offset += 1
                if not isinstance(word1, (int, np.integer)) or not 0 <= word1 <= _WORD_MASK:
                    raise malformed(f"word {word1!r} does not fit 32 bits")
                neighbors = tuple(
                    (word1 >> (6 * position)) & NEIGHBOR_FIELD_MASK
                    for position in range(4)
                )
                commands.append(
                    Evaluate(
                        site=word & 0x0FFFFFFF,
                        neighbors=neighbors,
                        valid_mask=(word1 >> 24) & 0xF,
                    )
                )
            elif opcode == OP_READ_STATUS:
                commands.append(ReadStatus())
            else:
                raise malformed(f"unknown opcode {opcode} in word {word:#010x}")
        except (ConfigError, KeyError) as exc:
            raise malformed(f"invalid field contents: {exc}") from exc
        offset += 1
    return commands
