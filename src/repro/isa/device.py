"""Functional RSU-G device: consumes command streams, returns labels.

The device owns the hardware-side state: the energy datapath
configuration, the label-value LUT, the unary memory (written by the
host out-of-band, modeling DMA), the lambda boundary registers (with a
shadow set on the new design), and the sampling stages.  It is
bit-faithful: energies come from the integer
:class:`~repro.core.datapath.EnergyDatapath`, conversion compares
against 8-bit boundary registers, and the TTF/selection stages are the
same models the functional simulator uses.

Design variants:

* ``design="new"`` — 4 boundary-byte transfers per temperature update,
  landing in shadow registers (no stall accounted);
* ``design="legacy"`` — the update must stream the full 128-byte
  energy-to-intensity LUT; the device counts the stall cycles the
  pipeline would pay.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.base import select_first_to_fire
from repro.core.datapath import EnergyDatapath
from repro.core.params import RSUConfig
from repro.core.ttf import TTFSampler
from repro.isa.commands import (
    Command,
    Configure,
    Evaluate,
    ReadStatus,
    SetTemperature,
)
from repro.util.errors import ConfigError, DataError

#: Temperature-update transfers per design.
NEW_UPDATE_BYTES = 4
LEGACY_UPDATE_BYTES = 128  # 256 entries x 4 bits


@dataclass
class DeviceStats:
    """Interface and pipeline counters."""

    words_consumed: int = 0
    evaluations: int = 0
    temperature_updates: int = 0
    update_bytes: int = 0
    stall_cycles: int = 0
    responses: int = 0

    def snapshot(self) -> Dict[str, int]:
        """Counters as a plain dict (the READ_STATUS payload)."""
        return {
            "words_consumed": self.words_consumed,
            "evaluations": self.evaluations,
            "temperature_updates": self.temperature_updates,
            "update_bytes": self.update_bytes,
            "stall_cycles": self.stall_cycles,
            "responses": self.responses,
        }


class RSUDevice:
    """Executes a decoded command stream.

    Parameters
    ----------
    config:
        Sampling design point (conversion flags must match ``design``).
    rng:
        RET entropy source.
    design:
        ``"new"`` or ``"legacy"`` — selects the temperature-update
        interface behaviour.
    """

    def __init__(
        self, config: RSUConfig, rng: np.random.Generator, design: str = "new"
    ):
        if design not in ("new", "legacy"):
            raise ConfigError(f"design must be 'new' or 'legacy', got {design}")
        if design == "new" and not (config.scaling and config.cutoff):
            raise ConfigError("the new device requires scaling and cutoff enabled")
        if design == "legacy" and (config.scaling or config.cutoff):
            raise ConfigError("the legacy device models the unscaled design")
        self.config = config
        self.design = design
        self._rng = rng
        self._ttf = TTFSampler(config, rng)
        self._datapath: Optional[EnergyDatapath] = None
        self._unary: Optional[np.ndarray] = None
        self._boundaries: Optional[np.ndarray] = None  # active registers
        self._shadow: Dict[int, int] = {}
        self._lut: Optional[np.ndarray] = None
        self._lut_bytes: Dict[int, int] = {}
        self.stats = DeviceStats()
        self.responses: List[object] = []

    # -- host-side memory (DMA model) ------------------------------------
    def load_unary(self, unary: np.ndarray) -> None:
        """Write the quantized singleton-cost table (sites x labels)."""
        arr = np.asarray(unary, dtype=np.int64)
        if arr.ndim != 2:
            raise DataError(f"unary must be (sites, labels), got {arr.shape}")
        if arr.min() < 0 or arr.max() > 255:
            raise DataError("unary costs must be 8-bit")
        self._unary = arr

    # -- command execution -------------------------------------------------
    def execute(self, commands: List[Command], words: int = None) -> List[object]:
        """Run a command list; returns the responses it produced."""
        before = len(self.responses)
        for command in commands:
            self._dispatch(command)
        if words is not None:
            self.stats.words_consumed += words
        return self.responses[before:]

    def _dispatch(self, command: Command) -> None:
        if isinstance(command, Configure):
            self._configure(command)
        elif isinstance(command, SetTemperature):
            self._set_temperature(command)
        elif isinstance(command, Evaluate):
            self._evaluate(command)
        elif isinstance(command, ReadStatus):
            self.responses.append(self.stats.snapshot())
            self.stats.responses += 1
        else:
            raise ConfigError(f"unknown command {command!r}")

    def _configure(self, command: Configure) -> None:
        self._datapath = EnergyDatapath(
            label_values=np.arange(command.n_labels),
            distance=command.distance,
            singleton_weight=command.singleton_weight,
            doubleton_weight=command.doubleton_weight,
            output_shift=command.output_shift,
            energy_bits=self.config.energy_bits,
        )

    def _set_temperature(self, command: SetTemperature) -> None:
        if self.design == "new":
            if command.index >= NEW_UPDATE_BYTES:
                raise DataError(
                    f"new design has {NEW_UPDATE_BYTES} boundary registers"
                )
            self._shadow[command.index] = command.payload
            if len(self._shadow) == NEW_UPDATE_BYTES:
                # Atomic swap once all transfers have landed; no stall.
                self._boundaries = np.array(
                    [self._shadow[i] for i in range(NEW_UPDATE_BYTES)], dtype=np.int64
                )
                self._shadow = {}
                self.stats.temperature_updates += 1
            self.stats.update_bytes += 1
        else:
            if command.index >= LEGACY_UPDATE_BYTES:
                raise DataError(
                    f"legacy design streams {LEGACY_UPDATE_BYTES} LUT bytes"
                )
            self._lut_bytes[command.index] = command.payload
            self.stats.update_bytes += 1
            self.stats.stall_cycles += 1  # the pipeline holds per transfer
            if len(self._lut_bytes) == LEGACY_UPDATE_BYTES:
                packed = np.array(
                    [self._lut_bytes[i] for i in range(LEGACY_UPDATE_BYTES)],
                    dtype=np.int64,
                )
                # Each byte carries two 4-bit LUT entries, low nibble first.
                lut = np.zeros(256, dtype=np.int64)
                lut[0::2] = packed & 0xF
                lut[1::2] = (packed >> 4) & 0xF
                self._lut = lut
                self._lut_bytes = {}
                self.stats.temperature_updates += 1

    def _codes_for(self, energies: np.ndarray) -> np.ndarray:
        if self.design == "new":
            if self._boundaries is None:
                raise ConfigError("SET_TEMPERATURE must precede EVALUATE")
            scaled = energies - energies.min()
            codes = np.zeros(len(energies), dtype=np.int64)
            code = self.config.lambda_max_code
            assigned = np.zeros(len(energies), dtype=bool)
            for bound in self._boundaries:
                mask = ~assigned & (scaled <= bound)
                codes[mask] = code
                assigned |= mask
                code //= 2
            return codes
        if self._lut is None:
            raise ConfigError("SET_TEMPERATURE must precede EVALUATE")
        return self._lut[np.clip(energies, 0, 255)]

    def _evaluate(self, command: Evaluate) -> None:
        if self._datapath is None:
            raise ConfigError("CONFIGURE must precede EVALUATE")
        if self._unary is None:
            raise ConfigError("unary memory must be loaded before EVALUATE")
        if command.site >= self._unary.shape[0]:
            raise DataError(f"site {command.site} outside the unary memory")
        m = self._datapath.n_labels
        neighbors = np.array(
            [
                neighbor if (command.valid_mask >> position) & 1 else m
                for position, neighbor in enumerate(command.neighbors)
            ],
            dtype=np.int64,
        )
        if np.any((neighbors < 0) | (neighbors > m)):
            raise DataError("neighbour label outside the configured label set")
        singleton = self._unary[command.site]
        labels = np.arange(m)
        energies = self._datapath.compute(
            singleton, labels, np.tile(neighbors, (m, 1))
        )
        codes = self._codes_for(energies)
        ttf = self._ttf.sample(codes[None, :])
        winner = int(
            select_first_to_fire(ttf, self.config.tie_policy, self._rng)[0]
        )
        self.responses.append(winner)
        self.stats.evaluations += 1
        self.stats.responses += 1
