"""Composable fault models for every stage of the RSU-G pipeline.

The paper treats device non-idealities qualitatively (Sec. II-B,
IV-B.6); the Duke follow-up work on statistical robustness of
probabilistic accelerators (arXiv:1910.12346, arXiv:2003.04223) argues
that end-point quality alone hides sampler pathologies.  This module
provides the *injection* half of that programme: small, frozen fault
descriptions — one per pipeline stage — that seeded, stateful wrappers
turn into deterministic fault schedules.

Stages and their models:

* :class:`EntropyFault` — stuck-at bits in the uniform-variate words of
  a pseudo-RNG baseline (:mod:`repro.rng`), applied by
  :class:`FaultyBitSource`.
* :class:`SPADFault` — dead/hot SPAD detectors and timer jitter layered
  on the TTF stage (:mod:`repro.core.ttf`), applied by
  :class:`FaultySPADSampler`.
* :class:`UnitArrayFault` — stuck-at-label, dead, and transiently
  failing units in an RSU array, applied by
  :class:`repro.faults.device.FaultyRSUDevice`.
* :class:`WireFault` — bit flips and word drops in encoded command
  streams (:mod:`repro.isa.commands`), applied by :class:`WireChannel`.

:class:`FaultPlan` composes any subset.  Every model with all rates at
zero is *null*: its wrapper is a strict no-op that consumes no random
variates, so a null plan is bit-identical to the fault-free path.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

import numpy as np

from repro.core.params import RSUConfig
from repro.core.ttf import TTFSampler, no_sample_bin
from repro.util.errors import ConfigError
from repro.util.validation import check_in_range


@dataclass(frozen=True)
class EntropyFault:
    """Stuck-at bits in an entropy stream's fixed-point uniform words.

    ``stuck_mask`` selects which of the ``word_bits`` positions are
    stuck (bit 0 is the least significant); ``stuck_value`` gives the
    value each stuck position is forced to.  Applied to a
    :class:`~repro.rng.streams.BitSource` via :class:`FaultyBitSource`.
    """

    stuck_mask: int = 0
    stuck_value: int = 0
    word_bits: int = 19

    def __post_init__(self):
        if not 1 <= self.word_bits <= 53:
            raise ConfigError(f"word_bits must be in [1, 53], got {self.word_bits}")
        top = (1 << self.word_bits) - 1
        if not 0 <= self.stuck_mask <= top:
            raise ConfigError(f"stuck_mask must fit {self.word_bits} bits")
        if self.stuck_value & ~self.stuck_mask:
            raise ConfigError("stuck_value must only set bits inside stuck_mask")

    @property
    def is_null(self) -> bool:
        """True when the model injects nothing."""
        return self.stuck_mask == 0


class FaultyBitSource:
    """A :class:`~repro.rng.streams.BitSource` with stuck word bits.

    Uniform draws from the wrapped source are quantized onto the
    ``word_bits`` grid and the stuck positions are forced — the model of
    a latched flip-flop in the RNG output register.  A null fault
    returns the wrapped source's floats untouched.

    The wrapper is a full :class:`~repro.rng.streams.BitSource`: it
    honors the allocation-free ``uniforms(count, out=)`` form (stuck
    bits are applied in one vectorized mask-and-divide pass, so the
    block engines' throughput survives the injection layer) and
    forwards ``getstate``/``setstate`` to the wrapped source — the fault
    itself is stateless config, so checkpoints capture only entropy
    state.
    """

    def __init__(self, source, fault: EntropyFault):
        self._source = source
        self._fault = fault

    def uniforms(self, count: int, out: Optional[np.ndarray] = None) -> np.ndarray:
        u = self._source.uniforms(count, out=out)
        if self._fault.is_null:
            return u
        scale = float(1 << self._fault.word_bits)
        words = np.floor(np.asarray(u) * scale).astype(np.int64)
        words = (words & ~self._fault.stuck_mask) | self._fault.stuck_value
        if out is None:
            return words / scale
        np.divide(words, scale, out=out)
        return out

    def getstate(self) -> dict:
        return {"kind": "faulty", "inner": self._source.getstate()}

    def setstate(self, state: dict) -> None:
        if state.get("kind") != "faulty":
            raise ConfigError(f"not a FaultyBitSource state snapshot: {state!r}")
        self._source.setstate(state["inner"])


@dataclass(frozen=True)
class SPADFault:
    """SPAD detector faults and timer jitter on the TTF stage.

    Parameters
    ----------
    dead_prob:
        Per-evaluation probability the detector misses its window
        entirely (afterpulse dead time, bias droop): the label records
        "no sample" even though the RET network fired.
    hot_prob:
        Per-evaluation probability of a spurious early count (a hot
        pixel), landing at a uniform bin and shadowing the genuine
        photon when earlier — the same first-detection semantics as
        :class:`~repro.core.nonideal.NoisyTTFSampler`.
    jitter_bins:
        Half-width of uniform timer jitter, in bins, added to genuine
        detections (TDC clock drift); results are clipped to the window.
    seed:
        Seed of the dedicated fault-schedule generator, kept separate
        from the sampling entropy so a null fault changes nothing.
    """

    dead_prob: float = 0.0
    hot_prob: float = 0.0
    jitter_bins: int = 0
    seed: int = 0

    def __post_init__(self):
        check_in_range("dead_prob", self.dead_prob, 0.0, 1.0)
        check_in_range("hot_prob", self.hot_prob, 0.0, 1.0)
        if self.jitter_bins < 0:
            raise ConfigError(f"jitter_bins must be >= 0, got {self.jitter_bins}")

    @property
    def is_null(self) -> bool:
        """True when the model injects nothing."""
        return self.dead_prob == 0.0 and self.hot_prob == 0.0 and self.jitter_bins == 0


class FaultySPADSampler(TTFSampler):
    """TTF sampler with dead/hot SPADs and timer jitter injected.

    Fault draws come from a dedicated generator seeded by the fault
    model, so with ``fault.is_null`` the output is bit-identical to the
    clean :class:`~repro.core.ttf.TTFSampler` on the same entropy.
    """

    def __init__(self, config: RSUConfig, rng: np.random.Generator, fault: SPADFault):
        super().__init__(config, rng)
        self.fault = fault
        self._fault_rng = np.random.default_rng(fault.seed)

    def sample(self, codes: np.ndarray) -> np.ndarray:
        ttf = super().sample(codes)
        if self.fault.is_null:
            return ttf
        if self.config.float_time:
            raise ConfigError("SPAD fault injection requires binned time")
        cfg = self.config
        codes = np.asarray(codes)
        active = codes > 0
        genuine = active & (ttf <= cfg.time_bins)
        out = ttf.copy()
        if self.fault.jitter_bins > 0:
            jitter = self._fault_rng.integers(
                -self.fault.jitter_bins, self.fault.jitter_bins + 1, size=ttf.shape
            )
            out = np.where(
                genuine, np.clip(out + jitter, 1, cfg.time_bins), out
            )
        if self.fault.dead_prob > 0.0:
            dead = self._fault_rng.random(ttf.shape) < self.fault.dead_prob
            # A dead detector sees nothing this window: the genuine
            # photon is lost and no spurious count can register either.
            out = np.where(dead & active, no_sample_bin(cfg), out)
        else:
            dead = np.zeros(ttf.shape, dtype=bool)
        if self.fault.hot_prob > 0.0:
            hot = self._fault_rng.random(ttf.shape) < self.fault.hot_prob
            spurious = self._fault_rng.integers(1, cfg.time_bins + 1, size=ttf.shape)
            out = np.where(hot & active & ~dead, np.minimum(out, spurious), out)
        return out.astype(np.int64)


@dataclass(frozen=True)
class UnitArrayFault:
    """Faults across an array of RSU-G units executing EVALUATEs.

    The functional device models the array schedule as round-robin
    striping over ``n_units`` active units with ``spare_units`` healthy
    spares available for remapping.

    Parameters
    ----------
    transient_rate:
        Per-evaluation probability a unit transiently fails and NACKs
        (returns no label for that variable).
    dead_units:
        Unit ids that always NACK (persistent failure).
    stuck_units:
        ``(unit, label)`` pairs whose output latch is stuck: the unit
        samples normally but always reports ``label``.
    """

    n_units: int = 8
    spare_units: int = 2
    transient_rate: float = 0.0
    dead_units: Tuple[int, ...] = ()
    stuck_units: Tuple[Tuple[int, int], ...] = ()
    seed: int = 0

    def __post_init__(self):
        if self.n_units < 1:
            raise ConfigError(f"n_units must be >= 1, got {self.n_units}")
        if self.spare_units < 0:
            raise ConfigError(f"spare_units must be >= 0, got {self.spare_units}")
        check_in_range("transient_rate", self.transient_rate, 0.0, 1.0)
        total = self.n_units + self.spare_units
        for unit in self.dead_units:
            if not 0 <= unit < total:
                raise ConfigError(f"dead unit {unit} outside the array of {total}")
        seen = set()
        for unit, label in self.stuck_units:
            if not 0 <= unit < total:
                raise ConfigError(f"stuck unit {unit} outside the array of {total}")
            if label < 0:
                raise ConfigError("stuck label must be a valid label index")
            if unit in seen:
                raise ConfigError(f"unit {unit} listed stuck more than once")
            seen.add(unit)

    @property
    def is_null(self) -> bool:
        """True when the model injects nothing."""
        return (
            self.transient_rate == 0.0
            and not self.dead_units
            and not self.stuck_units
        )


@dataclass(frozen=True)
class WireFault:
    """Bit corruption and word drops on the host command interface.

    ``flip_rate`` is the per-word probability of a single uniformly
    chosen bit flipping in flight; ``drop_rate`` the per-word
    probability the word is lost entirely.
    """

    flip_rate: float = 0.0
    drop_rate: float = 0.0
    seed: int = 0

    def __post_init__(self):
        check_in_range("flip_rate", self.flip_rate, 0.0, 1.0)
        check_in_range("drop_rate", self.drop_rate, 0.0, 1.0)

    @property
    def is_null(self) -> bool:
        """True when the model injects nothing."""
        return self.flip_rate == 0.0 and self.drop_rate == 0.0


class WireChannel:
    """Stateful channel applying a :class:`WireFault` to each transfer.

    Fault draws are consumed per *offered* word (dropped words still
    consume their flip draw), so the corruption schedule depends only on
    the fault seed and the cumulative word count — the property the
    deterministic-replay regression relies on.
    """

    def __init__(self, fault: Optional[WireFault] = None):
        self.fault = fault if fault is not None else WireFault()
        self._rng = np.random.default_rng(self.fault.seed)
        self.words_offered = 0
        self.bits_flipped = 0
        self.words_dropped = 0

    def transmit(self, words: List[int]) -> Tuple[List[int], int, int]:
        """Return ``(delivered_words, n_flips, n_drops)`` for one transfer."""
        self.words_offered += len(words)
        if self.fault.is_null or not words:
            return list(words), 0, 0
        count = len(words)
        dropped = self._rng.random(count) < self.fault.drop_rate
        flipped = self._rng.random(count) < self.fault.flip_rate
        positions = self._rng.integers(0, 32, size=count)
        delivered: List[int] = []
        flips = 0
        for word, drop, flip, bit in zip(words, dropped, flipped, positions):
            if drop:
                continue
            if flip:
                word = int(word) ^ (1 << int(bit))
                flips += 1
            delivered.append(int(word))
        drops = int(dropped.sum())
        self.bits_flipped += flips
        self.words_dropped += drops
        return delivered, flips, drops


@dataclass(frozen=True)
class FaultPlan:
    """A composed fault scenario across all pipeline stages.

    Any stage may be ``None`` (absent).  :meth:`none` builds the empty
    plan; an all-rates-zero plan is :attr:`is_null` and guaranteed
    bit-identical to the fault-free execution path.
    """

    entropy: Optional[EntropyFault] = None
    spad: Optional[SPADFault] = None
    units: Optional[UnitArrayFault] = None
    wire: Optional[WireFault] = None

    @classmethod
    def none(cls) -> "FaultPlan":
        """The empty plan: no fault models at any stage."""
        return cls()

    @property
    def is_null(self) -> bool:
        """True when no stage injects anything."""
        return all(
            model is None or model.is_null
            for model in (self.entropy, self.spad, self.units, self.wire)
        )

    def describe(self) -> dict:
        """JSON-serializable summary used in incident-log headers."""
        out: dict = {}
        if self.entropy is not None:
            out["entropy"] = {
                "stuck_mask": self.entropy.stuck_mask,
                "stuck_value": self.entropy.stuck_value,
                "word_bits": self.entropy.word_bits,
            }
        if self.spad is not None:
            out["spad"] = {
                "dead_prob": self.spad.dead_prob,
                "hot_prob": self.spad.hot_prob,
                "jitter_bins": self.spad.jitter_bins,
            }
        if self.units is not None:
            out["units"] = {
                "n_units": self.units.n_units,
                "spare_units": self.units.spare_units,
                "transient_rate": self.units.transient_rate,
                "dead_units": list(self.units.dead_units),
                "stuck_units": [list(pair) for pair in self.units.stuck_units],
            }
        if self.wire is not None:
            out["wire"] = {
                "flip_rate": self.wire.flip_rate,
                "drop_rate": self.wire.drop_rate,
            }
        return out
