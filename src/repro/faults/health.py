"""Statistical health checks for online sampler monitoring.

Following the statistical-robustness programme for probabilistic
accelerators (arXiv:1910.12346), end-point quality alone cannot tell a
healthy sampler from a subtly broken one; the resilient driver instead
tests the *samples* directly:

* :func:`chi_square_goodness` — one unit's label counts against the
  exact analytic conditional from :mod:`repro.core.analytic` (the
  active probe check);
* :func:`chi_square_two_sample` — one unit's label counts against the
  pooled counts of its peers (the passive per-sweep screen, free of
  extra traffic);
* :func:`ks_distance` / :func:`ks_pvalue` — empirical binned-TTF
  distribution against the analytic per-bin mass from
  :func:`repro.core.ttf.bin_probabilities` (photon-statistics drift).

All tests return p-values; the caller owns the thresholds.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np
from scipy import stats

from repro.util.errors import ConfigError, DataError


def label_counts(labels: Iterable[int], n_labels: int) -> np.ndarray:
    """Histogram of integer labels over ``[0, n_labels)``."""
    arr = np.asarray(list(labels), dtype=np.int64)
    if arr.size and (arr.min() < 0 or arr.max() >= n_labels):
        raise DataError("labels outside [0, n_labels)")
    return np.bincount(arr, minlength=n_labels)


def chi_square_goodness(
    observed: np.ndarray, expected_probs: np.ndarray, min_expected: float = 1.0
) -> float:
    """P-value of observed counts against an expected distribution.

    Bins whose expected count falls below ``min_expected`` are merged
    into a single tail bin (the standard validity fix for sparse
    expectations).  Observed mass in a zero-probability bin is an
    immediate failure (p = 0): the analytic conditional says that label
    can never win, so a single occurrence proves a fault.
    """
    obs = np.asarray(observed, dtype=np.float64)
    probs = np.asarray(expected_probs, dtype=np.float64)
    if obs.shape != probs.shape or obs.ndim != 1:
        raise ConfigError("observed and expected_probs must be equal-length 1-D")
    total = obs.sum()
    if total <= 0:
        raise ConfigError("need at least one observation")
    psum = probs.sum()
    if psum <= 0:
        raise ConfigError("expected_probs must have positive mass")
    probs = probs / psum
    if np.any(obs[probs == 0.0] > 0):
        return 0.0
    keep = probs > 0.0
    obs, probs = obs[keep], probs[keep]
    expected = probs * total
    # Merge sparse bins (ascending expectation) into the smallest bin.
    order = np.argsort(expected)
    obs, expected = obs[order], expected[order]
    while len(expected) > 2 and expected[0] < min_expected:
        expected[1] += expected[0]
        obs[1] += obs[0]
        obs, expected = obs[1:], expected[1:]
    if len(expected) < 2:
        return 1.0
    stat = float(((obs - expected) ** 2 / expected).sum())
    dof = len(expected) - 1
    return float(stats.chi2.sf(stat, dof))


def chi_square_two_sample(counts_a: np.ndarray, counts_b: np.ndarray) -> float:
    """P-value that two label-count vectors share one distribution.

    A contingency chi-square over the 2 x M table; all-zero columns are
    dropped.  Used as the passive per-unit screen: a stuck-at-label unit
    diverges wildly from the pool of its peers.
    """
    a = np.asarray(counts_a, dtype=np.float64)
    b = np.asarray(counts_b, dtype=np.float64)
    if a.shape != b.shape or a.ndim != 1:
        raise ConfigError("count vectors must be equal-length 1-D")
    keep = (a + b) > 0
    a, b = a[keep], b[keep]
    if len(a) < 2 or a.sum() == 0 or b.sum() == 0:
        return 1.0
    table = np.vstack([a, b])
    row = table.sum(axis=1, keepdims=True)
    col = table.sum(axis=0, keepdims=True)
    expected = row @ col / table.sum()
    stat = float(((table - expected) ** 2 / expected).sum())
    dof = len(a) - 1
    return float(stats.chi2.sf(stat, dof))


def ks_distance(samples: Sequence[int], bin_probs: np.ndarray) -> float:
    """Max CDF distance of binned TTF samples from an analytic mass.

    ``bin_probs`` is the output of
    :func:`repro.core.ttf.bin_probabilities` — mass over bins ``1..T``
    plus the overflow bin; samples beyond ``T`` count as overflow.
    """
    probs = np.asarray(bin_probs, dtype=np.float64)
    arr = np.asarray(list(samples), dtype=np.int64)
    if arr.size == 0:
        raise ConfigError("need at least one sample")
    if arr.min() < 1:
        raise DataError("binned TTF samples must be >= 1")
    t_max = len(probs) - 1
    clipped = np.minimum(arr, t_max + 1)
    counts = np.bincount(clipped - 1, minlength=len(probs)).astype(np.float64)
    empirical = np.cumsum(counts) / arr.size
    analytic = np.cumsum(probs / probs.sum())
    return float(np.abs(empirical - analytic).max())


def ks_pvalue(samples: Sequence[int], bin_probs: np.ndarray) -> float:
    """Asymptotic Kolmogorov-Smirnov p-value for :func:`ks_distance`.

    Conservative on discrete (binned) data, which is the safe direction
    for a health check: real faults still drive it to zero.
    """
    arr = np.asarray(list(samples))
    distance = ks_distance(samples, bin_probs)
    n = arr.size
    return float(np.clip(stats.kstwobign.sf(distance * np.sqrt(n)), 0.0, 1.0))
