"""Resilient over-the-wire execution: retry, quarantine, degrade.

:class:`ResilientDriver` wraps the architectural driver of
:mod:`repro.isa.driver` with the recovery loop a production host would
run against a physical RSU-G array:

* **wire integrity** — encoded command streams pass through a
  :class:`~repro.faults.models.WireChannel`; corrupted or truncated
  transfers (caught by the hardened
  :func:`~repro.isa.commands.decode_stream`, or by a response-count
  mismatch) are retried with exponential backoff;
* **NACK retry** — evaluations that come back as
  :class:`~repro.faults.device.UnitNack` are re-issued individually,
  again with bounded backoff;
* **online health checks** — each sweep, every unit's label counts are
  screened against the pool of its peers (chi-square two-sample, zero
  extra traffic); a suspect unit is confirmed with an active probe
  whose expected distribution is the *exact analytic conditional* from
  :func:`repro.core.analytic.win_probabilities`;
* **quarantine and remap** — confirmed-bad or persistently NACKing
  units are retired onto healthy spares
  (:meth:`~repro.faults.device.FaultyRSUDevice.quarantine_unit`);
* **graceful degradation** — when retries or spares are exhausted the
  driver falls back to a bit-faithful software Gibbs sweep
  (:class:`~repro.core.software.SoftwareSampler` over the same integer
  energies) and completes the solve.

Every decision is recorded in a structured, deterministic
:class:`~repro.faults.incidents.IncidentLog`.  Backoff delays are
*simulated* (recorded, never slept) so runs are fast and replayable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from repro.core.analytic import win_probabilities
from repro.core.convert import boundary_table
from repro.core.datapath import EnergyDatapath
from repro.core.software import SoftwareSampler
from repro.faults.device import FaultyRSUDevice, UnitNack
from repro.faults.health import chi_square_goodness, chi_square_two_sample, label_counts
from repro.faults.incidents import IncidentLog
from repro.faults.models import WireChannel, WireFault
from repro.isa.commands import (
    Command,
    Configure,
    Evaluate,
    ReadStatus,
    decode_stream,
    encode_stream,
)
from repro.isa.device import NEW_UPDATE_BYTES, RSUDevice
from repro.isa.driver import RSUDriver
from repro.util.errors import ConfigError, DataError, UnrecoverableFaultError


@dataclass(frozen=True)
class ResiliencePolicy:
    """Tunables of the recovery loop.

    Parameters
    ----------
    max_retries:
        Bounded retry budget per transfer and per NACKed evaluation.
    backoff_base_s / backoff_factor:
        Simulated exponential backoff schedule (recorded in incidents,
        never slept).
    health_check_interval:
        Sweeps between health epochs; 0 disables the online checks.
    health_pvalue:
        Passive-screen threshold: a unit whose label distribution
        diverges from its peers below this p-value becomes *suspect*.
        Kept very strict so a fault-free run essentially never probes
        (probing consumes device entropy and would perturb the
        bit-identical fault-free path).
    probe_count:
        Active-probe evaluations per unit when confirming a suspect.
    probe_pvalue:
        Confirmation threshold against the analytic conditional.
    probe_temperature:
        Grid-unit temperature the probes run at.  Kept high so the
        analytic conditional spreads mass over many labels — a probe at
        a cold sweep temperature has no power against a unit stuck at
        the very label the conditional concentrates on.  The sweep
        temperature is restored after the probe.
    nack_rate_threshold / min_nacks:
        A unit NACKing at or above this rate (with at least
        ``min_nacks`` NACKs) in one epoch earns a strike.
    quarantine_strikes:
        Consecutive strikes before quarantine (used for NACK-rate
        offenders, and for distribution offenders when no analytic
        probe is available, e.g. the legacy design).
    min_unit_samples:
        Minimum labels a unit must produce in an epoch before the
        passive distribution screen applies.
    allow_fallback:
        Degrade to the software sampler when the device is
        unrecoverable; when False the error propagates instead.
    """

    max_retries: int = 4
    backoff_base_s: float = 1e-4
    backoff_factor: float = 2.0
    health_check_interval: int = 1
    health_pvalue: float = 1e-6
    probe_count: int = 64
    probe_pvalue: float = 1e-4
    probe_temperature: float = 255.0
    nack_rate_threshold: float = 0.5
    min_nacks: int = 4
    quarantine_strikes: int = 2
    min_unit_samples: int = 20
    allow_fallback: bool = True

    def __post_init__(self):
        if self.max_retries < 0:
            raise ConfigError(f"max_retries must be >= 0, got {self.max_retries}")
        if self.backoff_base_s <= 0 or self.backoff_factor < 1.0:
            raise ConfigError("backoff_base_s must be > 0 and backoff_factor >= 1")
        if self.health_check_interval < 0:
            raise ConfigError("health_check_interval must be >= 0")
        for name, value in (
            ("health_pvalue", self.health_pvalue),
            ("probe_pvalue", self.probe_pvalue),
        ):
            if not 0.0 < value < 1.0:
                raise ConfigError(f"{name} must be in (0, 1), got {value}")
        if not 0.0 < self.nack_rate_threshold <= 1.0:
            raise ConfigError("nack_rate_threshold must be in (0, 1]")
        if self.probe_count < 1 or self.min_nacks < 1:
            raise ConfigError("probe_count and min_nacks must be >= 1")
        if self.probe_temperature <= 0:
            raise ConfigError("probe_temperature must be positive")
        if self.quarantine_strikes < 1 or self.min_unit_samples < 1:
            raise ConfigError("quarantine_strikes and min_unit_samples must be >= 1")


class ResilientDriver(RSUDriver):
    """An :class:`RSUDriver` that survives faults and degrades gracefully.

    Accepts any :class:`~repro.isa.device.RSUDevice`; array-level
    recovery (NACK handling, health checks, quarantine) engages when the
    device is a :class:`~repro.faults.device.FaultyRSUDevice` with a
    unit-array model.  Wire faults are taken from the device's plan.

    With a null fault plan and health checks never triggering, the
    driver is bit-identical to the plain :class:`RSUDriver`.
    """

    def __init__(
        self,
        device: RSUDevice,
        unary: np.ndarray,
        configure: Configure,
        policy: ResiliencePolicy = ResiliencePolicy(),
        fallback_seed: int = 0,
        log: Optional[IncidentLog] = None,
    ):
        self.policy = policy
        self.incidents = log if log is not None else IncidentLog()
        plan = getattr(device, "plan", None)
        wire_fault = plan.wire if plan is not None else None
        self._wire = WireChannel(wire_fault if wire_fault is not None else WireFault())
        self._sweep_index = 0
        self._fallen_back = False
        self._fallback_seed = fallback_seed
        self._fallback_sampler: Optional[SoftwareSampler] = None
        self.simulated_backoff_s = 0.0
        # Per-epoch unit accounting.
        self._epoch_nacks: Dict[int, int] = {}
        self._epoch_oks: Dict[int, int] = {}
        self._epoch_labels: Dict[int, np.ndarray] = {}
        self._nack_strikes: Dict[int, int] = {}
        self._dist_strikes: Dict[int, int] = {}
        super().__init__(device, unary, configure)
        self._model_datapath = EnergyDatapath(
            label_values=np.arange(configure.n_labels),
            distance=configure.distance,
            singleton_weight=configure.singleton_weight,
            doubleton_weight=configure.doubleton_weight,
            output_shift=configure.output_shift,
            energy_bits=device.config.energy_bits,
        )
        self._probe_site = 0
        if plan is not None:
            self.incidents.record(
                0, "plan", "info", **{"faults": repr(sorted(plan.describe().items()))}
            )

    # -- state -------------------------------------------------------------
    @property
    def fell_back(self) -> bool:
        """Whether the driver has degraded to the software sampler."""
        return self._fallen_back

    def _units_modeled(self) -> bool:
        return (
            isinstance(self.device, FaultyRSUDevice)
            and self.device.plan.units is not None
        )

    # -- robust transfer ---------------------------------------------------
    def _send(self, commands: List[Command]) -> List[object]:
        words = encode_stream(commands)
        responders = [c for c in commands if isinstance(c, (Evaluate, ReadStatus))]
        responses, units = self._transfer(words, len(responders))
        final = list(responses)
        unit_cursor = 0
        for index, (command, response) in enumerate(zip(responders, final)):
            unit = None
            if isinstance(command, Evaluate) and unit_cursor < len(units):
                unit = units[unit_cursor]
                unit_cursor += 1
            if isinstance(response, UnitNack):
                final[index] = self._recover(command, response)
            elif isinstance(command, Evaluate) and unit is not None:
                self._tally(unit, ok=True, label=response)
        return final

    def _transfer(self, words: List[int], expected: int) -> Tuple[List[object], List[int]]:
        """One wire transfer with bounded whole-batch retry."""
        delay = self.policy.backoff_base_s
        last_error = "no attempt made"
        trace = getattr(self.device, "unit_trace", None)
        for attempt in range(self.policy.max_retries + 1):
            delivered, flips, drops = self._wire.transmit(words)
            self.words_sent += len(words)
            trace_before = len(trace) if trace is not None else 0
            try:
                commands = decode_stream(delivered)
                responses = self.device.execute(commands, words=len(delivered))
            except (DataError, ConfigError) as exc:
                last_error = str(exc)
                self._note_transfer_fault(
                    "transfer_corrupt", attempt, delay, flips, drops, last_error
                )
                delay *= self.policy.backoff_factor
                continue
            if len(responses) != expected:
                last_error = (
                    f"expected {expected} responses, got {len(responses)}"
                )
                self._note_transfer_fault(
                    "response_mismatch", attempt, delay, flips, drops, last_error
                )
                delay *= self.policy.backoff_factor
                continue
            units = list(trace[trace_before:]) if trace is not None else []
            return responses, units
        raise UnrecoverableFaultError(
            f"transfer failed after {self.policy.max_retries + 1} attempts: {last_error}"
        )

    def _note_transfer_fault(self, kind, attempt, delay, flips, drops, error):
        self.simulated_backoff_s += delay
        self.incidents.record(
            self._sweep_index,
            kind,
            "warning",
            attempt=attempt,
            backoff_s=delay,
            bit_flips=flips,
            drops=drops,
            error=error[:160],
        )

    # -- NACK recovery -----------------------------------------------------
    def _recover(self, command: Evaluate, nack: UnitNack) -> int:
        self._tally(nack.unit, ok=False)
        self.incidents.record(
            self._sweep_index,
            "unit_nack",
            "warning",
            unit=nack.unit,
            site=nack.site,
            attempt=0,
            nack_kind=nack.kind,
        )
        delay = self.policy.backoff_base_s
        for attempt in range(1, self.policy.max_retries + 1):
            self.simulated_backoff_s += delay
            responses, units = self._transfer(encode_stream([command]), 1)
            response = responses[0]
            if not isinstance(response, UnitNack):
                unit = units[0] if units else None
                if unit is not None:
                    self._tally(unit, ok=True, label=response)
                self.incidents.record(
                    self._sweep_index,
                    "recovered",
                    "info",
                    unit=unit,
                    site=command.site,
                    attempt=attempt,
                    backoff_s=delay,
                )
                return response
            self._tally(response.unit, ok=False)
            self.incidents.record(
                self._sweep_index,
                "unit_nack",
                "warning",
                unit=response.unit,
                site=response.site,
                attempt=attempt,
                nack_kind=response.kind,
            )
            delay *= self.policy.backoff_factor
        self.incidents.record(
            self._sweep_index,
            "retry_exhausted",
            "error",
            site=command.site,
            attempt=self.policy.max_retries,
        )
        raise UnrecoverableFaultError(
            f"evaluation of site {command.site} still failing after "
            f"{self.policy.max_retries} retries"
        )

    def _tally(self, unit: int, ok: bool, label: Optional[int] = None) -> None:
        if not self._units_modeled():
            return
        if ok:
            self._epoch_oks[unit] = self._epoch_oks.get(unit, 0) + 1
            if label is not None and isinstance(label, (int, np.integer)):
                counts = self._epoch_labels.get(unit)
                if counts is None:
                    counts = np.zeros(self.n_labels, dtype=np.int64)
                    self._epoch_labels[unit] = counts
                if 0 <= int(label) < self.n_labels:
                    counts[int(label)] += 1
        else:
            self._epoch_nacks[unit] = self._epoch_nacks.get(unit, 0) + 1

    # -- sweeps with recovery ----------------------------------------------
    def sweep(self, labels: np.ndarray, grid_temperature: float) -> np.ndarray:
        labels = np.asarray(labels)
        if labels.shape != self.shape:
            raise DataError(f"labels shape {labels.shape} != grid {self.shape}")
        if self._fallen_back:
            labels = self._software_sweep(labels, grid_temperature)
            self._sweep_index += 1
            return labels
        try:
            self.set_temperature(grid_temperature)
            for mask in self._masks:
                commands, _ = self._evaluate_commands(labels, mask)
                responses = self._send(commands)
                labels[mask] = np.asarray(responses, dtype=np.int64)
            interval = self.policy.health_check_interval
            if interval and (self._sweep_index + 1) % interval == 0:
                self._health_epoch(grid_temperature)
        except UnrecoverableFaultError as exc:
            if not self.policy.allow_fallback:
                raise
            self._fall_back(str(exc))
            labels = self._software_sweep(labels, grid_temperature)
        self._sweep_index += 1
        return labels

    # -- health checks -----------------------------------------------------
    def _health_epoch(self, grid_temperature: float) -> None:
        if not self._units_modeled():
            return
        try:
            active = list(self.device.active_units)
            # NACK-rate screen: persistent non-responders.
            for unit in active:
                nacks = self._epoch_nacks.get(unit, 0)
                oks = self._epoch_oks.get(unit, 0)
                total = nacks + oks
                if (
                    nacks >= self.policy.min_nacks
                    and total > 0
                    and nacks / total >= self.policy.nack_rate_threshold
                ):
                    strikes = self._nack_strikes.get(unit, 0) + 1
                    self._nack_strikes[unit] = strikes
                    self.incidents.record(
                        self._sweep_index,
                        "unit_suspect",
                        "warning",
                        unit=unit,
                        nack_rate=round(nacks / total, 4),
                        reason="nack_rate",
                        strikes=strikes,
                    )
                    if strikes >= self.policy.quarantine_strikes:
                        self._quarantine(unit, "nack_rate")
                else:
                    self._nack_strikes.pop(unit, None)
            # Distribution screen: silent corrupters (stuck-at labels).
            pool = np.zeros(self.n_labels, dtype=np.int64)
            for counts in self._epoch_labels.values():
                pool += counts
            for unit in list(self.device.active_units):
                counts = self._epoch_labels.get(unit)
                if counts is None or counts.sum() < self.policy.min_unit_samples:
                    continue
                peers = pool - counts
                if peers.sum() == 0:
                    continue
                pvalue = chi_square_two_sample(counts, peers)
                if pvalue >= self.policy.health_pvalue:
                    self._dist_strikes.pop(unit, None)
                    continue
                self.incidents.record(
                    self._sweep_index,
                    "unit_suspect",
                    "warning",
                    unit=unit,
                    pvalue=float(pvalue),
                    reason="distribution",
                )
                verdict = self._probe_confirm(unit, grid_temperature)
                if verdict is True:
                    self._quarantine(unit, "probe")
                elif verdict is None:
                    strikes = self._dist_strikes.get(unit, 0) + 1
                    self._dist_strikes[unit] = strikes
                    if strikes >= self.policy.quarantine_strikes:
                        self._quarantine(unit, "distribution")
                else:
                    self._dist_strikes.pop(unit, None)
                    self.incidents.record(
                        self._sweep_index, "suspect_cleared", "info", unit=unit
                    )
        finally:
            self._epoch_nacks.clear()
            self._epoch_oks.clear()
            self._epoch_labels.clear()

    def _probe_confirm(self, unit: int, grid_temperature: float) -> Optional[bool]:
        """Probe ``unit`` against the analytic conditional.

        Returns True (confirmed bad), False (healthy), or None when no
        analytic expectation is available (legacy LUT design).
        """
        if self.device.design != "new":
            return None
        probe_temperature = self.policy.probe_temperature
        expected = self._probe_expectation(probe_temperature)
        active = list(self.device.active_units)
        probe = Evaluate(site=self._probe_site, neighbors=(0, 0, 0, 0), valid_mask=0)
        count = self.policy.probe_count * len(active)
        self._transfer(encode_stream(self.temperature_commands(probe_temperature)), 0)
        responses, units = self._transfer(encode_stream([probe] * count), count)
        self._transfer(encode_stream(self.temperature_commands(grid_temperature)), 0)
        mine = [
            int(response)
            for response, resp_unit in zip(responses, units)
            if resp_unit == unit and not isinstance(response, UnitNack)
        ]
        if not mine:
            # The unit cannot even answer its probes.
            self.incidents.record(
                self._sweep_index, "probe", "warning", unit=unit, pvalue=0.0
            )
            return True
        pvalue = chi_square_goodness(label_counts(mine, self.n_labels), expected)
        self.incidents.record(
            self._sweep_index,
            "probe",
            "info" if pvalue >= self.policy.probe_pvalue else "warning",
            unit=unit,
            pvalue=float(pvalue),
        )
        return pvalue < self.policy.probe_pvalue

    def _probe_expectation(self, grid_temperature: float) -> np.ndarray:
        """Exact win probabilities of the probe evaluation (new design)."""
        m = self.n_labels
        unary_row = self._unary3d.reshape(-1, m)[self._probe_site]
        sentinel = np.full((m, 4), m, dtype=np.int64)
        energies = self._model_datapath.compute(
            unary_row, np.arange(m), sentinel
        )
        bounds = np.clip(
            np.floor(boundary_table(grid_temperature, self.device.config)), 0, 255
        ).astype(np.int64)
        boundaries = np.full(NEW_UPDATE_BYTES, 255, dtype=np.int64)
        boundaries[: len(bounds)] = bounds[:NEW_UPDATE_BYTES]
        scaled = energies - energies.min()
        codes = np.zeros(m, dtype=np.int64)
        assigned = np.zeros(m, dtype=bool)
        code = self.device.config.lambda_max_code
        for bound in boundaries:
            hit = ~assigned & (scaled <= bound)
            codes[hit] = code
            assigned |= hit
            code //= 2
        return win_probabilities(codes, self.device.config, self.device.config.tie_policy)

    # -- quarantine and fallback -------------------------------------------
    def _quarantine(self, unit: int, reason: str) -> None:
        spare = self.device.quarantine_unit(unit)
        self._nack_strikes.pop(unit, None)
        self._dist_strikes.pop(unit, None)
        self.incidents.record(
            self._sweep_index,
            "quarantine",
            "warning",
            unit=unit,
            reason=reason,
            spare=spare,
        )

    def _fall_back(self, reason: str) -> None:
        self._fallen_back = True
        self._fallback_sampler = SoftwareSampler(
            np.random.default_rng(self._fallback_seed)
        )
        self.incidents.record(
            self._sweep_index, "fallback", "error", reason=reason[:200]
        )

    def _software_sweep(self, labels: np.ndarray, grid_temperature: float) -> np.ndarray:
        """One checkerboard sweep on the software sampler.

        Uses the same integer energies as the device datapath, with the
        exact Boltzmann conditional the device's conversion stage
        approximates — the quality reference the paper's software
        baseline defines.
        """
        if self._fallback_sampler is None:
            self._fallback_sampler = SoftwareSampler(
                np.random.default_rng(self._fallback_seed)
            )
        height, width = self.shape
        m = self.n_labels
        unary_flat = self._unary3d.reshape(-1, m)
        for mask in self._masks:
            rows, cols = np.nonzero(mask)
            sites = np.flatnonzero(mask.ravel())
            neighbors = np.full((len(sites), 4), m, dtype=np.int64)
            for position, (dy, dx) in enumerate(((-1, 0), (1, 0), (0, -1), (0, 1))):
                ny, nx = rows + dy, cols + dx
                valid = (ny >= 0) & (ny < height) & (nx >= 0) & (nx < width)
                neighbors[valid, position] = labels[ny[valid], nx[valid]]
            energies = np.empty((len(sites), m), dtype=np.float64)
            for label in range(m):
                energies[:, label] = self._model_datapath.compute(
                    unary_flat[sites, label],
                    np.full(len(sites), label, dtype=np.int64),
                    neighbors,
                )
            labels[mask] = self._fallback_sampler.sample(energies, grid_temperature)
        return labels

    # -- reporting -----------------------------------------------------------
    def summary(self) -> Dict[str, object]:
        """Machine-readable account of the run's resilience events."""
        quarantined = (
            self.device.quarantined_units
            if isinstance(self.device, FaultyRSUDevice)
            else []
        )
        detection = None
        for incident in self.incidents:
            if incident.kind in ("unit_suspect", "quarantine", "retry_exhausted"):
                detection = incident.sweep
                break
        return {
            "sweeps": self._sweep_index,
            "fell_back": self._fallen_back,
            "quarantined_units": quarantined,
            "incident_counts": self.incidents.counts_by_kind(),
            "detection_sweep": detection,
            "simulated_backoff_s": round(self.simulated_backoff_s, 9),
            "words_sent": self.words_sent,
        }
