"""Functional RSU-G device with injected array faults.

:class:`FaultyRSUDevice` extends :class:`~repro.isa.device.RSUDevice`
with the array-level view the fault models need: EVALUATE commands are
striped round-robin over ``n_units`` active units (the schedule of
:mod:`repro.hw.system`), each of which can be healthy, transiently
failing, stuck-at-label, or dead.  SPAD faults replace the TTF stage
with :class:`~repro.faults.models.FaultySPADSampler`.

Failed evaluations produce a :class:`UnitNack` in the response stream
instead of a label — the device-side half of the retry protocol the
:class:`~repro.faults.resilient.ResilientDriver` implements.  The
device also exposes the quarantine-and-remap control a real array would
carry as a unit-disable register: :meth:`quarantine_unit` retires a bad
unit onto a healthy spare.

With a null :class:`~repro.faults.models.FaultPlan` every code path is
bit-identical to the plain :class:`~repro.isa.device.RSUDevice`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional

import numpy as np

from repro.core.params import RSUConfig
from repro.faults.models import FaultPlan, FaultySPADSampler
from repro.isa.commands import Command, Evaluate
from repro.isa.device import RSUDevice
from repro.util.errors import ConfigError, UnrecoverableFaultError


@dataclass(frozen=True)
class UnitNack:
    """A failed evaluation: the unit returned no label for the site."""

    site: int
    unit: int
    kind: str  # "transient" or "dead"


class FaultyRSUDevice(RSUDevice):
    """An :class:`RSUDevice` executing under a :class:`FaultPlan`.

    Parameters
    ----------
    plan:
        The composed fault scenario.  ``plan.units`` enables the unit
        array model (round-robin striping, NACKs, quarantine);
        ``plan.spad`` swaps the TTF stage for the faulty SPAD sampler.
        Wire faults are applied by the driver (they live on the host
        interface, before decode); entropy faults apply to pseudo-RNG
        backends and do not touch this device.
    """

    def __init__(
        self,
        config: RSUConfig,
        rng: np.random.Generator,
        design: str = "new",
        plan: Optional[FaultPlan] = None,
    ):
        super().__init__(config, rng, design)
        self.plan = plan if plan is not None else FaultPlan.none()
        if self.plan.spad is not None and not self.plan.spad.is_null:
            self._ttf = FaultySPADSampler(config, rng, self.plan.spad)
        units = self.plan.units
        self._unit_fault = units
        self.unit_trace: List[int] = []
        self.nack_counts: Dict[str, int] = {}
        self._quarantined: List[int] = []
        if units is not None:
            self._active_units = list(range(units.n_units))
            self._spare_pool = list(
                range(units.n_units, units.n_units + units.spare_units)
            )
            self._stuck = {unit: int(label) for unit, label in units.stuck_units}
            self._dead = set(units.dead_units)
            self._unit_rng = np.random.default_rng(units.seed)
            self._eval_cursor = 0

    # -- array visibility --------------------------------------------------
    @property
    def active_units(self) -> List[int]:
        """Unit ids currently mapped into the schedule."""
        if self._unit_fault is None:
            return [0]
        return list(self._active_units)

    @property
    def quarantined_units(self) -> List[int]:
        """Units retired by :meth:`quarantine_unit`, in order."""
        return list(self._quarantined)

    @property
    def spares_remaining(self) -> int:
        """Healthy spares still available for remapping."""
        if self._unit_fault is None:
            return 0
        return len(self._spare_pool)

    def quarantine_unit(self, unit: int) -> int:
        """Retire ``unit`` and remap its schedule slot onto a spare.

        Returns the spare's id.  Raises
        :class:`~repro.util.errors.UnrecoverableFaultError` when the
        spare pool is exhausted — the caller's cue to degrade to
        software.
        """
        if self._unit_fault is None:
            raise ConfigError("quarantine requires the unit-array fault model")
        if unit not in self._active_units:
            raise ConfigError(f"unit {unit} is not in the active schedule")
        if not self._spare_pool:
            raise UnrecoverableFaultError(
                f"no spare unit left to replace unit {unit}"
            )
        spare = self._spare_pool.pop(0)
        self._active_units[self._active_units.index(unit)] = spare
        self._quarantined.append(unit)
        return spare

    # -- command execution -------------------------------------------------
    def execute(self, commands: List[Command], words: int = None) -> List[object]:
        if self._unit_fault is None:
            return super().execute(commands, words)
        before = len(self.responses)
        for command in commands:
            if isinstance(command, Evaluate):
                self._evaluate_on_unit(command)
            else:
                self._dispatch(command)
        if words is not None:
            self.stats.words_consumed += words
        return self.responses[before:]

    def _evaluate_on_unit(self, command: Evaluate) -> None:
        unit = self._active_units[self._eval_cursor % len(self._active_units)]
        self._eval_cursor += 1
        self.unit_trace.append(unit)
        if unit in self._dead:
            self._nack(command, unit, "dead")
            return
        rate = self._unit_fault.transient_rate
        if rate > 0.0 and self._unit_rng.random() < rate:
            self._nack(command, unit, "transient")
            return
        self._evaluate(command)
        stuck = self._stuck.get(unit)
        if stuck is not None:
            # The sampler ran (entropy consumed) but the output latch is
            # stuck: the reported label never changes.
            self.responses[-1] = stuck

    def _nack(self, command: Evaluate, unit: int, kind: str) -> None:
        self.responses.append(UnitNack(site=command.site, unit=unit, kind=kind))
        self.stats.responses += 1
        self.nack_counts[kind] = self.nack_counts.get(kind, 0) + 1
