"""Fault injection and resilient execution for the RSU-G stack.

Composable fault models for every pipeline stage (entropy, SPAD/TTF,
unit array, host wire), a faulty functional device, statistical health
checks, a structured incident log, and a :class:`ResilientDriver` that
retries, quarantines, remaps, and gracefully degrades to the software
sampler.
"""

from repro.faults.device import FaultyRSUDevice, UnitNack
from repro.faults.health import (
    chi_square_goodness,
    chi_square_two_sample,
    ks_distance,
    ks_pvalue,
    label_counts,
)
from repro.faults.incidents import SEVERITIES, Incident, IncidentLog
from repro.faults.models import (
    EntropyFault,
    FaultPlan,
    FaultyBitSource,
    FaultySPADSampler,
    SPADFault,
    UnitArrayFault,
    WireChannel,
    WireFault,
)
from repro.faults.resilient import ResiliencePolicy, ResilientDriver

__all__ = [
    "EntropyFault",
    "FaultPlan",
    "FaultyBitSource",
    "FaultyRSUDevice",
    "FaultySPADSampler",
    "Incident",
    "IncidentLog",
    "ResiliencePolicy",
    "ResilientDriver",
    "SEVERITIES",
    "SPADFault",
    "UnitArrayFault",
    "UnitNack",
    "WireChannel",
    "WireFault",
    "chi_square_goodness",
    "chi_square_two_sample",
    "ks_distance",
    "ks_pvalue",
    "label_counts",
]
