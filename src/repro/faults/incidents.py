"""Structured incident log for resilient execution.

Every recovery decision the :class:`~repro.faults.resilient.ResilientDriver`
takes — a corrupted transfer retried, a unit NACK, a health check
failed, a unit quarantined and remapped, the final fallback to software
— is recorded as an :class:`Incident`.  The log is *logical-time only*
(sweep index, attempt number, simulated backoff); it contains no
wall-clock timestamps, so the same seed and fault schedule serialize to
byte-identical JSONL — the property the determinism regression pins.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

#: Incident severities, in increasing order of concern.
SEVERITIES = ("info", "warning", "error")


@dataclass(frozen=True)
class Incident:
    """One structured entry in the resilience log."""

    seq: int
    sweep: int
    kind: str
    severity: str = "info"
    unit: Optional[int] = None
    site: Optional[int] = None
    attempt: Optional[int] = None
    detail: tuple = field(default_factory=tuple)  # sorted (key, value) pairs

    def to_dict(self) -> dict:
        """Plain-dict form with deterministic key order."""
        out = {
            "seq": self.seq,
            "sweep": self.sweep,
            "kind": self.kind,
            "severity": self.severity,
        }
        if self.unit is not None:
            out["unit"] = self.unit
        if self.site is not None:
            out["site"] = self.site
        if self.attempt is not None:
            out["attempt"] = self.attempt
        if self.detail:
            out["detail"] = dict(self.detail)
        return out


class IncidentLog:
    """Append-only, deterministic incident record."""

    def __init__(self):
        self._items: List[Incident] = []

    def record(
        self,
        sweep: int,
        kind: str,
        severity: str = "info",
        unit: Optional[int] = None,
        site: Optional[int] = None,
        attempt: Optional[int] = None,
        **detail,
    ) -> Incident:
        """Append one incident and return it."""
        if severity not in SEVERITIES:
            raise ValueError(f"severity must be one of {SEVERITIES}, got {severity!r}")
        incident = Incident(
            seq=len(self._items),
            sweep=sweep,
            kind=kind,
            severity=severity,
            unit=unit,
            site=site,
            attempt=attempt,
            detail=tuple(sorted(detail.items())),
        )
        self._items.append(incident)
        return incident

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[Incident]:
        return iter(self._items)

    def __getitem__(self, index):
        return self._items[index]

    def counts_by_kind(self) -> Dict[str, int]:
        """Histogram of incident kinds (deterministic key order)."""
        counts: Dict[str, int] = {}
        for incident in self._items:
            counts[incident.kind] = counts.get(incident.kind, 0) + 1
        return dict(sorted(counts.items()))

    def of_kind(self, kind: str) -> List[Incident]:
        """All incidents of one kind, in order."""
        return [incident for incident in self._items if incident.kind == kind]

    def worst_severity(self) -> Optional[str]:
        """Highest severity present, or None for an empty log."""
        if not self._items:
            return None
        rank = {name: i for i, name in enumerate(SEVERITIES)}
        return max(self._items, key=lambda inc: rank[inc.severity]).severity

    def to_jsonl(self) -> str:
        """Serialize the log; byte-identical for identical histories."""
        return "\n".join(
            json.dumps(incident.to_dict(), sort_keys=True, separators=(",", ":"))
            for incident in self._items
        )
