"""repro: reproduction of the ISCA 2018 RSU-G precision/quality study.

"Architecting a Stochastic Computing Unit with Molecular Optical
Devices" (Zhang, Bashizade, LaBoda, Dwyer, Lebeck).

The public API re-exports the main entry points:

* design points and sampler backends from :mod:`repro.core`;
* the MRF/MCMC substrate from :mod:`repro.mrf`;
* application drivers from :mod:`repro.apps`;
* synthetic datasets from :mod:`repro.data`;
* quality metrics from :mod:`repro.metrics`;
* hardware area/power/performance models from :mod:`repro.hw`;
* the experiment registry from :mod:`repro.experiments`.

Quickstart::

    from repro import load_stereo, solve_stereo
    dataset = load_stereo("teddy", scale=0.5)
    sw = solve_stereo(dataset, backend="software", seed=1)
    rsu = solve_stereo(dataset, backend="new_rsug", seed=1)
    print(sw.bad_pixel, rsu.bad_pixel)
"""

from repro.apps import (
    make_backend,
    solve_motion,
    solve_segmentation,
    solve_stereo,
)
from repro.core import (
    CDFSampler,
    LegacyRSUG,
    NewRSUG,
    RSUConfig,
    RSUGSampler,
    SoftwareSampler,
    legacy_design_config,
    new_design_config,
)
from repro.data import (
    load_flow,
    load_segmentation_suite,
    load_stereo,
)
from repro.mrf import GridMRF, MCMCSolver

__version__ = "1.0.0"

__all__ = [
    "make_backend",
    "solve_motion",
    "solve_segmentation",
    "solve_stereo",
    "CDFSampler",
    "LegacyRSUG",
    "NewRSUG",
    "RSUConfig",
    "RSUGSampler",
    "SoftwareSampler",
    "legacy_design_config",
    "new_design_config",
    "load_flow",
    "load_segmentation_suite",
    "load_stereo",
    "GridMRF",
    "MCMCSolver",
    "__version__",
]
