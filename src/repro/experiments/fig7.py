"""Fig. 7 — relative error of realized vs intended probability ratios.

For two competing labels at decay-rate codes ``lambda_max`` and
``lambda_max / ratio`` the ideal first-to-fire win-probability ratio
equals the code ratio.  Binned time measurement (``Time_bits = 5``)
plus distribution truncation distort it: very low truncation compresses
TTFs into a few bins (tie pile-up), very high truncation censors both
distributions.  The paper's sweet spot is mid-range truncation.
"""

from __future__ import annotations

from typing import Dict

import numpy as np

from repro.core.base import select_first_to_fire
from repro.core.params import RSUConfig
from repro.core.ttf import TTFSampler
from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult
from repro.util.errors import ConfigError

#: Truncation sweep of the x-axis.
TRUNCATIONS = (0.01, 0.02, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)
#: With 2^n approximation at Lambda_bits=4 the possible ratios.
RATIOS = (1, 2, 4, 8)


def measure_ratio_error(
    ratio: int,
    truncation: float,
    samples: int,
    time_bits: int = 5,
    tie_policy: str = "random",
    seed: int = 0,
) -> float:
    """Relative error of the realized win ratio at one design point.

    Runs ``samples`` two-label first-to-fire trials with codes
    ``(lambda_max, lambda_max / ratio)`` through the sampling and
    selection stages and compares the empirical win ratio with the
    intended one.
    """
    if ratio < 1:
        raise ConfigError(f"ratio must be >= 1, got {ratio}")
    config = RSUConfig(
        time_bits=time_bits, truncation=truncation, tie_policy=tie_policy
    )
    lam_max = config.lambda_max_code
    if lam_max % ratio != 0:
        raise ConfigError(f"ratio {ratio} does not divide lambda_max {lam_max}")
    rng = np.random.default_rng(seed)
    sampler = TTFSampler(config, rng)
    codes = np.tile(np.array([lam_max, lam_max // ratio]), (samples, 1))
    ttf = sampler.sample(codes)
    winners = select_first_to_fire(ttf, tie_policy, rng)
    wins_strong = int((winners == 0).sum())
    wins_weak = samples - wins_strong
    if wins_weak == 0:
        return float("inf")
    realized = wins_strong / wins_weak
    return abs(realized - ratio) / ratio


def run(profile: Profile = FULL, seed: int = 0) -> ExperimentResult:
    """Run Fig. 7: RE vs Truncation for ratios 1, 2, 4, 8.

    Monte-Carlo through the sampling and selection stages (the paper's
    method), with the closed-form error from
    :func:`repro.core.analytic.expected_ratio_error` recorded alongside
    as ground truth.
    """
    from repro.core.analytic import expected_ratio_error

    rows = []
    series: Dict[int, list] = {ratio: [] for ratio in RATIOS}
    analytic: Dict[int, list] = {ratio: [] for ratio in RATIOS}
    for truncation in TRUNCATIONS:
        row = [truncation]
        for ratio in RATIOS:
            error = measure_ratio_error(
                ratio, truncation, profile.fig7_samples, seed=seed
            )
            series[ratio].append(error)
            analytic[ratio].append(expected_ratio_error(ratio, truncation))
            row.append(error)
        rows.append(row)
    return ExperimentResult(
        experiment_id="fig7",
        title="Relative error of realized vs intended lambda ratios (Time_bits=5)",
        columns=["Truncation"] + [f"ratio={r}" for r in RATIOS],
        rows=rows,
        notes=[
            "Expected shape: large error at low (<0.1) and high (>0.6) truncation,"
            " small in the middle; ratio=1 is insensitive.",
            "extra['analytic'] holds the closed-form error at each point.",
        ],
        extra={
            "series": {str(k): v for k, v in series.items()},
            "analytic": {str(k): v for k, v in analytic.items()},
        },
    )
