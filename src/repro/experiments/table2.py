"""Table II — stereo execution times and speedups (performance model).

Modeled GPU float / GPU int8 / RSU-augmented times per configuration,
reported side by side with the paper's measurements.
"""

from __future__ import annotations

from typing import Optional

from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult
from repro.hw.perf import PAPER_TABLE2, RSUAugmentedModel, table2_model


def run(
    profile: Profile = FULL,
    seed: int = 0,
    measured_throughput: Optional[float] = None,
) -> ExperimentResult:
    """Run Table II: modeled vs paper execution times (seconds).

    ``measured_throughput`` optionally replaces the design-target 1.0
    label/cycle in the RSU term with a measured value (e.g.
    ``CycleCountingBackend.measured_throughput()`` from a structural
    machine-in-the-loop solve).  Default ``None`` keeps the published
    golden numbers byte-identical.
    """
    if measured_throughput is None:
        model = table2_model()
    else:
        model = table2_model(
            rsu=RSUAugmentedModel(labels_per_cycle=measured_throughput)
        )
    rows = []
    for config, values in model.items():
        paper = PAPER_TABLE2[config]
        rows.append(
            [
                config,
                values["GPU_float"],
                values["GPU_int8"],
                values["RSUG_aug"],
                values["Speedup_flt"],
                values["Speedup_int8"],
                paper["GPU_float"],
                paper["RSUG_aug"],
                paper["GPU_float"] / paper["RSUG_aug"],
            ]
        )
    return ExperimentResult(
        experiment_id="table2",
        title="Stereo execution time (s): analytical model vs paper",
        columns=[
            "configuration",
            "GPU_float",
            "GPU_int8",
            "RSUG_aug",
            "Speedup_flt",
            "Speedup_int8",
            "paper GPU_float",
            "paper RSUG_aug",
            "paper Speedup_flt",
        ],
        rows=rows,
        notes=[
            "Analytical model (repro.hw.perf) calibrated on the SD column;"
            " shape target: RSU-G wins everywhere, more at higher label counts.",
        ]
        + (
            []
            if measured_throughput is None
            else [
                f"RSU term grounded in measured throughput"
                f" {measured_throughput:.4f} labels/cycle from the structural"
                f" machine (repro.uarch)."
            ]
        ),
    )
