"""Sec. III-C1 — energy-computation precision sweep.

The paper's first sequential step: with the decay rate and time stages
idealized (IEEE float), sweep ``Energy_bits`` and confirm that 8 bits
matches software quality while fewer bits degrade it ("BP ... 27.0% vs
27.1%, 12.6% vs 13.3%, 27.3% vs 30.3%" for 8-bit vs float).
"""

from __future__ import annotations

from repro.core.params import RSUConfig
from repro.experiments.common import (
    mean,
    run_stereo_backends,
    stereo_params,
    stereo_suite_specs,
)
from repro.experiments.engine import get_engine, solve_task
from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult

#: Precisions swept (the paper reports 8 suffices, fewer degrades).
ENERGY_BITS_RANGE = (2, 3, 4, 6, 8, 10)


def energy_only_config(energy_bits: int) -> RSUConfig:
    """Quantized energy stage; idealized conversion and timing.

    ``lambda_scale_exponent`` is raised so the integer lambda grid is
    effectively continuous, isolating the energy quantization exactly
    as the paper's methodology does.
    """
    return RSUConfig(
        energy_bits=energy_bits,
        lambda_bits=12,
        lambda_scale_exponent=11,
        pow2_lambda=False,
        float_time=True,
    )


def run(profile: Profile = FULL, seed: int = 3) -> ExperimentResult:
    """Run the Energy_bits sweep on the three stereo datasets."""
    specs = stereo_suite_specs(profile, sweep=True)
    params = stereo_params(profile, iterations=profile.sweep_iterations)
    software = run_stereo_backends(specs, {"software": None}, params, seed=seed)
    grid = [(bits, spec) for bits in ENERGY_BITS_RANGE for spec in specs]
    tasks = [
        solve_task("stereo", spec, config=energy_only_config(bits),
                   params=params, seed=seed)
        for bits, spec in grid
    ]
    outcomes = get_engine().run_tasks(tasks)
    per_bits = {}
    for (bits, _), outcome in zip(grid, outcomes):
        per_bits.setdefault(bits, []).append(outcome.bad_pixel)
    rows = []
    series = []
    for bits in ENERGY_BITS_RANGE:
        bps = per_bits[bits]
        rows.append([bits] + bps + [mean(bps)])
        series.append(mean(bps))
    software_bps = [software["software"][spec["name"]].bad_pixel for spec in specs]
    rows.append(["float (software)"] + software_bps + [mean(software_bps)])
    return ExperimentResult(
        experiment_id="energy_bits",
        title="BP% vs Energy_bits (idealized lambda/time stages)",
        columns=["Energy_bits"] + [spec["name"] for spec in specs] + ["average"],
        rows=rows,
        notes=[
            "Paper (Sec. III-C1): 8-bit energy matches software; fewer"
            " bits significantly degrade quality.",
            "On the synthetic scenes the collapse threshold sits lower"
            " (~3-4 bits) than on Middlebury: their matching costs are"
            " better separated, so coarser grids still rank labels"
            " correctly. 8 bits is comfortably sufficient in both.",
        ],
        extra={"series": {"avg BP": series}},
    )
