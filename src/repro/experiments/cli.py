"""Command-line entry point: regenerate the paper's tables and figures.

Usage::

    rsu-experiments list
    rsu-experiments run fig3 [--profile quick|full] [--seed N] [--json PATH]
    rsu-experiments run all  [--profile quick|full] [--jobs N] [--no-cache]
    rsu-experiments sweep --param time_bits --values 3,5,8 [--jobs N]
    rsu-experiments run fig3 --telemetry [--trace-out run.jsonl]
    rsu-experiments obs report --trace run.jsonl

``--jobs N`` dispatches the independent solves of an experiment over N
worker processes; results are byte-identical to a sequential run.  The
content-addressed result cache under ``--cache-dir`` (default
``.repro_cache/``) makes re-runs and interrupted sweeps resume
instantly; ``--no-cache`` disables it.  See docs/performance.md.

``--telemetry`` meters the run (sweep acceptance, entropy consumption,
cache hit rates, µarch stalls) without perturbing any result and prints
a summary table; ``--trace-out`` additionally persists the full metric
stream as JSONL for ``obs report``.  See docs/observability.md.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.experiments.engine import (
    DEFAULT_CACHE_DIR,
    ExperimentEngine,
    RetryPolicy,
    use_engine,
)
from repro.experiments.registry import experiment_ids, run_experiment
from repro.obs import telemetry as obs
from repro.obs.cli import add_obs_parser
from repro.obs.exporters import render_report, write_jsonl


def _add_engine_options(subparser: argparse.ArgumentParser) -> None:
    subparser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for independent solves (default 1: sequential)",
    )
    subparser.add_argument(
        "--cache-dir", default=DEFAULT_CACHE_DIR,
        help=f"result cache directory (default {DEFAULT_CACHE_DIR})",
    )
    subparser.add_argument(
        "--no-cache", action="store_true",
        help="disable the on-disk result cache",
    )
    subparser.add_argument(
        "--task-timeout", type=float, default=None, metavar="SEC",
        help="kill and retry any single solve exceeding SEC wall-clock seconds",
    )
    subparser.add_argument(
        "--max-attempts", type=int, default=3,
        help="tries per task (crash/error/timeout) before quarantine (default 3)",
    )
    subparser.add_argument(
        "--journal", default=None, metavar="PATH",
        help="stream the engine's run journal (retries, quarantines, rebuilds) to a JSONL file",
    )
    subparser.add_argument(
        "--resume", action="store_true",
        help="report the resume manifest of an interrupted run, then continue it "
             "against the warm cache",
    )
    subparser.add_argument(
        "--telemetry", action="store_true",
        help="meter the run (sweep/sampler/entropy/cache counters) and print a "
             "summary table; results stay byte-identical",
    )
    subparser.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="write the telemetry event stream to PATH as JSONL (implies --telemetry); "
             "inspect later with 'repro-obs report --trace PATH'",
    )


def build_parser() -> argparse.ArgumentParser:
    """The CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="rsu-experiments",
        description="Reproduce the tables and figures of the ISCA 2018 RSU-G paper.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("list", help="list available experiment ids")
    runner = sub.add_parser("run", help="run one experiment (or 'all')")
    runner.add_argument("experiment", help="experiment id (fig3..fig9, table1..table4, all)")
    runner.add_argument("--profile", default="full", choices=("full", "quick"))
    runner.add_argument("--seed", type=int, default=3)
    runner.add_argument("--json", default=None, help="also write the result as JSON")
    runner.add_argument("--chart", action="store_true", help="render an ASCII chart when the result has series/heatmap data")
    _add_engine_options(runner)
    sweeper = sub.add_parser(
        "sweep", help="solve one app across a series of design points"
    )
    sweeper.add_argument("--param", required=True, help="RSUConfig field to sweep")
    sweeper.add_argument("--values", required=True, help="comma-separated values")
    sweeper.add_argument("--app", default="stereo",
                         choices=("stereo", "motion", "segmentation", "denoise"))
    sweeper.add_argument("--profile", default="quick", choices=("full", "quick"))
    sweeper.add_argument("--seed", type=int, default=3)
    sweeper.add_argument(
        "--chains", type=int, default=1,
        help="chains per design point (>1: batched best-of-K ensemble)",
    )
    sweeper.add_argument("--chart", action="store_true")
    _add_engine_options(sweeper)
    reporter = sub.add_parser(
        "report", help="run every experiment and write one markdown report"
    )
    reporter.add_argument("--profile", default="quick", choices=("full", "quick"))
    reporter.add_argument("--seed", type=int, default=3)
    reporter.add_argument("-o", "--output", default="report.md")
    _add_engine_options(reporter)
    obs_sub = sub.add_parser(
        "obs", help="telemetry trace tools (see also the repro-obs entry point)"
    ).add_subparsers(dest="obs_subcommand", required=True)
    add_obs_parser(obs_sub)
    return parser


def _telemetry_requested(args: argparse.Namespace) -> bool:
    return bool(getattr(args, "telemetry", False) or getattr(args, "trace_out", None))


def _engine_from_args(args: argparse.Namespace) -> ExperimentEngine:
    return ExperimentEngine(
        jobs=args.jobs,
        cache_dir=args.cache_dir,
        use_cache=not args.no_cache,
        retry=RetryPolicy(
            max_attempts=args.max_attempts, timeout=args.task_timeout
        ),
        journal_path=args.journal,
        telemetry=_telemetry_requested(args),
    )


def _report_resume(engine: ExperimentEngine, args: argparse.Namespace) -> None:
    """Describe the interrupted run a ``--resume`` invocation continues."""
    if not getattr(args, "resume", False):
        return
    manifest = engine.read_resume_manifest()
    if manifest is None:
        print("no resume manifest found; starting fresh")
        return
    outstanding = len(manifest.get("outstanding", ()))
    print(
        f"resuming interrupted run: {manifest.get('completed', 0)}/"
        f"{manifest.get('total', '?')} solves already cached, "
        f"{outstanding} outstanding"
    )


def main(argv=None) -> int:
    """CLI entry point; returns a process exit code.

    SIGINT/SIGTERM during a batch flush completed results to the cache
    and leave a resume manifest; the process then exits 130 and a later
    ``--resume`` invocation continues from the warm cache.
    """
    try:
        return _main(argv)
    except KeyboardInterrupt:
        print("\ninterrupted; completed solves are cached — rerun with --resume", file=sys.stderr)
        return 130


def _main(argv=None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        for experiment_id in experiment_ids():
            print(experiment_id)
        return 0
    if args.command == "obs":
        return args.obs_command(args)
    engine = _engine_from_args(args)
    _report_resume(engine, args)
    if not _telemetry_requested(args):
        try:
            return _dispatch(args, engine)
        finally:
            engine.journal.close()
    with obs.use_telemetry() as telemetry:
        try:
            code = _dispatch(args, engine)
        finally:
            engine.journal.close()
    if args.trace_out:
        write_jsonl(telemetry, args.trace_out)
        print(f"(telemetry trace written to {args.trace_out})")
    print()
    print(render_report(telemetry))
    return code


def _dispatch(args: argparse.Namespace, engine: ExperimentEngine) -> int:
    if args.command == "report":
        from repro.experiments.report import generate_report

        with use_engine(engine):
            generate_report(profile=args.profile, seed=args.seed, output_path=args.output)
        print(f"report written to {args.output}")
        print(f"(engine: {engine.stats.summary()}, jobs={engine.jobs})")
        return 0
    if args.command == "sweep":
        from repro.experiments.profiles import get_profile
        from repro.experiments.sweep import parse_values, run_sweep

        values = parse_values(args.param, args.values)
        with use_engine(engine):
            result = run_sweep(
                args.param, values, app=args.app,
                profile=get_profile(args.profile), seed=args.seed,
                chains=args.chains,
            )
        print(result.to_text())
        if args.chart:
            from repro.experiments.ascii_plot import chart_for_result

            chart = chart_for_result(result)
            if chart:
                print()
                print(chart)
        print(f"(engine: {engine.stats.summary()}, jobs={engine.jobs})")
        return 0
    targets = experiment_ids() if args.experiment == "all" else [args.experiment]
    for experiment_id in targets:
        started = time.time()
        result = run_experiment(
            experiment_id, profile=args.profile, seed=args.seed, engine=engine
        )
        print(result.to_text())
        if args.chart:
            from repro.experiments.ascii_plot import chart_for_result

            chart = chart_for_result(result)
            if chart:
                print()
                print(chart)
        print(f"({experiment_id} finished in {time.time() - started:.1f}s)\n")
        if args.json:
            path = args.json if len(targets) == 1 else f"{args.json}.{experiment_id}.json"
            result.to_json(path)
    print(f"(engine: {engine.stats.summary()}, jobs={engine.jobs})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
