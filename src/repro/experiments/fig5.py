"""Fig. 5 — result quality vs exponential decay-rate precision.

Fig. 5a sweeps ``Lambda_bits`` for five conversion variants with an
idealized (IEEE-float) time stage, exactly the paper's sequential
methodology:

* ``int_lambda_prev_RSUG`` — integer lambda, no scaling, no cut-off;
* ``int_lambda_scaled`` — decay-rate scaling only;
* ``cutoff_no_scaling`` — cut-off without scaling (the failure case the
  paper calls out: everything is cut off early in annealing);
* ``scaled_with_cutoff`` — scaling + cut-off;
* ``scaled_cutoff_pow2`` — scaling + cut-off + 2^n approximation.

Fig. 5b reports per-dataset BP at ``Lambda_bits = 4`` for the full
technique stack against the software baseline.
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.core.params import RSUConfig
from repro.experiments.common import (
    mean,
    run_stereo_backends,
    stereo_params,
    stereo_suite_specs,
)
from repro.experiments.engine import get_engine, solve_task
from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult

#: The conversion variants of Fig. 5a: name -> (scaling, cutoff, pow2).
VARIANTS: Dict[str, Tuple[bool, bool, bool]] = {
    "int_lambda_prev_RSUG": (False, False, False),
    "int_lambda_scaled": (True, False, False),
    "cutoff_no_scaling": (False, True, False),
    "scaled_with_cutoff": (True, True, False),
    "scaled_cutoff_pow2": (True, True, True),
}


def variant_config(name: str, lambda_bits: int) -> RSUConfig:
    """Design point for one Fig. 5a line at one precision."""
    scaling, cutoff, pow2 = VARIANTS[name]
    return RSUConfig(
        energy_bits=8,
        lambda_bits=lambda_bits,
        scaling=scaling,
        cutoff=cutoff,
        pow2_lambda=pow2,
        float_time=True,
    )


def run(
    profile: Profile = FULL,
    seed: int = 3,
    lambda_bits_range: tuple = (3, 4, 5, 6, 7),
) -> ExperimentResult:
    """Run Fig. 5a/5b: average BP per variant per Lambda_bits."""
    specs = stereo_suite_specs(profile, sweep=True)
    params = stereo_params(profile, iterations=profile.sweep_iterations)
    if profile.name == "quick":
        lambda_bits_range = tuple(b for b in lambda_bits_range if b <= 5)
    software = run_stereo_backends(specs, {"software": None}, params, seed=seed)
    software_avg = mean(r.bad_pixel for r in software["software"].values())

    # The whole bits x variant x dataset grid is one engine batch; the
    # fig5b solves dedupe against the grid when Lambda_bits=4 is swept.
    grid = [
        (bits, name, spec)
        for bits in lambda_bits_range
        for name in VARIANTS
        for spec in specs
    ]
    tasks = [
        solve_task("stereo", spec, config=variant_config(name, bits),
                   params=params, seed=seed)
        for bits, name, spec in grid
    ]
    config_4bit = variant_config("scaled_cutoff_pow2", 4)
    fig5b_tasks = [
        solve_task("stereo", spec, config=config_4bit, params=params, seed=seed)
        for spec in specs
    ]
    outcomes = get_engine().run_tasks(tasks + fig5b_tasks)

    rows = []
    series: Dict[str, list] = {name: [] for name in VARIANTS}
    per_point: Dict[tuple, list] = {}
    for (bits, name, _), outcome in zip(grid, outcomes):
        per_point.setdefault((bits, name), []).append(outcome.bad_pixel)
    for bits in lambda_bits_range:
        row = [bits]
        for name in VARIANTS:
            avg = mean(per_point[(bits, name)])
            series[name].append(avg)
            row.append(avg)
        rows.append(row)

    fig5b_rows = []
    for spec, rsu in zip(specs, outcomes[len(grid):]):
        sw = software["software"][spec["name"]]
        fig5b_rows.append((spec["name"], sw.bad_pixel, rsu.bad_pixel))

    return ExperimentResult(
        experiment_id="fig5",
        title="BP%% vs Lambda_bits for conversion variants (avg of 3 datasets)",
        columns=["Lambda_bits"] + list(VARIANTS),
        rows=rows,
        notes=[
            f"software-only average BP: {software_avg:.1f}%",
            "fig5b (per-dataset, Lambda_bits=4, full techniques): "
            + ", ".join(
                f"{name}: sw={sw:.1f}% rsu={rsu:.1f}%" for name, sw, rsu in fig5b_rows
            ),
            "Expected shape: prev/unscaled variants stay high; scaling+cutoff"
            " reaches software-level BP by 3-4 bits; 2^n costs nothing.",
        ],
        extra={"series": series, "fig5b": fig5b_rows, "software_avg": software_avg},
    )
