"""One-shot report generator: every experiment into a single markdown file.

``rsu-experiments report --profile quick -o report.md`` runs the whole
registry, renders each result as a markdown table (with ASCII charts
for series/heatmap results), prepends a hardware summary, and writes
one self-contained document — the machine-generated counterpart of
EXPERIMENTS.md.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import List, Optional

from repro.experiments.ascii_plot import chart_for_result
from repro.experiments.registry import experiment_ids, run_experiment
from repro.experiments.result import ExperimentResult


def result_to_markdown(result: ExperimentResult) -> str:
    """Render one result as a markdown section."""
    lines = [f"## {result.experiment_id} — {result.title}", ""]
    header = "| " + " | ".join(str(c) for c in result.columns) + " |"
    divider = "|" + "|".join("---" for _ in result.columns) + "|"
    lines += [header, divider]
    for row in result.rows:
        cells = [f"{v:.3f}" if isinstance(v, float) else str(v) for v in row]
        lines.append("| " + " | ".join(cells) + " |")
    lines.append("")
    for note in result.notes:
        lines.append(f"*{note}*")
        lines.append("")
    chart = chart_for_result(result)
    if chart:
        lines += ["```", chart, "```", ""]
    for artifact in result.artifacts:
        lines.append(f"- artifact: `{artifact}`")
    if result.artifacts:
        lines.append("")
    return "\n".join(lines)


def hardware_summary() -> str:
    """Markdown summary of the design point's physical/cost figures."""
    from repro.core.params import new_design_config
    from repro.hw.area_power import new_rsu_breakdown, power_ratio_new_vs_legacy
    from repro.hw.calibration import summarize
    from repro.hw.efficiency import efficiency_table

    config = new_design_config()
    physical = summarize(config)
    total = new_rsu_breakdown()["RSU Total"]
    lines = [
        "## Design point summary",
        "",
        f"- new RSU-G: {total.area_um2:.0f} um^2, {total.power_mw:.2f} mW"
        f" ({power_ratio_new_vs_legacy():.2f}x the previous design's power"
        f" at equal area)",
        f"- physical: {physical['bin_ps']:.0f} ps bins,"
        f" {physical['window_ns']:.1f} ns window,"
        f" lambda0 = {physical['lambda0_mhz']:.0f} MHz,"
        f" {physical['concentrations']} concentrations",
    ]
    for name, row in efficiency_table().items():
        lines.append(
            f"- {name}: {row.power_mw:.1f} mW at {row.entropy_gbps:.2f} Gb/s"
            f" -> {row.mw_per_gbps:.2f} mW/Gbps"
        )
    lines.append("")
    return "\n".join(lines)


def generate_report(
    profile: str = "quick",
    seed: int = 3,
    experiments: Optional[List[str]] = None,
    output_path: Optional[str] = None,
) -> str:
    """Run the registry and return (and optionally write) the report."""
    targets = experiments if experiments is not None else experiment_ids()
    sections = [
        "# RSU-G reproduction report",
        "",
        f"Profile: `{profile}`, seed {seed}. See EXPERIMENTS.md for the"
        " curated paper-vs-measured discussion.",
        "",
        hardware_summary(),
    ]
    for experiment_id in targets:
        started = time.time()
        result = run_experiment(experiment_id, profile=profile, seed=seed)
        sections.append(result_to_markdown(result))
        sections.append(f"_(ran in {time.time() - started:.1f}s)_")
        sections.append("")
    text = "\n".join(sections)
    if output_path is not None:
        target = Path(output_path)
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(text)
    return text
