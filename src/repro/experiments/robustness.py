"""Robustness — stereo quality and recovery under injected faults.

Not a figure from the paper: the paper treats device non-idealities
qualitatively (Sec. II-B, IV-B.6).  This experiment quantifies them.
An over-the-wire stereo solve (the :mod:`repro.isa` command interface
against a :class:`~repro.faults.device.FaultyRSUDevice` array) runs
under increasing transient-fault rates and under targeted persistent
faults, with the :class:`~repro.faults.resilient.ResilientDriver`
recovering.  Reported per scenario:

* the degradation curve — bad-pixel percentage vs fault rate, with the
  fault-free run as the reference;
* recovery traffic — NACKs seen, retries that succeeded, retry word
  overhead;
* detection latency — the sweep index of the first health-check
  suspicion for persistent faults, and the quarantine that follows;
* modeled throughput cost — the degraded-array sweep timing of
  :func:`repro.hw.system.degraded_sweep_timing` at the measured retry
  rate and quarantine count.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core.params import new_design_config
from repro.data.stereo_data import load_stereo, stereo_cost_volume
from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult
from repro.faults.device import FaultyRSUDevice
from repro.faults.models import FaultPlan, UnitArrayFault, WireFault
from repro.faults.resilient import ResiliencePolicy, ResilientDriver
from repro.hw.system import ArrayConfig, degraded_sweep_timing
from repro.isa.commands import Configure
from repro.metrics.stereo_metrics import bad_pixel_percentage

#: Transient per-evaluation fault rates swept for the degradation curve.
TRANSIENT_RATES = (0.0, 0.002, 0.005, 0.01, 0.02, 0.05)

#: Units striped over the functional array, plus healthy spares.
N_UNITS = 4
SPARE_UNITS = 2


def _stereo_problem(profile: Profile, seed: int):
    """A driver-ready stereo problem at robustness scale.

    The functional device evaluates one variable at a time in Python,
    so the sweep runs at a reduced scale even under the full profile;
    the code path is identical at every scale.
    """
    scale = 0.2 if profile.name == "quick" else 0.3
    iterations = max(12, profile.stereo_iterations // 4)
    dataset = load_stereo("teddy", scale=scale)
    cost = stereo_cost_volume(dataset)
    unary = np.clip(np.round(255.0 * cost / max(cost.max(), 1e-9)), 0, 255)
    unary = unary.astype(np.int64)
    configure = Configure(
        distance="absolute",
        singleton_weight=1,
        doubleton_weight=8,
        n_labels=dataset.n_labels,
        output_shift=2,
    )
    # Grid-unit annealing schedule matched to the shifted 8-bit energies.
    t0, t_final = 60.0, 2.0
    ratio = (t_final / t0) ** (1.0 / max(iterations - 1, 1))
    temperatures = [t0 * ratio**k for k in range(iterations)]
    return dataset, unary, configure, iterations, temperatures, seed


def _solve(
    problem,
    plan: FaultPlan,
    policy: ResiliencePolicy = ResiliencePolicy(),
) -> Tuple[float, ResilientDriver]:
    """One resilient over-the-wire solve; returns (BP%, driver)."""
    dataset, unary, configure, iterations, temperatures, seed = problem
    device = FaultyRSUDevice(
        new_design_config(), np.random.default_rng(seed), plan=plan
    )
    driver = ResilientDriver(device, unary, configure, policy=policy)
    labels = driver.solve(iterations, temperatures)
    return bad_pixel_percentage(labels, dataset.gt_disparity), driver


def _transient_plan(rate: float, seed: int) -> FaultPlan:
    return FaultPlan(
        units=UnitArrayFault(
            n_units=N_UNITS,
            spare_units=SPARE_UNITS,
            transient_rate=rate,
            seed=seed,
        )
    )


def run(
    profile: Profile = FULL, seed: int = 3, artifact_dir: Optional[str] = None
) -> ExperimentResult:
    """Run the robustness experiment: fault-rate sweep plus scenarios."""
    problem = _stereo_problem(profile, seed)
    height, width = problem[0].shape
    labels = problem[0].n_labels
    array = ArrayConfig(units=N_UNITS)
    policy = ResiliencePolicy()

    rows = []
    curve = {}
    baseline_bp = None
    for rate in TRANSIENT_RATES:
        bp, driver = _solve(problem, _transient_plan(rate, seed + 17))
        summary = driver.summary()
        counts = summary["incident_counts"]
        if rate == 0.0:
            baseline_bp = bp
        timing = degraded_sweep_timing(
            height,
            width,
            labels,
            array,
            quarantined=len(summary["quarantined_units"]),
            spare_units=SPARE_UNITS,
            transient_rate=rate,
            max_retries=policy.max_retries,
        )
        curve[f"{rate:g}"] = bp
        rows.append(
            [
                f"transient {rate:g}",
                bp,
                counts.get("unit_nack", 0),
                counts.get("recovered", 0),
                len(summary["quarantined_units"]),
                int(summary["fell_back"]),
                -1 if summary["detection_sweep"] is None else summary["detection_sweep"],
                timing.total_cycles,
            ]
        )

    scenarios = [
        (
            "stuck unit",
            FaultPlan(
                units=UnitArrayFault(
                    n_units=N_UNITS,
                    spare_units=SPARE_UNITS,
                    stuck_units=((1, 0),),
                    seed=seed + 29,
                )
            ),
        ),
        (
            "dead unit",
            FaultPlan(
                units=UnitArrayFault(
                    n_units=N_UNITS,
                    spare_units=SPARE_UNITS,
                    dead_units=(2,),
                    seed=seed + 31,
                )
            ),
        ),
        (
            "dead beyond spares",
            FaultPlan(
                units=UnitArrayFault(
                    n_units=N_UNITS,
                    spare_units=1,
                    dead_units=(0, 1, N_UNITS),
                    seed=seed + 37,
                )
            ),
        ),
        (
            "noisy wire",
            FaultPlan(
                units=UnitArrayFault(
                    n_units=N_UNITS, spare_units=SPARE_UNITS, seed=seed + 41
                ),
                wire=WireFault(flip_rate=5e-4, drop_rate=2e-4, seed=seed + 43),
            ),
        ),
    ]
    for name, plan in scenarios:
        bp, driver = _solve(problem, plan)
        summary = driver.summary()
        counts = summary["incident_counts"]
        quarantined = len(summary["quarantined_units"])
        timing = degraded_sweep_timing(
            height,
            width,
            labels,
            array,
            quarantined=quarantined,
            spare_units=min(SPARE_UNITS, plan.units.spare_units),
        )
        rows.append(
            [
                name,
                bp,
                counts.get("unit_nack", 0),
                counts.get("recovered", 0),
                quarantined,
                int(summary["fell_back"]),
                -1 if summary["detection_sweep"] is None else summary["detection_sweep"],
                timing.total_cycles,
            ]
        )

    return ExperimentResult(
        experiment_id="robustness",
        title="Stereo quality and recovery under injected faults",
        columns=[
            "scenario",
            "BP%",
            "nacks",
            "recovered",
            "quarantined",
            "fell_back",
            "detect_sweep",
            "sweep_cycles",
        ],
        rows=rows,
        notes=[
            "detect_sweep is the sweep of the first health-check incident (-1: none).",
            "sweep_cycles: modeled degraded-array cost at the scenario's quarantine/retry load.",
            f"fault-free reference BP% = {baseline_bp:.3f}.",
        ],
        extra={"degradation_curve": curve, "baseline_bp": baseline_bp},
    )
