"""Extra experiment — quality at equal wall-clock time.

The paper's introduction argues that "compared to the software
implementation, RSU-G acceleration allows executing more iterations in
the same amount of time".  This experiment quantifies it: for a range
of time budgets, the Table II performance model converts the budget
into an iteration count for the GPU-only and RSU-augmented systems,
both solves run with their budgeted iterations, and the achieved BP is
compared.  The RSU system runs ~3-6x more iterations per budget and
converges sooner in wall-clock terms.
"""

from __future__ import annotations

from repro.apps.stereo import StereoParams, solve_stereo
from repro.data.stereo_data import load_stereo
from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult
from repro.hw.perf import GPUModel, RSUAugmentedModel
from repro.util.errors import ConfigError

#: Time budgets in modeled seconds (at the paper's SD workload size).
DEFAULT_BUDGETS = (0.005, 0.01, 0.02, 0.05, 0.1)


def iterations_for_budget(
    budget_s: float, pixels: int, labels: int, system: str
) -> int:
    """Iterations a system completes within a wall-clock budget."""
    if budget_s <= 0:
        raise ConfigError(f"budget_s must be positive, got {budget_s}")
    if system == "gpu":
        per_iteration = GPUModel().solve_time(pixels, labels, 1, "float")
    elif system == "rsu":
        per_iteration = RSUAugmentedModel().solve_time(pixels, labels, 1)
    else:
        raise ConfigError(f"system must be 'gpu' or 'rsu', got {system!r}")
    return max(2, int(budget_s / per_iteration))


def run(profile: Profile = FULL, seed: int = 3) -> ExperimentResult:
    """Run the equal-time quality comparison on the poster dataset."""
    dataset = load_stereo("poster", scale=profile.sweep_scale)
    # Budgets are converted at the paper's SD workload size; the solve
    # itself runs on the (smaller) synthetic dataset with that many
    # iterations, keeping the iteration *ratio* faithful.
    pixels = 320 * 320
    labels = dataset.n_labels
    cap = profile.sweep_iterations * 3  # keep runtimes bounded
    rows = []
    for budget in DEFAULT_BUDGETS:
        gpu_iters = min(cap, iterations_for_budget(budget, pixels, labels, "gpu"))
        rsu_iters = min(cap, iterations_for_budget(budget, pixels, labels, "rsu"))
        gpu_bp = solve_stereo(
            dataset, "software", StereoParams(iterations=gpu_iters), seed=seed
        ).bad_pixel
        rsu_bp = solve_stereo(
            dataset, "new_rsug", StereoParams(iterations=rsu_iters), seed=seed
        ).bad_pixel
        rows.append([budget, gpu_iters, gpu_bp, rsu_iters, rsu_bp])
    return ExperimentResult(
        experiment_id="quality_vs_time",
        title="Stereo BP% at equal modeled wall-clock budgets",
        columns=["budget (s)", "GPU iters", "GPU BP%", "RSU iters", "RSU BP%"],
        rows=rows,
        notes=[
            "Iterations per budget come from the Table II performance model;"
            " the RSU-augmented system runs several times more sweeps per"
            " second, so it converges earlier in wall-clock terms.",
        ],
    )
