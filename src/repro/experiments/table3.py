"""Table III — new RSU-G area and power consumption."""

from __future__ import annotations

from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult
from repro.hw.area_power import (
    legacy_rsu_breakdown,
    new_rsu_breakdown,
    power_ratio_new_vs_legacy,
)

#: Paper's Table III values.
PAPER_TABLE3 = {
    "RET Circuit": (1120.0, 0.08),
    "CMOS Circuitry": (1128.0, 3.49),
    "LUT": (655.0, 1.42),
    "RSU Total": (2903.0, 4.99),
}


def run(profile: Profile = FULL, seed: int = 0) -> ExperimentResult:
    """Run Table III: component breakdown vs paper."""
    breakdown = new_rsu_breakdown()
    rows = []
    for name, cost in breakdown.items():
        paper_area, paper_power = PAPER_TABLE3[name]
        rows.append([name, cost.area_um2, cost.power_mw, paper_area, paper_power])
    legacy = legacy_rsu_breakdown()["RSU Total"]
    return ExperimentResult(
        experiment_id="table3",
        title="New RSU-G area (um^2) and power (mW)",
        columns=["component", "area", "power", "paper area", "paper power"],
        rows=rows,
        notes=[
            f"Previous design total: {legacy.area_um2:.0f} um^2, {legacy.power_mw:.2f} mW"
            f" -> power ratio {power_ratio_new_vs_legacy():.2f}x (paper: 1.27x, equal area).",
        ],
    )
