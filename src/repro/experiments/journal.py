"""Structured run journal for the resilient experiment engine.

Every recovery decision the engine takes — a task retried after a
worker exception, a hung solve timed out, a crashed pool rebuilt, a
poison task quarantined, a corrupt cache entry set aside, an interrupt
manifest written — is recorded in the same structured shape as the
:class:`repro.faults.incidents.IncidentLog` used by the device-level
resilient driver, and (optionally) streamed to a JSONL file as it
happens, so a run that dies mid-sweep still leaves a complete record of
everything it recovered from.

Field mapping for engine events: ``sweep`` carries the engine's batch
counter (the Nth ``run_tasks`` call), ``site`` the task's position
within that batch, ``attempt`` the attempt number, and ``detail`` the
task identity (cache-key prefix, app, backend, seed) plus the error.

The JSONL mirror additionally stamps each line with a wall-clock ``ts``
that is guaranteed monotonic non-decreasing within one journal — a
stepped system clock cannot reorder the stream — while the in-memory
:class:`Incident` records stay timestamp-free, preserving their
deterministic serialization.  The mirror keeps one persistent append
handle, flushes every record, and :meth:`close` flushes + ``fsync``\\ s
so a journal closed cleanly is durable on disk.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Dict, Optional

from repro.faults.incidents import Incident, IncidentLog

#: Journal event kinds emitted by the engine, for reference and tests.
TASK_KINDS = (
    "task_retry",
    "task_timeout",
    "task_crash",
    "task_error",
    "task_quarantined",
)
ENGINE_KINDS = TASK_KINDS + (
    "pool_rebuild",
    "cache_corrupt",
    "cache_store_failed",
    "interrupted",
    "telemetry",
)


class RunJournal:
    """Append-only engine journal; optionally mirrored to a JSONL file.

    The in-memory log is a plain :class:`IncidentLog` (same dataclass,
    same deterministic serialization); when ``path`` is given every
    record is appended to the file through a persistent handle and
    flushed immediately — a crash loses at most the event being
    written.  Use as a context manager (or call :meth:`close`) to
    flush + fsync the mirror on the way out.
    """

    def __init__(self, path: Optional[os.PathLike] = None):
        self.log = IncidentLog()
        self.path = Path(path) if path is not None else None
        self._handle = None
        self._last_ts = 0.0
        if self.path is not None:
            self.path.parent.mkdir(parents=True, exist_ok=True)

    def _mirror(self, incident: Incident) -> None:
        if self.path is None:
            return
        if self._handle is None or self._handle.closed:
            self._handle = open(self.path, "a", encoding="utf-8")
        # Wall-clock stamp, clamped so the stream's timestamps never go
        # backwards even if the system clock steps during the run.
        self._last_ts = max(time.time(), self._last_ts)
        record = {"ts": round(self._last_ts, 6)}
        record.update(incident.to_dict())
        self._handle.write(
            json.dumps(record, sort_keys=True, separators=(",", ":")) + "\n"
        )
        self._handle.flush()

    def record(
        self,
        kind: str,
        severity: str = "info",
        batch: int = 0,
        position: Optional[int] = None,
        attempt: Optional[int] = None,
        task=None,
        **detail,
    ) -> Incident:
        """Append one event; ``task`` (a SolveTask) contributes identity."""
        if task is not None:
            detail.setdefault("key", task.key()[:16])
            detail.setdefault("app", task.app)
            detail.setdefault("backend", task.backend)
            detail.setdefault("seed", task.seed)
            if task.chains != 1:
                detail.setdefault("chains", task.chains)
        incident = self.log.record(
            sweep=batch,
            kind=kind,
            severity=severity,
            site=position,
            attempt=attempt,
            **detail,
        )
        self._mirror(incident)
        return incident

    def close(self) -> None:
        """Flush and ``fsync`` the JSONL mirror; safe to call repeatedly."""
        if self._handle is not None and not self._handle.closed:
            self._handle.flush()
            os.fsync(self._handle.fileno())
            self._handle.close()
        self._handle = None

    def __enter__(self) -> "RunJournal":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    def counts_by_kind(self) -> Dict[str, int]:
        """Histogram of event kinds (delegates to the incident log)."""
        return self.log.counts_by_kind()

    def of_kind(self, kind: str):
        """All events of one kind, in order."""
        return self.log.of_kind(kind)

    def __len__(self) -> int:
        return len(self.log)

    def __iter__(self):
        return iter(self.log)
