"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, Iterable, List, Optional

from repro.apps.stereo import StereoParams, StereoResult, solve_stereo
from repro.core.params import RSUConfig
from repro.data.stereo_data import PAPER_STEREO_NAMES, StereoDataset, load_stereo
from repro.experiments.profiles import Profile

#: Where experiment image artifacts (PGM maps) are written.
DEFAULT_ARTIFACT_DIR = Path("artifacts")


def stereo_params(profile: Profile, iterations: Optional[int] = None) -> StereoParams:
    """Stereo solver parameters for a profile."""
    return StereoParams(iterations=iterations or profile.stereo_iterations)


def load_stereo_suite(profile: Profile, sweep: bool = False) -> List[StereoDataset]:
    """The three stereo datasets at the profile's scale.

    ``sweep=True`` selects the smaller sweep scale used by
    many-configuration experiments (Fig. 5, Fig. 8).
    """
    scale = profile.sweep_scale if sweep else profile.stereo_scale
    return [load_stereo(name, scale=scale) for name in PAPER_STEREO_NAMES]


def run_stereo_backends(
    datasets: Iterable[StereoDataset],
    backends: Dict[str, Optional[RSUConfig]],
    params: StereoParams,
    seed: int = 3,
) -> Dict[str, Dict[str, StereoResult]]:
    """Solve every dataset with every backend.

    ``backends`` maps a display name to either None (named backend kind
    equal to the display name) or an :class:`RSUConfig` (run through the
    generic ``rsu`` backend).

    Returns ``results[backend_name][dataset_name]``.
    """
    results: Dict[str, Dict[str, StereoResult]] = {}
    for backend_name, config in backends.items():
        per_dataset = {}
        for dataset in datasets:
            if config is None:
                result = solve_stereo(dataset, backend_name, params, seed=seed)
            else:
                result = solve_stereo(
                    dataset, "rsu", params, rsu_config=config, seed=seed
                )
            per_dataset[dataset.name] = result
        results[backend_name] = per_dataset
    return results


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a non-empty iterable."""
    items = list(values)
    return sum(items) / len(items)
