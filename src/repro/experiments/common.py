"""Shared plumbing for the experiment modules."""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.apps.stereo import StereoParams, StereoResult
from repro.core.params import RSUConfig
from repro.data.stereo_data import PAPER_STEREO_NAMES, StereoDataset, load_stereo
from repro.experiments.engine import get_engine, solve_task
from repro.experiments.profiles import Profile

#: Where experiment image artifacts (PGM maps) are written.
DEFAULT_ARTIFACT_DIR = Path("artifacts")


def stereo_params(profile: Profile, iterations: Optional[int] = None) -> StereoParams:
    """Stereo solver parameters for a profile."""
    return StereoParams(iterations=iterations or profile.stereo_iterations)


def stereo_suite_specs(profile: Profile, sweep: bool = False) -> List[dict]:
    """Loader kwargs for the three stereo datasets at the profile's scale.

    The experiment engine addresses datasets by loader arguments (so
    tasks stay hashable/picklable); ``sweep=True`` selects the smaller
    sweep scale used by many-configuration experiments (Fig. 5, Fig. 8).
    """
    scale = profile.sweep_scale if sweep else profile.stereo_scale
    return [{"name": name, "scale": scale} for name in PAPER_STEREO_NAMES]


def load_stereo_suite(profile: Profile, sweep: bool = False) -> List[StereoDataset]:
    """The three stereo datasets at the profile's scale (loaded)."""
    return [load_stereo(**spec) for spec in stereo_suite_specs(profile, sweep)]


def run_stereo_backends(
    dataset_specs: Sequence[dict],
    backends: Dict[str, Optional[RSUConfig]],
    params: StereoParams,
    seed: int = 3,
) -> Dict[str, Dict[str, StereoResult]]:
    """Solve every dataset with every backend through the ambient engine.

    ``dataset_specs`` are ``load_stereo`` kwargs (see
    :func:`stereo_suite_specs`); ``backends`` maps a display name to
    either None (named backend kind equal to the display name) or an
    :class:`RSUConfig` (run through the generic ``rsu`` backend).  The
    whole backend x dataset grid is dispatched as one task batch, so
    ``--jobs N`` parallelizes it and the result cache dedupes re-runs.

    Returns ``results[backend_name][dataset_name]``.
    """
    grid = [
        (backend_name, config, spec)
        for backend_name, config in backends.items()
        for spec in dataset_specs
    ]
    tasks = [
        solve_task(
            "stereo",
            spec,
            backend="rsu" if config is not None else backend_name,
            config=config,
            params=params,
            seed=seed,
        )
        for backend_name, config, spec in grid
    ]
    outcomes = get_engine().run_tasks(tasks)
    results: Dict[str, Dict[str, StereoResult]] = {}
    for (backend_name, _, spec), outcome in zip(grid, outcomes):
        results.setdefault(backend_name, {})[spec["name"]] = outcome
    return results


def mean(values: Iterable[float]) -> float:
    """Arithmetic mean of a non-empty iterable."""
    items = list(values)
    return sum(items) / len(items)
