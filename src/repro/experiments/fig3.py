"""Fig. 3 — software-only vs previous RSU-G stereo result quality.

Reproduces the bad-pixel comparison across the three stereo datasets
showing that the previously proposed design mislabels most pixels
(paper: BP > 90%) while software MCMC reaches ~13-30%.
"""

from __future__ import annotations

from repro.experiments.common import load_stereo_suite, run_stereo_backends, stereo_params
from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult

#: Paper reference values (BP %, from Fig. 3 / Sec. III-C1 text).
PAPER_SOFTWARE_BP = {"teddy": 27.1, "poster": 13.3, "art": 30.3}
PAPER_PREV_RSUG_BP = {"teddy": 93.0, "poster": 92.0, "art": 91.0}


def run(profile: Profile = FULL, seed: int = 3) -> ExperimentResult:
    """Run Fig. 3: stereo BP and RMS for software vs previous RSU-G."""
    datasets = load_stereo_suite(profile)
    params = stereo_params(profile)
    results = run_stereo_backends(
        datasets, {"software": None, "prev_rsug": None}, params, seed=seed
    )
    rows = []
    for dataset in datasets:
        sw = results["software"][dataset.name]
        prev = results["prev_rsug"][dataset.name]
        rows.append(
            [
                dataset.name,
                sw.bad_pixel,
                prev.bad_pixel,
                sw.rms,
                prev.rms,
                PAPER_SOFTWARE_BP[dataset.name],
                PAPER_PREV_RSUG_BP[dataset.name],
            ]
        )
    return ExperimentResult(
        experiment_id="fig3",
        title="Software-only vs previous RSU-G stereo quality (BP %, RMS)",
        columns=[
            "dataset",
            "software BP%",
            "prev RSU-G BP%",
            "software RMS",
            "prev RSU-G RMS",
            "paper software BP%",
            "paper prev BP%",
        ],
        rows=rows,
        notes=[
            "Synthetic stereo scenes substitute for Middlebury (DESIGN.md sec. 3).",
            "Expected shape: prev RSU-G mislabels most pixels; software is far better.",
        ],
    )
