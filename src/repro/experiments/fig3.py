"""Fig. 3 — software-only vs previous RSU-G stereo result quality.

Reproduces the bad-pixel comparison across the three stereo datasets
showing that the previously proposed design mislabels most pixels
(paper: BP > 90%) while software MCMC reaches ~13-30%.
"""

from __future__ import annotations

from repro.experiments.common import run_stereo_backends, stereo_params, stereo_suite_specs
from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult

#: Paper reference values (BP %, from Fig. 3 / Sec. III-C1 text).
PAPER_SOFTWARE_BP = {"teddy": 27.1, "poster": 13.3, "art": 30.3}
PAPER_PREV_RSUG_BP = {"teddy": 93.0, "poster": 92.0, "art": 91.0}


def run(profile: Profile = FULL, seed: int = 3) -> ExperimentResult:
    """Run Fig. 3: stereo BP and RMS for software vs previous RSU-G."""
    specs = stereo_suite_specs(profile)
    params = stereo_params(profile)
    results = run_stereo_backends(
        specs, {"software": None, "prev_rsug": None}, params, seed=seed
    )
    rows = []
    for spec in specs:
        name = spec["name"]
        sw = results["software"][name]
        prev = results["prev_rsug"][name]
        rows.append(
            [
                name,
                sw.bad_pixel,
                prev.bad_pixel,
                sw.rms,
                prev.rms,
                PAPER_SOFTWARE_BP[name],
                PAPER_PREV_RSUG_BP[name],
            ]
        )
    return ExperimentResult(
        experiment_id="fig3",
        title="Software-only vs previous RSU-G stereo quality (BP %, RMS)",
        columns=[
            "dataset",
            "software BP%",
            "prev RSU-G BP%",
            "software RMS",
            "prev RSU-G RMS",
            "paper software BP%",
            "paper prev BP%",
        ],
        rows=rows,
        notes=[
            "Synthetic stereo scenes substitute for Middlebury (DESIGN.md sec. 3).",
            "Expected shape: prev RSU-G mislabels most pixels; software is far better.",
        ],
    )
