"""Plain-text chart rendering for experiment results.

No plotting libraries are available offline, so figures render as
ASCII: line charts for series sweeps (Figs. 5, 7) and shaded grids for
heatmaps (Fig. 8).  Used by the CLI's ``--chart`` flag.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.util.errors import ConfigError

#: Shade ramp from low to high values.
SHADES = " .:-=+*#%@"


def _scale(value: float, low: float, high: float, steps: int) -> int:
    if high <= low:
        return 0
    fraction = (value - low) / (high - low)
    return min(steps - 1, max(0, int(round(fraction * (steps - 1)))))


def line_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    height: int = 12,
    width: int = 60,
    title: str = "",
) -> str:
    """Render one or more series as an ASCII line chart.

    Each series gets a marker (its name's first letter, upper-cased per
    series order collisions resolved by digits).
    """
    if not series:
        raise ConfigError("series must be non-empty")
    lengths = {len(v) for v in series.values()}
    if lengths != {len(x_values)} or len(x_values) < 2:
        raise ConfigError("all series must match x_values with length >= 2")
    values = [v for vs in series.values() for v in vs]
    low, high = min(values), max(values)
    grid = [[" "] * width for _ in range(height)]
    markers = _markers(list(series))
    for name, ys in series.items():
        marker = markers[name]
        for i, y in enumerate(ys):
            col = _scale(i, 0, len(x_values) - 1, width)
            row = height - 1 - _scale(y, low, high, height)
            grid[row][col] = marker
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{high:10.3f} ┤" + "".join(grid[0]))
    for row in grid[1:-1]:
        lines.append(" " * 10 + " │" + "".join(row))
    lines.append(f"{low:10.3f} ┤" + "".join(grid[-1]))
    lines.append(
        " " * 12 + f"{x_values[0]:<10g}" + " " * max(0, width - 20) + f"{x_values[-1]:>8g}"
    )
    legend = "  ".join(f"{markers[name]}={name}" for name in series)
    lines.append(" " * 12 + legend)
    return "\n".join(lines)


def _markers(names: List[str]) -> Dict[str, str]:
    markers = {}
    used = set()
    for index, name in enumerate(names):
        candidate = name[:1].upper() or "?"
        if candidate in used:
            candidate = str(index % 10)
        used.add(candidate)
        markers[name] = candidate
    return markers


def heatmap(
    row_labels: Sequence,
    col_labels: Sequence,
    cells: Sequence[Sequence[float]],
    title: str = "",
    invert: bool = False,
) -> str:
    """Render a matrix as a shaded ASCII grid.

    ``invert=True`` maps low values to dark shades (useful when low is
    good, as with BP: the paper's Fig. 8 shades high BP dark).
    """
    rows = [list(r) for r in cells]
    if not rows or any(len(r) != len(col_labels) for r in rows):
        raise ConfigError("cells must be rectangular and match col_labels")
    if len(rows) != len(row_labels):
        raise ConfigError("cells must match row_labels")
    flat = [v for row in rows for v in row]
    low, high = min(flat), max(flat)
    lines = []
    if title:
        lines.append(title)
    header = "          " + " ".join(f"{c!s:>6}" for c in col_labels)
    lines.append(header)
    for label, row in zip(row_labels, rows):
        shades = []
        for value in row:
            level = _scale(value, low, high, len(SHADES))
            if invert:
                level = len(SHADES) - 1 - level
            shades.append(SHADES[level] * 6)
        lines.append(f"{label!s:>8}  " + " ".join(shades))
    lines.append(f"(shade range: {low:.2f} .. {high:.2f})")
    return "\n".join(lines)


def chart_for_result(result) -> str:
    """Best-effort chart for an ExperimentResult; '' when none applies."""
    extra = result.extra
    if "heatmap" in extra:
        grid = extra["heatmap"]
        row_labels = list(grid)
        col_labels = list(next(iter(grid.values())))
        cells = [[grid[r][c] for c in col_labels] for r in row_labels]
        return heatmap(
            row_labels, col_labels, cells, title=result.title, invert=True
        )
    if "series" in extra:
        series = extra["series"]
        length = min(len(values) for values in series.values())
        x_values = [row[0] for row in result.rows[:length]]
        if any(not isinstance(x, (int, float)) for x in x_values):
            x_values = list(range(length))
        try:
            return line_chart(x_values, series, title=result.title)
        except ConfigError:
            return ""
    return ""
