"""Experiment result container and text rendering.

Every experiment module returns an :class:`ExperimentResult` holding a
tabular payload (the rows/series the paper's table or figure reports),
free-form notes, and any image artifacts written to disk.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

from repro.util.errors import ConfigError


@dataclass
class ExperimentResult:
    """Structured output of one reproduced table or figure."""

    experiment_id: str
    title: str
    columns: List[str]
    rows: List[list]
    notes: List[str] = field(default_factory=list)
    artifacts: List[str] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)

    def __post_init__(self):
        for row in self.rows:
            if len(row) != len(self.columns):
                raise ConfigError(
                    f"row {row!r} does not match columns {self.columns!r}"
                )

    def to_text(self) -> str:
        """Render as an aligned plain-text table with notes."""
        cells = [[_fmt(c) for c in self.columns]]
        cells += [[_fmt(value) for value in row] for row in self.rows]
        widths = [max(len(r[i]) for r in cells) for i in range(len(self.columns))]
        lines = [f"== {self.experiment_id}: {self.title} =="]
        for idx, row in enumerate(cells):
            lines.append("  ".join(cell.ljust(widths[i]) for i, cell in enumerate(row)))
            if idx == 0:
                lines.append("  ".join("-" * widths[i] for i in range(len(widths))))
        for note in self.notes:
            lines.append(f"note: {note}")
        for artifact in self.artifacts:
            lines.append(f"artifact: {artifact}")
        return "\n".join(lines)

    def to_json(self, path: Optional[str] = None) -> str:
        """Serialize to JSON; optionally also write to ``path``."""
        payload = {
            "experiment_id": self.experiment_id,
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows,
            "notes": self.notes,
            "artifacts": self.artifacts,
            "extra": {k: _jsonable(v) for k, v in self.extra.items()},
        }
        text = json.dumps(payload, indent=2)
        if path is not None:
            target = Path(path)
            target.parent.mkdir(parents=True, exist_ok=True)
            target.write_text(text)
        return text


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def _jsonable(value):
    try:
        json.dumps(value)
        return value
    except TypeError:
        return str(value)
