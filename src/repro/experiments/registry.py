"""Experiment registry: id -> runner.

Each runner takes ``(profile, seed)`` keyword arguments and returns an
:class:`~repro.experiments.result.ExperimentResult`.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.experiments import (
    ablations,
    energy_bits,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    fig8,
    fig9,
    quality_vs_time,
    robustness,
    table1,
    table2,
    table3,
    table4,
)
from repro.experiments.engine import ExperimentEngine, use_engine
from repro.experiments.profiles import Profile, get_profile
from repro.experiments.result import ExperimentResult
from repro.util.errors import ConfigError

EXPERIMENTS: Dict[str, Callable] = {
    "fig3": fig3.run,
    "fig4": fig4.run,
    "fig5": fig5.run,
    "fig6": fig6.run,
    "fig7": fig7.run,
    "fig8": fig8.run,
    "fig9": fig9.run,
    "table1": table1.run,
    "table2": table2.run,
    "table3": table3.run,
    "table4": table4.run,
    "quality_vs_time": quality_vs_time.run,
    "ablations": ablations.run,
    "energy_bits": energy_bits.run,
    "robustness": robustness.run,
}


def run_experiment(
    experiment_id: str,
    profile: str = "full",
    seed: int = 3,
    engine: ExperimentEngine = None,
) -> ExperimentResult:
    """Run one experiment by id under a named profile.

    ``engine`` scopes a specific :class:`ExperimentEngine` (parallel
    jobs and/or result cache) to the run; None keeps the ambient one.
    """
    if experiment_id not in EXPERIMENTS:
        raise ConfigError(
            f"unknown experiment {experiment_id!r}; expected one of {sorted(EXPERIMENTS)}"
        )
    prof: Profile = get_profile(profile)
    if engine is None:
        return EXPERIMENTS[experiment_id](profile=prof, seed=seed)
    with use_engine(engine):
        return EXPERIMENTS[experiment_id](profile=prof, seed=seed)


def experiment_ids() -> list:
    """All registered experiment ids in paper order."""
    return list(EXPERIMENTS)
