"""Crash-safe parallel experiment engine with verified result caching.

Every quality experiment in the registry decomposes into independent
solves: one application solved at one design point with one seed on one
dataset.  :class:`SolveTask` captures such a unit as pure data (the
dataset is named by its loader arguments, never by a loaded object), so
a task can be

* **hashed** — the canonical JSON payload of a task is SHA-256'd into a
  cache key, giving a content-addressed on-disk result cache under
  ``.repro_cache/`` that makes re-runs and interrupted sweeps resume
  instantly;
* **shipped to a worker process** — tasks pickle cheaply, and a
  :class:`concurrent.futures.ProcessPoolExecutor` shard pool executes
  them with ``--jobs N`` parallelism.

Because each task seeds its own solver (``solve_*(..., seed=...)``
constructs a fresh ``np.random.default_rng``), results are byte-identical
whether tasks run sequentially, in parallel, out of a warm cache, or
after any number of retries — the determinism regression in
``tests/test_experiments_engine.py`` asserts exactly that.

The engine is *resilient*: a long sweep survives worker failures
instead of aborting on the first one.

* A worker **exception** retries the task with exponential backoff up to
  :attr:`RetryPolicy.max_attempts`; a task that keeps failing is
  **quarantined** — its slot in the results list becomes an explicit
  :class:`TaskFailure` hole and the sweep continues.
* A worker **crash** breaks the whole :class:`ProcessPoolExecutor`, so
  the engine rebuilds the pool and re-runs the started-but-unfinished
  *suspects* one at a time in single-worker isolation pools.  That
  pins the blame exactly: healthy tasks that happened to be in flight
  with a poison task complete normally; the poison task crashes its
  private pool and is quarantined.
* A **hung** worker (``RetryPolicy.timeout``) is killed along with its
  pool; the overdue task is retried in isolation, the rest of the wave
  is resubmitted blame-free.

Every recovery step is recorded in a structured
:class:`~repro.experiments.journal.RunJournal` (optionally streamed to
JSONL) using the same incident shape as the device-level fault
subsystem.

Cached results are wrapped in the checksummed envelope from
:mod:`repro.util.integrity` (SHA-256 + format version).  A truncated or
bit-flipped entry is detected on load, moved to
``<cache_dir>/quarantine/``, counted in :class:`EngineStats`, and the
task is simply recomputed.  Results are written to the cache *as each
task completes* (not at batch end), so an interrupt loses nothing that
finished; SIGINT/SIGTERM during a batch additionally writes a resume
manifest (``<cache_dir>/resume-manifest.json``) that ``repro-exp run
--resume`` reports before re-running the sweep against the warm cache.

Experiments obtain the ambient engine through :func:`get_engine`; the
CLI installs one built from ``--jobs`` / ``--cache-dir`` / ``--no-cache``
via :func:`use_engine`.  The default engine is sequential and cache-less,
so library callers see the historical behaviour unless they opt in.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
import threading
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures import TimeoutError as FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from functools import lru_cache, partial
from pathlib import Path
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.apps.denoise import DenoiseParams, solve_denoise
from repro.apps.motion import MotionParams, solve_motion
from repro.apps.segmentation import SegmentationParams, solve_segmentation
from repro.apps.stereo import StereoParams, solve_stereo
from repro.core.params import RSUConfig
from repro.data.denoise_data import make_denoise_dataset
from repro.data.motion_data import load_flow
from repro.data.segmentation_data import make_segmentation_dataset
from repro.data.stereo_data import load_stereo
from repro.experiments.journal import RunJournal
from repro.obs import telemetry as obs
from repro.util.errors import ConfigError
from repro.util.integrity import EnvelopeError, atomic_write_bytes, dump_envelope, load_envelope

#: Bump when solver semantics — or the on-disk entry format — change in
#: a way the task payload cannot see; invalidates every previously
#: cached result.  Version 2 introduced the checksummed envelope.
CACHE_FORMAT_VERSION = 2

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: File name of the interrupt manifest inside the cache directory.
RESUME_MANIFEST_NAME = "resume-manifest.json"

#: app name -> (solver, params class, dataset loader).  All four solvers
#: share the ``(dataset, backend, params, rsu_config=, seed=)`` contract.
APP_RUNNERS = {
    "stereo": (solve_stereo, StereoParams, load_stereo),
    "motion": (solve_motion, MotionParams, load_flow),
    "segmentation": (solve_segmentation, SegmentationParams, make_segmentation_dataset),
    "denoise": (solve_denoise, DenoiseParams, make_denoise_dataset),
}


@dataclass(frozen=True)
class SolveTask:
    """One independent (app, dataset, backend/config, params, seed) solve.

    ``dataset`` and ``params`` are stored as sorted ``(name, value)``
    tuples so the task is hashable and its payload canonical; use
    :func:`solve_task` to build one from plain dicts/dataclasses.
    """

    app: str
    dataset: Tuple[Tuple[str, object], ...]
    backend: str = "rsu"
    config: Optional[RSUConfig] = None
    params: Tuple[Tuple[str, object], ...] = ()
    seed: int = 3
    chains: int = 1

    def __post_init__(self):
        if self.app not in APP_RUNNERS:
            raise ConfigError(
                f"unknown app {self.app!r}; expected one of {tuple(APP_RUNNERS)}"
            )
        if self.backend == "rsu" and self.config is None:
            raise ConfigError("backend 'rsu' requires an explicit RSUConfig")
        if self.chains < 1:
            raise ConfigError(f"chains must be >= 1, got {self.chains}")

    def payload(self) -> dict:
        """Canonical JSON-serializable description (the cache-key input)."""
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "app": self.app,
            "dataset": {k: _jsonable(v) for k, v in self.dataset},
            "backend": self.backend,
            "config": None if self.config is None else self.config.to_dict(),
            "params": {k: _jsonable(v) for k, v in self.params},
            "seed": self.seed,
        }
        if self.chains != 1:
            # Only multi-chain tasks carry the field, so every key minted
            # before ensembles existed stays valid (chains == 1 is the
            # historical semantics, bit for bit).
            payload["chains"] = self.chains
        return payload

    def key(self) -> str:
        """Content-addressed cache key: SHA-256 of the canonical payload."""
        blob = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _jsonable(value):
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


def solve_task(
    app: str,
    dataset_kwargs: Dict[str, object],
    backend: str = "rsu",
    config: Optional[RSUConfig] = None,
    params: object = None,
    seed: int = 3,
    chains: int = 1,
) -> SolveTask:
    """Build a :class:`SolveTask` from loader kwargs and a params dataclass."""
    params_items: Tuple[Tuple[str, object], ...] = ()
    if params is not None:
        params_items = tuple(sorted(asdict(params).items()))
    return SolveTask(
        app=app,
        dataset=tuple(sorted(dataset_kwargs.items())),
        backend=backend,
        config=config,
        params=params_items,
        seed=seed,
        chains=chains,
    )


@lru_cache(maxsize=32)
def _load_dataset(app: str, dataset_items: Tuple[Tuple[str, object], ...]):
    """Load (and memoize per process) the dataset a task names.

    Memoization means a sweep over N design points loads its dataset
    once per (app, loader-arguments) — both in the sequential path and
    inside each pool worker — instead of once per design point.
    """
    loader = APP_RUNNERS[app][2]
    return loader(**dict(dataset_items))


class TaskExecutionError(RuntimeError):
    """A solve raised inside :func:`execute_task`.

    The message carries the task's identity (cache-key prefix, app,
    backend, seed) plus the original exception, so a failure surfacing
    from an anonymous pool worker still names the exact design point
    that produced it.  The original exception is chained as
    ``__cause__`` (visible in local tracebacks; process-pool transport
    preserves the message).
    """


def execute_task(task: SolveTask):
    """Run one task to completion; module-level so pool workers can pickle it."""
    try:
        solver, params_cls, _ = APP_RUNNERS[task.app]
        dataset = _load_dataset(task.app, task.dataset)
        params = params_cls(**dict(task.params)) if task.params else params_cls()
        return solver(
            dataset,
            task.backend,
            params,
            rsu_config=task.config,
            seed=task.seed,
            chains=task.chains,
        )
    except Exception as exc:
        raise TaskExecutionError(
            f"task {task.key()[:16]} (app={task.app}, backend={task.backend}, "
            f"seed={task.seed}, chains={task.chains}) failed: "
            f"{type(exc).__name__}: {exc}"
        ) from exc


@dataclass(frozen=True)
class TelemetryEnvelope:
    """A task result plus the telemetry its execution recorded.

    Produced by :func:`_telemetry_worker` around the engine's runner so
    a worker process can meter its solve independently and ship the
    counts home: ``snapshot`` is a :meth:`Telemetry.snapshot` dict
    (JSON/pickle-cheap), ``elapsed_s`` the wall-clock task latency.
    The engine unwraps envelopes in ``on_done`` *before* caching, so
    the result cache stores exactly the raw values it always has.
    """

    value: object
    snapshot: dict
    elapsed_s: float


def _telemetry_worker(runner, task):
    """Run ``runner(task)`` under a private Telemetry; wrap the result.

    Module-level (and composed via :func:`functools.partial`) so pool
    workers can pickle it around any injectable runner.  The private
    instance also scopes correctly inline: ``use_telemetry`` saves and
    restores whatever the parent had active, and the parent merges the
    snapshot back in ``on_done`` — same totals either way.
    """
    start = time.perf_counter()
    with obs.use_telemetry() as telemetry:
        value = runner(task)
    return TelemetryEnvelope(
        value=value,
        snapshot=telemetry.snapshot(),
        elapsed_s=time.perf_counter() - start,
    )


@dataclass(frozen=True)
class RetryPolicy:
    """How the engine treats failing, crashing, and hanging tasks.

    Parameters
    ----------
    max_attempts:
        Total tries per task (first run included) before quarantine.
    timeout:
        Wall-clock seconds a single attempt may run before the engine
        declares it hung, kills its worker, and retries it in isolation.
        ``None`` (default) never times out.  Enforced on the pool path;
        when a timeout is set the engine routes execution through a pool
        even at ``jobs=1`` so hangs stay preemptible.
    backoff_base / backoff_cap:
        Exponential backoff between attempts: ``base * 2**(attempt-1)``
        seconds, capped.
    poll_interval:
        How often the pool loop wakes to check deadlines, worker starts,
        and interrupts.
    """

    max_attempts: int = 3
    timeout: Optional[float] = None
    backoff_base: float = 0.05
    backoff_cap: float = 2.0
    poll_interval: float = 0.05

    def __post_init__(self):
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.timeout is not None and self.timeout <= 0:
            raise ConfigError(f"timeout must be positive, got {self.timeout}")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ConfigError("backoff must be non-negative")
        if self.poll_interval <= 0:
            raise ConfigError(f"poll_interval must be positive, got {self.poll_interval}")

    def delay(self, attempt: int) -> float:
        """Backoff before the attempt after ``attempt`` failures."""
        return min(self.backoff_base * (2.0 ** (attempt - 1)), self.backoff_cap)


@dataclass(frozen=True)
class TaskFailure:
    """Explicit hole left in the results where a quarantined task was.

    Callers iterating sweep results check ``isinstance(r, TaskFailure)``
    (or :attr:`reason`) instead of the whole sweep aborting on one bad
    design point.
    """

    key: str
    app: str
    backend: str
    seed: int
    attempts: int
    reason: str  # "error" | "crash" | "timeout"
    error: str

    def __str__(self) -> str:
        return (
            f"TaskFailure({self.reason} after {self.attempts} attempts: "
            f"app={self.app}, backend={self.backend}, seed={self.seed}, "
            f"key={self.key[:16]}): {self.error}"
        )


_MISS = object()


class ResultCache:
    """Content-addressed store under ``root`` (two-level fan-out).

    Entries are pickles wrapped in the checksummed envelope from
    :mod:`repro.util.integrity` (magic + :data:`CACHE_FORMAT_VERSION` +
    SHA-256).  :meth:`load_entry` distinguishes a clean miss from a
    *corrupt* entry — truncated, bit-flipped, or unpicklable files are
    moved into ``<root>/quarantine/`` for post-mortem and reported so
    the engine can recompute and recount them.  Entries from older
    format versions (including pre-envelope raw pickles) are treated as
    plain misses and overwritten on the next store.
    """

    def __init__(self, root: os.PathLike):
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    @property
    def quarantine_dir(self) -> Path:
        return self.root / "quarantine"

    def load_entry(self, key: str) -> Tuple[str, object]:
        """``("hit", value)``, ``("miss", None)``, or ``("corrupt", reason)``.

        Corrupt entries are quarantined as a side effect.
        """
        target = self.path(key)
        try:
            return "hit", load_envelope(target, CACHE_FORMAT_VERSION)
        except OSError:
            return "miss", None
        except EnvelopeError as exc:
            if exc.reason in ("bad_magic", "version_mismatch"):
                # A stale format, not damage: recompute and overwrite.
                return "miss", None
            self.quarantine(key)
            return "corrupt", exc.reason

    def load(self, key: str):
        """The cached value, or the ``_MISS`` sentinel on any failure."""
        status, value = self.load_entry(key)
        return value if status == "hit" else _MISS

    def quarantine(self, key: str) -> Optional[Path]:
        """Move a damaged entry into the quarantine directory."""
        target = self.path(key)
        destination = self.quarantine_dir / target.name
        try:
            destination.parent.mkdir(parents=True, exist_ok=True)
            os.replace(target, destination)
        except OSError:
            return None
        return destination

    def store(self, key: str, value) -> Optional[str]:
        """Persist ``value`` atomically; returns an error string or ``None``.

        The value is pickled in memory first, so nothing touches disk if
        it cannot be serialized, and :func:`atomic_write_bytes` removes
        its temp file on any write failure — a failed store never leaks
        a ``.tmp`` alongside the cache entries and never masks the
        original exception.  Store failures are reported, not raised: a
        full disk must not abort a sweep whose solve just succeeded.
        """
        target = self.path(key)
        try:
            target.parent.mkdir(parents=True, exist_ok=True)
            dump_envelope(target, value, CACHE_FORMAT_VERSION)
        except Exception as exc:  # noqa: BLE001 — any store failure is non-fatal
            return f"{type(exc).__name__}: {exc}"
        return None


@dataclass
class EngineStats:
    """Counters for one engine's lifetime (inspected by tests and the CLI)."""

    tasks: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    executed: int = 0
    parallel_batches: int = 0
    retries: int = 0
    timeouts: int = 0
    quarantined: int = 0
    pool_rebuilds: int = 0
    cache_corrupt: int = 0
    cache_store_failures: int = 0

    def summary(self) -> str:
        text = (
            f"{self.tasks} tasks: {self.executed} solved, "
            f"{self.cache_hits} cache hits, {self.deduplicated} deduplicated"
        )
        if self.retries or self.timeouts or self.quarantined or self.pool_rebuilds:
            text += (
                f"; resilience: {self.retries} retries, {self.timeouts} timeouts, "
                f"{self.quarantined} quarantined, {self.pool_rebuilds} pool rebuilds"
            )
        text += (
            f"; cache integrity: {self.cache_corrupt} corrupt entries, "
            f"{self.cache_store_failures} store failures"
        )
        return text


class EngineInterrupted(RuntimeError):
    """Internal: a trapped SIGINT/SIGTERM asked the batch to stop."""


class ExperimentEngine:
    """Dispatches :class:`SolveTask` batches over a shard pool + cache.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` executes inline (no pool, no pickling)
        unless a task timeout is set, which requires a preemptible pool.
    cache_dir:
        Root of the on-disk result cache.
    use_cache:
        Whether to consult/populate the cache.  Off by default for
        library callers; the CLI turns it on unless ``--no-cache``.
    retry:
        The :class:`RetryPolicy` governing retries, timeouts, and
        quarantine.  Defaults to 3 attempts, no timeout.
    journal / journal_path:
        An existing :class:`RunJournal`, or a JSONL path to stream one
        to.  Omitting both keeps an in-memory journal.
    runner:
        The callable executed per task (must be module-level picklable).
        Injectable for the chaos tests; defaults to :func:`execute_task`.
    telemetry:
        Meter every task through :func:`_telemetry_worker`: each task
        (inline or in a pool worker) records into a private Telemetry
        whose snapshot is merged into the parent's ambient instance and
        mirrored into the journal as a ``"telemetry"`` event.  The
        result cache still stores raw values — envelopes are unwrapped
        before caching, so cache keys and contents are unchanged.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: os.PathLike = DEFAULT_CACHE_DIR,
        use_cache: bool = False,
        retry: Optional[RetryPolicy] = None,
        journal: Optional[RunJournal] = None,
        journal_path: Optional[os.PathLike] = None,
        runner: Callable[[SolveTask], object] = execute_task,
        telemetry: bool = False,
    ):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache_root = Path(cache_dir)
        self.cache: Optional[ResultCache] = ResultCache(cache_dir) if use_cache else None
        self.retry = retry if retry is not None else RetryPolicy()
        self.journal = journal if journal is not None else RunJournal(journal_path)
        self.runner = runner
        self.telemetry = telemetry
        # What actually executes per task; still partial-of-module-level,
        # so pool workers pickle it exactly like the bare runner.
        self._call = partial(_telemetry_worker, runner) if telemetry else runner
        self.stats = EngineStats()
        self._batch = 0
        self._interrupt: Optional[int] = None

    # ------------------------------------------------------------------
    # Public API

    def run_tasks(self, tasks: Sequence[SolveTask]) -> List:
        """Execute every task; results are returned in task order.

        Identical tasks (same content key) are solved once; cache hits
        skip execution entirely.  The per-task seeding discipline makes
        the output independent of ``jobs``, of cache warmth, and of any
        retries — a retried task reruns from its own seed, so recovery
        never perturbs results.

        A task that exhausts :attr:`RetryPolicy.max_attempts` occupies
        its result slot with a :class:`TaskFailure` instead of aborting
        the batch.  Completed results are cached as they finish; a
        trapped SIGINT/SIGTERM flushes nothing further, writes the
        resume manifest, and re-raises as :class:`KeyboardInterrupt`.
        """
        tasks = list(tasks)
        stats_before = None
        if self.telemetry and obs.enabled():
            stats_before = asdict(self.stats)
        self.stats.tasks += len(tasks)
        keys = [task.key() for task in tasks]
        results: List = [None] * len(tasks)
        pending: Dict[str, List[int]] = {}
        for index, (task, key) in enumerate(zip(tasks, keys)):
            if self.cache is not None:
                status, value = self.cache.load_entry(key)
                if status == "hit":
                    results[index] = value
                    self.stats.cache_hits += 1
                    continue
                if status == "corrupt":
                    self.stats.cache_corrupt += 1
                    self.journal.record(
                        "cache_corrupt",
                        severity="warning",
                        batch=self._batch + 1,
                        position=index,
                        task=task,
                        reason=value,
                    )
            if key in pending:
                self.stats.deduplicated += 1
            pending.setdefault(key, []).append(index)

        unique = [(key, tasks[indices[0]]) for key, indices in pending.items()]
        if unique:
            self._batch += 1
            unique_keys = [key for key, _ in unique]
            unique_tasks = [task for _, task in unique]
            outcomes: List = [None] * len(unique)

            def on_done(slot: int, outcome) -> None:
                if isinstance(outcome, TelemetryEnvelope):
                    outcome = self._ingest_telemetry(
                        slot, unique_tasks[slot], outcome
                    )
                outcomes[slot] = outcome
                if isinstance(outcome, TaskFailure):
                    return
                self.stats.executed += 1
                if self.cache is not None:
                    error = self.cache.store(unique_keys[slot], outcome)
                    if error is not None:
                        self.stats.cache_store_failures += 1
                        self.journal.record(
                            "cache_store_failed",
                            severity="warning",
                            batch=self._batch,
                            position=slot,
                            task=unique_tasks[slot],
                            error=error,
                        )

            with self._trap_signals():
                try:
                    self._execute(unique_tasks, unique_keys, on_done)
                except EngineInterrupted:
                    self._on_interrupt(tasks, keys)
                    raise KeyboardInterrupt(
                        "experiment batch interrupted; completed results are cached"
                    ) from None
            for (key, _), outcome in zip(unique, outcomes):
                for index in pending[key]:
                    results[index] = outcome
        if self.cache is not None:
            # The batch ran to completion: any stale interrupt manifest
            # no longer describes reality.
            self.clear_resume_manifest()
        if stats_before is not None:
            self._sync_stats(stats_before)
        return results

    def run_task(self, task: SolveTask):
        """Convenience wrapper for a single task."""
        return self.run_tasks([task])[0]

    # ------------------------------------------------------------------
    # Telemetry aggregation

    def _ingest_telemetry(self, slot: int, task: SolveTask, envelope):
        """Fold a worker's telemetry into the run; return the raw value.

        The snapshot merges into the ambient Telemetry (when one is
        active in this parent process), the task's latency lands in the
        ``engine.task_seconds`` histogram, and a compact summary is
        mirrored into the journal — all *before* the value continues to
        the cache, which therefore stores exactly what it always has.
        """
        counters = envelope.snapshot.get("counters", {})
        tel = obs.active()
        if tel is not None:
            tel.merge(envelope.snapshot)
            tel.observe("engine.task_seconds", envelope.elapsed_s)
        self.journal.record(
            "telemetry",
            severity="info",
            batch=self._batch,
            position=slot,
            task=task,
            elapsed_s=round(envelope.elapsed_s, 6),
            sweeps=counters.get("solver.sweeps", 0),
            flips=counters.get("solver.flips", 0),
            samples=counters.get("sampler.samples", 0),
            uniforms=counters.get("entropy.uniforms", 0),
        )
        return envelope.value

    def _sync_stats(self, before: dict) -> None:
        """Mirror this batch's EngineStats deltas into engine.* counters."""
        tel = obs.active()
        if tel is None:
            return
        after = asdict(self.stats)
        for name, value in after.items():
            delta = value - before.get(name, 0)
            if delta > 0:
                tel.inc(f"engine.{name}", delta)
        misses = (after["tasks"] - before.get("tasks", 0)) - (
            after["cache_hits"] - before.get("cache_hits", 0)
        )
        if self.cache is not None and misses > 0:
            tel.inc("engine.cache_misses", misses)

    # ------------------------------------------------------------------
    # Resume manifest

    @property
    def manifest_path(self) -> Path:
        return self.cache_root / RESUME_MANIFEST_NAME

    def write_resume_manifest(self, tasks, keys, signal_number=None) -> Optional[dict]:
        """Record which keys of an interrupted batch are already cached."""
        if self.cache is None:
            return None
        unique_keys = list(dict.fromkeys(keys))
        by_key = {key: task for task, key in zip(tasks, keys)}
        done = [k for k in unique_keys if self.cache.path(k).exists()]
        outstanding = [k for k in unique_keys if not self.cache.path(k).exists()]
        manifest = {
            "version": 1,
            "signal": signal_number,
            "batch": self._batch,
            "total": len(unique_keys),
            "completed": len(done),
            "outstanding": [
                {
                    "key": k,
                    "app": by_key[k].app,
                    "backend": by_key[k].backend,
                    "seed": by_key[k].seed,
                }
                for k in outstanding
            ],
        }
        blob = json.dumps(manifest, sort_keys=True, indent=2).encode("utf-8")
        try:
            self.cache_root.mkdir(parents=True, exist_ok=True)
            atomic_write_bytes(self.manifest_path, blob)
        except OSError:
            return None
        return manifest

    def read_resume_manifest(self) -> Optional[dict]:
        """The manifest left by an interrupted run, if any."""
        try:
            with open(self.manifest_path, encoding="utf-8") as handle:
                return json.load(handle)
        except (OSError, ValueError):
            return None

    def clear_resume_manifest(self) -> None:
        try:
            os.unlink(self.manifest_path)
        except OSError:
            pass

    # ------------------------------------------------------------------
    # Execution

    def _execute(self, tasks: List[SolveTask], keys: List[str], on_done) -> None:
        pooled = self.jobs > 1 and len(tasks) > 1
        if pooled:
            self.stats.parallel_batches += 1
        if pooled or self.retry.timeout is not None:
            self._execute_pool(tasks, keys, on_done)
        else:
            self._execute_inline(tasks, keys, on_done)

    def _execute_inline(self, tasks, keys, on_done) -> None:
        """Sequential path: retry/quarantine without a pool.

        Hangs are not preemptible here; set a timeout to force the pool
        path.
        """
        for slot, (task, key) in enumerate(zip(tasks, keys)):
            attempts = 0
            while True:
                self._check_interrupt()
                attempts += 1
                try:
                    outcome = self._call(task)
                except Exception as exc:  # noqa: BLE001 — retried/quarantined
                    error = f"{type(exc).__name__}: {exc}"
                    if attempts >= self.retry.max_attempts:
                        self._quarantine_task(
                            slot, task, key, attempts, "error", error, on_done
                        )
                        break
                    self.stats.retries += 1
                    self.journal.record(
                        "task_retry",
                        severity="warning",
                        batch=self._batch,
                        position=slot,
                        attempt=attempts,
                        task=task,
                        error=error,
                    )
                    time.sleep(self.retry.delay(attempts))
                else:
                    on_done(slot, outcome)
                    break

    def _execute_pool(self, tasks, keys, on_done) -> None:
        """Pool path: waves of parallel submission + isolation re-runs.

        Positions cycle between two queues.  ``queue`` holds tasks safe
        to co-schedule in a shared pool; a wave runs them and reports
        which came back (``requeue``) versus which need solo vetting
        (``suspects`` — in flight when the pool broke, or overdue).
        Suspects run one at a time in single-worker pools so a crash or
        hang convicts exactly one task.
        """
        attempts = [0] * len(tasks)
        queue = deque(range(len(tasks)))
        isolate: deque = deque()
        while queue or isolate:
            self._check_interrupt()
            if queue:
                requeue, suspects = self._run_wave(
                    list(queue), tasks, keys, on_done, attempts
                )
                queue = deque(requeue)
                isolate.extend(suspects)
            while isolate:
                self._check_interrupt()
                self._run_isolated(isolate.popleft(), tasks, keys, on_done, attempts)

    def _run_wave(self, positions, tasks, keys, on_done, attempts):
        """One shared-pool wave; returns ``(requeue, suspects)``."""
        workers = max(1, min(self.jobs, len(positions)))
        pool = ProcessPoolExecutor(max_workers=workers)
        futures = {pool.submit(self._call, tasks[p]): p for p in positions}
        waiting = set(futures)
        started: set = set()
        deadlines: Dict[int, float] = {}
        requeue: List[int] = []
        suspects: List[int] = []
        crashed: List[int] = []
        killed = False
        try:
            while waiting:
                if self._interrupt is not None:
                    self._kill_pool(pool, waiting)
                    killed = True
                    raise EngineInterrupted()
                done, waiting = wait(
                    waiting, timeout=self.retry.poll_interval, return_when=FIRST_COMPLETED
                )
                now = time.monotonic()
                for future in waiting:
                    p = futures[future]
                    if p not in started and future.running():
                        started.add(p)
                        if self.retry.timeout is not None:
                            deadlines[p] = now + self.retry.timeout
                broken = False
                for future in done:
                    p = futures[future]
                    started.add(p)
                    try:
                        outcome = future.result()
                    except BrokenProcessPool:
                        broken = True
                        crashed.append(p)
                    except Exception as exc:  # noqa: BLE001 — retried/quarantined
                        self._wave_failure(p, tasks, keys, attempts, exc, requeue, on_done)
                    else:
                        on_done(p, outcome)
                if broken:
                    # A worker died; every remaining future of this pool
                    # is doomed.  Whoever was observed running is a
                    # suspect; never-started tasks are requeued blame-free.
                    self.stats.pool_rebuilds += 1
                    victims = crashed + [futures[f] for f in waiting]
                    # Surviving workers may be mid-solve (or hung); the
                    # broken pool can never deliver their results, so
                    # kill them instead of joining them in shutdown.
                    self._kill_pool(pool, waiting)
                    killed = True
                    waiting = set()
                    guilty = [p for p in victims if p in started]
                    innocent = [p for p in victims if p not in started]
                    if not guilty:
                        # The crash fell between polls and nobody was
                        # caught running — vet everyone solo so a crash
                        # loop cannot cycle forever.
                        guilty, innocent = victims, []
                    suspects.extend(guilty)
                    requeue.extend(innocent)
                    self.journal.record(
                        "pool_rebuild",
                        severity="warning",
                        batch=self._batch,
                        suspects=len(guilty),
                        requeued=len(innocent),
                    )
                    break
                if deadlines and waiting:
                    overdue = [
                        futures[f] for f in waiting if deadlines.get(futures[f], now + 1) <= now
                    ]
                    if overdue:
                        # Kill the hung worker(s) — which takes the whole
                        # pool — and resubmit the unlucky bystanders.
                        self._kill_pool(pool, waiting)
                        killed = True
                        self.stats.pool_rebuilds += 1
                        overdue_set = set(overdue)
                        bystanders = [
                            futures[f] for f in waiting if futures[f] not in overdue_set
                        ]
                        waiting = set()
                        for p in overdue:
                            attempts[p] += 1
                            self.stats.timeouts += 1
                            error = f"no result within {self.retry.timeout:g}s"
                            self.journal.record(
                                "task_timeout",
                                severity="warning",
                                batch=self._batch,
                                position=p,
                                attempt=attempts[p],
                                task=tasks[p],
                                error=error,
                            )
                            if attempts[p] >= self.retry.max_attempts:
                                self._quarantine_task(
                                    p, tasks[p], keys[p], attempts[p], "timeout", error, on_done
                                )
                            else:
                                suspects.append(p)
                        requeue.extend(bystanders)
                        self.journal.record(
                            "pool_rebuild",
                            severity="warning",
                            batch=self._batch,
                            suspects=len(overdue),
                            requeued=len(bystanders),
                        )
                        break
        finally:
            if killed:
                pool.shutdown(wait=False, cancel_futures=True)
            else:
                pool.shutdown(wait=True, cancel_futures=True)
        return requeue, suspects

    def _wave_failure(self, p, tasks, keys, attempts, exc, requeue, on_done) -> None:
        """An ordinary exception inside a wave: retry or quarantine."""
        attempts[p] += 1
        error = f"{type(exc).__name__}: {exc}"
        if attempts[p] >= self.retry.max_attempts:
            self._quarantine_task(p, tasks[p], keys[p], attempts[p], "error", error, on_done)
            return
        self.stats.retries += 1
        self.journal.record(
            "task_retry",
            severity="warning",
            batch=self._batch,
            position=p,
            attempt=attempts[p],
            task=tasks[p],
            error=error,
        )
        time.sleep(self.retry.delay(attempts[p]))
        requeue.append(p)

    def _run_isolated(self, p, tasks, keys, on_done, attempts) -> None:
        """Vet one suspect in a private single-worker pool.

        A crash or hang here convicts exactly this task; success clears
        it and delivers its result normally.
        """
        task, key = tasks[p], keys[p]
        kind_by_reason = {
            "timeout": "task_timeout",
            "crash": "task_crash",
            "error": "task_error",
        }
        while True:
            self._check_interrupt()
            attempts[p] += 1
            pool = ProcessPoolExecutor(max_workers=1)
            future = pool.submit(self._call, task)
            reason = error = None
            try:
                outcome = future.result(timeout=self.retry.timeout)
            except FuturesTimeout:
                reason = "timeout"
                error = f"no result within {self.retry.timeout:g}s (isolated)"
                self.stats.timeouts += 1
                self._kill_pool(pool, (future,))
            except BrokenProcessPool:
                reason = "crash"
                error = "worker process died (isolated)"
                pool.shutdown(wait=False, cancel_futures=True)
            except Exception as exc:  # noqa: BLE001 — retried/quarantined
                reason = "error"
                error = f"{type(exc).__name__}: {exc}"
                pool.shutdown(wait=True)
            else:
                pool.shutdown(wait=True)
                on_done(p, outcome)
                return
            self.journal.record(
                kind_by_reason[reason],
                severity="warning",
                batch=self._batch,
                position=p,
                attempt=attempts[p],
                task=task,
                error=error,
            )
            if attempts[p] >= self.retry.max_attempts:
                self._quarantine_task(p, task, key, attempts[p], reason, error, on_done)
                return
            self.stats.retries += 1
            time.sleep(self.retry.delay(attempts[p]))

    def _quarantine_task(self, slot, task, key, attempts, reason, error, on_done) -> None:
        """Give up on a task: journal it and leave an explicit hole."""
        self.stats.quarantined += 1
        self.journal.record(
            "task_quarantined",
            severity="error",
            batch=self._batch,
            position=slot,
            attempt=attempts,
            task=task,
            reason=reason,
            error=error,
        )
        on_done(
            slot,
            TaskFailure(
                key=key,
                app=task.app,
                backend=task.backend,
                seed=task.seed,
                attempts=attempts,
                reason=reason,
                error=error,
            ),
        )

    @staticmethod
    def _kill_pool(pool: ProcessPoolExecutor, waiting=()) -> None:
        """Forcibly tear down a pool whose workers may be hung."""
        for future in waiting:
            future.cancel()
        processes = getattr(pool, "_processes", None) or {}
        for process in list(processes.values()):
            try:
                process.kill()
            except Exception:  # noqa: BLE001 — already-dead workers are fine
                pass
        pool.shutdown(wait=False, cancel_futures=True)

    # ------------------------------------------------------------------
    # Interrupt handling

    def _check_interrupt(self) -> None:
        if self._interrupt is not None:
            raise EngineInterrupted()

    @contextmanager
    def _trap_signals(self):
        """Trap SIGINT/SIGTERM for the duration of a batch.

        The handler only sets a flag; the execution loops notice it at
        the next safe point, so completed results are flushed and the
        resume manifest written before the interrupt propagates.  No-op
        off the main thread (signal handlers cannot be installed there).
        """
        self._interrupt = None
        installed = {}
        if threading.current_thread() is threading.main_thread():

            def handler(signum, frame):
                self._interrupt = signum

            for sig in (signal.SIGINT, signal.SIGTERM):
                try:
                    installed[sig] = signal.signal(sig, handler)
                except (ValueError, OSError):
                    pass
        try:
            yield
        finally:
            for sig, previous in installed.items():
                signal.signal(sig, previous)

    def _on_interrupt(self, tasks, keys) -> None:
        signum = self._interrupt
        manifest = self.write_resume_manifest(tasks, keys, signal_number=signum)
        self.journal.record(
            "interrupted",
            severity="warning",
            batch=self._batch,
            signal=int(signum) if signum is not None else None,
            completed=manifest["completed"] if manifest else None,
            total=manifest["total"] if manifest else len(set(keys)),
        )
        self._interrupt = None


#: Ambient engine used by the experiment modules; sequential/cache-less
#: until the CLI (or a test) installs one via :func:`use_engine`.
_DEFAULT_ENGINE: Optional[ExperimentEngine] = None
_FALLBACK_ENGINE = ExperimentEngine(jobs=1, use_cache=False)


def get_engine() -> ExperimentEngine:
    """The ambient :class:`ExperimentEngine` experiments should use."""
    return _DEFAULT_ENGINE if _DEFAULT_ENGINE is not None else _FALLBACK_ENGINE


def set_default_engine(engine: Optional[ExperimentEngine]) -> Optional[ExperimentEngine]:
    """Install ``engine`` as the ambient engine; returns the previous one."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous


@contextmanager
def use_engine(engine: ExperimentEngine):
    """Scope ``engine`` as the ambient engine for a ``with`` block."""
    previous = set_default_engine(engine)
    try:
        yield engine
    finally:
        set_default_engine(previous)
