"""Parallel experiment execution engine with content-addressed caching.

Every quality experiment in the registry decomposes into independent
solves: one application solved at one design point with one seed on one
dataset.  :class:`SolveTask` captures such a unit as pure data (the
dataset is named by its loader arguments, never by a loaded object), so
a task can be

* **hashed** — the canonical JSON payload of a task is SHA-256'd into a
  cache key, giving a content-addressed on-disk result cache under
  ``.repro_cache/`` that makes re-runs and interrupted sweeps resume
  instantly;
* **shipped to a worker process** — tasks pickle cheaply, and a
  :class:`concurrent.futures.ProcessPoolExecutor` shard pool executes
  them with ``--jobs N`` parallelism.

Because each task seeds its own solver (``solve_*(..., seed=...)``
constructs a fresh ``np.random.default_rng``), results are byte-identical
whether tasks run sequentially, in parallel, or out of a warm cache —
the determinism regression in ``tests/test_experiments_engine.py``
asserts exactly that.

Experiments obtain the ambient engine through :func:`get_engine`; the
CLI installs one built from ``--jobs`` / ``--cache-dir`` / ``--no-cache``
via :func:`use_engine`.  The default engine is sequential and cache-less,
so library callers see the historical behaviour unless they opt in.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import tempfile
from concurrent.futures import ProcessPoolExecutor
from contextlib import contextmanager
from dataclasses import asdict, dataclass
from functools import lru_cache
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Tuple

from repro.apps.denoise import DenoiseParams, solve_denoise
from repro.apps.motion import MotionParams, solve_motion
from repro.apps.segmentation import SegmentationParams, solve_segmentation
from repro.apps.stereo import StereoParams, solve_stereo
from repro.core.params import RSUConfig
from repro.data.denoise_data import make_denoise_dataset
from repro.data.motion_data import load_flow
from repro.data.segmentation_data import make_segmentation_dataset
from repro.data.stereo_data import load_stereo
from repro.util.errors import ConfigError

#: Bump when solver semantics change in a way the task payload cannot
#: see; invalidates every previously cached result.
CACHE_FORMAT_VERSION = 1

#: Default on-disk cache location (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro_cache"

#: app name -> (solver, params class, dataset loader).  All four solvers
#: share the ``(dataset, backend, params, rsu_config=, seed=)`` contract.
APP_RUNNERS = {
    "stereo": (solve_stereo, StereoParams, load_stereo),
    "motion": (solve_motion, MotionParams, load_flow),
    "segmentation": (solve_segmentation, SegmentationParams, make_segmentation_dataset),
    "denoise": (solve_denoise, DenoiseParams, make_denoise_dataset),
}


@dataclass(frozen=True)
class SolveTask:
    """One independent (app, dataset, backend/config, params, seed) solve.

    ``dataset`` and ``params`` are stored as sorted ``(name, value)``
    tuples so the task is hashable and its payload canonical; use
    :func:`solve_task` to build one from plain dicts/dataclasses.
    """

    app: str
    dataset: Tuple[Tuple[str, object], ...]
    backend: str = "rsu"
    config: Optional[RSUConfig] = None
    params: Tuple[Tuple[str, object], ...] = ()
    seed: int = 3
    chains: int = 1

    def __post_init__(self):
        if self.app not in APP_RUNNERS:
            raise ConfigError(
                f"unknown app {self.app!r}; expected one of {tuple(APP_RUNNERS)}"
            )
        if self.backend == "rsu" and self.config is None:
            raise ConfigError("backend 'rsu' requires an explicit RSUConfig")
        if self.chains < 1:
            raise ConfigError(f"chains must be >= 1, got {self.chains}")

    def payload(self) -> dict:
        """Canonical JSON-serializable description (the cache-key input)."""
        payload = {
            "version": CACHE_FORMAT_VERSION,
            "app": self.app,
            "dataset": {k: _jsonable(v) for k, v in self.dataset},
            "backend": self.backend,
            "config": None if self.config is None else self.config.to_dict(),
            "params": {k: _jsonable(v) for k, v in self.params},
            "seed": self.seed,
        }
        if self.chains != 1:
            # Only multi-chain tasks carry the field, so every key minted
            # before ensembles existed stays valid (chains == 1 is the
            # historical semantics, bit for bit).
            payload["chains"] = self.chains
        return payload

    def key(self) -> str:
        """Content-addressed cache key: SHA-256 of the canonical payload."""
        blob = json.dumps(self.payload(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def _jsonable(value):
    if isinstance(value, tuple):
        return [_jsonable(v) for v in value]
    return value


def solve_task(
    app: str,
    dataset_kwargs: Dict[str, object],
    backend: str = "rsu",
    config: Optional[RSUConfig] = None,
    params: object = None,
    seed: int = 3,
    chains: int = 1,
) -> SolveTask:
    """Build a :class:`SolveTask` from loader kwargs and a params dataclass."""
    params_items: Tuple[Tuple[str, object], ...] = ()
    if params is not None:
        params_items = tuple(sorted(asdict(params).items()))
    return SolveTask(
        app=app,
        dataset=tuple(sorted(dataset_kwargs.items())),
        backend=backend,
        config=config,
        params=params_items,
        seed=seed,
        chains=chains,
    )


@lru_cache(maxsize=32)
def _load_dataset(app: str, dataset_items: Tuple[Tuple[str, object], ...]):
    """Load (and memoize per process) the dataset a task names.

    Memoization means a sweep over N design points loads its dataset
    once per (app, loader-arguments) — both in the sequential path and
    inside each pool worker — instead of once per design point.
    """
    loader = APP_RUNNERS[app][2]
    return loader(**dict(dataset_items))


def execute_task(task: SolveTask):
    """Run one task to completion; module-level so pool workers can pickle it."""
    solver, params_cls, _ = APP_RUNNERS[task.app]
    dataset = _load_dataset(task.app, task.dataset)
    params = params_cls(**dict(task.params)) if task.params else params_cls()
    return solver(
        dataset,
        task.backend,
        params,
        rsu_config=task.config,
        seed=task.seed,
        chains=task.chains,
    )


_MISS = object()


class ResultCache:
    """Content-addressed pickle store under ``root`` (two-level fan-out)."""

    def __init__(self, root: os.PathLike):
        self.root = Path(root)

    def path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def load(self, key: str):
        """The cached value, or the ``_MISS`` sentinel on any failure."""
        target = self.path(key)
        try:
            with open(target, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.PickleError, EOFError, AttributeError):
            return _MISS

    def store(self, key: str, value) -> None:
        """Atomically persist ``value`` (write-to-temp + rename)."""
        target = self.path(key)
        target.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(value, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp, target)
        except OSError:
            try:
                os.unlink(tmp)
            except OSError:
                pass


@dataclass
class EngineStats:
    """Counters for one engine's lifetime (inspected by tests and the CLI)."""

    tasks: int = 0
    cache_hits: int = 0
    deduplicated: int = 0
    executed: int = 0
    parallel_batches: int = 0

    def summary(self) -> str:
        return (
            f"{self.tasks} tasks: {self.executed} solved, "
            f"{self.cache_hits} cache hits, {self.deduplicated} deduplicated"
        )


class ExperimentEngine:
    """Dispatches :class:`SolveTask` batches over a shard pool + cache.

    Parameters
    ----------
    jobs:
        Worker processes.  ``1`` executes inline (no pool, no pickling).
    cache_dir:
        Root of the on-disk result cache.
    use_cache:
        Whether to consult/populate the cache.  Off by default for
        library callers; the CLI turns it on unless ``--no-cache``.
    """

    def __init__(
        self,
        jobs: int = 1,
        cache_dir: os.PathLike = DEFAULT_CACHE_DIR,
        use_cache: bool = False,
    ):
        if jobs < 1:
            raise ConfigError(f"jobs must be >= 1, got {jobs}")
        self.jobs = jobs
        self.cache: Optional[ResultCache] = ResultCache(cache_dir) if use_cache else None
        self.stats = EngineStats()

    def run_tasks(self, tasks: Sequence[SolveTask]) -> List:
        """Execute every task; results are returned in task order.

        Identical tasks (same content key) are solved once; cache hits
        skip execution entirely.  The per-task seeding discipline makes
        the output independent of ``jobs`` and of cache warmth.
        """
        tasks = list(tasks)
        self.stats.tasks += len(tasks)
        keys = [task.key() for task in tasks]
        results: List = [None] * len(tasks)
        pending: Dict[str, List[int]] = {}
        for index, key in enumerate(keys):
            if self.cache is not None:
                value = self.cache.load(key)
                if value is not _MISS:
                    results[index] = value
                    self.stats.cache_hits += 1
                    continue
            if key in pending:
                self.stats.deduplicated += 1
            pending.setdefault(key, []).append(index)

        unique = [(key, tasks[indices[0]]) for key, indices in pending.items()]
        if unique:
            outcomes = self._execute([task for _, task in unique])
            self.stats.executed += len(unique)
            for (key, _), outcome in zip(unique, outcomes):
                if self.cache is not None:
                    self.cache.store(key, outcome)
                for index in pending[key]:
                    results[index] = outcome
        return results

    def run_task(self, task: SolveTask):
        """Convenience wrapper for a single task."""
        return self.run_tasks([task])[0]

    def _execute(self, tasks: List[SolveTask]) -> List:
        if self.jobs > 1 and len(tasks) > 1:
            self.stats.parallel_batches += 1
            workers = min(self.jobs, len(tasks))
            with ProcessPoolExecutor(max_workers=workers) as pool:
                return list(pool.map(execute_task, tasks))
        return [execute_task(task) for task in tasks]


#: Ambient engine used by the experiment modules; sequential/cache-less
#: until the CLI (or a test) installs one via :func:`use_engine`.
_DEFAULT_ENGINE: Optional[ExperimentEngine] = None
_FALLBACK_ENGINE = ExperimentEngine(jobs=1, use_cache=False)


def get_engine() -> ExperimentEngine:
    """The ambient :class:`ExperimentEngine` experiments should use."""
    return _DEFAULT_ENGINE if _DEFAULT_ENGINE is not None else _FALLBACK_ENGINE


def set_default_engine(engine: Optional[ExperimentEngine]) -> Optional[ExperimentEngine]:
    """Install ``engine`` as the ambient engine; returns the previous one."""
    global _DEFAULT_ENGINE
    previous = _DEFAULT_ENGINE
    _DEFAULT_ENGINE = engine
    return previous


@contextmanager
def use_engine(engine: ExperimentEngine):
    """Scope ``engine`` as the ambient engine for a ``with`` block."""
    previous = set_default_engine(engine)
    try:
        yield engine
    finally:
        set_default_engine(previous)
