"""Table IV — area comparison with alternative RNG-based designs."""

from __future__ import annotations

from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult
from repro.hw.rng_alternatives import table4_areas

#: Paper's Table IV values (um^2).
PAPER_TABLE4 = {
    "RSUG_noshare": 2903.0,
    "RSUG_4share": 2303.0,
    "RSUG_optimistic": 1867.0,
    "Intel DRNG (part)": 3721.0,
    "19-bit LFSR": 2186.0,
    "mt19937_noshare": 19269.0,
    "mt19937_4share": 6507.0,
    "mt19937_208share": 2336.0,
}


def run(profile: Profile = FULL, seed: int = 0) -> ExperimentResult:
    """Run Table IV: modeled areas vs paper."""
    areas = table4_areas()
    rows = [[name, area, PAPER_TABLE4[name]] for name, area in areas.items()]
    return ExperimentResult(
        experiment_id="table4",
        title="Sampling-unit area vs alternative RNG designs (um^2)",
        columns=["design", "area", "paper area"],
        rows=rows,
        notes=[
            "True-RNG RSU-G matches the area class of the cheapest pseudo-RNG"
            " (19-bit LFSR) and beats mt19937 unless heavily shared.",
        ],
    )
