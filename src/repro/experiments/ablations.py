"""Ablation table: each new-design technique removed in isolation.

One artifact summarizing Sec. IV-A's qualitative trade-off discussion:
stereo quality (BP%) and the associated hardware quantities for the
full design and for each single-technique ablation — decay-rate
scaling, probability cut-off, 2^n approximation, unbiased ties — plus
the previous design as the baseline.
"""

from __future__ import annotations

from repro.core.params import RSUConfig, legacy_design_config, new_design_config
from repro.core.pipeline import ret_circuit_replicas, ret_network_replicas
from repro.experiments.common import stereo_params
from repro.experiments.engine import get_engine, solve_task
from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult

#: Ablation name -> design point.
def ablation_points() -> dict:
    """The design points of the ablation table."""
    new = new_design_config()
    return {
        "full new design": new,
        "no decay-rate scaling": new.with_(scaling=False),
        "no probability cut-off": new.with_(cutoff=False),
        "no 2^n approximation": new.with_(pow2_lambda=False),
        "deterministic ties": new.with_(tie_policy="first"),
        "previous design": legacy_design_config(),
    }


def hardware_columns(config: RSUConfig) -> tuple:
    """(unique rates, circuit replicas, network replicas) of a point."""
    return (
        config.unique_lambdas,
        ret_circuit_replicas(config),
        ret_network_replicas(config),
    )


def run(profile: Profile = FULL, seed: int = 3) -> ExperimentResult:
    """Run the ablation table on the poster dataset."""
    spec = {"name": "poster", "scale": profile.sweep_scale}
    params = stereo_params(profile, iterations=profile.sweep_iterations)
    points = ablation_points()
    tasks = [
        solve_task("stereo", spec, config=config, params=params, seed=seed)
        for config in points.values()
    ]
    outcomes = get_engine().run_tasks(tasks)
    rows = []
    for (name, config), result in zip(points.items(), outcomes):
        unique, circuits, networks = hardware_columns(config)
        rows.append([name, result.bad_pixel, unique, circuits, networks])
    return ExperimentResult(
        experiment_id="ablations",
        title="Single-technique ablations: stereo BP% and hardware cost",
        columns=[
            "design point",
            "BP%",
            "unique lambdas",
            "RET-circuit replicas",
            "RET-network replicas",
        ],
        rows=rows,
        notes=[
            "Removing scaling or cut-off (or using deterministic ties)"
            " degrades quality; removing 2^n costs quality nothing but"
            " doubles the unique decay rates the RET circuit must realize.",
        ],
    )
