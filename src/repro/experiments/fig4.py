"""Fig. 4 — disparity maps: ground truth, software, previous RSU-G.

Writes the teddy left image, ground-truth disparity, software disparity
and previous-RSU-G disparity as PGM images (the paper's gray-coded
maps) and reports the corresponding BP values.
"""

from __future__ import annotations

from pathlib import Path

from repro.apps.stereo import solve_stereo
from repro.data.io import write_pgm
from repro.data.stereo_data import load_stereo
from repro.experiments.common import DEFAULT_ARTIFACT_DIR, stereo_params
from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult


def run(
    profile: Profile = FULL, seed: int = 3, artifact_dir: str = None
) -> ExperimentResult:
    """Run Fig. 4: write teddy disparity maps and report BP."""
    out_dir = Path(artifact_dir) if artifact_dir else DEFAULT_ARTIFACT_DIR / "fig4"
    dataset = load_stereo("teddy", scale=profile.stereo_scale)
    params = stereo_params(profile)
    software = solve_stereo(dataset, "software", params, seed=seed)
    previous = solve_stereo(dataset, "prev_rsug", params, seed=seed)
    d_max = dataset.n_labels - 1
    artifacts = [
        str(write_pgm(out_dir / "teddy_left.pgm", dataset.left, v_max=1.0)),
        str(write_pgm(out_dir / "teddy_ground_truth.pgm", dataset.gt_disparity, v_max=d_max)),
        str(write_pgm(out_dir / "teddy_software.pgm", software.disparity, v_max=d_max)),
        str(write_pgm(out_dir / "teddy_prev_rsug.pgm", previous.disparity, v_max=d_max)),
    ]
    return ExperimentResult(
        experiment_id="fig4",
        title="Teddy disparity maps: software vs previous RSU-G",
        columns=["map", "BP%"],
        rows=[
            ["software", software.bad_pixel],
            ["prev_rsug", previous.bad_pixel],
        ],
        notes=["Light pixels = high disparity (near); compare the PGM artifacts."],
        artifacts=artifacts,
    )
