"""Table I — standard deviation of VoI across the 30-image suite.

The paper shows the VoI spread of software and new-RSU-G segmentations
is essentially identical at every segment count (2/4/6/8).
"""

from __future__ import annotations

import numpy as np

from repro.experiments.fig9 import SEGMENT_COUNTS, segmentation_voi_suite
from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult

#: Paper's Table I values for side-by-side reporting.
PAPER_TABLE1 = {
    "Software-only": {2: 0.63, 4: 0.71, 6: 0.71, 8: 0.79},
    "New-RSUG": {2: 0.63, 4: 0.69, 6: 0.68, 8: 0.76},
}


def run(profile: Profile = FULL, seed: int = 3) -> ExperimentResult:
    """Run Table I: std-dev of VoI per backend per segment count."""
    voi = segmentation_voi_suite(profile, seed=seed)
    rows = []
    for backend, label in (("software", "Software-only"), ("new_rsug", "New-RSUG")):
        row = [label]
        for n_labels in SEGMENT_COUNTS:
            row.append(float(np.std(voi[backend][n_labels])))
        rows.append(row)
    for label, values in PAPER_TABLE1.items():
        rows.append([f"paper {label}"] + [values[n] for n in SEGMENT_COUNTS])
    return ExperimentResult(
        experiment_id="table1",
        title="Std-dev of VoI across the segmentation image suite",
        columns=["backend"] + [f"{n}-label" for n in SEGMENT_COUNTS],
        rows=rows,
        notes=[
            "Expected shape: software and new RSU-G spreads match closely;"
            " absolute values differ (synthetic images are easier than BSD300).",
        ],
    )
