"""Execution profiles: quick (tests/benchmarks) vs full (paper-scale).

Every experiment accepts a :class:`Profile`.  ``full`` runs the
paper-scale synthetic datasets; ``quick`` shrinks images, label counts
and iteration budgets so the whole suite finishes in minutes while
keeping every code path identical.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.util.errors import ConfigError


@dataclass(frozen=True)
class Profile:
    """Workload sizes for experiment runs."""

    name: str
    stereo_scale: float
    stereo_iterations: int
    sweep_scale: float  # scale for many-configuration sweeps (fig5/fig8)
    sweep_iterations: int
    motion_scale: float
    motion_iterations: int
    seg_images: int
    seg_shape: tuple
    seg_iterations: int
    fig7_samples: int
    fig8_time_bits: tuple
    fig8_truncations: tuple
    seeds: int = 1

    def __post_init__(self):
        if not 0.05 < self.stereo_scale <= 1.0 or not 0.05 < self.sweep_scale <= 1.0:
            raise ConfigError("scales must be in (0.05, 1]")
        for field_name in (
            "stereo_iterations",
            "sweep_iterations",
            "motion_iterations",
            "seg_images",
            "seg_iterations",
            "fig7_samples",
            "seeds",
        ):
            if getattr(self, field_name) < 1:
                raise ConfigError(f"{field_name} must be >= 1")

    def with_(self, **changes) -> "Profile":
        """Copy with fields replaced."""
        return replace(self, **changes)


#: Paper-scale profile.  Iteration budgets are below the paper's
#: 500-1000 because the synthetic scenes converge faster; DESIGN.md
#: section 3 records the substitution.
FULL = Profile(
    name="full",
    stereo_scale=1.0,
    stereo_iterations=400,
    sweep_scale=0.6,
    sweep_iterations=250,
    motion_scale=1.0,
    motion_iterations=200,
    seg_images=30,
    seg_shape=(48, 64),
    seg_iterations=30,
    fig7_samples=1_000_000,
    fig8_time_bits=(3, 4, 5, 6, 7, 8),
    fig8_truncations=(0.01, 0.05, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8),
    seeds=1,
)

#: Minutes-scale profile used by the test and benchmark suites.
QUICK = Profile(
    name="quick",
    stereo_scale=0.35,
    stereo_iterations=80,
    sweep_scale=0.3,
    sweep_iterations=60,
    motion_scale=0.5,
    motion_iterations=60,
    seg_images=6,
    seg_shape=(32, 44),
    seg_iterations=12,
    fig7_samples=30_000,
    fig8_time_bits=(3, 5, 7),
    fig8_truncations=(0.01, 0.1, 0.5, 0.8),
    seeds=1,
)

PROFILES = {"full": FULL, "quick": QUICK}


def get_profile(name: str) -> Profile:
    """Look up a profile by name."""
    if name not in PROFILES:
        raise ConfigError(f"unknown profile {name!r}; expected one of {tuple(PROFILES)}")
    return PROFILES[name]
