"""Experiment harness regenerating every table and figure of the paper.

``rsu-experiments run all --profile quick`` regenerates the whole
evaluation in minutes; ``--profile full`` runs paper-scale workloads.
See DESIGN.md for the experiment index.
"""

from repro.experiments.engine import (
    ExperimentEngine,
    RetryPolicy,
    SolveTask,
    TaskFailure,
    get_engine,
    set_default_engine,
    solve_task,
    use_engine,
)
from repro.experiments.journal import RunJournal
from repro.experiments.profiles import FULL, PROFILES, QUICK, Profile, get_profile
from repro.experiments.registry import EXPERIMENTS, experiment_ids, run_experiment
from repro.experiments.result import ExperimentResult

__all__ = [
    "FULL",
    "PROFILES",
    "QUICK",
    "Profile",
    "get_profile",
    "EXPERIMENTS",
    "experiment_ids",
    "run_experiment",
    "ExperimentResult",
    "ExperimentEngine",
    "RetryPolicy",
    "RunJournal",
    "SolveTask",
    "TaskFailure",
    "get_engine",
    "set_default_engine",
    "solve_task",
    "use_engine",
]
