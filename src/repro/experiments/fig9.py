"""Fig. 9 — new RSU-G result quality across all three applications.

(a) stereo BP, software vs new RSU-G, three datasets;
(b) teddy disparity map under the new design (PGM artifact);
(c) motion-estimation end-point error, three datasets;
(d) image segmentation VoI at 2/4/6/8 labels over the image suite.
"""

from __future__ import annotations

from pathlib import Path
from typing import Dict, List

from repro.apps.motion import MotionParams
from repro.apps.segmentation import SegmentationParams, solve_segmentation
from repro.data.io import write_pgm
from repro.data.motion_data import FLOW_NAMES
from repro.data.segmentation_data import load_segmentation_suite
from repro.data.stereo_data import load_stereo
from repro.experiments.common import (
    DEFAULT_ARTIFACT_DIR,
    mean,
    run_stereo_backends,
    stereo_params,
    stereo_suite_specs,
)
from repro.experiments.engine import get_engine, solve_task
from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult

#: Segment counts of Fig. 9d / Table I.
SEGMENT_COUNTS = (2, 4, 6, 8)


def segmentation_voi_suite(
    profile: Profile, backends: tuple = ("software", "new_rsug"), seed: int = 3
) -> Dict[str, Dict[int, List[float]]]:
    """Per-backend, per-segment-count VoI across the image suite.

    Shared by Fig. 9d and Table I (which reports the std-dev of the
    same VoI population).
    """
    params = SegmentationParams(iterations=profile.seg_iterations)
    voi: Dict[str, Dict[int, List[float]]] = {b: {} for b in backends}
    for n_labels in SEGMENT_COUNTS:
        suite = load_segmentation_suite(
            count=profile.seg_images, n_labels=n_labels, shape=profile.seg_shape
        )
        for backend in backends:
            voi[backend][n_labels] = [
                solve_segmentation(ds, backend, params, seed=seed + i).voi
                for i, ds in enumerate(suite)
            ]
    return voi


def run(
    profile: Profile = FULL, seed: int = 3, artifact_dir: str = None
) -> ExperimentResult:
    """Run all four panels of Fig. 9."""
    out_dir = Path(artifact_dir) if artifact_dir else DEFAULT_ARTIFACT_DIR / "fig9"
    rows = []

    # (a) stereo
    specs = stereo_suite_specs(profile)
    sparams = stereo_params(profile)
    stereo = run_stereo_backends(
        specs, {"software": None, "new_rsug": None}, sparams, seed=seed
    )
    for spec in specs:
        sw = stereo["software"][spec["name"]]
        rsu = stereo["new_rsug"][spec["name"]]
        rows.append(["stereo BP%", spec["name"], sw.bad_pixel, rsu.bad_pixel])

    # (b) teddy disparity map under the new design
    teddy = load_stereo(**specs[0])
    artifacts = [
        str(
            write_pgm(
                out_dir / "teddy_new_rsug.pgm",
                stereo["new_rsug"][teddy.name].disparity,
                v_max=teddy.n_labels - 1,
            )
        )
    ]

    # (c) motion estimation
    mparams = MotionParams(iterations=profile.motion_iterations)
    motion_grid = [
        (name, backend) for name in FLOW_NAMES for backend in ("software", "new_rsug")
    ]
    motion_results = get_engine().run_tasks(
        [
            solve_task(
                "motion", {"name": name, "scale": profile.motion_scale},
                backend=backend, params=mparams, seed=seed,
            )
            for name, backend in motion_grid
        ]
    )
    motion = {key: result for key, result in zip(motion_grid, motion_results)}
    for name in FLOW_NAMES:
        sw = motion[(name, "software")]
        rsu = motion[(name, "new_rsug")]
        rows.append(["motion EPE", name, sw.epe, rsu.epe])

    # (d) segmentation VoI
    voi = segmentation_voi_suite(profile, seed=seed)
    for n_labels in SEGMENT_COUNTS:
        rows.append(
            [
                "segmentation VoI",
                f"{n_labels}-label",
                mean(voi["software"][n_labels]),
                mean(voi["new_rsug"][n_labels]),
            ]
        )

    return ExperimentResult(
        experiment_id="fig9",
        title="New RSU-G quality across applications (software vs new RSU-G)",
        columns=["panel", "dataset", "software", "new RSU-G"],
        rows=rows,
        notes=[
            "Paper: differences of ~3%/0.1%/0.5% BP on stereo; comparable EPE and VoI.",
        ],
        artifacts=artifacts,
        extra={"segmentation_voi": {b: {str(k): v for k, v in d.items()} for b, d in voi.items()}},
    )
