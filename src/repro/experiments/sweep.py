"""Custom design-point sweeps from the command line.

``rsu-experiments sweep --param time_bits --values 3,5,8 --app stereo``
solves one application at a series of design points differing in one
:class:`~repro.core.params.RSUConfig` field and reports quality per
point — the programmable version of the paper's Sec. III methodology.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.apps.denoise import DenoiseParams, solve_denoise
from repro.apps.motion import MotionParams, solve_motion
from repro.apps.segmentation import SegmentationParams, solve_segmentation
from repro.apps.stereo import StereoParams, solve_stereo
from repro.core.params import RSUConfig, new_design_config
from repro.data.denoise_data import make_denoise_dataset
from repro.data.motion_data import load_flow
from repro.data.segmentation_data import make_segmentation_dataset
from repro.data.stereo_data import load_stereo
from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult
from repro.util.errors import ConfigError

#: Sweepable RSUConfig fields and their value parser.
SWEEPABLE = {
    "energy_bits": int,
    "lambda_bits": int,
    "time_bits": int,
    "truncation": float,
    "scaling": lambda s: s in ("1", "true", "True"),
    "cutoff": lambda s: s in ("1", "true", "True"),
    "pow2_lambda": lambda s: s in ("1", "true", "True"),
    "tie_policy": str,
}

APPS = ("stereo", "motion", "segmentation", "denoise")


def parse_values(param: str, raw: str) -> List:
    """Parse a comma-separated value list for a sweepable parameter."""
    if param not in SWEEPABLE:
        raise ConfigError(f"parameter {param!r} is not sweepable; pick from {tuple(SWEEPABLE)}")
    parser = SWEEPABLE[param]
    values = [parser(token.strip()) for token in raw.split(",") if token.strip()]
    if not values:
        raise ConfigError("no sweep values given")
    return values


def _solve(app: str, config: RSUConfig, profile: Profile, seed: int) -> tuple:
    """(metric name, value) for one app at one design point."""
    if app == "stereo":
        dataset = load_stereo("poster", scale=profile.sweep_scale)
        result = solve_stereo(
            dataset, "rsu", StereoParams(iterations=profile.sweep_iterations),
            rsu_config=config, seed=seed,
        )
        return "BP%", result.bad_pixel
    if app == "motion":
        dataset = load_flow("venus", scale=profile.motion_scale)
        result = solve_motion(
            dataset, "rsu", MotionParams(iterations=profile.motion_iterations),
            rsu_config=config, seed=seed,
        )
        return "EPE", result.epe
    if app == "segmentation":
        dataset = make_segmentation_dataset(
            "sweep", profile.seg_shape, 4, seed=100
        )
        result = solve_segmentation(
            dataset, "rsu", SegmentationParams(iterations=profile.seg_iterations),
            rsu_config=config, seed=seed,
        )
        return "VoI", result.voi
    if app == "denoise":
        dataset = make_denoise_dataset("sweep", profile.seg_shape, 16, seed=100)
        result = solve_denoise(
            dataset, "rsu", DenoiseParams(iterations=profile.sweep_iterations),
            rsu_config=config, seed=seed,
        )
        return "PSNR (dB)", result.psnr_db
    raise ConfigError(f"unknown app {app!r}; pick from {APPS}")


def run_sweep(
    param: str,
    values: Sequence,
    app: str = "stereo",
    profile: Profile = FULL,
    seed: int = 3,
) -> ExperimentResult:
    """Solve ``app`` at each design point and tabulate quality."""
    if app not in APPS:
        raise ConfigError(f"unknown app {app!r}; pick from {APPS}")
    rows = []
    metric_name = None
    series = []
    for value in values:
        config = new_design_config(**{param: value})
        metric_name, metric = _solve(app, config, profile, seed)
        rows.append([value, metric])
        series.append(metric)
    return ExperimentResult(
        experiment_id=f"sweep:{param}:{app}",
        title=f"{app} quality vs {param} (new design, other fields default)",
        columns=[param, metric_name],
        rows=rows,
        extra={"series": {metric_name: series}},
    )
