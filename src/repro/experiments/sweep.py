"""Custom design-point sweeps from the command line.

``rsu-experiments sweep --param time_bits --values 3,5,8 --app stereo``
solves one application at a series of design points differing in one
:class:`~repro.core.params.RSUConfig` field and reports quality per
point — the programmable version of the paper's Sec. III methodology.

Sweeps run through the :mod:`repro.experiments.engine`: each value is
one independent :class:`~repro.experiments.engine.SolveTask`, so the
dataset is loaded once per (app, profile) — not once per value — and
``--jobs``/caching apply.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.apps.denoise import DenoiseParams
from repro.apps.motion import MotionParams
from repro.apps.segmentation import SegmentationParams
from repro.apps.stereo import StereoParams
from repro.core.params import new_design_config
from repro.experiments.engine import TaskFailure, get_engine, solve_task
from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult
from repro.util.errors import ConfigError

#: Sweepable RSUConfig fields and their value parser.
SWEEPABLE = {
    "energy_bits": int,
    "lambda_bits": int,
    "time_bits": int,
    "truncation": float,
    "scaling": lambda s: s in ("1", "true", "True"),
    "cutoff": lambda s: s in ("1", "true", "True"),
    "pow2_lambda": lambda s: s in ("1", "true", "True"),
    "tie_policy": str,
}

APPS = ("stereo", "motion", "segmentation", "denoise")


def parse_values(param: str, raw: str) -> List:
    """Parse a comma-separated value list for a sweepable parameter."""
    if param not in SWEEPABLE:
        raise ConfigError(f"parameter {param!r} is not sweepable; pick from {tuple(SWEEPABLE)}")
    parser = SWEEPABLE[param]
    values = [parser(token.strip()) for token in raw.split(",") if token.strip()]
    if not values:
        raise ConfigError("no sweep values given")
    return values


def app_sweep_spec(app: str, profile: Profile) -> Tuple[dict, object, str, object]:
    """(dataset kwargs, params, metric name, metric getter) for one app.

    The dataset kwargs are built once per (app, profile) and shared by
    every design point of the sweep; the engine's per-process dataset
    memoization turns that into a single load.
    """
    if app == "stereo":
        return (
            {"name": "poster", "scale": profile.sweep_scale},
            StereoParams(iterations=profile.sweep_iterations),
            "BP%",
            lambda r: r.bad_pixel,
        )
    if app == "motion":
        return (
            {"name": "venus", "scale": profile.motion_scale},
            MotionParams(iterations=profile.motion_iterations),
            "EPE",
            lambda r: r.epe,
        )
    if app == "segmentation":
        return (
            {"name": "sweep", "shape": profile.seg_shape, "n_labels": 4, "seed": 100},
            SegmentationParams(iterations=profile.seg_iterations),
            "VoI",
            lambda r: r.voi,
        )
    if app == "denoise":
        return (
            {"name": "sweep", "shape": profile.seg_shape, "n_levels": 16, "seed": 100},
            DenoiseParams(iterations=profile.sweep_iterations),
            "PSNR (dB)",
            lambda r: r.psnr_db,
        )
    raise ConfigError(f"unknown app {app!r}; pick from {APPS}")


def run_sweep(
    param: str,
    values: Sequence,
    app: str = "stereo",
    profile: Profile = FULL,
    seed: int = 3,
    chains: int = 1,
) -> ExperimentResult:
    """Solve ``app`` at each design point and tabulate quality.

    ``chains > 1`` solves every design point as a best-of-K multi-seed
    ensemble (batched across chains), reporting the winning chain.
    """
    if app not in APPS:
        raise ConfigError(f"unknown app {app!r}; pick from {APPS}")
    dataset_kwargs, params, metric_name, metric_of = app_sweep_spec(app, profile)
    tasks = [
        solve_task(
            app, dataset_kwargs,
            config=new_design_config(**{param: value}),
            params=params, seed=seed, chains=chains,
        )
        for value in values
    ]
    outcomes = get_engine().run_tasks(tasks)
    rows = []
    failed_points = []
    for value, result in zip(values, outcomes):
        if isinstance(result, TaskFailure):
            # A quarantined design point is an explicit hole, not an
            # abort: the sweep reports every healthy point.
            rows.append([value, float("nan")])
            failed_points.append(
                {"value": value, "reason": result.reason, "error": result.error}
            )
        else:
            rows.append([value, metric_of(result)])
    series = [row[1] for row in rows]
    extra = {"series": {metric_name: series}}
    if failed_points:
        extra["failed_points"] = failed_points
    return ExperimentResult(
        experiment_id=f"sweep:{param}:{app}",
        title=f"{app} quality vs {param} (new design, other fields default)",
        columns=[param, metric_name],
        rows=rows,
        extra=extra,
    )
