"""Fig. 6 — teddy disparity maps for scaled-only vs full techniques.

(a) decay-rate scaling only, ``Lambda_bits = 7`` (the best the paper's
"int lambda scaled" line achieves, still ~70% BP);
(b) ``Lambda_bits = 4`` with scaling, cut-off and 2^n truncation —
comparable to software quality.
"""

from __future__ import annotations

from pathlib import Path

from repro.apps.stereo import solve_stereo
from repro.data.io import write_pgm
from repro.data.stereo_data import load_stereo
from repro.experiments.common import DEFAULT_ARTIFACT_DIR, stereo_params
from repro.experiments.fig5 import variant_config
from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult


def run(
    profile: Profile = FULL, seed: int = 3, artifact_dir: str = None
) -> ExperimentResult:
    """Run Fig. 6: write the two teddy maps and report BP."""
    out_dir = Path(artifact_dir) if artifact_dir else DEFAULT_ARTIFACT_DIR / "fig6"
    dataset = load_stereo("teddy", scale=profile.sweep_scale)
    params = stereo_params(profile, iterations=profile.sweep_iterations)
    scaled_only = solve_stereo(
        dataset, "rsu", params, rsu_config=variant_config("int_lambda_scaled", 7), seed=seed
    )
    full_stack = solve_stereo(
        dataset, "rsu", params, rsu_config=variant_config("scaled_cutoff_pow2", 4), seed=seed
    )
    d_max = dataset.n_labels - 1
    artifacts = [
        str(write_pgm(out_dir / "teddy_scaled_only_7bit.pgm", scaled_only.disparity, v_max=d_max)),
        str(write_pgm(out_dir / "teddy_full_4bit.pgm", full_stack.disparity, v_max=d_max)),
        str(write_pgm(out_dir / "teddy_ground_truth.pgm", dataset.gt_disparity, v_max=d_max)),
    ]
    return ExperimentResult(
        experiment_id="fig6",
        title="Teddy: scaled decay rates (7b) vs scaling+cutoff+2^n (4b)",
        columns=["configuration", "BP%"],
        rows=[
            ["scaled_only_lambda7", scaled_only.bad_pixel],
            ["scaled_cutoff_pow2_lambda4", full_stack.bad_pixel],
        ],
        notes=["Paper: (a) remains noisy (~70% BP), (b) is near software quality."],
        artifacts=artifacts,
    )
