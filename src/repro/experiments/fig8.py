"""Fig. 8 — result quality across Time_bits x Truncation (poster).

A full end-to-end stereo solve of the poster dataset at every point of
the (``Time_bits``, ``Truncation``) grid, with the new design's
conversion stack.  The paper's heatmap shows quality improving with
more time bits and — at fixed time bits — with truncation up to a
point, with an equal-quality diagonal.

Mechanism note: the sweep uses the deterministic ``first`` tie policy
(a hardware comparator using strict less-than).  Timing precision and
truncation control how often binned TTFs tie, and a deterministic
comparator turns ties into a systematic label drift — that interaction
is what makes the design space visible.  With the unbiased ``random``
policy (our recommended design, DESIGN.md sec. 4) the RSU-G is robust
across this whole grid; that heatmap is included in ``extra`` for
comparison.
"""

from __future__ import annotations

from typing import Dict

from repro.core.params import new_design_config
from repro.experiments.common import stereo_params
from repro.experiments.engine import get_engine, solve_task
from repro.experiments.profiles import FULL, Profile
from repro.experiments.result import ExperimentResult

#: The paper's chosen design point (the red star in Fig. 8).
CHOSEN_POINT = {"time_bits": 5, "truncation": 0.5}


def _sweep(spec, params, profile, tie_policy, seed) -> Dict[int, Dict[float, float]]:
    """One engine batch over the (Time_bits, Truncation) grid."""
    grid = [
        (time_bits, truncation)
        for time_bits in profile.fig8_time_bits
        for truncation in profile.fig8_truncations
    ]
    tasks = [
        solve_task(
            "stereo", spec, params=params, seed=seed,
            config=new_design_config(
                time_bits=time_bits, truncation=truncation, tie_policy=tie_policy
            ),
        )
        for time_bits, truncation in grid
    ]
    outcomes = get_engine().run_tasks(tasks)
    heatmap: Dict[int, Dict[float, float]] = {}
    for (time_bits, truncation), outcome in zip(grid, outcomes):
        heatmap.setdefault(time_bits, {})[truncation] = outcome.bad_pixel
    return heatmap


def run(profile: Profile = FULL, seed: int = 3) -> ExperimentResult:
    """Run Fig. 8: BP heatmap over the timing design space."""
    spec = {"name": "poster", "scale": profile.sweep_scale}
    params = stereo_params(profile, iterations=profile.sweep_iterations)
    heatmap = _sweep(spec, params, profile, "first", seed)
    # Reduced robustness sweep with unbiased ties: corners + chosen point.
    robust_bits = (profile.fig8_time_bits[0], profile.fig8_time_bits[-1])
    robust_truncs = (profile.fig8_truncations[0], profile.fig8_truncations[-1])
    robust_profile = profile.with_(
        fig8_time_bits=robust_bits, fig8_truncations=robust_truncs
    )
    random_heatmap = _sweep(spec, params, robust_profile, "random", seed)
    rows = [
        [time_bits] + [heatmap[time_bits][t] for t in profile.fig8_truncations]
        for time_bits in profile.fig8_time_bits
    ]
    return ExperimentResult(
        experiment_id="fig8",
        title="Poster BP% over Time_bits x Truncation (deterministic ties)",
        columns=["Time_bits"] + [f"T={t}" for t in profile.fig8_truncations],
        rows=rows,
        notes=[
            f"Chosen point (paper's red star): Time_bits={CHOSEN_POINT['time_bits']},"
            f" Truncation={CHOSEN_POINT['truncation']}.",
            "Expected shape: quality improves with more time bits, and with more"
            " truncation up to a point at fixed time bits (equal-quality diagonal).",
            "With unbiased (random) tie-breaking the design is robust across the"
            " grid — see extra['random_tie_heatmap'].",
        ],
        extra={
            "heatmap": {str(k): v for k, v in heatmap.items()},
            "random_tie_heatmap": {str(k): v for k, v in random_heatmap.items()},
        },
    )
