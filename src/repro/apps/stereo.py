"""Stereo vision via MCMC MRF inference (paper Sec. III-A).

First-order MRF after Barnard: the unary term is the absolute
left/right matching cost, the doubleton is a truncated absolute
distance between disparity labels, and simulated annealing drives the
chain to a stable disparity map.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.common import run_chain_solver
from repro.core.distance import label_distance_matrix
from repro.core.params import RSUConfig
from repro.data.stereo_data import StereoDataset, stereo_cost_volume
from repro.metrics.stereo_metrics import bad_pixel_percentage, rms_error
from repro.mrf.annealing import geometric_for_span
from repro.mrf.model import GridMRF
from repro.mrf.solver import SolveResult
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class StereoParams:
    """Model and annealing parameters (the paper's "energy weights" etc.).

    Defaults are the best-effort tuning used across all experiments,
    mirroring the paper's single tuned parameter set per application.
    """

    weight: float = 0.08
    pairwise_truncate: float = 4.0
    iterations: int = 300
    t0: float = 0.35
    t_final: float = 0.012

    def __post_init__(self):
        if self.iterations < 2:
            raise ConfigError(f"iterations must be >= 2, got {self.iterations}")


@dataclass
class StereoResult:
    """Disparity map plus standard quality metrics."""

    dataset: str
    backend: str
    disparity: np.ndarray
    bad_pixel: float
    rms: float
    solve: SolveResult


def build_stereo_mrf(dataset: StereoDataset, params: StereoParams = StereoParams()) -> GridMRF:
    """Assemble the stereo MRF: absolute-distance doubleton (new RSU-G support)."""
    unary = stereo_cost_volume(dataset)
    pairwise = label_distance_matrix(
        dataset.n_labels, "absolute", truncate=params.pairwise_truncate
    )
    return GridMRF(unary=unary, pairwise=pairwise, weight=params.weight)


def solve_stereo(
    dataset: StereoDataset,
    backend: str = "software",
    params: StereoParams = StereoParams(),
    rsu_config: Optional[RSUConfig] = None,
    seed: int = 0,
    track_energy: bool = False,
    chains: int = 1,
    telemetry=None,
) -> StereoResult:
    """Run the full stereo pipeline with the named sampler backend.

    ``chains > 1`` runs a best-of-K multi-seed restart ensemble through
    the batched chain workspace and keeps the lowest-energy chain.
    ``telemetry`` (a :class:`repro.obs.Telemetry`) meters the solve.
    """
    model = build_stereo_mrf(dataset, params)
    schedule = geometric_for_span(params.t0, params.t_final, params.iterations)
    result = run_chain_solver(
        model, backend, schedule, params.iterations,
        seed=seed, track_energy=track_energy, chains=chains, config=rsu_config,
        telemetry=telemetry,
    )
    disparity = result.labels
    return StereoResult(
        dataset=dataset.name,
        backend=backend,
        disparity=disparity,
        bad_pixel=bad_pixel_percentage(disparity, dataset.gt_disparity),
        rms=rms_error(disparity, dataset.gt_disparity),
        solve=result,
    )
