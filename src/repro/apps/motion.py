"""Motion estimation (optical flow) via MCMC MRF inference.

Bayesian motion-vector estimation after Konrad & Dubois: squared
matching cost (the distance the previous RSU-G natively supports), 2-D
displacement labels inside a small search window, squared-distance
smoothness between neighbouring vectors, simulated annealing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.common import run_chain_solver
from repro.core.distance import vector_label_distance_matrix
from repro.core.params import RSUConfig
from repro.data.motion_data import FlowDataset, flow_cost_volume, flow_label_vectors
from repro.metrics.motion_metrics import endpoint_error, flow_from_labels
from repro.mrf.annealing import geometric_for_span
from repro.mrf.model import GridMRF
from repro.mrf.solver import SolveResult
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class MotionParams:
    """Model and annealing parameters for motion estimation."""

    weight: float = 0.02
    pairwise_truncate: float = 8.0
    iterations: int = 200
    t0: float = 0.25
    t_final: float = 0.01

    def __post_init__(self):
        if self.iterations < 2:
            raise ConfigError(f"iterations must be >= 2, got {self.iterations}")


@dataclass
class MotionResult:
    """Estimated flow field plus end-point error."""

    dataset: str
    backend: str
    flow: np.ndarray
    epe: float
    solve: SolveResult


def build_motion_mrf(dataset: FlowDataset, params: MotionParams = MotionParams()) -> GridMRF:
    """Assemble the motion MRF: squared-distance unary and doubleton."""
    unary = flow_cost_volume(dataset)
    vectors = flow_label_vectors(dataset.window_radius)
    pairwise = vector_label_distance_matrix(
        vectors, "squared", truncate=params.pairwise_truncate
    )
    return GridMRF(unary=unary, pairwise=pairwise, weight=params.weight)


def solve_motion(
    dataset: FlowDataset,
    backend: str = "software",
    params: MotionParams = MotionParams(),
    rsu_config: Optional[RSUConfig] = None,
    seed: int = 0,
    track_energy: bool = False,
    chains: int = 1,
    telemetry=None,
) -> MotionResult:
    """Run the full motion-estimation pipeline (``chains > 1``: best-of-K)."""
    model = build_motion_mrf(dataset, params)
    schedule = geometric_for_span(params.t0, params.t_final, params.iterations)
    result = run_chain_solver(
        model, backend, schedule, params.iterations,
        seed=seed, track_energy=track_energy, chains=chains, config=rsu_config,
        telemetry=telemetry,
    )
    vectors = flow_label_vectors(dataset.window_radius)
    flow = flow_from_labels(result.labels, vectors)
    return MotionResult(
        dataset=dataset.name,
        backend=backend,
        flow=flow,
        epe=endpoint_error(flow, dataset.gt_flow.astype(np.float64)),
        solve=result,
    )
