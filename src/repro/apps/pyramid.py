"""Coarse-to-fine (image pyramid) motion estimation.

The paper's motion application is limited to 64 labels (a 7x7 window);
larger motions "can be obtained using an image pyramid method"
(Sec. III-D2).  This module implements that extension: solve a small
search window at a coarse scale, upsample the flow, and refine the
residual at each finer level.  The effective search radius grows as
``radius * 2**(levels-1)`` while every per-level solve stays within the
RSU-G's label budget.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.apps.common import make_backend
from repro.apps.motion import MotionParams
from repro.core.distance import vector_label_distance_matrix
from repro.data.motion_data import FlowDataset, flow_label_vectors
from repro.metrics.motion_metrics import endpoint_error
from repro.mrf.annealing import geometric_for_span
from repro.mrf.model import GridMRF
from repro.mrf.solver import MCMCSolver
from repro.obs.telemetry import use_telemetry
from repro.util.errors import ConfigError


def downsample(image: np.ndarray) -> np.ndarray:
    """2x block-mean downsampling (odd trailing row/col dropped)."""
    h, w = image.shape
    if h < 2 or w < 2:
        raise ConfigError(f"image too small to downsample: {image.shape}")
    h2, w2 = h - h % 2, w - w % 2
    blocks = image[:h2, :w2].reshape(h2 // 2, 2, w2 // 2, 2)
    return blocks.mean(axis=(1, 3))


def upsample_flow(flow: np.ndarray, shape: tuple) -> np.ndarray:
    """Expand a coarse flow field to ``shape``, doubling the vectors."""
    doubled = np.repeat(np.repeat(flow * 2.0, 2, axis=0), 2, axis=1)
    h, w = shape
    out = np.zeros((h, w, 2), dtype=np.float64)
    ch, cw = min(h, doubled.shape[0]), min(w, doubled.shape[1])
    out[:ch, :cw] = doubled[:ch, :cw]
    if ch < h:
        out[ch:, :cw] = out[ch - 1 : ch, :cw]
    if cw < w:
        out[:, cw:] = out[:, cw - 1 : cw]
    return out


def offset_cost_volume(
    frame1: np.ndarray,
    frame2: np.ndarray,
    center: np.ndarray,
    radius: int,
    out_of_range_cost: float = 1.0,
) -> np.ndarray:
    """Squared matching cost around a per-pixel window centre.

    ``cost(y, x, v) = (I1(y, x) - I2(y + cy + vy, x + cx + vx))**2``
    with per-pixel integer centres ``(cy, cx)`` and window offsets
    ``v``; off-image targets get the maximum cost.
    """
    h, w = frame1.shape
    vectors = flow_label_vectors(radius)
    rows = np.arange(h)[:, None]
    cols = np.arange(w)[None, :]
    base_y = rows + center[..., 0]
    base_x = cols + center[..., 1]
    cost = np.full((h, w, len(vectors)), float(out_of_range_cost))
    for idx, (dy, dx) in enumerate(vectors):
        ty = base_y + dy
        tx = base_x + dx
        valid = (ty >= 0) & (ty < h) & (tx >= 0) & (tx < w)
        ty_safe = np.clip(ty, 0, h - 1).astype(np.int64)
        tx_safe = np.clip(tx, 0, w - 1).astype(np.int64)
        diff = frame1 - frame2[ty_safe, tx_safe]
        cost[..., idx] = np.where(valid, diff * diff, out_of_range_cost)
    return cost


@dataclass
class PyramidResult:
    """Flow estimate from a coarse-to-fine solve."""

    dataset: str
    backend: str
    flow: np.ndarray
    epe: float
    level_flows: List[np.ndarray]

    @property
    def levels(self) -> int:
        """Number of pyramid levels solved."""
        return len(self.level_flows)


def solve_motion_pyramid(
    dataset: FlowDataset,
    backend: str = "software",
    levels: int = 2,
    radius: int = 3,
    params: MotionParams = MotionParams(),
    rsu_config=None,
    seed: int = 0,
    telemetry=None,
) -> PyramidResult:
    """Coarse-to-fine motion estimation with a per-level MCMC solve.

    The effective search radius is ``radius * 2**(levels-1)``; the
    dataset's ground-truth flow may exceed the per-level window as long
    as it fits the effective one.  ``telemetry`` meters every level's
    solve into the given :class:`repro.obs.Telemetry`.
    """
    if levels < 1:
        raise ConfigError(f"levels must be >= 1, got {levels}")
    if telemetry is not None:
        with use_telemetry(telemetry):
            return solve_motion_pyramid(
                dataset,
                backend,
                levels=levels,
                radius=radius,
                params=params,
                rsu_config=rsu_config,
                seed=seed,
            )
    effective = radius * (1 << (levels - 1))
    if np.abs(dataset.gt_flow).max() > effective:
        raise ConfigError(
            f"ground-truth flow exceeds the effective radius {effective};"
            " increase levels or radius"
        )
    # Build the image pyramid, coarsest last.
    frames1 = [dataset.frame1]
    frames2 = [dataset.frame2]
    for _ in range(levels - 1):
        frames1.append(downsample(frames1[-1]))
        frames2.append(downsample(frames2[-1]))

    vectors = flow_label_vectors(radius)
    pairwise = vector_label_distance_matrix(
        vectors, "squared", truncate=params.pairwise_truncate
    )
    flow = np.zeros(frames1[-1].shape + (2,), dtype=np.float64)
    level_flows: List[np.ndarray] = []
    for level in range(levels - 1, -1, -1):
        frame1, frame2 = frames1[level], frames2[level]
        if flow.shape[:2] != frame1.shape:
            flow = upsample_flow(flow, frame1.shape)
        center = np.rint(flow).astype(np.int64)
        unary = offset_cost_volume(frame1, frame2, center, radius)
        model = GridMRF(unary=unary, pairwise=pairwise, weight=params.weight)
        sampler = make_backend(backend, model.max_energy(), seed=seed, config=rsu_config)
        schedule = geometric_for_span(params.t0, params.t_final, params.iterations)
        solver = MCMCSolver(model, sampler, schedule, seed=seed, track_energy=False)
        result = solver.run(params.iterations)
        flow = center.astype(np.float64) + vectors[result.labels]
        level_flows.append(flow.copy())

    return PyramidResult(
        dataset=dataset.name,
        backend=backend,
        flow=flow,
        epe=endpoint_error(flow, dataset.gt_flow.astype(np.float64)),
        level_flows=level_flows,
    )
