"""Image segmentation via MCMC MRF inference (Potts model).

Pixels are labeled with one of K segments; the unary term is the
squared deviation from the segment's mean intensity, the doubleton is
the binary (Potts) distance the new RSU-G adds support for.  As in the
paper, segmentation runs plain Gibbs at a fixed temperature for a small
number of iterations (30).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.common import run_chain_solver
from repro.core.distance import label_distance_matrix
from repro.core.params import RSUConfig
from repro.data.segmentation_data import SegmentationDataset, segmentation_cost_volume
from repro.metrics.segmentation_metrics import bisip_metrics
from repro.mrf.annealing import ConstantSchedule
from repro.mrf.model import GridMRF
from repro.mrf.solver import SolveResult
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class SegmentationParams:
    """Model parameters for Potts segmentation."""

    weight: float = 0.02
    iterations: int = 30
    temperature: float = 0.012

    def __post_init__(self):
        if self.iterations < 1:
            raise ConfigError(f"iterations must be >= 1, got {self.iterations}")
        if self.temperature <= 0:
            raise ConfigError(f"temperature must be > 0, got {self.temperature}")


@dataclass
class SegmentationResult:
    """Label map plus the four BISIP metrics."""

    dataset: str
    backend: str
    labels: np.ndarray
    metrics: dict
    solve: SolveResult

    @property
    def voi(self) -> float:
        """Variation of Information (the metric Fig. 9d reports)."""
        return self.metrics["voi"]


def build_segmentation_mrf(
    dataset: SegmentationDataset, params: SegmentationParams = SegmentationParams()
) -> GridMRF:
    """Assemble the Potts segmentation MRF."""
    unary = segmentation_cost_volume(dataset)
    pairwise = label_distance_matrix(dataset.n_labels, "binary")
    return GridMRF(unary=unary, pairwise=pairwise, weight=params.weight)


def solve_segmentation(
    dataset: SegmentationDataset,
    backend: str = "software",
    params: SegmentationParams = SegmentationParams(),
    rsu_config: Optional[RSUConfig] = None,
    seed: int = 0,
    track_energy: bool = False,
    chains: int = 1,
    telemetry=None,
) -> SegmentationResult:
    """Run the full segmentation pipeline (``chains > 1``: best-of-K)."""
    model = build_segmentation_mrf(dataset, params)
    schedule = ConstantSchedule(params.temperature)
    result = run_chain_solver(
        model, backend, schedule, params.iterations,
        seed=seed, track_energy=track_energy, chains=chains, config=rsu_config,
        telemetry=telemetry,
    )
    return SegmentationResult(
        dataset=dataset.name,
        backend=backend,
        labels=result.labels,
        metrics=bisip_metrics(result.labels, dataset.gt_labels),
        solve=result,
    )
