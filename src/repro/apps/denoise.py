"""Image denoising / restoration via MCMC MRF inference.

A fourth application beyond the paper's three (Sec. IV-D future work:
"support for a wider application domain"): pixels take gray-level
labels, the unary term is the absolute deviation from the noisy
observation (robust to salt-and-pepper outliers) and the doubleton is a
truncated absolute distance between neighbouring levels — both
distances the new RSU-G's energy stage supports natively.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from repro.apps.common import run_chain_solver
from repro.core.distance import label_distance_matrix
from repro.core.params import RSUConfig
from repro.data.denoise_data import DenoiseDataset, denoise_cost_volume, level_values
from repro.metrics.denoise_metrics import label_accuracy, psnr
from repro.mrf.annealing import geometric_for_span
from repro.mrf.model import GridMRF
from repro.mrf.solver import SolveResult
from repro.util.errors import ConfigError


@dataclass(frozen=True)
class DenoiseParams:
    """Model and annealing parameters for restoration."""

    weight: float = 0.03
    pairwise_truncate: float = 3.0
    iterations: int = 120
    t0: float = 0.2
    t_final: float = 0.006

    def __post_init__(self):
        if self.iterations < 2:
            raise ConfigError(f"iterations must be >= 2, got {self.iterations}")


@dataclass
class DenoiseResult:
    """Restored image plus quality metrics."""

    dataset: str
    backend: str
    labels: np.ndarray
    restored: np.ndarray
    psnr_db: float
    noisy_psnr_db: float
    accuracy: float
    solve: SolveResult


def build_denoise_mrf(
    dataset: DenoiseDataset, params: DenoiseParams = DenoiseParams()
) -> GridMRF:
    """Assemble the restoration MRF (absolute unary + truncated-absolute pair)."""
    unary = denoise_cost_volume(dataset)
    pairwise = label_distance_matrix(
        dataset.n_levels, "absolute", truncate=params.pairwise_truncate
    )
    return GridMRF(unary=unary, pairwise=pairwise, weight=params.weight)


def solve_denoise(
    dataset: DenoiseDataset,
    backend: str = "software",
    params: DenoiseParams = DenoiseParams(),
    rsu_config: Optional[RSUConfig] = None,
    seed: int = 0,
    track_energy: bool = False,
    chains: int = 1,
    telemetry=None,
) -> DenoiseResult:
    """Run the full restoration pipeline (``chains > 1``: best-of-K)."""
    model = build_denoise_mrf(dataset, params)
    schedule = geometric_for_span(params.t0, params.t_final, params.iterations)
    result = run_chain_solver(
        model, backend, schedule, params.iterations,
        seed=seed, track_energy=track_energy, chains=chains, config=rsu_config,
        telemetry=telemetry,
    )
    restored = level_values(dataset.n_levels)[result.labels]
    clean = dataset.clean_image
    return DenoiseResult(
        dataset=dataset.name,
        backend=backend,
        labels=result.labels,
        restored=restored,
        psnr_db=psnr(restored, clean),
        noisy_psnr_db=psnr(dataset.noisy, clean),
        accuracy=label_accuracy(result.labels, dataset.clean_labels),
        solve=result,
    )
