"""Shared helpers for the application drivers.

Provides a single backend factory so applications and experiments name
sampler backends the same way: ``software``, ``new_rsug``,
``prev_rsug``, ``rsu`` (custom design point), ``cdf_ideal``,
``cdf_lfsr``, ``cdf_mt19937``, ``greedy``.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import SamplerBackend
from repro.core.cdf_sampler import CDFSampler
from repro.core.params import RSUConfig
from repro.core.rsu import LegacyRSUG, NewRSUG, RSUGSampler
from repro.core.software import GreedySampler, SoftwareSampler
from repro.rng.lfsr import LFSR
from repro.rng.mt19937 import MT19937
from repro.rng.streams import LFSRBitSource, MTBitSource, NumpyBitSource
from repro.util.errors import ConfigError

BACKEND_KINDS = (
    "software",
    "new_rsug",
    "prev_rsug",
    "rsu",
    "cdf_ideal",
    "cdf_lfsr",
    "cdf_mt19937",
    "greedy",
)


def make_backend(
    kind: str,
    energy_full_scale: float,
    seed: int = 0,
    config: Optional[RSUConfig] = None,
) -> SamplerBackend:
    """Construct a sampler backend by name.

    ``kind == "rsu"`` requires an explicit :class:`RSUConfig`; the named
    design points ignore ``config``.
    """
    rng = np.random.default_rng(seed)
    if kind == "software":
        return SoftwareSampler(rng)
    if kind == "greedy":
        return GreedySampler()
    if kind == "new_rsug":
        return NewRSUG(energy_full_scale, rng)
    if kind == "prev_rsug":
        return LegacyRSUG(energy_full_scale, rng)
    if kind == "rsu":
        if config is None:
            raise ConfigError("backend kind 'rsu' requires an explicit RSUConfig")
        return RSUGSampler(config, energy_full_scale, rng)
    if kind == "cdf_ideal":
        return CDFSampler(NumpyBitSource(rng), energy_full_scale=energy_full_scale)
    if kind == "cdf_lfsr":
        source = LFSRBitSource(LFSR(width=19, seed=seed * 2 + 1))
        return CDFSampler(source, energy_full_scale=energy_full_scale)
    if kind == "cdf_mt19937":
        source = MTBitSource(MT19937(seed=(seed * 7919 + 1) & 0xFFFFFFFF))
        return CDFSampler(source, energy_full_scale=energy_full_scale)
    raise ConfigError(f"unknown backend kind {kind!r}; expected one of {BACKEND_KINDS}")
