"""Shared helpers for the application drivers.

Provides a single backend factory so applications and experiments name
sampler backends the same way: ``software``, ``new_rsug``,
``prev_rsug``, ``rsu`` (custom design point), ``cdf_ideal``,
``cdf_lfsr``, ``cdf_mt19937``, ``greedy`` — plus the shared
single-chain/ensemble solver entry point every application driver runs
its MCMC loop through (:func:`run_chain_solver`).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import SamplerBackend
from repro.core.cdf_sampler import CDFSampler
from repro.core.params import RSUConfig
from repro.core.rsu import LegacyRSUG, NewRSUG, RSUGSampler
from repro.core.software import GreedySampler, SoftwareSampler
from repro.mrf.annealing import Schedule
from repro.mrf.batch import EnsembleSolver
from repro.mrf.model import GridMRF
from repro.mrf.solver import MCMCSolver, SolveResult
from repro.obs import telemetry as obs
from repro.rng.lfsr import LFSR
from repro.rng.mt19937 import MT19937
from repro.rng.streams import (
    BufferedBitSource,
    LFSRBitSource,
    MTBitSource,
    NumpyBitSource,
)
from repro.util.errors import ConfigError

BACKEND_KINDS = (
    "software",
    "new_rsug",
    "prev_rsug",
    "rsu",
    "cdf_ideal",
    "cdf_lfsr",
    "cdf_mt19937",
    "greedy",
)


def make_backend(
    kind: str,
    energy_full_scale: float,
    seed: int = 0,
    config: Optional[RSUConfig] = None,
    use_vectorized: bool = True,
) -> SamplerBackend:
    """Construct a sampler backend by name.

    ``kind == "rsu"`` requires an explicit :class:`RSUConfig`; the named
    design points ignore ``config``.  ``use_vectorized`` selects the
    pseudo-RNG execution engine for the ``cdf_lfsr``/``cdf_mt19937``
    backends: the default routes draws through the bit-sliced/block
    paths behind a :class:`BufferedBitSource` prefetcher, ``False``
    keeps the scalar oracles.  The float stream — and therefore every
    solve result — is byte-identical either way.
    """
    rng = np.random.default_rng(seed)
    if kind == "software":
        return SoftwareSampler(rng)
    if kind == "greedy":
        return GreedySampler()
    if kind == "new_rsug":
        return NewRSUG(energy_full_scale, rng)
    if kind == "prev_rsug":
        return LegacyRSUG(energy_full_scale, rng)
    if kind == "rsu":
        if config is None:
            raise ConfigError("backend kind 'rsu' requires an explicit RSUConfig")
        return RSUGSampler(config, energy_full_scale, rng)
    if kind == "cdf_ideal":
        return CDFSampler(NumpyBitSource(rng), energy_full_scale=energy_full_scale)
    if kind == "cdf_lfsr":
        source = LFSRBitSource(
            LFSR(width=19, seed=seed * 2 + 1, use_vectorized=use_vectorized)
        )
        if use_vectorized:
            source = BufferedBitSource(source)
        return CDFSampler(source, energy_full_scale=energy_full_scale)
    if kind == "cdf_mt19937":
        source = MTBitSource(
            MT19937(
                seed=(seed * 7919 + 1) & 0xFFFFFFFF, use_vectorized=use_vectorized
            )
        )
        if use_vectorized:
            source = BufferedBitSource(source)
        return CDFSampler(source, energy_full_scale=energy_full_scale)
    raise ConfigError(f"unknown backend kind {kind!r}; expected one of {BACKEND_KINDS}")


def run_chain_solver(
    model: GridMRF,
    backend: str,
    schedule: Schedule,
    iterations: int,
    seed: int = 0,
    track_energy: bool = False,
    chains: int = 1,
    config: Optional[RSUConfig] = None,
    telemetry: Optional["obs.Telemetry"] = None,
) -> SolveResult:
    """Run the MCMC loop for an application driver, optionally batched.

    ``chains == 1`` is the classic path: one :class:`MCMCSolver` with
    one ``make_backend(...)`` sampler — bit-for-bit the result every
    driver produced before ensembles existed.  ``chains > 1`` runs a
    best-of-K multi-seed restart ensemble through the batched ``(K, H,
    W)`` workspace (chain ``k`` seeds both its backend and its solver
    with ``seed + k``, so chain 0 reproduces the single-chain run
    exactly) and returns the lowest-energy chain's result.

    ``telemetry`` scopes the given :class:`~repro.obs.Telemetry` around
    the solve (via :func:`repro.obs.use_telemetry`), so solver, sampler,
    and entropy instruments record into it for exactly this run.
    Telemetry never touches an RNG stream: results are byte-identical
    with it on or off.
    """
    if chains < 1:
        raise ConfigError(f"chains must be >= 1, got {chains}")
    if telemetry is not None:
        with obs.use_telemetry(telemetry):
            return run_chain_solver(
                model,
                backend,
                schedule,
                iterations,
                seed=seed,
                track_energy=track_energy,
                chains=chains,
                config=config,
            )
    full_scale = model.max_energy()
    if chains == 1:
        sampler = make_backend(backend, full_scale, seed=seed, config=config)
        solver = MCMCSolver(
            model, sampler, schedule, seed=seed, track_energy=track_energy
        )
        return solver.run(iterations)
    ensemble = EnsembleSolver(
        model,
        lambda index: make_backend(
            backend, full_scale, seed=seed + index, config=config
        ),
        schedule,
        chains=chains,
        seed=seed,
        track_energy=track_energy,
    )
    return ensemble.run(iterations).best_result()
