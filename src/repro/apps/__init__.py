"""The paper's three evaluation applications (Sec. III-A)."""

from repro.apps.common import BACKEND_KINDS, make_backend
from repro.apps.denoise import (
    DenoiseParams,
    DenoiseResult,
    build_denoise_mrf,
    solve_denoise,
)
from repro.apps.motion import MotionParams, MotionResult, build_motion_mrf, solve_motion
from repro.apps.pyramid import PyramidResult, solve_motion_pyramid
from repro.apps.segmentation import (
    SegmentationParams,
    SegmentationResult,
    build_segmentation_mrf,
    solve_segmentation,
)
from repro.apps.stereo import StereoParams, StereoResult, build_stereo_mrf, solve_stereo

__all__ = [
    "DenoiseParams",
    "DenoiseResult",
    "build_denoise_mrf",
    "solve_denoise",
    "PyramidResult",
    "solve_motion_pyramid",
    "BACKEND_KINDS",
    "make_backend",
    "MotionParams",
    "MotionResult",
    "build_motion_mrf",
    "solve_motion",
    "SegmentationParams",
    "SegmentationResult",
    "build_segmentation_mrf",
    "solve_segmentation",
    "StereoParams",
    "StereoResult",
    "build_stereo_mrf",
    "solve_stereo",
]
