"""Motion-estimation quality metric: average end-point error.

EPE (Baker et al.) is the mean Euclidean distance between estimated and
ground-truth flow vectors.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import DataError


def endpoint_error(estimate: np.ndarray, ground_truth: np.ndarray) -> float:
    """Average end-point error between two (H, W, 2) flow fields."""
    est = np.asarray(estimate, dtype=np.float64)
    gt = np.asarray(ground_truth, dtype=np.float64)
    if est.shape != gt.shape or est.ndim != 3 or est.shape[-1] != 2:
        raise DataError(
            f"flow fields must be equal-shape (H, W, 2) arrays, got {est.shape} and {gt.shape}"
        )
    return float(np.sqrt(((est - gt) ** 2).sum(axis=-1)).mean())


def flow_from_labels(labels: np.ndarray, label_vectors: np.ndarray) -> np.ndarray:
    """Expand a label grid into an (H, W, 2) flow field."""
    labels = np.asarray(labels, dtype=np.int64)
    vectors = np.asarray(label_vectors, dtype=np.float64)
    if labels.min() < 0 or labels.max() >= len(vectors):
        raise DataError("labels out of range of the label-vector table")
    return vectors[labels]
