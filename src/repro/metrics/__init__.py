"""Application quality metrics (paper Sec. III-A and III-D)."""

from repro.metrics.denoise_metrics import label_accuracy, psnr
from repro.metrics.motion_metrics import endpoint_error, flow_from_labels
from repro.metrics.segmentation_metrics import (
    bisip_metrics,
    boundary_displacement_error,
    boundary_map,
    global_consistency_error,
    probabilistic_rand_index,
    variation_of_information,
)
from repro.metrics.stereo_metrics import bad_pixel_percentage, rms_error

__all__ = [
    "label_accuracy",
    "psnr",
    "endpoint_error",
    "flow_from_labels",
    "bisip_metrics",
    "boundary_displacement_error",
    "boundary_map",
    "global_consistency_error",
    "probabilistic_rand_index",
    "variation_of_information",
    "bad_pixel_percentage",
    "rms_error",
]
