"""Restoration quality metrics: PSNR and label accuracy."""

from __future__ import annotations

import math

import numpy as np

from repro.util.errors import DataError


def psnr(estimate: np.ndarray, reference: np.ndarray, peak: float = 1.0) -> float:
    """Peak signal-to-noise ratio in dB (infinite for exact recovery)."""
    est = np.asarray(estimate, dtype=np.float64)
    ref = np.asarray(reference, dtype=np.float64)
    if est.shape != ref.shape or est.ndim != 2:
        raise DataError(
            f"estimate and reference must be equal-shape 2-D images, "
            f"got {est.shape} and {ref.shape}"
        )
    if peak <= 0:
        raise DataError(f"peak must be positive, got {peak}")
    mse = float(((est - ref) ** 2).mean())
    if mse == 0:
        return float("inf")
    return 10.0 * math.log10(peak * peak / mse)


def label_accuracy(estimate: np.ndarray, reference: np.ndarray) -> float:
    """Fraction of pixels whose label exactly matches the ground truth."""
    est = np.asarray(estimate)
    ref = np.asarray(reference)
    if est.shape != ref.shape:
        raise DataError(f"shape mismatch: {est.shape} vs {ref.shape}")
    return float((est == ref).mean())
