"""Stereo quality metrics: bad-pixel percentage and RMS error.

The paper uses the Middlebury conventions (Scharstein & Szeliski): a
pixel is bad if its disparity differs from ground truth by more than a
threshold (1 in the paper), and RMS is the root-mean-square disparity
error.  All pixels are scored, occlusions included, matching the
paper's conservative all-regions evaluation.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import DataError


def _check_pair(estimate: np.ndarray, ground_truth: np.ndarray) -> tuple:
    est = np.asarray(estimate, dtype=np.float64)
    gt = np.asarray(ground_truth, dtype=np.float64)
    if est.shape != gt.shape or est.ndim != 2:
        raise DataError(
            f"estimate and ground truth must be equal-shape 2-D maps, "
            f"got {est.shape} and {gt.shape}"
        )
    return est, gt


def bad_pixel_percentage(
    estimate: np.ndarray, ground_truth: np.ndarray, threshold: float = 1.0
) -> float:
    """Fraction (in percent) of pixels with |error| > threshold."""
    est, gt = _check_pair(estimate, ground_truth)
    if threshold < 0:
        raise DataError(f"threshold must be >= 0, got {threshold}")
    return float((np.abs(est - gt) > threshold).mean() * 100.0)


def rms_error(estimate: np.ndarray, ground_truth: np.ndarray) -> float:
    """Root-mean-square disparity error."""
    est, gt = _check_pair(estimate, ground_truth)
    return float(np.sqrt(((est - gt) ** 2).mean()))
