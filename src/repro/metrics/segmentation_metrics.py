"""Segmentation quality metrics: the four BISIP measures.

The paper evaluates segmentation with the BISIP package (Yang et al.),
which reports Variation of Information (VoI, lower better),
Probabilistic Rand Index (PRI, higher better), Global Consistency Error
(GCE, lower better) and Boundary Displacement Error (BDE, lower
better).  All four are implemented here from their definitions; all are
invariant to label permutation, so no label matching is needed.
"""

from __future__ import annotations

import numpy as np
from scipy import ndimage

from repro.util.errors import DataError


def _contingency(seg_a: np.ndarray, seg_b: np.ndarray) -> np.ndarray:
    """Contingency table n_ij between two label grids."""
    a = np.asarray(seg_a, dtype=np.int64)
    b = np.asarray(seg_b, dtype=np.int64)
    if a.shape != b.shape or a.ndim != 2:
        raise DataError(
            f"segmentations must be equal-shape 2-D label grids, got {a.shape} and {b.shape}"
        )
    if a.min() < 0 or b.min() < 0:
        raise DataError("labels must be non-negative")
    n_a = int(a.max()) + 1
    n_b = int(b.max()) + 1
    table = np.zeros((n_a, n_b), dtype=np.int64)
    np.add.at(table, (a.ravel(), b.ravel()), 1)
    return table


def variation_of_information(seg_a: np.ndarray, seg_b: np.ndarray) -> float:
    """VoI = H(A) + H(B) - 2 I(A; B), in bits.  Zero iff identical partitions."""
    table = _contingency(seg_a, seg_b).astype(np.float64)
    total = table.sum()
    joint = table / total
    pa = joint.sum(axis=1)
    pb = joint.sum(axis=0)
    nz = joint > 0
    h_joint = -(joint[nz] * np.log2(joint[nz])).sum()
    h_a = -(pa[pa > 0] * np.log2(pa[pa > 0])).sum()
    h_b = -(pb[pb > 0] * np.log2(pb[pb > 0])).sum()
    mutual = h_a + h_b - h_joint
    return float(h_a + h_b - 2.0 * mutual)


def probabilistic_rand_index(seg_a: np.ndarray, seg_b: np.ndarray) -> float:
    """Rand index between two partitions: pairwise agreement fraction in [0, 1]."""
    table = _contingency(seg_a, seg_b).astype(np.float64)
    total = table.sum()
    pairs_total = total * (total - 1) / 2.0
    if pairs_total == 0:
        raise DataError("need at least two pixels")
    sum_sq = (table**2).sum()
    sum_rows = (table.sum(axis=1) ** 2).sum()
    sum_cols = (table.sum(axis=0) ** 2).sum()
    disagreements = 0.5 * (sum_rows + sum_cols) - sum_sq
    return float(1.0 - disagreements / pairs_total)


def global_consistency_error(seg_a: np.ndarray, seg_b: np.ndarray) -> float:
    """GCE (Martin et al.): one-sided refinement error, min over directions."""
    table = _contingency(seg_a, seg_b).astype(np.float64)
    total = table.sum()
    rows = table.sum(axis=1, keepdims=True)
    cols = table.sum(axis=0, keepdims=True)
    with np.errstate(invalid="ignore", divide="ignore"):
        err_ab = np.where(rows > 0, table * (rows - table) / rows, 0.0).sum()
        err_ba = np.where(cols > 0, table * (cols - table) / cols, 0.0).sum()
    return float(min(err_ab, err_ba) / total)


def boundary_map(labels: np.ndarray) -> np.ndarray:
    """Boolean map of pixels adjacent to a different label (4-connected)."""
    arr = np.asarray(labels, dtype=np.int64)
    if arr.ndim != 2:
        raise DataError(f"labels must be 2-D, got shape {arr.shape}")
    boundary = np.zeros(arr.shape, dtype=bool)
    boundary[:, :-1] |= arr[:, :-1] != arr[:, 1:]
    boundary[:, 1:] |= arr[:, :-1] != arr[:, 1:]
    boundary[:-1, :] |= arr[:-1, :] != arr[1:, :]
    boundary[1:, :] |= arr[:-1, :] != arr[1:, :]
    return boundary


def boundary_displacement_error(seg_a: np.ndarray, seg_b: np.ndarray) -> float:
    """BDE: symmetric mean distance between the two boundary sets (pixels).

    If one segmentation has no boundary (single region), its pixels'
    distance to the other boundary is averaged over the whole grid; if
    both are boundary-free the error is zero.
    """
    a = np.asarray(seg_a, dtype=np.int64)
    b = np.asarray(seg_b, dtype=np.int64)
    if a.shape != b.shape or a.ndim != 2:
        raise DataError(
            f"segmentations must be equal-shape 2-D label grids, got {a.shape} and {b.shape}"
        )
    bound_a = boundary_map(a)
    bound_b = boundary_map(b)
    if not bound_a.any() and not bound_b.any():
        return 0.0
    diag = float(np.hypot(*a.shape))
    dist_to_b = (
        ndimage.distance_transform_edt(~bound_b) if bound_b.any() else np.full(a.shape, diag)
    )
    dist_to_a = (
        ndimage.distance_transform_edt(~bound_a) if bound_a.any() else np.full(a.shape, diag)
    )
    err_ab = dist_to_b[bound_a].mean() if bound_a.any() else dist_to_b.mean()
    err_ba = dist_to_a[bound_b].mean() if bound_b.any() else dist_to_a.mean()
    return float(0.5 * (err_ab + err_ba))


def bisip_metrics(seg: np.ndarray, ground_truth: np.ndarray) -> dict:
    """All four BISIP metrics as a dict keyed voi/pri/gce/bde."""
    return {
        "voi": variation_of_information(seg, ground_truth),
        "pri": probabilistic_rand_index(seg, ground_truth),
        "gce": global_consistency_error(seg, ground_truth),
        "bde": boundary_displacement_error(seg, ground_truth),
    }
