"""Synthetic multi-region images with ground-truth partitions.

Substitute for the 30 BSD300 images the paper segments: each image is a
set of organic regions (argmax of smooth random fields) with distinct
mean intensities plus sensor noise and a mild illumination gradient.
Ground truth is the exact generating partition, so the BISIP metrics
(VoI/PRI/GCE/BDE) are well defined without human annotations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.data.textures import add_noise, smooth_fields
from repro.util.errors import ConfigError, DataError


@dataclass(frozen=True)
class SegmentationDataset:
    """A grayscale image with its generating partition."""

    name: str
    image: np.ndarray
    gt_labels: np.ndarray
    n_labels: int

    def __post_init__(self):
        if self.image.shape != self.gt_labels.shape:
            raise DataError("image and gt_labels must share one shape")
        if self.gt_labels.max() >= self.n_labels:
            raise DataError("ground-truth labels exceed the label range")

    @property
    def shape(self) -> Tuple[int, int]:
        """Image shape (H, W)."""
        return self.image.shape


def class_means(n_labels: int) -> np.ndarray:
    """Evenly spaced per-class mean intensities in [0.12, 0.88].

    Shared by the generator and the segmentation MRF's singleton
    energy, modeling the domain expert's class model.
    """
    if n_labels < 2:
        raise ConfigError(f"n_labels must be >= 2, got {n_labels}")
    return np.linspace(0.12, 0.88, n_labels)


def make_segmentation_dataset(
    name: str,
    shape: Tuple[int, int],
    n_labels: int,
    noise_sigma: float = 0.06,
    illumination: float = 0.04,
    seed: int = 41,
) -> SegmentationDataset:
    """Generate one synthetic segmentation image.

    Parameters
    ----------
    n_labels:
        Number of segments (paper runs 2, 4, 6 and 8).
    noise_sigma:
        Gaussian sensor noise; large enough that per-pixel maximum
        likelihood is noisy and the MRF smoothing matters.
    illumination:
        Amplitude of a smooth multiplicative shading field.
    """
    rng = np.random.default_rng(seed)
    fields = smooth_fields(shape, n_labels, rng)
    gt = np.argmax(fields, axis=0).astype(np.int64)
    # Guarantee all classes appear: re-seed absent classes into blocks.
    present = np.unique(gt)
    if len(present) < n_labels:
        h, w = shape
        for missing in set(range(n_labels)) - set(present.tolist()):
            y0 = int(rng.integers(0, max(1, h - h // 6)))
            x0 = int(rng.integers(0, max(1, w - w // 6)))
            gt[y0 : y0 + max(2, h // 6), x0 : x0 + max(2, w // 6)] = missing
    means = class_means(n_labels)
    image = means[gt]
    shading = smooth_fields(shape, 1, rng)[0] - 0.5
    image = np.clip(image * (1.0 + illumination * shading * 2.0), 0.0, 1.0)
    image = add_noise(image, noise_sigma, rng)
    return SegmentationDataset(name=name, image=image, gt_labels=gt, n_labels=n_labels)


def segmentation_cost_volume(dataset: SegmentationDataset) -> np.ndarray:
    """Squared deviation from class means, shape (H, W, n_labels)."""
    means = class_means(dataset.n_labels)
    diff = dataset.image[..., None] - means[None, None, :]
    return diff * diff


def load_segmentation_suite(
    count: int = 30,
    n_labels: int = 4,
    shape: Tuple[int, int] = (48, 64),
    base_seed: int = 100,
) -> list:
    """The paper's 30-image suite at one segment count.

    Images differ only in seed; names are ``bsd_like_###``.
    """
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    return [
        make_segmentation_dataset(
            name=f"bsd_like_{idx:03d}",
            shape=shape,
            n_labels=n_labels,
            seed=base_seed + idx,
        )
        for idx in range(count)
    ]
