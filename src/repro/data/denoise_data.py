"""Synthetic noisy-image datasets for MRF denoising.

A fourth application exercising the RSU-G beyond the paper's three
(its future work calls for "support for a wider application domain"):
piecewise-smooth images quantized to a small gray-level label set,
corrupted with Gaussian and salt-and-pepper noise.  Ground truth is the
clean quantized image, so restoration quality (PSNR, label accuracy) is
exactly measurable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple

import numpy as np

from repro.data.textures import smooth_fields, value_noise
from repro.util.errors import ConfigError, DataError


@dataclass(frozen=True)
class DenoiseDataset:
    """A noisy image with its clean quantized ground truth.

    Attributes
    ----------
    noisy:
        Observed grayscale image in [0, 1].
    clean_labels:
        Ground-truth gray-level label per pixel (0..n_levels-1).
    n_levels:
        Number of gray levels (the label count; must fit the RSU's
        64-label budget).
    """

    name: str
    noisy: np.ndarray
    clean_labels: np.ndarray
    n_levels: int

    def __post_init__(self):
        if self.noisy.shape != self.clean_labels.shape:
            raise DataError("noisy and clean_labels must share one shape")
        if self.clean_labels.max() >= self.n_levels:
            raise DataError("clean labels exceed the level range")

    @property
    def shape(self) -> Tuple[int, int]:
        """Image shape (H, W)."""
        return self.noisy.shape

    @property
    def clean_image(self) -> np.ndarray:
        """Ground truth rendered back to intensities in [0, 1]."""
        return level_values(self.n_levels)[self.clean_labels]


def level_values(n_levels: int) -> np.ndarray:
    """Intensity of each gray-level label, evenly spaced in [0, 1]."""
    if n_levels < 2:
        raise ConfigError(f"n_levels must be >= 2, got {n_levels}")
    return np.linspace(0.0, 1.0, n_levels)


def make_denoise_dataset(
    name: str,
    shape: Tuple[int, int] = (48, 64),
    n_levels: int = 16,
    gaussian_sigma: float = 0.08,
    salt_pepper: float = 0.02,
    seed: int = 51,
) -> DenoiseDataset:
    """Generate a piecewise-smooth scene and corrupt it.

    The clean image blends smooth shading with flat regions (argmax of
    smooth fields), is quantized to ``n_levels`` labels, then corrupted
    with Gaussian noise and a fraction of salt-and-pepper outliers.
    """
    if n_levels > 64:
        raise ConfigError("n_levels must fit the RSU's 64-label budget")
    if not 0 <= salt_pepper < 1:
        raise ConfigError(f"salt_pepper must be in [0, 1), got {salt_pepper}")
    rng = np.random.default_rng(seed)
    shading = value_noise(shape, rng, octaves=2, base_cells=3)
    regions = np.argmax(smooth_fields(shape, 4, rng), axis=0)
    region_offsets = rng.random(4) * 0.5
    clean = np.clip(0.25 + 0.5 * shading + region_offsets[regions] - 0.25, 0.0, 1.0)
    clean_labels = np.rint(clean * (n_levels - 1)).astype(np.int64)
    values = level_values(n_levels)
    noisy = values[clean_labels] + rng.normal(0.0, gaussian_sigma, shape)
    outliers = rng.random(shape) < salt_pepper
    noisy[outliers] = rng.choice([0.0, 1.0], size=int(outliers.sum()))
    return DenoiseDataset(
        name=name,
        noisy=np.clip(noisy, 0.0, 1.0),
        clean_labels=clean_labels,
        n_levels=n_levels,
    )


def denoise_cost_volume(dataset: DenoiseDataset) -> np.ndarray:
    """Absolute deviation of each gray level from the observation.

    Absolute (not squared) data cost is robust to the salt-and-pepper
    outliers; it is one of the three distances the new RSU-G supports.
    """
    values = level_values(dataset.n_levels)
    return np.abs(dataset.noisy[..., None] - values[None, None, :])
