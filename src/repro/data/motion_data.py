"""Synthetic optical-flow pairs with dense ground-truth flow.

Substitute for the Middlebury flow sets (Venus / RubberWhale /
Dimetrodon): a textured frame with rigid shapes translating by integer
vectors inside the paper's small-motion search window (7x7 -> 49
labels), forward-warped with a z-buffer to form the second frame.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.data.textures import add_noise, value_noise
from repro.util.errors import ConfigError, DataError


@dataclass(frozen=True)
class FlowDataset:
    """A two-frame sequence with ground-truth flow.

    Attributes
    ----------
    frame1 / frame2:
        Grayscale frames in [0, 1], shape (H, W).
    gt_flow:
        Integer ground-truth flow per frame-1 pixel, shape (H, W, 2) as
        (dy, dx).
    window_radius:
        Search radius r; labels are the (2r+1)^2 displacement vectors.
    """

    name: str
    frame1: np.ndarray
    frame2: np.ndarray
    gt_flow: np.ndarray
    window_radius: int

    def __post_init__(self):
        if self.frame1.shape != self.frame2.shape:
            raise DataError("frames must share one shape")
        if self.gt_flow.shape != self.frame1.shape + (2,):
            raise DataError("gt_flow must have shape (H, W, 2)")
        if np.abs(self.gt_flow).max() > self.window_radius:
            raise DataError("ground-truth flow exceeds the search window")

    @property
    def shape(self) -> Tuple[int, int]:
        """Frame shape (H, W)."""
        return self.frame1.shape

    @property
    def n_labels(self) -> int:
        """Number of displacement labels (the (2r+1)^2 window)."""
        side = 2 * self.window_radius + 1
        return side * side


def flow_label_vectors(window_radius: int) -> np.ndarray:
    """Displacement vector of every label, shape (n_labels, 2) as (dy, dx).

    Labels enumerate the window in row-major order; the zero vector sits
    at the centre index.
    """
    if window_radius < 1:
        raise ConfigError(f"window_radius must be >= 1, got {window_radius}")
    offsets = np.arange(-window_radius, window_radius + 1)
    grid = np.stack(np.meshgrid(offsets, offsets, indexing="ij"), axis=-1)
    return grid.reshape(-1, 2)


def make_flow_dataset(
    name: str,
    shape: Tuple[int, int],
    window_radius: int,
    moving_shapes: List[tuple],
    background_flow: Tuple[int, int] = (0, 0),
    noise_sigma: float = 0.02,
    seed: int = 23,
) -> FlowDataset:
    """Generate one synthetic flow dataset.

    ``moving_shapes`` entries are ``(kind, cy, cx, ry, rx, dy, dx)``
    with fractional geometry as in the stereo generator and integer
    displacements within the window.
    """
    h, w = shape
    if max(abs(background_flow[0]), abs(background_flow[1])) > window_radius:
        raise ConfigError("background flow exceeds the search window")
    rng = np.random.default_rng(seed)
    flow = np.zeros((h, w, 2), dtype=np.int64)
    flow[..., 0] = background_flow[0]
    flow[..., 1] = background_flow[1]
    rows = np.arange(h)[:, None]
    cols = np.arange(w)[None, :]
    depth = np.zeros((h, w), dtype=np.int64)  # later shapes occlude earlier
    for order, (kind, cy, cx, ry, rx, dy, dx) in enumerate(moving_shapes, start=1):
        if max(abs(dy), abs(dx)) > window_radius:
            raise ConfigError(f"shape flow ({dy}, {dx}) exceeds window {window_radius}")
        center_y, center_x = cy * h, cx * w
        rad_y, rad_x = max(1.0, ry * h), max(1.0, rx * w)
        if kind == "ellipse":
            mask = ((rows - center_y) / rad_y) ** 2 + ((cols - center_x) / rad_x) ** 2 <= 1.0
        elif kind == "rect":
            mask = (np.abs(rows - center_y) <= rad_y) & (np.abs(cols - center_x) <= rad_x)
        else:
            raise ConfigError(f"unknown shape kind {kind!r}")
        flow[mask, 0] = dy
        flow[mask, 1] = dx
        depth[mask] = order
    frame1 = value_noise(shape, rng, octaves=5, base_cells=4)
    # Distinct albedo per moving object for debuggability.
    for order in range(1, len(moving_shapes) + 1):
        mask = depth == order
        frame1[mask] = 0.6 * frame1[mask] + 0.4 * ((order * 53) % 89) / 89.0
    frame2 = _forward_warp_flow(frame1, flow, depth, rng)
    frame1 = add_noise(frame1, noise_sigma, rng)
    frame2 = add_noise(frame2, noise_sigma, rng)
    return FlowDataset(
        name=name,
        frame1=frame1,
        frame2=frame2,
        gt_flow=flow,
        window_radius=window_radius,
    )


def _forward_warp_flow(
    frame1: np.ndarray, flow: np.ndarray, depth: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Forward-warp frame1 by the flow field with a z-buffer."""
    h, w = frame1.shape
    frame2 = np.full((h, w), np.nan)
    for level in np.sort(np.unique(depth)):
        ys, xs = np.nonzero(depth == level)
        ty = ys + flow[ys, xs, 0]
        tx = xs + flow[ys, xs, 1]
        valid = (ty >= 0) & (ty < h) & (tx >= 0) & (tx < w)
        frame2[ty[valid], tx[valid]] = frame1[ys[valid], xs[valid]]
    holes = np.isnan(frame2)
    if holes.any():
        filler = value_noise((h, w), rng, octaves=4, base_cells=6)
        frame2[holes] = filler[holes]
    return frame2


def flow_cost_volume(dataset: FlowDataset, out_of_range_cost: float = 1.0) -> np.ndarray:
    """Squared-difference matching cost, shape (H, W, n_labels).

    ``cost(y, x, v) = (I1(y, x) - I2(y + vy, x + vx))**2`` with
    off-image targets charged the maximum cost.  Squared distance is the
    energy the previous RSU-G natively supports (Konrad & Dubois).
    """
    h, w = dataset.shape
    vectors = flow_label_vectors(dataset.window_radius)
    cost = np.full((h, w, len(vectors)), float(out_of_range_cost))
    for idx, (dy, dx) in enumerate(vectors):
        src_y = slice(max(0, -dy), min(h, h - dy))
        src_x = slice(max(0, -dx), min(w, w - dx))
        dst_y = slice(max(0, dy), min(h, h + dy))
        dst_x = slice(max(0, dx), min(w, w + dx))
        diff = dataset.frame1[src_y, src_x] - dataset.frame2[dst_y, dst_x]
        cost[src_y, src_x, idx] = diff * diff
    return cost


_PRESETS = {
    "venus": dict(
        shape=(72, 96),
        window_radius=3,
        background_flow=(0, 1),
        shapes=[
            ("rect", 0.40, 0.35, 0.22, 0.18, -2, 2),
            ("ellipse", 0.65, 0.70, 0.16, 0.14, 2, -1),
        ],
        seed=29,
    ),
    "rubberwhale": dict(
        shape=(72, 96),
        window_radius=3,
        background_flow=(0, 0),
        shapes=[
            ("ellipse", 0.35, 0.30, 0.18, 0.14, 1, 2),
            ("rect", 0.60, 0.62, 0.14, 0.16, -1, -2),
            ("ellipse", 0.75, 0.25, 0.10, 0.10, 3, 0),
        ],
        seed=31,
    ),
    "dimetrodon": dict(
        shape=(72, 96),
        window_radius=3,
        background_flow=(1, 0),
        shapes=[
            ("ellipse", 0.50, 0.50, 0.24, 0.22, -2, -2),
            ("rect", 0.22, 0.75, 0.10, 0.12, 0, 3),
        ],
        seed=37,
    ),
}

FLOW_NAMES = tuple(_PRESETS)


def load_flow(name: str, scale: float = 1.0) -> FlowDataset:
    """Build a preset flow dataset, optionally spatially scaled down."""
    if name not in _PRESETS:
        raise ConfigError(f"unknown flow dataset {name!r}; expected one of {FLOW_NAMES}")
    if not 0.05 < scale <= 1.0:
        raise ConfigError(f"scale must be in (0.05, 1], got {scale}")
    preset = _PRESETS[name]
    h, w = preset["shape"]
    shape = (max(16, round(h * scale)), max(20, round(w * scale)))
    return make_flow_dataset(
        name=name,
        shape=shape,
        window_radius=preset["window_radius"],
        moving_shapes=preset["shapes"],
        background_flow=preset["background_flow"],
        seed=preset["seed"],
    )
