"""Image output helpers.

The paper shows disparity maps as gray-level images (Fig. 4, 6, 9b).
With no imaging libraries available offline, maps are written as plain
(ASCII) PGM files, viewable by any image tool.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.util.errors import DataError


def to_gray_levels(values: np.ndarray, v_max: float = None) -> np.ndarray:
    """Scale values into 0..255 gray levels (lighter = larger value)."""
    arr = np.asarray(values, dtype=np.float64)
    if arr.ndim != 2:
        raise DataError(f"expected a 2-D map, got shape {arr.shape}")
    top = float(arr.max()) if v_max is None else float(v_max)
    if top <= 0:
        return np.zeros(arr.shape, dtype=np.int64)
    return np.clip(np.rint(arr * (255.0 / top)), 0, 255).astype(np.int64)


def write_pgm(path, values: np.ndarray, v_max: float = None) -> Path:
    """Write a 2-D map as an ASCII PGM (P2) image; returns the path."""
    gray = to_gray_levels(values, v_max)
    h, w = gray.shape
    lines = [f"P2", f"{w} {h}", "255"]
    lines.extend(" ".join(str(v) for v in row) for row in gray)
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text("\n".join(lines) + "\n")
    return target


def read_pgm(path) -> np.ndarray:
    """Read back an ASCII PGM written by :func:`write_pgm`."""
    tokens = Path(path).read_text().split()
    if not tokens or tokens[0] != "P2":
        raise DataError(f"{path} is not an ASCII PGM file")
    w, h, _maxval = int(tokens[1]), int(tokens[2]), int(tokens[3])
    pixels = np.asarray(tokens[4 : 4 + w * h], dtype=np.int64)
    if pixels.size != w * h:
        raise DataError(f"{path} is truncated")
    return pixels.reshape(h, w)
