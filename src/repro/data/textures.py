"""Procedural texture synthesis for the synthetic datasets.

Value noise: random grids at several octaves, bilinearly upsampled and
summed.  Strong fine-scale texture is what makes stereo/flow matching
well-posed, mirroring the heavily textured Middlebury scenes.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigError


def _bilinear_upsample(grid: np.ndarray, shape: tuple) -> np.ndarray:
    """Bilinearly resample ``grid`` onto ``shape``."""
    h, w = shape
    gh, gw = grid.shape
    rows = np.linspace(0, gh - 1, h)
    cols = np.linspace(0, gw - 1, w)
    r0 = np.floor(rows).astype(np.int64).clip(max=gh - 2) if gh > 1 else np.zeros(h, np.int64)
    c0 = np.floor(cols).astype(np.int64).clip(max=gw - 2) if gw > 1 else np.zeros(w, np.int64)
    fr = (rows - r0)[:, None] if gh > 1 else np.zeros((h, 1))
    fc = (cols - c0)[None, :] if gw > 1 else np.zeros((1, w))
    r1 = np.minimum(r0 + 1, gh - 1)
    c1 = np.minimum(c0 + 1, gw - 1)
    top = grid[np.ix_(r0, c0)] * (1 - fc) + grid[np.ix_(r0, c1)] * fc
    bottom = grid[np.ix_(r1, c0)] * (1 - fc) + grid[np.ix_(r1, c1)] * fc
    return top * (1 - fr) + bottom * fr


def value_noise(
    shape: tuple,
    rng: np.random.Generator,
    octaves: int = 4,
    base_cells: int = 4,
    persistence: float = 0.55,
) -> np.ndarray:
    """Multi-octave value noise normalized to [0, 1].

    Parameters
    ----------
    shape:
        Output (H, W).
    octaves:
        Number of frequency octaves; each doubles the cell count.
    base_cells:
        Cells along the short edge at the coarsest octave.
    persistence:
        Amplitude falloff per octave (< 1 keeps coarse structure
        dominant; fine octaves add matchable detail).
    """
    h, w = shape
    if h < 2 or w < 2:
        raise ConfigError(f"shape must be at least 2x2, got {shape}")
    if octaves < 1:
        raise ConfigError(f"octaves must be >= 1, got {octaves}")
    out = np.zeros(shape, dtype=np.float64)
    amplitude = 1.0
    for octave in range(octaves):
        cells = base_cells * (1 << octave)
        gh = max(2, round(cells * h / min(h, w)))
        gw = max(2, round(cells * w / min(h, w)))
        grid = rng.random((gh, gw))
        out += amplitude * _bilinear_upsample(grid, shape)
        amplitude *= persistence
    out -= out.min()
    peak = out.max()
    if peak > 0:
        out /= peak
    return out


def smooth_fields(
    shape: tuple, count: int, rng: np.random.Generator, base_cells: int = 3
) -> np.ndarray:
    """Stack of ``count`` independent smooth random fields, shape (count, H, W).

    The segmentation generator takes the argmax over these to carve the
    grid into organic regions.
    """
    if count < 1:
        raise ConfigError(f"count must be >= 1, got {count}")
    return np.stack(
        [value_noise(shape, rng, octaves=2, base_cells=base_cells) for _ in range(count)]
    )


def add_noise(image: np.ndarray, sigma: float, rng: np.random.Generator) -> np.ndarray:
    """Add Gaussian sensor noise and clip back to [0, 1]."""
    if sigma < 0:
        raise ConfigError(f"sigma must be >= 0, got {sigma}")
    noisy = np.asarray(image, dtype=np.float64) + rng.normal(0.0, sigma, np.shape(image))
    return np.clip(noisy, 0.0, 1.0)


def stripe_texture(
    shape: tuple,
    rng: np.random.Generator,
    period: float = 9.0,
    angle: float = 0.3,
    contrast: float = 0.5,
) -> np.ndarray:
    """Sinusoidal stripes blended over value noise.

    Periodic structure creates the repetitive-texture matching
    ambiguity real stereo scenes exhibit (the "hard" presets use it).
    """
    if period <= 1:
        raise ConfigError(f"period must be > 1, got {period}")
    if not 0.0 <= contrast <= 1.0:
        raise ConfigError(f"contrast must be in [0, 1], got {contrast}")
    h, w = shape
    rows = np.arange(h)[:, None]
    cols = np.arange(w)[None, :]
    phase = 2.0 * np.pi * (cols * np.cos(angle) + rows * np.sin(angle)) / period
    stripes = 0.5 + 0.5 * np.sin(phase)
    base = value_noise(shape, rng, octaves=4, base_cells=4)
    return np.clip((1.0 - contrast) * base + contrast * stripes, 0.0, 1.0)


def checker_texture(
    shape: tuple, rng: np.random.Generator, cell: int = 6, jitter: float = 0.15
) -> np.ndarray:
    """Checkerboard blocks with per-cell brightness jitter."""
    if cell < 1:
        raise ConfigError(f"cell must be >= 1, got {cell}")
    h, w = shape
    rows = np.arange(h)[:, None] // cell
    cols = np.arange(w)[None, :] // cell
    parity = ((rows + cols) % 2).astype(np.float64)
    bright = rng.random(((h + cell - 1) // cell, (w + cell - 1) // cell))
    per_cell = bright[rows, cols]
    return np.clip(0.25 + 0.5 * parity + jitter * (per_cell - 0.5), 0.0, 1.0)


def salt_pepper(
    image: np.ndarray, fraction: float, rng: np.random.Generator
) -> np.ndarray:
    """Replace a fraction of pixels with 0 or 1 outliers."""
    if not 0.0 <= fraction < 1.0:
        raise ConfigError(f"fraction must be in [0, 1), got {fraction}")
    out = np.asarray(image, dtype=np.float64).copy()
    hits = rng.random(out.shape) < fraction
    out[hits] = rng.choice([0.0, 1.0], size=int(hits.sum()))
    return out
