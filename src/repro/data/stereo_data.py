"""Synthetic stereo pairs with dense ground-truth disparity.

Substitute for the Middlebury stereo sets (teddy / poster / art), which
cannot be downloaded in this offline environment.  Each scene is a
slanted textured background plus textured foreground shapes at larger
disparities; the right view is produced by forward-warping the left
view with a z-buffer, which creates genuine occlusions and
dis-occlusion holes exactly where a real stereo rig would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.data.textures import add_noise, checker_texture, stripe_texture, value_noise
from repro.util.errors import ConfigError, DataError


@dataclass(frozen=True)
class StereoDataset:
    """A rectified stereo pair with ground truth.

    Attributes
    ----------
    name:
        Dataset identifier (e.g. ``"teddy"``).
    left / right:
        Grayscale images in [0, 1], shape (H, W).
    gt_disparity:
        Integer ground-truth disparity of each left-image pixel.
    n_labels:
        Number of disparity labels the solver searches (0..n_labels-1).
    """

    name: str
    left: np.ndarray
    right: np.ndarray
    gt_disparity: np.ndarray
    n_labels: int

    def __post_init__(self):
        if self.left.shape != self.right.shape or self.left.shape != self.gt_disparity.shape:
            raise DataError("left, right and gt_disparity must share one shape")
        if self.gt_disparity.max() >= self.n_labels:
            raise DataError("ground-truth disparity exceeds the label range")

    @property
    def shape(self) -> Tuple[int, int]:
        """Image shape (H, W)."""
        return self.left.shape


def _shape_masks(
    shape: Tuple[int, int], specs: List[tuple]
) -> List[Tuple[np.ndarray, int]]:
    """Build (mask, disparity) pairs for foreground shapes.

    Each spec is ``(kind, cy, cx, ry, rx, disparity)`` with centre and
    radii expressed as fractions of the image size.
    """
    h, w = shape
    rows = np.arange(h)[:, None]
    cols = np.arange(w)[None, :]
    masks = []
    for kind, cy, cx, ry, rx, disparity in specs:
        center_y, center_x = cy * h, cx * w
        rad_y, rad_x = max(1.0, ry * h), max(1.0, rx * w)
        if kind == "ellipse":
            mask = ((rows - center_y) / rad_y) ** 2 + ((cols - center_x) / rad_x) ** 2 <= 1.0
        elif kind == "rect":
            mask = (np.abs(rows - center_y) <= rad_y) & (np.abs(cols - center_x) <= rad_x)
        else:
            raise ConfigError(f"unknown shape kind {kind!r}")
        masks.append((mask, disparity))
    return masks


def _forward_warp(
    left: np.ndarray, disparity: np.ndarray, rng: np.random.Generator
) -> np.ndarray:
    """Warp the left view into the right view with a z-buffer.

    A left pixel (y, x) with disparity d lands at right-image column
    x - d.  Writing in increasing-disparity order makes nearer surfaces
    (larger d) overwrite farther ones — correct occlusion.  Unpainted
    right pixels (dis-occlusions) are filled with fresh texture noise,
    modeling content visible only to the right camera.
    """
    h, w = left.shape
    right = np.full((h, w), np.nan)
    for d in np.sort(np.unique(disparity)):
        ys, xs = np.nonzero(disparity == d)
        target = xs - int(d)
        valid = target >= 0
        right[ys[valid], target[valid]] = left[ys[valid], xs[valid]]
    holes = np.isnan(right)
    if holes.any():
        filler = value_noise((h, w), rng, octaves=4, base_cells=6)
        right[holes] = filler[holes]
    return right


def make_stereo_dataset(
    name: str,
    shape: Tuple[int, int],
    n_labels: int,
    background_range: Tuple[int, int],
    shape_specs: List[tuple],
    noise_sigma: float = 0.02,
    seed: int = 7,
    texture: str = "noise",
) -> StereoDataset:
    """Generate one synthetic stereo dataset.

    Parameters
    ----------
    shape:
        Image shape (H, W).
    n_labels:
        Disparity search range; all scene disparities must fit in it.
    background_range:
        (near-row, far-row) disparities of the slanted background plane.
    shape_specs:
        Foreground shape tuples for :func:`_shape_masks`.
    texture:
        Scene texture: ``noise`` (default, rich value noise),
        ``stripes`` (periodic — harder matching, the "cones"-like
        preset), or ``checker``.
    """
    h, w = shape
    if n_labels < 2:
        raise ConfigError(f"n_labels must be >= 2, got {n_labels}")
    if max(background_range) >= n_labels:
        raise ConfigError("background disparities must fit within n_labels")
    rng = np.random.default_rng(seed)
    # Slanted background: disparity interpolates between the range ends
    # down the image (floor nearer the camera, like teddy).
    top_d, bottom_d = background_range
    ramp = np.linspace(top_d, bottom_d, h)[:, None]
    disparity = np.broadcast_to(np.rint(ramp), (h, w)).astype(np.int64).copy()
    for mask, d in _shape_masks(shape, shape_specs):
        if d >= n_labels:
            raise ConfigError(f"shape disparity {d} exceeds label range {n_labels}")
        disparity[mask] = d
    if texture == "noise":
        left = value_noise(shape, rng, octaves=5, base_cells=4)
    elif texture == "stripes":
        left = stripe_texture(shape, rng)
    elif texture == "checker":
        left = checker_texture(shape, rng)
    else:
        raise ConfigError(f"unknown texture {texture!r}")
    # Give each surface a distinct albedo offset so the images look like
    # objects, not pure noise (helps nothing numerically; aids debugging).
    for mask, d in _shape_masks(shape, shape_specs):
        left[mask] = 0.55 * left[mask] + 0.45 * ((d * 37) % 97) / 97.0
    right = _forward_warp(left, disparity, rng)
    left = add_noise(left, noise_sigma, rng)
    right = add_noise(right, noise_sigma, rng)
    return StereoDataset(
        name=name,
        left=left,
        right=right,
        gt_disparity=disparity,
        n_labels=n_labels,
    )


def stereo_cost_volume(dataset: StereoDataset, out_of_range_cost: float = 1.0) -> np.ndarray:
    """Absolute-difference matching cost, shape (H, W, n_labels).

    ``cost(y, x, d) = |L(y, x) - R(y, x - d)|`` with columns that fall
    off the image charged the maximum cost (no correspondence exists,
    as in the paper's occluded regions).
    """
    h, w = dataset.shape
    m = dataset.n_labels
    cost = np.full((h, w, m), float(out_of_range_cost))
    for d in range(m):
        if d >= w:
            break
        cost[:, d:, d] = np.abs(dataset.left[:, d:] - dataset.right[:, : w - d])
    return cost


# Preset scene definitions mirroring the paper's three Middlebury picks
# (label counts match: teddy 56, poster 30, art 28).  ``scale`` shrinks
# both the image and the disparity range for quick test/bench profiles.
_PRESETS = {
    "teddy": dict(
        shape=(90, 126),
        n_labels=56,
        background_range=(4, 18),
        shapes=[
            ("ellipse", 0.38, 0.30, 0.20, 0.16, 44),
            ("rect", 0.62, 0.68, 0.16, 0.14, 34),
            ("ellipse", 0.25, 0.72, 0.10, 0.12, 50),
            ("rect", 0.80, 0.30, 0.10, 0.16, 26),
        ],
        seed=11,
    ),
    "poster": dict(
        shape=(84, 112),
        n_labels=30,
        background_range=(2, 10),
        shapes=[
            ("rect", 0.40, 0.36, 0.22, 0.20, 22),
            ("ellipse", 0.68, 0.70, 0.14, 0.14, 16),
            ("rect", 0.22, 0.74, 0.10, 0.10, 27),
        ],
        seed=13,
    ),
    "art": dict(
        shape=(84, 112),
        n_labels=28,
        background_range=(2, 8),
        shapes=[
            ("ellipse", 0.35, 0.28, 0.18, 0.10, 24),
            ("rect", 0.60, 0.55, 0.24, 0.08, 18),
            ("ellipse", 0.30, 0.78, 0.12, 0.10, 26),
            ("rect", 0.78, 0.22, 0.08, 0.12, 13),
        ],
        seed=17,
    ),
}

_PRESETS["cones"] = dict(
    shape=(84, 112),
    n_labels=32,
    background_range=(2, 9),
    shapes=[
        ("ellipse", 0.40, 0.30, 0.20, 0.10, 26),
        ("ellipse", 0.45, 0.55, 0.18, 0.09, 21),
        ("ellipse", 0.50, 0.78, 0.16, 0.08, 16),
    ],
    seed=19,
    texture="stripes",
    noise_sigma=0.04,
)

#: The three datasets the paper evaluates (Sec. III-A).
PAPER_STEREO_NAMES = ("teddy", "poster", "art")
#: All available presets, including the harder extras.
STEREO_NAMES = tuple(_PRESETS)


def load_stereo(
    name: str, scale: float = 1.0, noise_sigma: float = 0.02
) -> StereoDataset:
    """Build a preset stereo dataset, optionally scaled down.

    ``scale < 1`` shrinks the image and the disparity range together so
    quick profiles stay geometrically consistent.  ``noise_sigma``
    controls the sensor noise; higher values make matching more
    ambiguous (used by the Fig. 8 timing-sensitivity sweep).
    """
    if name not in _PRESETS:
        raise ConfigError(f"unknown stereo dataset {name!r}; expected one of {STEREO_NAMES}")
    if not 0.05 < scale <= 1.0:
        raise ConfigError(f"scale must be in (0.05, 1], got {scale}")
    preset = _PRESETS[name]
    h, w = preset["shape"]
    shape = (max(16, round(h * scale)), max(20, round(w * scale)))
    n_labels = max(6, round(preset["n_labels"] * scale))
    bg = tuple(min(n_labels - 1, max(0, round(d * scale))) for d in preset["background_range"])
    shapes = [
        (kind, cy, cx, ry, rx, min(n_labels - 1, max(1, round(d * scale))))
        for kind, cy, cx, ry, rx, d in preset["shapes"]
    ]
    return make_stereo_dataset(
        name=name,
        shape=shape,
        n_labels=n_labels,
        background_range=bg,
        shape_specs=shapes,
        noise_sigma=preset.get("noise_sigma", noise_sigma),
        seed=preset["seed"],
        texture=preset.get("texture", "noise"),
    )
