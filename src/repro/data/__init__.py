"""Synthetic datasets standing in for Middlebury stereo/flow and BSD300.

See DESIGN.md section 3 for the substitution rationale.  All generators
are deterministic given their seed, so every experiment is exactly
reproducible.
"""

from repro.data.denoise_data import (
    DenoiseDataset,
    denoise_cost_volume,
    level_values,
    make_denoise_dataset,
)
from repro.data.io import read_pgm, to_gray_levels, write_pgm
from repro.data.motion_data import (
    FLOW_NAMES,
    FlowDataset,
    flow_cost_volume,
    flow_label_vectors,
    load_flow,
    make_flow_dataset,
)
from repro.data.segmentation_data import (
    SegmentationDataset,
    class_means,
    load_segmentation_suite,
    make_segmentation_dataset,
    segmentation_cost_volume,
)
from repro.data.stereo_data import (
    PAPER_STEREO_NAMES,
    STEREO_NAMES,
    StereoDataset,
    load_stereo,
    make_stereo_dataset,
    stereo_cost_volume,
)
from repro.data.textures import (
    add_noise,
    checker_texture,
    salt_pepper,
    smooth_fields,
    stripe_texture,
    value_noise,
)

__all__ = [
    "DenoiseDataset",
    "denoise_cost_volume",
    "level_values",
    "make_denoise_dataset",
    "read_pgm",
    "to_gray_levels",
    "write_pgm",
    "FLOW_NAMES",
    "FlowDataset",
    "flow_cost_volume",
    "flow_label_vectors",
    "load_flow",
    "make_flow_dataset",
    "SegmentationDataset",
    "class_means",
    "load_segmentation_suite",
    "make_segmentation_dataset",
    "segmentation_cost_volume",
    "PAPER_STEREO_NAMES",
    "STEREO_NAMES",
    "StereoDataset",
    "load_stereo",
    "make_stereo_dataset",
    "stereo_cost_volume",
    "add_noise",
    "checker_texture",
    "salt_pepper",
    "stripe_texture",
    "smooth_fields",
    "value_noise",
]
