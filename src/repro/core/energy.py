"""Energy-computation stage model (stage 2 of the RSU-G pipeline).

The stage sums the singleton energy with the neighbourhood doubleton
energies (Eq. 1) and emits an ``Energy_bits``-wide unsigned value.  The
functional simulator receives float energies from the MRF model and
quantizes them exactly as the fixed-point hardware would: scale so that
``full_scale`` maps to the top of the grid, round, clamp.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.util.errors import ConfigError
from repro.util.quantize import quantize_to_bits, unsigned_max


@dataclass(frozen=True)
class EnergyStage:
    """Quantizer mapping raw float energies to the integer energy grid.

    Parameters
    ----------
    energy_bits:
        Output width (paper: 8).
    full_scale:
        Raw energy value that maps to the grid maximum.  Applications
        derive it from their MRF model's maximum attainable energy so
        the whole dynamic range of the grid is used.
    """

    energy_bits: int
    full_scale: float

    def __post_init__(self):
        if self.full_scale <= 0:
            raise ConfigError(f"full_scale must be positive, got {self.full_scale}")

    @property
    def grid_max(self) -> int:
        """Largest representable quantized energy."""
        return unsigned_max(self.energy_bits)

    @property
    def lsb(self) -> float:
        """Raw-energy size of one quantization step."""
        return self.full_scale / self.grid_max

    def quantize(self, energies: np.ndarray) -> np.ndarray:
        """Quantize raw energies onto the unsigned grid (int64 output)."""
        return quantize_to_bits(np.asarray(energies, dtype=np.float64),
                                self.energy_bits, self.full_scale)

    def quantize_into(
        self, energies: np.ndarray, out: np.ndarray, work: np.ndarray
    ) -> np.ndarray:
        """Allocation-free :meth:`quantize` for the fused sweep kernel.

        ``work`` is a float64 buffer of the same shape as ``energies``
        (left holding the clipped grid values); ``out`` receives the
        int64 result.  Bit-identical to :meth:`quantize`: the same
        scale-round-clamp chain, run in place.
        """
        top = self.grid_max
        np.multiply(energies, top / self.full_scale, out=work)
        np.rint(work, out=work)
        np.clip(work, 0, top, out=work)
        np.copyto(out, work, casting="unsafe")
        return out

    def quantized_temperature(self, temperature: float) -> float:
        """Convert a raw-unit temperature to grid units.

        ``exp(-E_raw / T_raw) == exp(-E_grid / T_grid)`` requires the
        temperature to scale with the same factor as the energy.
        """
        if temperature <= 0:
            raise ConfigError(f"temperature must be positive, got {temperature}")
        return temperature * (self.grid_max / self.full_scale)
