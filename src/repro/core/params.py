"""RSU-G design-parameter configuration.

The paper identifies four design parameters that determine result
quality (Sec. III-C): energy precision (``Energy_bits``), decay-rate
precision (``Lambda_bits``), time-measurement precision (``Time_bits``)
and distribution ``Truncation``; plus three techniques introduced for
the new design: decay-rate scaling, probability cut-off, and 2^n lambda
approximation.  :class:`RSUConfig` captures all of them in one place.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import Optional

from repro.util.errors import ConfigError
from repro.util.validation import check_probability

#: Tie-break policies for the first-to-fire selection stage.
TIE_POLICIES = ("first", "last", "random")


@dataclass(frozen=True)
class RSUConfig:
    """Complete parameterization of one RSU-G design point.

    Attributes
    ----------
    energy_bits:
        Width of the energy-computation output (paper: 8).
    lambda_bits:
        Width of the decay-rate code.  With 2^n approximation this is
        also the number of unique nonzero decay rates (paper: 4).
    time_bits:
        Width of the time-to-fluorescence measurement; the detection
        window spans ``2**time_bits`` unit time bins (paper: 5).
    truncation:
        Probability that a sample drawn at the lowest nonzero decay
        rate exceeds the detection window, ``exp(-lambda0 * t_max)``
        (paper: 0.5 for the new design, 0.004 for the previous one).
    scaling:
        Apply decay-rate scaling: subtract the per-variable minimum
        energy before the energy-to-lambda conversion (Eq. 4).
    cutoff:
        Apply probability cut-off: integer lambda codes below one are
        set to zero instead of being rounded up to ``lambda0``.
    pow2_lambda:
        Apply 2^n lambda approximation: truncate codes to the nearest
        power of two so only ``lambda_bits`` unique rates are needed.
    tie_policy:
        How the selection stage resolves equal binned TTFs: ``first``
        keeps the earliest evaluated label (a hardware comparator using
        strict less-than), ``last`` the latest, ``random`` a uniform
        choice among the tied labels.  ``random`` is the default: with
        only ``2**time_bits`` bins ties are frequent, and a
        deterministic policy injects a systematic per-sweep drift that
        ruins result quality (see the tie-policy ablation benchmark).
        Hardware can realize it with one extra entropy bit per
        comparison.
    clamp_to_tmax:
        If True, samples beyond the detection window are recorded in
        the last bin; if False they are treated as "no sample"
        (infinity), the behaviour described in Sec. II-C.
    lambda_scale_exponent:
        Exponent ``n`` such that the conversion scale is ``2**n`` and
        the maximum decay-rate code is ``2**n`` times the lowest one.
        Defaults to ``lambda_bits - 1`` so that ``lambda_bits = 4``
        yields the paper's 1x/2x/4x/8x concentrations (lambda_max =
        8*lambda0, Fig. 7 and Fig. 11).
    float_time:
        Measure TTF in IEEE float with no truncation (the idealized
        time stage the paper's sequential methodology uses while
        exploring ``Energy_bits`` and ``Lambda_bits``, Sec. III-C).
        With continuous time, first-to-fire is an exact categorical
        draw over the decay-rate codes.
    """

    energy_bits: int = 8
    lambda_bits: int = 4
    time_bits: int = 5
    truncation: float = 0.5
    scaling: bool = True
    cutoff: bool = True
    pow2_lambda: bool = True
    tie_policy: str = "random"
    clamp_to_tmax: bool = False
    lambda_scale_exponent: Optional[int] = None
    float_time: bool = False

    def __post_init__(self):
        for name, value, low, high in (
            ("energy_bits", self.energy_bits, 1, 16),
            ("lambda_bits", self.lambda_bits, 1, 12),
            ("time_bits", self.time_bits, 1, 16),
        ):
            if not isinstance(value, int) or not low <= value <= high:
                raise ConfigError(f"{name} must be an int in [{low}, {high}], got {value!r}")
        check_probability("truncation", self.truncation)
        if self.tie_policy not in TIE_POLICIES:
            raise ConfigError(
                f"tie_policy must be one of {TIE_POLICIES}, got {self.tie_policy!r}"
            )
        if self.lambda_scale_exponent is not None and self.lambda_scale_exponent < 0:
            raise ConfigError("lambda_scale_exponent must be >= 0")

    @property
    def scale_exponent(self) -> int:
        """Effective conversion-scale exponent (see ``lambda_scale_exponent``)."""
        if self.lambda_scale_exponent is not None:
            return self.lambda_scale_exponent
        return self.lambda_bits - 1

    @property
    def lambda_max_code(self) -> int:
        """Largest decay-rate code (multiple of ``lambda0``)."""
        return 1 << self.scale_exponent

    @property
    def time_bins(self) -> int:
        """Number of unit time bins in the detection window."""
        return 1 << self.time_bits

    @property
    def lambda0_per_bin(self) -> float:
        """Per-bin decay rate of the lowest nonzero code.

        Defined by ``Truncation = exp(-lambda0 * t_max)`` (Sec. III-C3).
        """
        return -math.log(self.truncation) / self.time_bins

    @property
    def unique_lambdas(self) -> int:
        """Number of unique nonzero decay rates the RET circuit needs."""
        if self.pow2_lambda:
            return self.scale_exponent + 1
        return self.lambda_max_code

    def with_(self, **changes) -> "RSUConfig":
        """Return a copy with the given fields replaced."""
        return replace(self, **changes)

    def to_dict(self) -> dict:
        """Serializable representation (inverse of :meth:`from_dict`)."""
        return {
            "energy_bits": self.energy_bits,
            "lambda_bits": self.lambda_bits,
            "time_bits": self.time_bits,
            "truncation": self.truncation,
            "scaling": self.scaling,
            "cutoff": self.cutoff,
            "pow2_lambda": self.pow2_lambda,
            "tie_policy": self.tie_policy,
            "clamp_to_tmax": self.clamp_to_tmax,
            "lambda_scale_exponent": self.lambda_scale_exponent,
            "float_time": self.float_time,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "RSUConfig":
        """Rebuild a design point from :meth:`to_dict` output."""
        known = {
            "energy_bits", "lambda_bits", "time_bits", "truncation",
            "scaling", "cutoff", "pow2_lambda", "tie_policy",
            "clamp_to_tmax", "lambda_scale_exponent", "float_time",
        }
        unknown = set(payload) - known
        if unknown:
            raise ConfigError(f"unknown RSUConfig fields: {sorted(unknown)}")
        return cls(**payload)


def new_design_config(**overrides) -> RSUConfig:
    """The paper's chosen new-design point (Sec. III-D)."""
    base = RSUConfig(
        energy_bits=8,
        lambda_bits=4,
        time_bits=5,
        truncation=0.5,
        scaling=True,
        cutoff=True,
        pow2_lambda=True,
    )
    return base.with_(**overrides) if overrides else base


def legacy_design_config(**overrides) -> RSUConfig:
    """The previously proposed RSU-G design point (Wang et al., Sec. II-C).

    No decay-rate scaling, no cut-off (sub-``lambda0`` probabilities
    round up to ``lambda0``), no 2^n approximation, and a very low
    truncation (0.004 via four RET-circuit replicas).
    """
    base = RSUConfig(
        energy_bits=8,
        lambda_bits=4,
        time_bits=5,
        truncation=0.004,
        scaling=False,
        cutoff=False,
        pow2_lambda=False,
    )
    return base.with_(**overrides) if overrides else base
