"""Pure-CMOS sampling unit model: inverse-CDF lookup on a pseudo-RNG.

Table IV's alternative designs replace the RET sampling stage with a
random number generator (LFSR, mt19937, or a true RNG) plus a LUT that
stores the quantized cumulative distribution (the paper's example:
"store {1,3,6,7} for the discrete probability distribution {1,2,3,1}").
This module implements that unit so quality comparisons between the
RSU-G and the pseudo-RNG baselines can be run end to end.

Entropy is consumed through the :class:`~repro.rng.streams.BitSource`
protocol, one ``uniforms(count, out=)`` block per half-sweep.  The
default factory wiring (``repro.apps.common.make_backend``) hands this
sampler a :class:`~repro.rng.streams.BufferedBitSource` over the
vectorized LFSR/MT19937 block engines, so the per-half-sweep draws of a
few hundred variates are served from a prefetched slab instead of
paying the pseudo-RNG's per-call scalar loop — same float stream, same
labels, just faster.
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.base import SamplerBackend, SampleScratch, record_sampler_batch
from repro.core.energy import EnergyStage
from repro.rng.streams import BitSource
from repro.util.errors import ConfigError, DataError
from repro.util.validation import check_positive


class CDFSampler(SamplerBackend):
    """Inverse-CDF categorical sampler with quantized weights.

    Parameters
    ----------
    source:
        Uniform-variate source (ideal, LFSR, or MT19937 backed).
    energy_bits / energy_full_scale:
        Same energy front end as the RSU; the CDF LUT is built from the
        quantized energies so the comparison with the RSU isolates the
        sampling stage.
    weight_bits:
        Precision of the per-label weights stored in the CDF LUT;
        ``None`` keeps float weights (an idealized unit).
    """

    name = "cdf"

    def __init__(
        self,
        source: BitSource,
        energy_bits: int = 8,
        energy_full_scale: float = 255.0,
        weight_bits: Optional[int] = None,
    ):
        if weight_bits is not None and weight_bits < 1:
            raise ConfigError(f"weight_bits must be >= 1, got {weight_bits}")
        self._source = source
        self.energy_stage = EnergyStage(energy_bits, energy_full_scale)
        self.weight_bits = weight_bits

    def getstate(self) -> dict:
        return {"source": self._source.getstate()}

    def setstate(self, state: dict) -> None:
        self._source.setstate(state["source"])

    def weights_for(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        """Per-label weights after energy quantization (and weight quantization)."""
        quantized = self.energy_stage.quantize(energies).astype(np.float64)
        t_grid = self.energy_stage.quantized_temperature(temperature)
        scaled = quantized - quantized.min(axis=1, keepdims=True)
        weights = np.exp(-scaled / t_grid)
        if self.weight_bits is not None:
            # The minimum-energy label always rounds to the LUT maximum,
            # so every row keeps at least one selectable label.
            top = (1 << self.weight_bits) - 1
            weights = np.rint(weights * top)
        return weights

    def _sample_batch(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        weights = self.weights_for(energies, temperature)
        cdf = np.cumsum(weights, axis=1)
        totals = cdf[:, -1]
        draws = self._source.uniforms(energies.shape[0]) * totals
        # First index whose cumulative weight exceeds the draw.
        return (cdf <= draws[:, None]).sum(axis=1).clip(max=energies.shape[1] - 1)

    def sample_into(
        self,
        energies: np.ndarray,
        temperature: float,
        out: np.ndarray,
        scratch: SampleScratch,
    ) -> np.ndarray:
        """Fused inverse-CDF draw: same labels and variate stream, no allocs.

        Mirrors :meth:`_sample_batch` op for op through scratch buffers —
        quantize, scale, ``exp``, (optional) weight rounding, row
        ``cumsum``, then one buffered ``uniforms(count, out=)`` block
        from the bit source (the identical words, in the identical
        order, the allocating call would consume) and the comparison
        count.  Byte-identical to :meth:`sample` for every source —
        ideal, LFSR, or MT19937 backed.
        """
        if energies.ndim != 2 or energies.shape[1] < 1 or energies.shape[0] < 1:
            raise DataError(
                f"energies must be (n_sites, n_labels), got shape {energies.shape}"
            )
        check_positive("temperature", temperature)
        record_sampler_batch(energies.shape[0])
        shape = energies.shape
        work = scratch.buf("cdf_quantize_work", shape, np.float64)
        quantized = scratch.buf("cdf_quantized", shape, np.int64)
        self.energy_stage.quantize_into(energies, quantized, work)
        t_grid = self.energy_stage.quantized_temperature(float(temperature))
        weights = scratch.buf("cdf_weights", shape, np.float64)
        np.copyto(weights, quantized, casting="unsafe")  # exact int -> float
        row_min = scratch.buf("cdf_row_min", (shape[0], 1), np.float64)
        np.amin(weights, axis=1, keepdims=True, out=row_min)
        np.subtract(weights, row_min, out=weights)
        np.negative(weights, out=weights)
        np.divide(weights, t_grid, out=weights)
        np.exp(weights, out=weights)
        if self.weight_bits is not None:
            top = (1 << self.weight_bits) - 1
            np.multiply(weights, top, out=weights)
            np.rint(weights, out=weights)
        cdf = scratch.buf("cdf_cumsum", shape, np.float64)
        np.cumsum(weights, axis=1, out=cdf)
        draws = scratch.buf("cdf_draws", (shape[0],), np.float64)
        self._source.uniforms(shape[0], out=draws)
        np.multiply(draws, cdf[:, -1], out=draws)
        exceeded = scratch.buf("cdf_exceeded", shape, np.bool_)
        np.less_equal(cdf, draws[:, None], out=exceeded)
        np.sum(exceeded, axis=1, out=out)
        np.minimum(out, shape[1] - 1, out=out)
        return out
