"""Energy-to-lambda conversion stage (stage 3 of the RSU-G pipeline).

Implements Eq. 2 (``lambda = exp(-E / T)``) under the paper's integer
code space, with the three techniques the new design introduces:

* **decay-rate scaling** — subtract the per-variable minimum energy so
  the best label always receives the maximum code (Eq. 4);
* **probability cut-off** — codes that would fall below one are set to
  zero (label never fires) instead of rounding up to ``lambda0``;
* **2^n approximation** — codes are truncated to the nearest power of
  two so the RET circuit needs only ``Lambda_bits`` unique rates.

Two hardware realizations are modeled: the LUT indexed by energy (the
previous design) and the comparison-against-boundaries scheme of
Sec. IV-B.3.  Both must produce identical codes; tests assert this.

A third, software-side fast path mirrors the LUT observation: quantized
energies take at most ``2**Energy_bits`` distinct values, so the whole
per-(temperature, config) conversion collapses to one integer table
(:func:`conversion_lut`) built with a few hundred ``exp`` calls instead
of one per (site, label).  :func:`lambda_codes_lut` performs the gather;
it is bit-identical to :func:`lambda_codes` by construction (the table
entries are computed by the very same formula) and is the default hot
path of :meth:`repro.core.rsu.RSUGSampler.codes_for`.  Disable it
globally with :func:`set_lut_enabled` or lexically with :func:`use_lut`
(the perf benchmark does this to time both paths).
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from functools import lru_cache
from typing import List

import numpy as np

from repro.core.params import RSUConfig
from repro.obs import telemetry as obs
from repro.util.errors import ConfigError
from repro.util.quantize import nearest_pow2, unsigned_max


def lambda_codes(
    quantized_energy: np.ndarray, temperature: float, config: RSUConfig
) -> np.ndarray:
    """Convert quantized energies to integer decay-rate codes.

    Parameters
    ----------
    quantized_energy:
        Integer energies on the ``Energy_bits`` grid, shape
        ``(n_sites, n_labels)``.
    temperature:
        Annealing temperature in grid units (``T`` of Eq. 2).
    config:
        Design point; ``scaling``, ``cutoff`` and ``pow2_lambda`` select
        the conversion variant.

    Returns
    -------
    numpy.ndarray
        Codes in ``[0, config.lambda_max_code]``; a code of zero means
        the label is cut off and never fires.
    """
    energy = np.asarray(quantized_energy, dtype=np.float64)
    if energy.ndim != 2:
        raise ConfigError(f"quantized_energy must be 2-D, got shape {energy.shape}")
    if temperature <= 0:
        raise ConfigError(f"temperature must be positive, got {temperature}")
    scale = float(config.lambda_max_code)
    if config.scaling:
        energy = energy - energy.min(axis=1, keepdims=True)
    raw = scale * np.exp(-energy / temperature)
    if config.cutoff:
        # Truncate toward zero: anything below one is not large enough
        # to deserve lambda0 and is dropped (Sec. III-C2).
        codes = np.floor(raw).astype(np.int64)
    else:
        # Previous behaviour: round, then round sub-lambda0 values up.
        codes = np.maximum(np.rint(raw).astype(np.int64), 1)
    codes = np.minimum(codes, config.lambda_max_code)
    if config.pow2_lambda:
        codes = nearest_pow2(codes)
    return codes


#: Global switch for the memoized-LUT conversion fast path.
_LUT_ENABLED = True


def lut_enabled() -> bool:
    """Whether samplers should take the memoized-LUT conversion path."""
    return _LUT_ENABLED


def set_lut_enabled(enabled: bool) -> bool:
    """Set the global LUT switch; returns the previous value."""
    global _LUT_ENABLED
    previous = _LUT_ENABLED
    _LUT_ENABLED = bool(enabled)
    return previous


@contextmanager
def use_lut(enabled: bool):
    """Scope the LUT switch to a ``with`` block (benchmarks A/B with this)."""
    previous = set_lut_enabled(enabled)
    try:
        yield
    finally:
        set_lut_enabled(previous)


@lru_cache(maxsize=4096)
def _conversion_lut(temperature: float, config: RSUConfig) -> np.ndarray:
    energies = np.arange(unsigned_max(config.energy_bits) + 1, dtype=np.float64)
    # Scaling is a per-row index shift applied by the caller, so the
    # table itself is always the unscaled conversion of each energy.
    table = lambda_codes(energies[None, :], temperature, config.with_(scaling=False))[0]
    table.setflags(write=False)
    return table


def conversion_lut(temperature: float, config: RSUConfig) -> np.ndarray:
    """Memoized ``2**Energy_bits``-entry table: quantized energy -> code.

    Entry ``e`` is exactly ``lambda_codes([[e]], temperature, config)``
    without the scaling shift (which :func:`lambda_codes_lut` applies to
    the lookup index instead, Eq. 4 being a pure index translation on
    the integer energy grid).  The returned array is read-only and
    shared across calls; one annealing schedule touches one table per
    distinct temperature instead of ``exp``-ing every (site, label).
    """
    if temperature <= 0:
        raise ConfigError(f"temperature must be positive, got {temperature}")
    tel = obs.active()
    if tel is None:
        return _conversion_lut(float(temperature), config)
    before = _conversion_lut.cache_info()
    table = _conversion_lut(float(temperature), config)
    after = _conversion_lut.cache_info()
    tel.inc("convert.lut_hits", after.hits - before.hits)
    tel.inc("convert.lut_misses", after.misses - before.misses)
    return table


def lambda_codes_lut(
    quantized_energy: np.ndarray, temperature: float, config: RSUConfig
) -> np.ndarray:
    """Table-lookup conversion; bit-identical to :func:`lambda_codes`.

    ``quantized_energy`` must hold integers on the ``Energy_bits`` grid
    (the contract of :meth:`repro.core.energy.EnergyStage.quantize`).
    """
    energy = np.asarray(quantized_energy)
    if energy.ndim != 2:
        raise ConfigError(f"quantized_energy must be 2-D, got shape {energy.shape}")
    table = conversion_lut(temperature, config)
    index = energy.astype(np.int64, copy=False)
    if not np.issubdtype(energy.dtype, np.integer) and not np.array_equal(index, energy):
        raise ConfigError("lambda_codes_lut requires integer quantized energies")
    if config.scaling:
        index = index - index.min(axis=1, keepdims=True)
    if index.size and (index.min() < 0 or index.max() >= table.size):
        raise ConfigError(
            f"quantized energies out of the {config.energy_bits}-bit grid"
        )
    return table[index]


def lambda_codes_lut_into(
    quantized_energy: np.ndarray,
    table: np.ndarray,
    config: RSUConfig,
    out: np.ndarray,
    row_min: np.ndarray,
) -> np.ndarray:
    """Fused :func:`lambda_codes_lut`: gather through preallocated buffers.

    ``table`` is the :func:`conversion_lut` for the target temperature
    (hoisted by the caller so one sweep fetches it once, not once per
    colour class); ``row_min`` is an int64 ``(n_sites, 1)`` buffer for
    the decay-rate-scaling row minima.  **Mutates** ``quantized_energy``
    in place when ``config.scaling`` (the scaled index replaces the raw
    one — callers on the fused path own that buffer and are done with
    it).  Bit-identical to :func:`lambda_codes_lut` by construction:
    scaling is the same integer index shift, the gather reads the same
    table.

    Unlike :func:`lambda_codes_lut` there is no explicit range scan:
    the caller guarantees energies on the ``Energy_bits`` grid (the
    :meth:`~repro.core.energy.EnergyStage.quantize_into` contract), and
    the gather's own bounds checking still raises on any index at or
    beyond the table size.
    """
    index = quantized_energy
    if config.scaling:
        np.amin(index, axis=1, keepdims=True, out=row_min)
        np.subtract(index, row_min, out=index)
    # Fancy gather + copy beats np.take(..., out=out) here: the mapiter
    # fast path more than pays for the transient gather result.
    np.copyto(out, table[index])
    return out


@lru_cache(maxsize=256)
def _stacked_conversion_lut(temperatures: tuple, config: RSUConfig) -> np.ndarray:
    table = np.concatenate(
        [conversion_lut(temperature, config) for temperature in temperatures]
    )
    table.setflags(write=False)
    return table


def stacked_conversion_lut(temperatures, config: RSUConfig) -> np.ndarray:
    """Per-chain conversion tables concatenated along one axis (memoized).

    For K chains at (grid) temperatures ``temperatures`` the result is a
    read-only ``(K * 2**Energy_bits,)`` array whose slice
    ``[k*S:(k+1)*S]`` is exactly ``conversion_lut(temperatures[k],
    config)`` — so one gather with per-chain index offsets converts a
    whole ``(K, sites, labels)`` block (parallel tempering's ladder of
    replica temperatures) in a single NumPy call.
    """
    temps = tuple(float(t) for t in temperatures)
    if not temps:
        raise ConfigError("need at least one temperature")
    if any(t <= 0 for t in temps):
        raise ConfigError("temperatures must be positive")
    return _stacked_conversion_lut(temps, config)


def lambda_codes_lut_stacked_into(
    quantized_energy: np.ndarray,
    table: np.ndarray,
    config: RSUConfig,
    out: np.ndarray,
    row_min: np.ndarray,
) -> np.ndarray:
    """Chain-batched :func:`lambda_codes_lut_into` over a stacked table.

    ``quantized_energy`` and ``out`` are ``(K, n_sites, n_labels)``;
    ``table`` is the :func:`stacked_conversion_lut` for the K chain
    temperatures (chain ``k`` owns the stride-``S`` slice starting at
    ``k * S``); ``row_min`` is an int64 ``(K * n_sites, 1)`` buffer.
    **Mutates** ``quantized_energy`` (scaling shift + chain offsets) —
    fused callers own that buffer and are done with it.

    Byte-identical to K per-chain :func:`lambda_codes_lut_into` calls:
    the scaling row-minimum is taken within each row (chains never mix),
    and index ``e`` of chain ``k`` reads ``table[k * S + e]`` — the same
    entry the chain's own table holds.  As with the fused single-table
    path the caller guarantees energies on the ``Energy_bits`` grid; an
    out-of-grid index in any chain but the last would alias into the
    next chain's slice rather than raise, which the
    :meth:`~repro.core.energy.EnergyStage.quantize_into` contract rules
    out.
    """
    chains = quantized_energy.shape[0]
    stride = table.size // chains
    index = quantized_energy
    flat = index.reshape(chains * index.shape[1], index.shape[2])
    if config.scaling:
        np.amin(flat, axis=1, keepdims=True, out=row_min)
        np.subtract(flat, row_min, out=flat)
    offsets = np.arange(chains, dtype=np.int64) * np.int64(stride)
    np.add(index, offsets[:, None, None], out=index)
    np.copyto(out.reshape(flat.shape), table[flat])
    return out


def boundary_table(temperature: float, config: RSUConfig) -> np.ndarray:
    """Energy boundaries for the comparison-based conversion.

    For the 2^n code set ``{lambda_max, ..., 2, 1, 0}`` the converter of
    Sec. IV-B.3 stores one energy boundary per interval: a (scaled)
    energy ``E`` receives code ``c`` iff ``E <= bound(c)`` and ``E >
    bound(2c)``.  ``lambda_bits`` comparisons against these registers
    replace the 1K-bit LUT.

    Returns boundaries ordered from the largest code to code 1; an
    energy above the last boundary is cut off (code 0).
    """
    if not (config.scaling and config.cutoff and config.pow2_lambda):
        raise ConfigError(
            "boundary-based conversion models the new design; requires "
            "scaling, cutoff and pow2_lambda all enabled"
        )
    if temperature <= 0:
        raise ConfigError(f"temperature must be positive, got {temperature}")
    scale = float(config.lambda_max_code)
    bounds: List[float] = []
    code = config.lambda_max_code
    while code >= 1:
        # Largest energy whose nearest-pow2(floor(scale*exp(-E/T)))
        # still reaches ``code``: floor(raw) >= lower edge of the
        # rounding interval of ``code``.
        lower_edge = _pow2_round_lower_edge(code)
        bounds.append(temperature * math.log(scale / lower_edge))
        code //= 2
    return np.asarray(bounds, dtype=np.float64)


def _pow2_round_lower_edge(code: int) -> int:
    """Smallest integer value that nearest-pow2 maps to ``code``.

    ``nearest_pow2`` rounds ties down, so integers in
    ``(3*code/4, 3*code/2]`` map to ``code``; the smallest such integer
    is ``floor(3*code/4) + 1``.
    """
    return (3 * code) // 4 + 1


@lru_cache(maxsize=4096)
def _cached_boundary_table(temperature: float, config: RSUConfig) -> np.ndarray:
    table = boundary_table(temperature, config)
    table.setflags(write=False)
    return table


def cached_boundary_table(temperature: float, config: RSUConfig) -> np.ndarray:
    """Memoized, read-only :func:`boundary_table`.

    The structural machines rebuild their comparison registers whenever
    a machine is constructed or a temperature update streams in; an
    annealing schedule revisits the same handful of grid temperatures,
    so the table for a (temperature, config) pair is built exactly once
    per process and shared by every machine thereafter.
    """
    return _cached_boundary_table(float(temperature), config)


@lru_cache(maxsize=4096)
def _cached_legacy_lut(temperature: float, config: RSUConfig) -> np.ndarray:
    table = legacy_lut(temperature, config)
    table.setflags(write=False)
    return table


def cached_legacy_lut(temperature: float, config: RSUConfig) -> np.ndarray:
    """Memoized, read-only :func:`legacy_lut` (see :func:`cached_boundary_table`)."""
    return _cached_legacy_lut(float(temperature), config)


def lambda_codes_by_boundaries(
    quantized_energy: np.ndarray, temperature: float, config: RSUConfig
) -> np.ndarray:
    """Comparison-based conversion (new design): must match :func:`lambda_codes`."""
    energy = np.asarray(quantized_energy, dtype=np.float64)
    if energy.ndim != 2:
        raise ConfigError(f"quantized_energy must be 2-D, got shape {energy.shape}")
    scaled = energy - energy.min(axis=1, keepdims=True)
    bounds = boundary_table(temperature, config)
    # ``bounds`` ascends as the code halves (lambda_max down to 1), so
    # the first boundary at or above an energy names its code; energies
    # beyond the last boundary are cut off.  One searchsorted replaces
    # the per-boundary masking loop; the ``+ 1e-12`` slop matches the
    # scalar comparison ``scaled <= bound + 1e-12`` bit for bit.
    interval = np.searchsorted(bounds + 1e-12, scaled, side="left")
    code_of_interval = np.concatenate(
        [
            config.lambda_max_code >> np.arange(bounds.size, dtype=np.int64),
            np.zeros(1, dtype=np.int64),
        ]
    )
    return code_of_interval[interval]


def legacy_lut(temperature: float, config: RSUConfig) -> np.ndarray:
    """Full energy-indexed LUT of the previous design.

    One entry per quantized energy value (``2**Energy_bits`` entries of
    ``Lambda_bits`` each — the 1024-bit memory of Sec. IV-B.3).  Only
    meaningful for unscaled conversion, where the LUT index is the raw
    quantized energy.
    """
    energies = np.arange(unsigned_max(config.energy_bits) + 1, dtype=np.float64)
    return lambda_codes(energies[None, :], temperature, config)[0]


def conversion_memory_bits(config: RSUConfig, scheme: str) -> int:
    """Storage cost of a conversion scheme in bits (Sec. IV-B.3).

    ``lut``: one ``lambda_bits`` entry per energy value.
    ``boundaries``: one ``energy_bits`` register per nonzero code.
    """
    if scheme == "lut":
        return (unsigned_max(config.energy_bits) + 1) * config.lambda_bits
    if scheme == "boundaries":
        return config.unique_lambdas * config.energy_bits
    raise ConfigError(f"unknown conversion scheme {scheme!r}")
