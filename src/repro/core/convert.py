"""Energy-to-lambda conversion stage (stage 3 of the RSU-G pipeline).

Implements Eq. 2 (``lambda = exp(-E / T)``) under the paper's integer
code space, with the three techniques the new design introduces:

* **decay-rate scaling** — subtract the per-variable minimum energy so
  the best label always receives the maximum code (Eq. 4);
* **probability cut-off** — codes that would fall below one are set to
  zero (label never fires) instead of rounding up to ``lambda0``;
* **2^n approximation** — codes are truncated to the nearest power of
  two so the RET circuit needs only ``Lambda_bits`` unique rates.

Two hardware realizations are modeled: the LUT indexed by energy (the
previous design) and the comparison-against-boundaries scheme of
Sec. IV-B.3.  Both must produce identical codes; tests assert this.
"""

from __future__ import annotations

import math
from typing import List

import numpy as np

from repro.core.params import RSUConfig
from repro.util.errors import ConfigError
from repro.util.quantize import nearest_pow2, unsigned_max


def lambda_codes(
    quantized_energy: np.ndarray, temperature: float, config: RSUConfig
) -> np.ndarray:
    """Convert quantized energies to integer decay-rate codes.

    Parameters
    ----------
    quantized_energy:
        Integer energies on the ``Energy_bits`` grid, shape
        ``(n_sites, n_labels)``.
    temperature:
        Annealing temperature in grid units (``T`` of Eq. 2).
    config:
        Design point; ``scaling``, ``cutoff`` and ``pow2_lambda`` select
        the conversion variant.

    Returns
    -------
    numpy.ndarray
        Codes in ``[0, config.lambda_max_code]``; a code of zero means
        the label is cut off and never fires.
    """
    energy = np.asarray(quantized_energy, dtype=np.float64)
    if energy.ndim != 2:
        raise ConfigError(f"quantized_energy must be 2-D, got shape {energy.shape}")
    if temperature <= 0:
        raise ConfigError(f"temperature must be positive, got {temperature}")
    scale = float(config.lambda_max_code)
    if config.scaling:
        energy = energy - energy.min(axis=1, keepdims=True)
    raw = scale * np.exp(-energy / temperature)
    if config.cutoff:
        # Truncate toward zero: anything below one is not large enough
        # to deserve lambda0 and is dropped (Sec. III-C2).
        codes = np.floor(raw).astype(np.int64)
    else:
        # Previous behaviour: round, then round sub-lambda0 values up.
        codes = np.maximum(np.rint(raw).astype(np.int64), 1)
    codes = np.minimum(codes, config.lambda_max_code)
    if config.pow2_lambda:
        codes = nearest_pow2(codes)
    return codes


def boundary_table(temperature: float, config: RSUConfig) -> np.ndarray:
    """Energy boundaries for the comparison-based conversion.

    For the 2^n code set ``{lambda_max, ..., 2, 1, 0}`` the converter of
    Sec. IV-B.3 stores one energy boundary per interval: a (scaled)
    energy ``E`` receives code ``c`` iff ``E <= bound(c)`` and ``E >
    bound(2c)``.  ``lambda_bits`` comparisons against these registers
    replace the 1K-bit LUT.

    Returns boundaries ordered from the largest code to code 1; an
    energy above the last boundary is cut off (code 0).
    """
    if not (config.scaling and config.cutoff and config.pow2_lambda):
        raise ConfigError(
            "boundary-based conversion models the new design; requires "
            "scaling, cutoff and pow2_lambda all enabled"
        )
    if temperature <= 0:
        raise ConfigError(f"temperature must be positive, got {temperature}")
    scale = float(config.lambda_max_code)
    bounds: List[float] = []
    code = config.lambda_max_code
    while code >= 1:
        # Largest energy whose nearest-pow2(floor(scale*exp(-E/T)))
        # still reaches ``code``: floor(raw) >= lower edge of the
        # rounding interval of ``code``.
        lower_edge = _pow2_round_lower_edge(code)
        bounds.append(temperature * math.log(scale / lower_edge))
        code //= 2
    return np.asarray(bounds, dtype=np.float64)


def _pow2_round_lower_edge(code: int) -> int:
    """Smallest integer value that nearest-pow2 maps to ``code``.

    ``nearest_pow2`` rounds ties down, so integers in
    ``(3*code/4, 3*code/2]`` map to ``code``; the smallest such integer
    is ``floor(3*code/4) + 1``.
    """
    return (3 * code) // 4 + 1


def lambda_codes_by_boundaries(
    quantized_energy: np.ndarray, temperature: float, config: RSUConfig
) -> np.ndarray:
    """Comparison-based conversion (new design): must match :func:`lambda_codes`."""
    energy = np.asarray(quantized_energy, dtype=np.float64)
    if energy.ndim != 2:
        raise ConfigError(f"quantized_energy must be 2-D, got shape {energy.shape}")
    scaled = energy - energy.min(axis=1, keepdims=True)
    bounds = boundary_table(temperature, config)
    codes = np.zeros(scaled.shape, dtype=np.int64)
    code = config.lambda_max_code
    for bound in bounds:
        # Assign the largest code whose interval contains the energy.
        mask = (codes == 0) & (scaled <= bound + 1e-12)
        codes[mask] = code
        code //= 2
    return codes


def legacy_lut(temperature: float, config: RSUConfig) -> np.ndarray:
    """Full energy-indexed LUT of the previous design.

    One entry per quantized energy value (``2**Energy_bits`` entries of
    ``Lambda_bits`` each — the 1024-bit memory of Sec. IV-B.3).  Only
    meaningful for unscaled conversion, where the LUT index is the raw
    quantized energy.
    """
    energies = np.arange(unsigned_max(config.energy_bits) + 1, dtype=np.float64)
    return lambda_codes(energies[None, :], temperature, config)[0]


def conversion_memory_bits(config: RSUConfig, scheme: str) -> int:
    """Storage cost of a conversion scheme in bits (Sec. IV-B.3).

    ``lut``: one ``lambda_bits`` entry per energy value.
    ``boundaries``: one ``energy_bits`` register per nonzero code.
    """
    if scheme == "lut":
        return (unsigned_max(config.energy_bits) + 1) * config.lambda_bits
    if scheme == "boundaries":
        return config.unique_lambdas * config.energy_bits
    raise ConfigError(f"unknown conversion scheme {scheme!r}")
