"""Metropolis-Hastings sampler backends.

The paper's future work includes "extending the samplers to support
more than Gibbs sampling" (Sec. IV-D).  Single-site Metropolis-Hastings
is the natural next step: propose a uniformly random label, accept with
probability ``min(1, exp(-(E_new - E_cur) / T))``.  On RSU hardware the
acceptance test is a two-competitor first-to-fire between decay rates
``lambda_cur`` and ``lambda_new`` — exactly the machinery the unit
already has — so :class:`RSUMHSampler` reuses the quantized conversion
and TTF stages for the accept step.  First-to-fire acceptance realizes
Barker's rule ``lambda_new / (lambda_cur + lambda_new)``, which also
satisfies detailed balance.

MH backends set ``wants_current_labels``; the MCMC solver then supplies
each site's current label via :meth:`sample_given_current`.  Each MH
update evaluates only 2 labels instead of M, trading mixing speed for
per-update cost.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SamplerBackend, select_first_to_fire
from repro.core.convert import lambda_codes
from repro.core.energy import EnergyStage
from repro.core.params import RSUConfig
from repro.core.ttf import TTFSampler
from repro.rng.streams import generator_state, set_generator_state
from repro.util.errors import ConfigError, DataError


class SoftwareMHSampler(SamplerBackend):
    """Float single-site Metropolis-Hastings with uniform proposals."""

    name = "software_mh"
    wants_current_labels = True

    def __init__(self, rng: np.random.Generator, steps_per_update: int = 1):
        if steps_per_update < 1:
            raise ConfigError(f"steps_per_update must be >= 1, got {steps_per_update}")
        self._rng = rng
        self.steps_per_update = steps_per_update

    def getstate(self) -> dict:
        return {"rng": generator_state(self._rng)}

    def setstate(self, state: dict) -> None:
        set_generator_state(self._rng, state["rng"])

    def sample_given_current(
        self, energies: np.ndarray, temperature: float, current: np.ndarray
    ) -> np.ndarray:
        """Run MH steps from the sites' current labels."""
        arr = np.asarray(energies, dtype=np.float64)
        cur = np.asarray(current, dtype=np.int64).copy()
        if arr.ndim != 2 or cur.shape != (arr.shape[0],):
            raise DataError("energies must be (N, M) with current of shape (N,)")
        if cur.min() < 0 or cur.max() >= arr.shape[1]:
            raise DataError("current labels out of range")
        if temperature <= 0:
            raise ConfigError(f"temperature must be positive, got {temperature}")
        return self._steps(arr, float(temperature), cur)

    def _steps(
        self, energies: np.ndarray, temperature: float, current: np.ndarray
    ) -> np.ndarray:
        n, m = energies.shape
        rows = np.arange(n)
        for _ in range(self.steps_per_update):
            proposal = self._rng.integers(0, m, size=n)
            delta = energies[rows, proposal] - energies[rows, current]
            accept = self._rng.random(n) < np.exp(np.minimum(0.0, -delta / temperature))
            current = np.where(accept, proposal, current)
        return current

    def _sample_batch(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        # Standalone use (no solver-provided state): start from argmin.
        start = np.argmin(energies, axis=1).astype(np.int64)
        return self._steps(energies, temperature, start)


class RSUMHSampler(SoftwareMHSampler):
    """MH whose accept step runs on RSU first-to-fire hardware.

    The acceptance comparison draws one binned TTF at the current
    label's decay-rate code and one at the proposal's; the proposal is
    accepted when it fires first — Barker acceptance
    ``lambda_new / (lambda_cur + lambda_new)`` up to the timing
    quantization the rest of the paper characterizes.
    """

    name = "rsu_mh"

    def __init__(
        self,
        config: RSUConfig,
        energy_full_scale: float,
        rng: np.random.Generator,
        steps_per_update: int = 1,
    ):
        super().__init__(rng, steps_per_update)
        self.config = config
        self.energy_stage = EnergyStage(config.energy_bits, energy_full_scale)
        self._ttf = TTFSampler(config, rng)

    def getstate(self) -> dict:
        state = super().getstate()
        state["ttf"] = self._ttf.getstate()
        return state

    def setstate(self, state: dict) -> None:
        super().setstate(state)
        self._ttf.setstate(state["ttf"])

    def _steps(
        self, energies: np.ndarray, temperature: float, current: np.ndarray
    ) -> np.ndarray:
        n, m = energies.shape
        rows = np.arange(n)
        quantized = self.energy_stage.quantize(energies)
        t_grid = self.energy_stage.quantized_temperature(temperature)
        for _ in range(self.steps_per_update):
            proposal = self._rng.integers(0, m, size=n)
            pair = np.stack(
                [quantized[rows, current], quantized[rows, proposal]], axis=1
            )
            codes = lambda_codes(pair, t_grid, self.config)
            ttf = self._ttf.sample(codes)
            winners = select_first_to_fire(ttf, self.config.tie_policy, self._rng)
            current = np.where(winners == 1, proposal, current)
        return current
