"""RET-circuit functional model: binned exponential time-to-fluorescence.

Stage 4 of the RSU-G pipeline illuminates a RET network whose decay
rate is the selected code times ``lambda0`` and measures the time until
the SPAD observes a photon (Sec. II-C).  The measurement is quantized
into ``2**Time_bits`` unit bins; samples beyond the detection window
are truncated (Sec. III-C3).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.params import RSUConfig
from repro.util.errors import ConfigError

#: Sentinel bin for "no photon within the window" (TTF = infinity).
#: One past the clamp bin so timed-out labels lose to every real sample.
def no_sample_bin(config: RSUConfig) -> int:
    """Bin value recording a truncated (never-fired) sample."""
    return config.time_bins + 1


def cutoff_bin(config: RSUConfig) -> int:
    """Bin value for cut-off labels (code 0): beyond even timed-out ones."""
    return config.time_bins + 2


class TTFSampler:
    """Draws binned TTFs for a matrix of decay-rate codes.

    Parameters
    ----------
    config:
        Design point; uses ``time_bits``, ``truncation`` and
        ``clamp_to_tmax``.
    rng:
        NumPy generator supplying the underlying uniform variates (the
        model of RET physical entropy).
    """

    def __init__(self, config: RSUConfig, rng: np.random.Generator):
        self.config = config
        self._rng = rng

    def sample(self, codes: np.ndarray) -> np.ndarray:
        """Return integer TTF bins for integer decay-rate ``codes``.

        A code ``v >= 1`` selects the RET network with per-bin rate
        ``v * lambda0``; the continuous exponential draw is quantized
        with ceiling so bin 1 covers (0, 1].  Codes of zero (cut off)
        return :func:`cutoff_bin`.

        With ``config.float_time`` the continuous draw is returned
        untruncated (float64) — the idealized IEEE-float time stage.
        """
        codes = np.asarray(codes)
        if np.any(codes < 0):
            raise ConfigError("decay-rate codes must be non-negative")
        cfg = self.config
        rates = codes.astype(np.float64) * cfg.lambda0_per_bin
        uniforms = self._rng.random(codes.shape)
        active = codes > 0
        # Inverse-CDF exponential draw, in units of time bins.
        with np.errstate(divide="ignore"):
            continuous = -np.log1p(-uniforms[active]) / rates[active]
        if cfg.float_time:
            ttf = np.full(codes.shape, np.inf)
            ttf[active] = continuous
            return ttf
        ttf = np.full(codes.shape, float(cutoff_bin(cfg)))
        bins = np.ceil(continuous)
        late = bins > cfg.time_bins
        if cfg.clamp_to_tmax:
            bins[late] = cfg.time_bins
        else:
            bins[late] = no_sample_bin(cfg)
        ttf[active] = bins
        return ttf.astype(np.int64)

    def truncation_probability(self, code: int) -> float:
        """P(no photon within the window) for a given decay-rate code."""
        if code < 0:
            raise ConfigError("code must be non-negative")
        if code == 0:
            return 1.0
        return math.exp(-code * self.config.lambda0_per_bin * self.config.time_bins)


def bin_probabilities(code: int, config: RSUConfig) -> np.ndarray:
    """Exact probability mass over bins ``1..t_max`` plus the overflow bin.

    Analytic counterpart of :meth:`TTFSampler.sample` used by property
    tests and the entropy model: entry ``t-1`` is
    ``P(bin == t) = exp(-r(t-1)) - exp(-rt)`` for per-bin rate ``r``,
    and the final entry is the truncated tail mass.
    """
    if code < 1:
        raise ConfigError("bin_probabilities requires a nonzero code")
    rate = code * config.lambda0_per_bin
    edges = np.exp(-rate * np.arange(config.time_bins + 1, dtype=np.float64))
    mass = edges[:-1] - edges[1:]
    tail = edges[-1]
    return np.concatenate([mass, [tail]])
