"""RET-circuit functional model: binned exponential time-to-fluorescence.

Stage 4 of the RSU-G pipeline illuminates a RET network whose decay
rate is the selected code times ``lambda0`` and measures the time until
the SPAD observes a photon (Sec. II-C).  The measurement is quantized
into ``2**Time_bits`` unit bins; samples beyond the detection window
are truncated (Sec. III-C3).
"""

from __future__ import annotations

import math

import numpy as np

from repro.core.base import SampleScratch
from repro.core.params import RSUConfig
from repro.obs import telemetry as obs
from repro.rng.streams import generator_state, set_generator_state
from repro.util.errors import ConfigError

#: Sentinel bin for "no photon within the window" (TTF = infinity).
#: One past the clamp bin so timed-out labels lose to every real sample.
def no_sample_bin(config: RSUConfig) -> int:
    """Bin value recording a truncated (never-fired) sample."""
    return config.time_bins + 1


def cutoff_bin(config: RSUConfig) -> int:
    """Bin value for cut-off labels (code 0): beyond even timed-out ones."""
    return config.time_bins + 2


def _record_ttf_draw(n_uniforms: int) -> None:
    """Telemetry hook: one TTF dispatch consuming ``n_uniforms`` variates."""
    tel = obs.active()
    if tel is not None:
        tel.inc("entropy.uniforms", n_uniforms)
        tel.inc("entropy.ttf_draws", n_uniforms)


class TTFSampler:
    """Draws binned TTFs for a matrix of decay-rate codes.

    Parameters
    ----------
    config:
        Design point; uses ``time_bits``, ``truncation`` and
        ``clamp_to_tmax``.
    rng:
        NumPy generator supplying the underlying uniform variates (the
        model of RET physical entropy).
    """

    def __init__(self, config: RSUConfig, rng: np.random.Generator):
        self.config = config
        self._rng = rng

    def getstate(self) -> dict:
        """Picklable snapshot of the RET entropy generator state."""
        return {"rng": generator_state(self._rng)}

    def setstate(self, state: dict) -> None:
        """Restore a :meth:`getstate` snapshot; bit-exact continuation."""
        set_generator_state(self._rng, state["rng"])

    def sample(self, codes: np.ndarray) -> np.ndarray:
        """Return integer TTF bins for integer decay-rate ``codes``.

        A code ``v >= 1`` selects the RET network with per-bin rate
        ``v * lambda0``; the continuous exponential draw is quantized
        with ceiling so bin 1 covers (0, 1].  Codes of zero (cut off)
        return :func:`cutoff_bin`.

        With ``config.float_time`` the continuous draw is returned
        untruncated (float64) — the idealized IEEE-float time stage.
        """
        codes = np.asarray(codes)
        if codes.size and codes.min() < 0:
            raise ConfigError("decay-rate codes must be non-negative")
        cfg = self.config
        # One uniform per lane, active or not: the RET entropy stream is
        # consumed at a fixed per-call rate so every downstream consumer
        # (and the fused kernel) stays aligned with this reference.
        _record_ttf_draw(codes.size)
        uniforms = self._rng.random(codes.shape)
        active = codes > 0
        # Inverse-CDF exponential draw, in units of time bins.  All
        # float work happens on the compressed active lanes only; the
        # cut-off lanes never touch log/divide/ceil.
        rates = codes[active].astype(np.float64) * cfg.lambda0_per_bin
        continuous = np.log1p(-uniforms[active])
        np.negative(continuous, out=continuous)
        continuous /= rates
        if cfg.float_time:
            ttf = np.full(codes.shape, np.inf)
            ttf[active] = continuous
            return ttf
        bins = np.ceil(continuous, out=continuous)
        if cfg.clamp_to_tmax:
            np.minimum(bins, cfg.time_bins, out=bins)
        else:
            bins[bins > cfg.time_bins] = no_sample_bin(cfg)
        # Build the output int64 directly: inactive lanes are written
        # once with the cut-off sentinel, active lanes once with their
        # bin — no second full-array float->int conversion pass.
        ttf = np.full(codes.shape, cutoff_bin(cfg), dtype=np.int64)
        ttf[active] = bins
        return ttf

    def sample_into(
        self, codes: np.ndarray, out: np.ndarray, scratch: SampleScratch
    ) -> np.ndarray:
        """Fused :meth:`sample`: same bins and RNG stream, reused buffers.

        The entropy block is prefetched straight into a reusable buffer
        (``rng.random(out=...)`` draws the identical variates in the
        identical order as ``rng.random(shape)``), the active lanes are
        compressed into workspace views with ``np.compress(..., out=)``
        (so cut-off lanes do no transcendental work — typically >80 % of
        lanes late in an annealed solve), and the results scatter back
        with ``np.place``.  Steady-state calls perform zero allocations.
        """
        if codes.size and codes.min() < 0:
            raise ConfigError("decay-rate codes must be non-negative")
        _record_ttf_draw(codes.size)
        uniforms = scratch.buf("ttf_uniforms", codes.shape, np.float64)
        self._rng.random(out=uniforms)
        return _finish_fused_sample(self.config, codes, uniforms, out, scratch)

    @staticmethod
    def sample_chains_into(
        ttf_samplers, codes: np.ndarray, out: np.ndarray, scratch: SampleScratch
    ) -> np.ndarray:
        """Chain-batched :meth:`sample_into` over a ``(K, sites, labels)`` block.

        ``ttf_samplers[k]`` supplies chain ``k``'s RET entropy; all K
        must share one design point (the caller checks — the batched RSU
        path only dispatches here for config-identical chains).  Each
        chain's uniform slab is prefetched from its own generator — the
        identical block that chain would draw running alone — and the
        binning tail then runs once over the whole stacked block, which
        is elementwise/compress work and therefore byte-identical to K
        sequential :meth:`sample_into` calls.
        """
        if codes.size and codes.min() < 0:
            raise ConfigError("decay-rate codes must be non-negative")
        _record_ttf_draw(codes.size)
        uniforms = scratch.buf("ttf_uniforms", codes.shape, np.float64)
        for index, sampler in enumerate(ttf_samplers):
            sampler._rng.random(out=uniforms[index])
        return _finish_fused_sample(
            ttf_samplers[0].config, codes, uniforms, out, scratch
        )

    def truncation_probability(self, code: int) -> float:
        """P(no photon within the window) for a given decay-rate code."""
        if code < 0:
            raise ConfigError("code must be non-negative")
        if code == 0:
            return 1.0
        return math.exp(-code * self.config.lambda0_per_bin * self.config.time_bins)


def _finish_fused_sample(
    cfg: RSUConfig,
    codes: np.ndarray,
    uniforms: np.ndarray,
    out: np.ndarray,
    scratch: SampleScratch,
) -> np.ndarray:
    """Shared binning tail of the fused TTF paths (post-uniform-fill).

    Operates on arrays of any shape — the single-chain ``(sites, labels)``
    matrix and the chain-batched ``(K, sites, labels)`` block flow
    through identical flat/elementwise ops (mask, compress pools, place),
    so stacking chains cannot change any bin.
    """
    active = scratch.buf("ttf_active_mask", codes.shape, np.bool_)
    np.greater(codes, 0, out=active)
    n_active = int(np.count_nonzero(active))
    mask_flat = active.reshape(-1)
    # Compressed views over preallocated max-size pools: only the
    # first n_active lanes of each are touched.
    size = codes.size
    rates = scratch.buf("ttf_rates_pool", (size,), np.float64)[:n_active]
    work = scratch.buf("ttf_work_pool", (size,), np.float64)[:n_active]
    active_codes = scratch.buf("ttf_codes_pool", (size,), np.int64)[:n_active]
    np.compress(mask_flat, codes.reshape(-1), out=active_codes)
    np.multiply(active_codes, cfg.lambda0_per_bin, out=rates)
    np.compress(mask_flat, uniforms.reshape(-1), out=work)
    # work = -log1p(-u) / rate: the same op chain, op for op, as the
    # reference's compressed computation.
    np.negative(work, out=work)
    np.log1p(work, out=work)
    np.negative(work, out=work)
    np.divide(work, rates, out=work)
    if cfg.float_time:
        out.fill(np.inf)
        np.place(out, active, work)
        return out
    np.ceil(work, out=work)
    if cfg.clamp_to_tmax:
        np.minimum(work, cfg.time_bins, out=work)
    else:
        late = scratch.buf("ttf_late_pool", (size,), np.bool_)[:n_active]
        np.greater(work, cfg.time_bins, out=late)
        work[late] = float(no_sample_bin(cfg))
    bins = scratch.buf("ttf_bins_pool", (size,), out.dtype)[:n_active]
    np.copyto(bins, work, casting="unsafe")
    out.fill(cutoff_bin(cfg))
    np.place(out, active, bins)
    return out


def bin_probabilities(code: int, config: RSUConfig) -> np.ndarray:
    """Exact probability mass over bins ``1..t_max`` plus the overflow bin.

    Analytic counterpart of :meth:`TTFSampler.sample` used by property
    tests and the entropy model: entry ``t-1`` is
    ``P(bin == t) = exp(-r(t-1)) - exp(-rt)`` for per-bin rate ``r``,
    and the final entry is the truncated tail mass.
    """
    if code < 1:
        raise ConfigError("bin_probabilities requires a nonzero code")
    rate = code * config.lambda0_per_bin
    edges = np.exp(-rate * np.arange(config.time_bins + 1, dtype=np.float64))
    mass = edges[:-1] - edges[1:]
    tail = edges[-1]
    return np.concatenate([mass, [tail]])
