"""Fixed-point energy-computation datapath (the hardware energy unit).

The functional simulator in :mod:`repro.core.energy` quantizes float
energies after the fact; this module models the actual integer datapath
of the new design's energy stage (Sec. IV-B.1): a label-value LUT maps
the 6-bit label index to its application value, combinational logic
computes the configured distance against the four neighbour labels,
integer weights scale the singleton and doubleton terms, and the sum
saturates into the ``Energy_bits`` output register.

All arithmetic is integer with explicit saturation, so the model is
bit-exact for any input — tests cross-validate it against the float MRF
energy within one quantization step.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

import numpy as np

from repro.core.distance import DISTANCE_KINDS
from repro.util.errors import ConfigError, DataError
from repro.util.quantize import unsigned_max

#: Width of a label index at the architectural interface (64 labels).
LABEL_BITS = 6


@dataclass
class EnergyDatapath:
    """Integer energy unit: ``E = sat(w_s * singleton + w_d * sum dist)``.

    Parameters
    ----------
    label_values:
        The label-value LUT contents, shape ``(M,)`` for scalar labels
        or ``(M, 2)`` for 2-D motion labels; unsigned integers.
    distance:
        ``squared`` / ``absolute`` / ``binary`` (the three the new
        design supports).
    singleton_weight / doubleton_weight:
        Integer multipliers applied before the output shift.
    output_shift:
        Right-shift applied to the weighted sum before saturation —
        fixed-point scaling, ``value >> output_shift``.
    energy_bits:
        Output register width (paper: 8).
    distance_truncate:
        Integer cap on the per-neighbour distance (truncated linear /
        quadratic models); ``None`` leaves it unbounded before the
        final saturation.
    """

    label_values: np.ndarray
    distance: str = "absolute"
    singleton_weight: int = 1
    doubleton_weight: int = 1
    output_shift: int = 0
    energy_bits: int = 8
    distance_truncate: Optional[int] = None
    _values: np.ndarray = field(init=False, repr=False)
    _pair_lut: np.ndarray = field(init=False, repr=False)

    def __post_init__(self):
        values = np.asarray(self.label_values, dtype=np.int64)
        if values.ndim == 1:
            values = values[:, None]
        if values.ndim != 2 or values.shape[0] < 1:
            raise ConfigError("label_values must be (M,) or (M, k)")
        if values.shape[0] > (1 << LABEL_BITS):
            raise ConfigError(
                f"at most {1 << LABEL_BITS} labels fit the {LABEL_BITS}-bit index"
            )
        if np.any(values < 0):
            raise ConfigError("label values must be unsigned")
        if self.distance not in DISTANCE_KINDS:
            raise ConfigError(
                f"distance must be one of {DISTANCE_KINDS}, got {self.distance!r}"
            )
        for name in ("singleton_weight", "doubleton_weight"):
            if getattr(self, name) < 0:
                raise ConfigError(f"{name} must be >= 0")
        if self.output_shift < 0 or self.output_shift > 16:
            raise ConfigError("output_shift must be in [0, 16]")
        if not 1 <= self.energy_bits <= 16:
            raise ConfigError("energy_bits must be in [1, 16]")
        self._values = values
        self._pair_lut = self._build_pair_lut()

    @property
    def n_labels(self) -> int:
        """Number of labels in the LUT."""
        return self._values.shape[0]

    def _build_pair_lut(self) -> np.ndarray:
        """Precompute the integer pairwise distance table (M x M)."""
        a = self._values[:, None, :]
        b = self._values[None, :, :]
        if self.distance == "squared":
            table = ((a - b) ** 2).sum(axis=-1)
        elif self.distance == "absolute":
            table = np.abs(a - b).sum(axis=-1)
        else:  # binary
            table = (~np.all(a == b, axis=-1)).astype(np.int64)
        if self.distance_truncate is not None:
            if self.distance_truncate < 0:
                raise ConfigError("distance_truncate must be >= 0")
            table = np.minimum(table, self.distance_truncate)
        return table.astype(np.int64)

    def pair_distance(self, label_a: int, label_b: int) -> int:
        """Integer doubleton distance between two label indices."""
        self._check_label(label_a)
        self._check_label(label_b)
        return int(self._pair_lut[label_a, label_b])

    def _check_label(self, label: int) -> None:
        if not 0 <= label < self.n_labels:
            raise DataError(f"label {label} out of range [0, {self.n_labels})")

    def compute(
        self, singleton: np.ndarray, label: np.ndarray, neighbor_labels: np.ndarray
    ) -> np.ndarray:
        """Energies for a batch of evaluations (saturating integer math).

        Parameters
        ----------
        singleton:
            Unsigned integer singleton costs, shape ``(N,)``.
        label:
            Evaluated label index per site, shape ``(N,)``.
        neighbor_labels:
            Neighbour label indices, shape ``(N, 4)``; entries equal to
            ``n_labels`` mean "missing neighbour" (grid border) and
            contribute zero.
        """
        s = np.asarray(singleton, dtype=np.int64)
        lab = np.asarray(label, dtype=np.int64)
        neigh = np.asarray(neighbor_labels, dtype=np.int64)
        if s.ndim != 1 or lab.shape != s.shape or neigh.shape != s.shape + (4,):
            raise DataError(
                "expected singleton (N,), label (N,), neighbor_labels (N, 4)"
            )
        if np.any(s < 0):
            raise DataError("singleton costs must be unsigned")
        if np.any((lab < 0) | (lab >= self.n_labels)):
            raise DataError("evaluated labels out of range")
        if np.any((neigh < 0) | (neigh > self.n_labels)):
            raise DataError("neighbor labels out of range (sentinel allowed)")
        padded = np.zeros((self.n_labels + 1, self.n_labels), dtype=np.int64)
        padded[: self.n_labels] = self._pair_lut
        doubleton = padded[neigh, lab[:, None]].sum(axis=1)
        total = self.singleton_weight * s + self.doubleton_weight * doubleton
        total >>= self.output_shift
        return np.minimum(total, unsigned_max(self.energy_bits)).astype(np.int64)

    def max_pair_distance(self) -> int:
        """Largest doubleton value the LUT can produce."""
        return int(self._pair_lut.max())
