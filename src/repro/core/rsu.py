"""RSU-G functional simulators: the new design and the previous one.

These backends replace the float sampling inner loop of the MCMC solver
with bit-accurate RSU-G semantics: quantize the energy
(``Energy_bits``), convert it to an integer decay-rate code
(``Lambda_bits`` with optional scaling / cut-off / 2^n approximation),
draw a binned exponential TTF (``Time_bits``, ``Truncation``) per
label, and select the first label to fire.

Two equivalent sampling paths exist: the reference :meth:`~SamplerBackend.sample`
(allocates its intermediates, the oracle for regressions) and the fused
:meth:`~SamplerBackend.sample_into` used by the sweep kernel, which
chains quantize -> LUT gather -> TTF -> first-to-fire through reusable
workspace buffers.  Both are byte-identical, including RNG consumption.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.core import convert
from repro.core.base import (
    SamplerBackend,
    SampleScratch,
    record_sampler_batch,
    select_first_to_fire,
    select_first_to_fire_chains_into,
    select_first_to_fire_into,
)
from repro.core.convert import (
    conversion_lut,
    lambda_codes,
    lambda_codes_lut,
    lambda_codes_lut_into,
    lambda_codes_lut_stacked_into,
    stacked_conversion_lut,
)
from repro.core.energy import EnergyStage
from repro.core.params import RSUConfig, legacy_design_config, new_design_config
from repro.core.ttf import TTFSampler
from repro.rng.streams import generator_state, set_generator_state
from repro.util.errors import DataError
from repro.util.validation import check_positive


class RSUGSampler(SamplerBackend):
    """Functional model of an RSU-G unit with an arbitrary design point.

    Parameters
    ----------
    config:
        The design point to simulate (see :class:`RSUConfig`).
    energy_full_scale:
        Raw energy mapping to the top of the ``Energy_bits`` grid;
        applications derive it from their MRF model's maximum energy.
    rng:
        Generator supplying the RET entropy (and random tie-breaks).
    ttf_sampler:
        Optional replacement for the RET-circuit stage model, e.g. a
        :class:`repro.core.nonideal.NoisyTTFSampler` for failure
        injection.  Defaults to the ideal :class:`TTFSampler`.
    use_lut:
        Force the memoized-LUT conversion fast path on (True) or off
        (False) for this sampler; ``None`` (default) follows the global
        :func:`repro.core.convert.lut_enabled` switch.  Both paths are
        bit-identical; the knob exists so benchmarks can time them.
    """

    name = "rsu"

    def __init__(
        self,
        config: RSUConfig,
        energy_full_scale: float,
        rng: np.random.Generator,
        ttf_sampler: Optional[TTFSampler] = None,
        use_lut: Optional[bool] = None,
    ):
        self.config = config
        self.energy_stage = EnergyStage(config.energy_bits, energy_full_scale)
        self._ttf = ttf_sampler if ttf_sampler is not None else TTFSampler(config, rng)
        self._rng = rng
        self.use_lut = use_lut
        # The fused path may only shortcut the TTF stage when the ideal
        # sampler semantics apply; a replacement stage (noise injection,
        # fault models) overriding ``sample`` must keep its own path.
        self._ttf_fusable = type(self._ttf).sample is TTFSampler.sample
        # Per-(temperature, lut-switch) stage constants, hoisted out of
        # the per-colour-class loop: one annealing step touches the
        # quantized temperature and conversion table twice (once per
        # checkerboard class) with identical values.
        self._stage_cache: Optional[Tuple[float, bool, float, Optional[np.ndarray]]] = None

    def getstate(self) -> dict:
        """Snapshot the selection rng and the TTF stage's entropy stream.

        The two are usually one shared :class:`numpy.random.Generator`;
        both snapshots are taken at the same instant, so restoring both
        is correct whether or not they alias.
        """
        return {"rng": generator_state(self._rng), "ttf": self._ttf.getstate()}

    def setstate(self, state: dict) -> None:
        set_generator_state(self._rng, state["rng"])
        self._ttf.setstate(state["ttf"])

    def _stage_constants(self, temperature: float) -> Tuple[float, Optional[np.ndarray]]:
        """(grid temperature, conversion table or None) for this call."""
        lut = self.use_lut if self.use_lut is not None else convert.lut_enabled()
        cached = self._stage_cache
        if cached is not None and cached[0] == temperature and cached[1] == lut:
            return cached[2], cached[3]
        t_grid = self.energy_stage.quantized_temperature(temperature)
        table = conversion_lut(t_grid, self.config) if lut else None
        self._stage_cache = (temperature, lut, t_grid, table)
        return t_grid, table

    def codes_for(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        """Decay-rate codes the unit would use (exposed for analysis)."""
        quantized = self.energy_stage.quantize(energies)
        t_grid = self.energy_stage.quantized_temperature(temperature)
        lut = self.use_lut if self.use_lut is not None else convert.lut_enabled()
        if lut:
            return lambda_codes_lut(quantized, t_grid, self.config)
        return lambda_codes(quantized, t_grid, self.config)

    def _sample_batch(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        codes = self.codes_for(energies, temperature)
        ttf = self._ttf.sample(codes)
        return select_first_to_fire(ttf, self.config.tie_policy, self._rng)

    def sample_into(
        self,
        energies: np.ndarray,
        temperature: float,
        out: np.ndarray,
        scratch: SampleScratch,
    ) -> np.ndarray:
        """Fused RSU pipeline through workspace buffers (byte-identical).

        quantize -> (LUT gather | direct conversion) -> TTF -> select,
        with zero steady-state allocations on the default LUT path.  The
        direct (``use_lut`` off) conversion keeps calling
        :func:`lambda_codes` — it exists for A/B timing, not speed — and
        a replaced TTF stage (e.g. noise injection) falls back to the
        reference path wholesale so its semantics are preserved.
        """
        if not self._ttf_fusable:
            return super().sample_into(energies, temperature, out, scratch)
        if energies.ndim != 2 or energies.shape[1] < 1 or energies.shape[0] < 1:
            raise DataError(
                f"energies must be (n_sites, n_labels), got shape {energies.shape}"
            )
        check_positive("temperature", temperature)
        record_sampler_batch(energies.shape[0])
        temperature = float(temperature)
        t_grid, table = self._stage_constants(temperature)
        shape = energies.shape
        work = scratch.buf("rsu_quantize_work", shape, np.float64)
        quantized = scratch.buf("rsu_quantized", shape, np.int64)
        self.energy_stage.quantize_into(energies, quantized, work)
        codes = scratch.buf("rsu_codes", shape, np.int64)
        if table is not None:
            row_min = scratch.buf("rsu_row_min", (shape[0], 1), np.int64)
            lambda_codes_lut_into(quantized, table, self.config, codes, row_min)
        else:
            np.copyto(codes, lambda_codes(quantized, t_grid, self.config))
        ttf = scratch.buf("rsu_ttf", shape, self._ttf_dtype(shape[1]))
        self._ttf.sample_into(codes, ttf, scratch)
        return select_first_to_fire_into(
            ttf, self.config.tie_policy, self._rng, out, scratch
        )

    def _ttf_dtype(self, n_labels: int):
        """Output dtype of the fused TTF stage.

        Bins and selection keys are tiny integers; the integer stages
        run in int32 when ``ttf * n_labels + order`` provably fits —
        half the memory traffic, identical values, so the selected
        labels are unchanged.
        """
        if self.config.float_time:
            return np.float64
        key_bound = (self.config.time_bins + 2 + 1) * n_labels
        return np.int32 if key_bound < 2**31 else np.int64

    @classmethod
    def sample_chains_into(
        cls,
        samplers,
        energies: np.ndarray,
        temperatures,
        out: np.ndarray,
        scratch: SampleScratch,
    ) -> np.ndarray:
        """Chain-batched RSU pipeline over a ``(K, sites, labels)`` block.

        quantize -> λ-LUT gather -> TTF -> first-to-fire, each stage run
        once over the stacked block with one RNG stream per chain.  The
        energy quantization is elementwise; the LUT gather uses the
        shared table when every chain sits at one grid temperature
        (ensembles) and a :func:`stacked_conversion_lut` with per-chain
        index offsets when the ladder differs (tempering); the TTF and
        selection stages fill per-chain entropy slabs and batch the
        rest.  Byte-identical to K sequential :meth:`sample_into` calls.

        Chains whose design points differ — different config, energy
        stage, replaced TTF stage, or mixed LUT switches — fall back to
        the base per-chain loop, which is byte-identical by the
        :meth:`sample_into` contract.
        """
        first = samplers[0]
        compatible = all(
            sampler._ttf_fusable
            and sampler.config == first.config
            and sampler.energy_stage == first.energy_stage
            and sampler._ttf.config == first._ttf.config
            for sampler in samplers
        )
        if not compatible:
            return super().sample_chains_into(
                samplers, energies, temperatures, out, scratch
            )
        if energies.ndim != 3 or energies.shape[2] < 1 or energies.shape[1] < 1:
            raise DataError(
                f"energies must be (chains, n_sites, n_labels), got shape {energies.shape}"
            )
        for temperature in temperatures:
            check_positive("temperature", temperature)
        constants = [
            sampler._stage_constants(float(temperature))
            for sampler, temperature in zip(samplers, temperatures)
        ]
        if len({table is None for _, table in constants}) > 1:
            # Mixed per-sampler LUT switches: no single batched gather
            # reproduces both paths; the per-chain loop does.
            return super().sample_chains_into(
                samplers, energies, temperatures, out, scratch
            )
        shape = energies.shape
        flat_rows = shape[0] * shape[1]
        record_sampler_batch(flat_rows)
        work = scratch.buf("rsu_quantize_work", shape, np.float64)
        quantized = scratch.buf("rsu_quantized", shape, np.int64)
        first.energy_stage.quantize_into(energies, quantized, work)
        codes = scratch.buf("rsu_codes", shape, np.int64)
        t_grids = [t_grid for t_grid, _ in constants]
        if constants[0][1] is not None:
            row_min = scratch.buf("rsu_row_min", (flat_rows, 1), np.int64)
            if all(t_grid == t_grids[0] for t_grid in t_grids):
                # One grid temperature (multi-seed ensembles): every
                # chain gathers from the same memoized table, so the
                # whole block flattens to one 2-D gather.
                lambda_codes_lut_into(
                    quantized.reshape(flat_rows, shape[2]),
                    constants[0][1],
                    first.config,
                    codes.reshape(flat_rows, shape[2]),
                    row_min,
                )
            else:
                table = stacked_conversion_lut(t_grids, first.config)
                lambda_codes_lut_stacked_into(
                    quantized, table, first.config, codes, row_min
                )
        else:
            for index, t_grid in enumerate(t_grids):
                np.copyto(
                    codes[index], lambda_codes(quantized[index], t_grid, first.config)
                )
        ttf = scratch.buf("rsu_ttf", shape, first._ttf_dtype(shape[2]))
        TTFSampler.sample_chains_into(
            [sampler._ttf for sampler in samplers], codes, ttf, scratch
        )
        return select_first_to_fire_chains_into(
            ttf,
            first.config.tie_policy,
            [sampler._rng for sampler in samplers],
            out,
            scratch,
        )


class NewRSUG(RSUGSampler):
    """The paper's new design point (Sec. III-D / IV)."""

    name = "new_rsug"

    def __init__(self, energy_full_scale: float, rng: np.random.Generator, **overrides):
        super().__init__(new_design_config(**overrides), energy_full_scale, rng)


class LegacyRSUG(RSUGSampler):
    """The previously proposed design (Wang et al. 2016 semantics)."""

    name = "prev_rsug"

    def __init__(self, energy_full_scale: float, rng: np.random.Generator, **overrides):
        super().__init__(legacy_design_config(**overrides), energy_full_scale, rng)
