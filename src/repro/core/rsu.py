"""RSU-G functional simulators: the new design and the previous one.

These backends replace the float sampling inner loop of the MCMC solver
with bit-accurate RSU-G semantics: quantize the energy
(``Energy_bits``), convert it to an integer decay-rate code
(``Lambda_bits`` with optional scaling / cut-off / 2^n approximation),
draw a binned exponential TTF (``Time_bits``, ``Truncation``) per
label, and select the first label to fire.
"""

from __future__ import annotations

import numpy as np

from repro.core import convert
from repro.core.base import SamplerBackend, select_first_to_fire
from repro.core.convert import lambda_codes, lambda_codes_lut
from repro.core.energy import EnergyStage
from repro.core.params import RSUConfig, legacy_design_config, new_design_config
from repro.core.ttf import TTFSampler


class RSUGSampler(SamplerBackend):
    """Functional model of an RSU-G unit with an arbitrary design point.

    Parameters
    ----------
    config:
        The design point to simulate (see :class:`RSUConfig`).
    energy_full_scale:
        Raw energy mapping to the top of the ``Energy_bits`` grid;
        applications derive it from their MRF model's maximum energy.
    rng:
        Generator supplying the RET entropy (and random tie-breaks).
    ttf_sampler:
        Optional replacement for the RET-circuit stage model, e.g. a
        :class:`repro.core.nonideal.NoisyTTFSampler` for failure
        injection.  Defaults to the ideal :class:`TTFSampler`.
    use_lut:
        Force the memoized-LUT conversion fast path on (True) or off
        (False) for this sampler; ``None`` (default) follows the global
        :func:`repro.core.convert.lut_enabled` switch.  Both paths are
        bit-identical; the knob exists so benchmarks can time them.
    """

    name = "rsu"

    def __init__(
        self,
        config: RSUConfig,
        energy_full_scale: float,
        rng: np.random.Generator,
        ttf_sampler: TTFSampler = None,
        use_lut: bool = None,
    ):
        self.config = config
        self.energy_stage = EnergyStage(config.energy_bits, energy_full_scale)
        self._ttf = ttf_sampler if ttf_sampler is not None else TTFSampler(config, rng)
        self._rng = rng
        self.use_lut = use_lut

    def codes_for(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        """Decay-rate codes the unit would use (exposed for analysis)."""
        quantized = self.energy_stage.quantize(energies)
        t_grid = self.energy_stage.quantized_temperature(temperature)
        lut = self.use_lut if self.use_lut is not None else convert.lut_enabled()
        if lut:
            return lambda_codes_lut(quantized, t_grid, self.config)
        return lambda_codes(quantized, t_grid, self.config)

    def _sample_batch(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        codes = self.codes_for(energies, temperature)
        ttf = self._ttf.sample(codes)
        return select_first_to_fire(ttf, self.config.tie_policy, self._rng)


class NewRSUG(RSUGSampler):
    """The paper's new design point (Sec. III-D / IV)."""

    name = "new_rsug"

    def __init__(self, energy_full_scale: float, rng: np.random.Generator, **overrides):
        super().__init__(new_design_config(**overrides), energy_full_scale, rng)


class LegacyRSUG(RSUGSampler):
    """The previously proposed design (Wang et al. 2016 semantics)."""

    name = "prev_rsug"

    def __init__(self, energy_full_scale: float, rng: np.random.Generator, **overrides):
        super().__init__(legacy_design_config(**overrides), energy_full_scale, rng)
