"""Label-distance functions for the energy-computation stage.

The previous RSU-G supported only the squared distance; the new design
adds binary (Potts) and absolute distances, covering the doubleton
energies of motion estimation, image segmentation, and stereo vision
respectively (Sec. III-A and IV-B.1).
"""

from __future__ import annotations

from typing import Callable, Dict

import numpy as np

from repro.util.errors import ConfigError

#: Distance kinds the new RSU-G energy stage supports.
DISTANCE_KINDS = ("squared", "absolute", "binary")


def squared_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise squared distance ``(a - b)**2``."""
    diff = np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64)
    return diff * diff


def absolute_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise absolute distance ``|a - b|``."""
    return np.abs(np.asarray(a, dtype=np.float64) - np.asarray(b, dtype=np.float64))


def binary_distance(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise binary (Potts) distance: 0 if equal, 1 otherwise."""
    return (np.asarray(a) != np.asarray(b)).astype(np.float64)


_FUNCTIONS: Dict[str, Callable[[np.ndarray, np.ndarray], np.ndarray]] = {
    "squared": squared_distance,
    "absolute": absolute_distance,
    "binary": binary_distance,
}


def get_distance(kind: str) -> Callable[[np.ndarray, np.ndarray], np.ndarray]:
    """Look up a distance function by name."""
    if kind not in _FUNCTIONS:
        raise ConfigError(f"unknown distance kind {kind!r}; expected one of {DISTANCE_KINDS}")
    return _FUNCTIONS[kind]


def label_distance_matrix(
    n_labels: int, kind: str, truncate: float = np.inf
) -> np.ndarray:
    """Pairwise distance matrix over scalar labels ``0..n_labels-1``.

    ``truncate`` caps the distance (a truncated linear/quadratic model,
    standard in MRF vision formulations to keep depth discontinuities
    affordable).  The matrix is what the new RSU-G's label-value LUT
    plus combinational logic realizes in hardware.
    """
    if n_labels < 1:
        raise ConfigError(f"n_labels must be >= 1, got {n_labels}")
    func = get_distance(kind)
    labels = np.arange(n_labels, dtype=np.float64)
    matrix = func(labels[:, None], labels[None, :])
    return np.minimum(matrix, truncate)


def vector_label_distance_matrix(
    label_vectors: np.ndarray, kind: str, truncate: float = np.inf
) -> np.ndarray:
    """Pairwise distance matrix over vector-valued labels.

    Motion estimation labels are 2-D displacement vectors; the distance
    between two labels sums the componentwise distance (squared ->
    squared Euclidean norm, absolute -> L1 norm, binary -> vector
    inequality).
    """
    vectors = np.asarray(label_vectors, dtype=np.float64)
    if vectors.ndim != 2:
        raise ConfigError(f"label_vectors must be 2-D, got shape {vectors.shape}")
    if kind == "binary":
        equal = np.all(vectors[:, None, :] == vectors[None, :, :], axis=-1)
        return np.minimum((~equal).astype(np.float64), truncate)
    func = get_distance(kind)
    per_component = func(vectors[:, None, :], vectors[None, :, :])
    return np.minimum(per_component.sum(axis=-1), truncate)
