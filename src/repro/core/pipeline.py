"""Cycle-level timing models of the RSU-G pipelines.

Question 3 of the paper: the new microarchitecture must keep the
previous design's architectural interface and steady-state throughput
of one label evaluation per cycle.  These models compute latency,
throughput, stall cycles and replica requirements for both pipelines so
the claim can be checked quantitatively.

Previous pipeline (Fig. 2b): 5 stages — label decrement, energy
computation, energy-to-intensity LUT, RET sampling (multi-cycle,
replicated), selection.  Single-variable latency is ``7 + (M - 1)``
cycles for ``M`` labels.  A temperature update rewrites the whole
energy-to-intensity LUT through the external interface, stalling the
pipeline.

New pipeline (Fig. 10): the energy FIFO decouples the front end
(working on variable ``v+1``) from the back end (variable ``v``);
min-energy tracking adds a stage, conversion is comparison-based, and
double-buffered boundary registers absorb temperature updates with zero
stalls.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.core.params import RSUConfig
from repro.util.errors import ConfigError

#: Unit time bins observable per clock cycle: an 8x clock multiplier
#: feeding an 8-bit shift register (Sec. IV-B.5).
BINS_PER_CYCLE = 8

#: Residual excitation probability budget: a RET network may be reused
#: once the chance it still fires is below this (99.6% quiet, Sec. IV-B.6).
RESIDUAL_BUDGET = 0.004


def sampling_window_cycles(config: RSUConfig) -> int:
    """Clock cycles needed to observe ``2**Time_bits`` bins.

    ``Cycles = 2**Time_bits / 8`` (Sec. IV-B.5), at least one cycle.
    """
    return max(1, config.time_bins // BINS_PER_CYCLE)


def ret_circuit_replicas(config: RSUConfig) -> int:
    """RET-circuit replicas required to sustain one label per cycle.

    The sampling stage occupies a circuit for the whole observation
    window, so the window length in cycles is the replica count needed
    to avoid a structural hazard.
    """
    return sampling_window_cycles(config)


def ret_network_replicas(config: RSUConfig, residual: float = RESIDUAL_BUDGET) -> int:
    """RET-network replica sets required before a network can be reused.

    After the window closes with probability ``Truncation`` the network
    is still excited; after ``n`` windows the leftover probability is
    ``Truncation**n``.  The design reuses a network only once that falls
    below ``residual`` (paper: Truncation=0.5 -> 8 replicas for 99.6%).
    """
    if not 0 < residual < 1:
        raise ConfigError(f"residual must be in (0, 1), got {residual}")
    if config.truncation <= residual:
        return 1
    return math.ceil(math.log(residual) / math.log(config.truncation))


@dataclass(frozen=True)
class PipelineTiming:
    """Timing summary for one MCMC run on one RSU-G."""

    design: str
    labels: int
    variables: int
    iterations: int
    fill_latency: int
    variable_latency: int
    stall_cycles_per_iteration: int
    total_cycles: int

    @property
    def throughput_labels_per_cycle(self) -> float:
        """Steady-state label evaluations per cycle (1.0 when stall-free)."""
        work = self.labels * self.variables * self.iterations
        return work / self.total_cycles


# Stage counts.  Label decrement is the issue stage (cycle zero), so it
# adds no latency.  The previous design then has energy computation and
# the LUT ahead of the multi-cycle RET window, giving the paper's
# 7 + (M - 1) single-variable latency at a window of 4:
# 2 + 4 + 1 + (M - 1).
_LEGACY_FRONT_STAGES = 2  # energy computation, energy-to-intensity LUT
_SELECT_STAGES = 1


def _select_latch_delay(window: int) -> int:
    """Extra cycle before selection sees a one-cycle window's TTF.

    With a multi-cycle window the TTF is ready before the window's last
    cycle ends and selection absorbs it that cycle; a single-cycle
    window completes in its own issue cycle, so the result latches into
    the selection register one cycle later.
    """
    return 1 if window == 1 else 0


def legacy_variable_latency(labels: int, config: RSUConfig) -> int:
    """Cycles from first label issue to selected output, previous design."""
    if labels < 1:
        raise ConfigError(f"labels must be >= 1, got {labels}")
    window = sampling_window_cycles(config)
    return (
        _LEGACY_FRONT_STAGES
        + window
        + _SELECT_STAGES
        + _select_latch_delay(window)
        + (labels - 1)
    )


def new_variable_latency(labels: int, config: RSUConfig) -> int:
    """Cycles from first label issue to selected output, new design.

    The FIFO decoupling means a variable's labels enter the back end
    only after all ``M`` energies are enqueued (issue + energy + insert
    take 3 cycles for the first label, the remaining ``M - 1`` stream
    in), then the back end drains ``M`` pops through scale-subtract,
    compare and the RET window: ``2 * labels + window + 3`` total — the
    cycle-accurate count of :class:`repro.uarch.machines.NewMachine`.
    """
    if labels < 1:
        raise ConfigError(f"labels must be >= 1, got {labels}")
    window = sampling_window_cycles(config)
    return 2 * labels + window + 3 + _select_latch_delay(window)


def legacy_temperature_stall(config: RSUConfig, interface_bits: int = 8) -> int:
    """Stall cycles per annealing iteration for the previous design.

    The whole energy-to-intensity LUT (``2**Energy_bits`` entries of
    ``Lambda_bits``) is rewritten through the external interface while
    the pipeline is held.
    """
    lut_bits = (1 << config.energy_bits) * config.lambda_bits
    return math.ceil(lut_bits / interface_bits)


def new_temperature_stall() -> int:
    """Stall cycles per iteration for the new design: zero.

    Boundary updates stream into shadow registers (4 transfers over the
    8-bit interface) concurrently with sampling and swap atomically.
    """
    return 0


def simulate(
    design: str,
    labels: int,
    variables: int,
    iterations: int,
    config: RSUConfig,
    interface_bits: int = 8,
) -> PipelineTiming:
    """Compute total cycles for an MCMC run on a single RSU-G.

    Steady state is one label per cycle for both designs; they differ in
    fill latency and per-iteration temperature-update stalls.
    """
    if design not in ("legacy", "new"):
        raise ConfigError(f"design must be 'legacy' or 'new', got {design!r}")
    if variables < 1 or iterations < 1:
        raise ConfigError("variables and iterations must be >= 1")
    if design == "legacy":
        var_latency = legacy_variable_latency(labels, config)
        stall = legacy_temperature_stall(config, interface_bits)
    else:
        var_latency = new_variable_latency(labels, config)
        stall = new_temperature_stall()
    fill = var_latency - labels  # pipeline depth beyond the issue stream
    per_iteration = labels * variables + stall
    total = fill + per_iteration * iterations
    return PipelineTiming(
        design=design,
        labels=labels,
        variables=variables,
        iterations=iterations,
        fill_latency=fill,
        variable_latency=var_latency,
        stall_cycles_per_iteration=stall,
        total_cycles=total,
    )


def simulate_measured(
    design: str,
    labels: int,
    variables: int,
    iterations: int,
    config: RSUConfig,
    interface_bits: int = 8,
    seed: int = 0,
) -> PipelineTiming:
    """Like :func:`simulate`, but ``total_cycles`` is *executed*, not
    closed-form: the full run (every iteration preceded by a temperature
    update) goes through the event-driven structural machine of
    :mod:`repro.uarch`.

    The two agree up to one bookkeeping difference: the structural
    legacy machine spends one extra issue slot per iteration on the
    update *command* itself before the ``legacy_temperature_stall``
    rewrite cycles, which the closed form folds into steady state — so
    ``measured == closed + iterations`` for the legacy design and
    ``measured == closed`` exactly for the new design (asserted in
    ``tests/test_uarch_events.py``).  Per-iteration derived fields
    (latencies, stalls) stay closed-form.
    """
    closed = simulate(design, labels, variables, iterations, config, interface_bits)
    import numpy as np  # deferred with the uarch import below

    from repro.uarch.machines import LegacyMachine, NewMachine

    rng = np.random.default_rng(seed)
    energies = rng.integers(
        0, 1 << config.energy_bits, size=(variables * iterations, labels)
    )
    schedule = {k * variables: 40.0 for k in range(iterations)}
    if design == "legacy":
        machine = LegacyMachine(config, 40.0, rng, interface_bits=interface_bits)
    else:
        machine = NewMachine(config, 40.0, rng)
    result = machine.run_matrix(energies, temperature_schedule=schedule)
    return PipelineTiming(
        design=design,
        labels=labels,
        variables=variables,
        iterations=iterations,
        fill_latency=closed.fill_latency,
        variable_latency=closed.variable_latency,
        stall_cycles_per_iteration=closed.stall_cycles_per_iteration,
        total_cycles=result.total_cycles,
    )
