"""Entropy models for the RSU-G sampling stage.

The previous design "generates entropy at 2.89 Gb/s" (Sec. II-C): each
cycle the unit produces one binned TTF sample whose Shannon entropy
depends on the decay rate, the bin count and the truncation.  This
module provides the analytic per-sample entropy and an empirical
estimator, plus the bits-per-second roll-up used in the README's
comparison against the Intel DRNG throughput.
"""

from __future__ import annotations

import numpy as np

from repro.core.params import RSUConfig
from repro.core.ttf import bin_probabilities
from repro.util.errors import ConfigError


def shannon_entropy(probabilities: np.ndarray) -> float:
    """Shannon entropy in bits of a probability vector."""
    p = np.asarray(probabilities, dtype=np.float64)
    if np.any(p < 0) or not np.isclose(p.sum(), 1.0, atol=1e-9):
        raise ConfigError("probabilities must be non-negative and sum to 1")
    mass = p[p > 0]
    return float(-(mass * np.log2(mass)).sum())


def sample_entropy_bits(code: int, config: RSUConfig) -> float:
    """Analytic entropy (bits) of one binned TTF sample at a given code."""
    return shannon_entropy(bin_probabilities(code, config))


def entropy_rate_gbps(
    config: RSUConfig, code: int = 1, frequency_hz: float = 1e9
) -> float:
    """Entropy production in Gb/s at one sample per cycle."""
    if frequency_hz <= 0:
        raise ConfigError(f"frequency_hz must be positive, got {frequency_hz}")
    return sample_entropy_bits(code, config) * frequency_hz / 1e9


def empirical_entropy_bits(samples: np.ndarray, n_outcomes: int) -> float:
    """Plug-in entropy estimate from observed integer samples."""
    samples = np.asarray(samples, dtype=np.int64)
    if samples.size == 0:
        raise ConfigError("samples must be non-empty")
    counts = np.bincount(samples, minlength=n_outcomes).astype(np.float64)
    return shannon_entropy(counts / counts.sum())
