"""Phase-type distribution sampling with RET exponential stages.

The paper's future work (Sec. IV-D) includes "exploring sampling from
phase-type distributions".  A (acyclic) phase-type random variable is
the absorption time of a chain of exponential stages; chaining RET
circuits — feed the fluorescence of one stage into the excitation of
the next — realizes exactly that.  This module provides the functional
model: hypoexponential (distinct-rate chains) and Erlang (equal-rate
chains) samplers built from the same binned-exponential stage model as
the RSU-G, plus their analytic moments for validation.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.params import RSUConfig
from repro.core.ttf import TTFSampler
from repro.util.errors import ConfigError


def validate_stage_codes(codes: Sequence[int], config: RSUConfig) -> np.ndarray:
    """Check a chain's per-stage decay-rate codes."""
    arr = np.asarray(codes, dtype=np.int64)
    if arr.ndim != 1 or arr.size == 0:
        raise ConfigError("stage codes must be a non-empty 1-D sequence")
    if np.any(arr < 1) or np.any(arr > config.lambda_max_code):
        raise ConfigError(
            f"stage codes must be in [1, {config.lambda_max_code}], got {codes}"
        )
    return arr


def stage_moments(code: int, config: RSUConfig) -> tuple:
    """(mean, variance) of one binned stage, in bins.

    The stage redraws on timeout (the hardware re-excites the RET
    network), so its outcome is the binned exponential *conditioned on
    firing within the window*: bin ``t`` with probability
    ``p_t / (1 - tail)``.  With ``config.float_time`` the stage is the
    ideal untruncated exponential instead.
    """
    if config.float_time:
        rate = code * config.lambda0_per_bin
        return 1.0 / rate, 1.0 / rate**2
    from repro.core.ttf import bin_probabilities

    mass = bin_probabilities(code, config)
    bins = np.arange(1, config.time_bins + 1, dtype=np.float64)
    conditional = mass[:-1] / (1.0 - mass[-1])
    mean = float((bins * conditional).sum())
    second = float((bins**2 * conditional).sum())
    return mean, second - mean**2


def phase_type_mean(codes: Sequence[int], config: RSUConfig) -> float:
    """Mean absorption time (in bins): sum of the stage means."""
    arr = validate_stage_codes(codes, config)
    return float(sum(stage_moments(int(code), config)[0] for code in arr))


def phase_type_variance(codes: Sequence[int], config: RSUConfig) -> float:
    """Variance of the absorption time (bins^2): sum of stage variances."""
    arr = validate_stage_codes(codes, config)
    return float(sum(stage_moments(int(code), config)[1] for code in arr))


class PhaseTypeSampler:
    """Samples hypoexponential/Erlang times by chaining RET stages.

    Each stage is one binned exponential draw from the shared
    :class:`TTFSampler`; the absorption time is the sum of the stage
    TTFs.  A stage that exceeds its window restarts (the hardware would
    re-excite the stage's RET network), which mildly truncates the tail
    exactly as the single-stage RSU does.
    """

    def __init__(self, config: RSUConfig, rng: np.random.Generator):
        if config.float_time:
            self._float = True
        else:
            self._float = False
        self.config = config
        self._stage_sampler = TTFSampler(config, rng)

    def sample(self, codes: Sequence[int], count: int) -> np.ndarray:
        """Draw ``count`` absorption times (in bins) for a stage chain."""
        arr = validate_stage_codes(codes, self.config)
        if count < 1:
            raise ConfigError(f"count must be >= 1, got {count}")
        total = np.zeros(count, dtype=np.float64)
        for code in arr:
            stage = self._draw_stage(int(code), count)
            total += stage
        return total

    def _draw_stage(self, code: int, count: int) -> np.ndarray:
        """One stage's TTFs; timed-out draws are redrawn (re-excitation)."""
        pending = np.arange(count)
        out = np.zeros(count, dtype=np.float64)
        guard = 0
        while pending.size:
            draws = self._stage_sampler.sample(np.full((pending.size, 1), code))[:, 0]
            if self._float:
                finite = np.isfinite(draws)
            else:
                finite = draws <= self.config.time_bins
            out[pending[finite]] = draws[finite]
            pending = pending[~finite]
            guard += 1
            if guard > 10_000:
                raise ConfigError("stage redraw did not terminate; rate too low")
        return out

    def erlang(self, code: int, stages: int, count: int) -> np.ndarray:
        """Erlang(k, rate) absorption times: ``stages`` equal-rate stages."""
        if stages < 1:
            raise ConfigError(f"stages must be >= 1, got {stages}")
        return self.sample([code] * stages, count)
