"""Float software-only Gibbs sampler (the paper's quality baseline).

Samples labels with probability proportional to ``exp(-E_i / T)`` in
IEEE double precision.  Implemented with the Gumbel-max identity, which
is exact and numerically robust for arbitrarily large energies:
``argmax_i (-E_i / T + G_i)`` with iid standard Gumbel ``G_i`` is a
categorical draw with the softmax probabilities.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SamplerBackend


class SoftwareSampler(SamplerBackend):
    """IEEE-float Gibbs label sampler (MATLAB-baseline equivalent)."""

    name = "software"

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def _sample_batch(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        gumbel = -np.log(-np.log1p(-self._rng.random(energies.shape)))
        scores = -energies / temperature + gumbel
        return np.argmax(scores, axis=1)


class GreedySampler(SamplerBackend):
    """Deterministic argmin-energy backend (ICM); a testing reference.

    Equivalent to the zero-temperature limit of Gibbs sampling; useful
    for deterministic integration tests of the solver plumbing.
    """

    name = "greedy"

    def _sample_batch(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        return np.argmin(energies, axis=1)
