"""Float software-only Gibbs sampler (the paper's quality baseline).

Samples labels with probability proportional to ``exp(-E_i / T)`` in
IEEE double precision.  Implemented with the Gumbel-max identity, which
is exact and numerically robust for arbitrarily large energies:
``argmax_i (-E_i / T + G_i)`` with iid standard Gumbel ``G_i`` is a
categorical draw with the softmax probabilities.
"""

from __future__ import annotations

import numpy as np

from repro.core.base import SamplerBackend, SampleScratch, record_sampler_batch
from repro.obs import telemetry as obs
from repro.rng.streams import generator_state, set_generator_state
from repro.util.errors import DataError
from repro.util.validation import check_positive


class SoftwareSampler(SamplerBackend):
    """IEEE-float Gibbs label sampler (MATLAB-baseline equivalent)."""

    name = "software"

    def __init__(self, rng: np.random.Generator):
        self._rng = rng

    def getstate(self) -> dict:
        return {"rng": generator_state(self._rng)}

    def setstate(self, state: dict) -> None:
        set_generator_state(self._rng, state["rng"])

    def _sample_batch(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        gumbel = -np.log(-np.log1p(-self._rng.random(energies.shape)))
        scores = -energies / temperature + gumbel
        return np.argmax(scores, axis=1)

    def sample_into(
        self,
        energies: np.ndarray,
        temperature: float,
        out: np.ndarray,
        scratch: SampleScratch,
    ) -> np.ndarray:
        """Fused Gumbel-max draw: same labels and RNG stream, no allocs.

        The uniform block is prefetched into a reused buffer and the
        whole ``-log(-log1p(-u))`` / score chain runs in place, op for
        op the reference formula, so the result is byte-identical to
        :meth:`sample`.
        """
        if energies.ndim != 2 or energies.shape[1] < 1 or energies.shape[0] < 1:
            raise DataError(
                f"energies must be (n_sites, n_labels), got shape {energies.shape}"
            )
        check_positive("temperature", temperature)
        record_sampler_batch(energies.shape[0])
        tel = obs.active()
        if tel is not None:
            tel.inc("entropy.uniforms", energies.size)
        gumbel = scratch.buf("gumbel", energies.shape, np.float64)
        self._rng.random(out=gumbel)
        np.negative(gumbel, out=gumbel)
        np.log1p(gumbel, out=gumbel)
        np.negative(gumbel, out=gumbel)
        np.log(gumbel, out=gumbel)
        np.negative(gumbel, out=gumbel)
        scores = scratch.buf("gumbel_scores", energies.shape, np.float64)
        np.divide(energies, float(temperature), out=scores)
        np.negative(scores, out=scores)
        np.add(scores, gumbel, out=scores)
        np.argmax(scores, axis=1, out=out)
        return out

    @classmethod
    def sample_chains_into(
        cls,
        samplers,
        energies: np.ndarray,
        temperatures,
        out: np.ndarray,
        scratch: SampleScratch,
    ) -> np.ndarray:
        """Chain-batched Gumbel-max draw over a ``(K, sites, labels)`` block.

        Each chain's uniform slab is filled from its own generator — the
        identical block, in the identical order, that chain would draw
        running alone — then the whole ``-log(-log1p(-u))`` / score
        chain runs once over the stacked block, dividing by a
        ``(K, 1, 1)`` per-chain temperature column.  Elementwise ufuncs
        are block-shape invariant, so the result is byte-identical to K
        sequential :meth:`sample_into` calls.
        """
        if energies.ndim != 3 or energies.shape[2] < 1 or energies.shape[1] < 1:
            raise DataError(
                f"energies must be (chains, n_sites, n_labels), got shape {energies.shape}"
            )
        chains = energies.shape[0]
        record_sampler_batch(chains * energies.shape[1])
        tel = obs.active()
        if tel is not None:
            tel.inc("entropy.uniforms", energies.size)
        temps = scratch.buf("chain_temps", (chains, 1, 1), np.float64)
        for index, temperature in enumerate(temperatures):
            check_positive("temperature", temperature)
            temps[index, 0, 0] = float(temperature)
        gumbel = scratch.buf("gumbel", energies.shape, np.float64)
        for index, sampler in enumerate(samplers):
            sampler._rng.random(out=gumbel[index])
        np.negative(gumbel, out=gumbel)
        np.log1p(gumbel, out=gumbel)
        np.negative(gumbel, out=gumbel)
        np.log(gumbel, out=gumbel)
        np.negative(gumbel, out=gumbel)
        scores = scratch.buf("gumbel_scores", energies.shape, np.float64)
        np.divide(energies, temps, out=scores)
        np.negative(scores, out=scores)
        np.add(scores, gumbel, out=scores)
        np.argmax(scores, axis=-1, out=out)
        return out


class GreedySampler(SamplerBackend):
    """Deterministic argmin-energy backend (ICM); a testing reference.

    Equivalent to the zero-temperature limit of Gibbs sampling; useful
    for deterministic integration tests of the solver plumbing.
    """

    name = "greedy"

    def _sample_batch(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        return np.argmin(energies, axis=1)

    def sample_into(
        self,
        energies: np.ndarray,
        temperature: float,
        out: np.ndarray,
        scratch: SampleScratch,
    ) -> np.ndarray:
        """Allocation-free ICM step (argmin straight into ``out``)."""
        if energies.ndim != 2 or energies.shape[1] < 1 or energies.shape[0] < 1:
            raise DataError(
                f"energies must be (n_sites, n_labels), got shape {energies.shape}"
            )
        check_positive("temperature", temperature)
        record_sampler_batch(energies.shape[0])
        np.argmin(energies, axis=1, out=out)
        return out

    @classmethod
    def sample_chains_into(
        cls,
        samplers,
        energies: np.ndarray,
        temperatures,
        out: np.ndarray,
        scratch: SampleScratch,
    ) -> np.ndarray:
        """One argmin over the whole ``(K, sites, labels)`` block (no RNG)."""
        if energies.ndim != 3 or energies.shape[2] < 1 or energies.shape[1] < 1:
            raise DataError(
                f"energies must be (chains, n_sites, n_labels), got shape {energies.shape}"
            )
        for temperature in temperatures:
            check_positive("temperature", temperature)
        record_sampler_batch(energies.shape[0] * energies.shape[1])
        np.argmin(energies, axis=-1, out=out)
        return out
