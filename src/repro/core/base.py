"""Sampler-backend interface.

Every sampler used by the MCMC solver — the float software baseline,
the two RSU-G functional models, and the pseudo-RNG inverse-CDF units —
implements the same contract: given a matrix of label energies for a
batch of conditionally independent sites, draw one label per site.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.util.errors import DataError
from repro.util.validation import check_positive


class SamplerBackend(ABC):
    """Draws Gibbs labels from per-site, per-label energies.

    Subclasses implement :meth:`_sample_batch`; :meth:`sample` performs
    the shared input validation.
    """

    #: Short identifier used in experiment outputs.
    name: str = "base"

    @abstractmethod
    def _sample_batch(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        """Draw one label index per row of ``energies`` (validated input)."""

    def sample(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        """Draw one label per site.

        Parameters
        ----------
        energies:
            Array of shape ``(n_sites, n_labels)``; entry ``(s, i)`` is
            the total MRF energy of assigning label ``i`` to site ``s``
            (Eq. 1).  Lower energy means higher probability (Eq. 2).
        temperature:
            Simulated-annealing temperature ``T`` dividing the energy.

        Returns
        -------
        numpy.ndarray
            Integer label indices, shape ``(n_sites,)``.
        """
        arr = np.asarray(energies, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] < 1 or arr.shape[0] < 1:
            raise DataError(f"energies must be (n_sites, n_labels), got shape {arr.shape}")
        check_positive("temperature", temperature)
        labels = self._sample_batch(arr, float(temperature))
        return np.asarray(labels, dtype=np.int64)


def select_first_to_fire(
    ttf: np.ndarray, tie_policy: str, rng: np.random.Generator
) -> np.ndarray:
    """Return the winning label per row of binned TTFs.

    The selection stage of the RSU pipeline keeps the label with the
    shortest time-to-fluorescence.  Binned TTFs tie; the policy decides
    who wins a tie (see :data:`repro.core.params.TIE_POLICIES`).
    """
    ttf = np.asarray(ttf)
    n_labels = ttf.shape[1]
    if tie_policy == "first":
        order = np.broadcast_to(np.arange(n_labels, dtype=np.int64), ttf.shape)
    elif tie_policy == "last":
        order = np.broadcast_to(
            np.arange(n_labels - 1, -1, -1, dtype=np.int64), ttf.shape
        )
    elif tie_policy == "random":
        order = np.argsort(rng.random(ttf.shape), axis=1).astype(np.int64)
    else:
        raise DataError(f"unknown tie policy {tie_policy!r}")
    if np.issubdtype(ttf.dtype, np.floating):
        # Continuous (float-time) TTFs tie with probability zero except
        # at +inf (all labels cut off); spread those by the tie order.
        big = np.float64(1e300)
        keys = np.where(np.isinf(ttf), big * (1.0 + order / (10.0 * n_labels)), ttf)
    else:
        keys = ttf.astype(np.int64) * np.int64(n_labels) + order
    return np.argmin(keys, axis=1).astype(np.int64)
