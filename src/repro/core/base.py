"""Sampler-backend interface.

Every sampler used by the MCMC solver — the float software baseline,
the two RSU-G functional models, and the pseudo-RNG inverse-CDF units —
implements the same contract: given a matrix of label energies for a
batch of conditionally independent sites, draw one label per site.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.obs import telemetry as obs
from repro.util.errors import DataError
from repro.util.validation import check_positive


def record_sampler_batch(n_samples: int) -> None:
    """Telemetry hook: one sampler dispatch drawing ``n_samples`` labels.

    Called once per batch (per colour class per sweep), never per site,
    so the disabled path costs one ``active()`` read per dispatch.
    Every fused ``sample_into``/``sample_chains_into`` override calls
    this itself; delegating fallbacks must not, or the base
    :meth:`SamplerBackend.sample` would double count.
    """
    tel = obs.active()
    if tel is not None:
        tel.inc("sampler.batches")
        tel.inc("sampler.samples", n_samples)


class SampleScratch:
    """Named pool of reusable work buffers for the fused sampling path.

    The fused sweep kernel calls the same sampler on the same-shaped
    energy matrix every half-sweep, so every intermediate array — rates,
    uniforms, TTF bins, selection keys — can be allocated once and
    reused.  ``buf(name, shape, dtype)`` returns the cached buffer for
    that (name, shape, dtype) triple, allocating only on first use;
    steady-state calls are allocation-free.  Contents are *not* zeroed
    between calls — every consumer overwrites its buffer fully.
    """

    __slots__ = ("_buffers",)

    def __init__(self):
        self._buffers = {}

    def buf(self, name: str, shape: tuple, dtype) -> np.ndarray:
        """The reusable buffer registered under ``name`` (allocate once)."""
        key = (name, tuple(shape), np.dtype(dtype))
        buffer = self._buffers.get(key)
        if buffer is None:
            buffer = np.empty(key[1], dtype=key[2])
            self._buffers[key] = buffer
        return buffer

    @property
    def nbytes(self) -> int:
        """Total bytes held by the pool (for diagnostics/tests)."""
        return sum(b.nbytes for b in self._buffers.values())


class SamplerBackend(ABC):
    """Draws Gibbs labels from per-site, per-label energies.

    Subclasses implement :meth:`_sample_batch`; :meth:`sample` performs
    the shared input validation.
    """

    #: Short identifier used in experiment outputs.
    name: str = "base"

    @abstractmethod
    def _sample_batch(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        """Draw one label index per row of ``energies`` (validated input)."""

    def sample(self, energies: np.ndarray, temperature: float) -> np.ndarray:
        """Draw one label per site.

        Parameters
        ----------
        energies:
            Array of shape ``(n_sites, n_labels)``; entry ``(s, i)`` is
            the total MRF energy of assigning label ``i`` to site ``s``
            (Eq. 1).  Lower energy means higher probability (Eq. 2).
        temperature:
            Simulated-annealing temperature ``T`` dividing the energy.

        Returns
        -------
        numpy.ndarray
            Integer label indices, shape ``(n_sites,)``.
        """
        arr = np.asarray(energies, dtype=np.float64)
        if arr.ndim != 2 or arr.shape[1] < 1 or arr.shape[0] < 1:
            raise DataError(f"energies must be (n_sites, n_labels), got shape {arr.shape}")
        check_positive("temperature", temperature)
        record_sampler_batch(arr.shape[0])
        labels = self._sample_batch(arr, float(temperature))
        return np.asarray(labels, dtype=np.int64)

    def getstate(self) -> dict:
        """Picklable snapshot of the backend's full RNG state.

        The base implementation returns ``{}`` — correct for stateless
        backends such as :class:`~repro.core.software.GreedySampler`.
        Backends owning entropy (a :class:`numpy.random.Generator`, a
        :class:`~repro.rng.streams.BitSource`, a TTF stage) override
        both methods so a solver checkpoint can capture and restore
        every stream it consumes, bit for bit.
        """
        return {}

    def setstate(self, state: dict) -> None:
        """Restore a :meth:`getstate` snapshot; bit-exact continuation."""
        if state:
            raise DataError(
                f"{type(self).__name__} is stateless but got state {state!r}"
            )

    def sample_into(
        self,
        energies: np.ndarray,
        temperature: float,
        out: np.ndarray,
        scratch: SampleScratch,
    ) -> np.ndarray:
        """Draw one label per site into the preallocated ``out`` buffer.

        Contract: byte-identical to :meth:`sample` — same labels, same
        consumption of every RNG stream — with intermediate arrays taken
        from ``scratch`` instead of freshly allocated.  The base
        implementation simply delegates to :meth:`sample` (correct for
        every backend); samplers on the solver's hot path override it
        with a genuinely fused, allocation-free pipeline.
        """
        out[...] = self.sample(energies, temperature)
        return out

    @classmethod
    def sample_chains_into(
        cls,
        samplers: "list[SamplerBackend]",
        energies: np.ndarray,
        temperatures,
        out: np.ndarray,
        scratch: SampleScratch,
    ) -> np.ndarray:
        """Draw labels for K stacked chains in one batched call.

        ``energies`` is ``(K, n_sites, n_labels)`` with ``samplers[k]``
        owning chain ``k``'s RNG stream and ``temperatures[k]`` its
        temperature; labels land in the ``(K, n_sites)`` ``out``.

        Contract: byte-identical to K sequential
        ``samplers[k].sample_into(energies[k], ...)`` calls — same
        labels, same consumption of every chain's RNG stream.  The base
        implementation *is* that sequential loop (correct for every
        backend, including mixed per-chain state); backends on the
        batched sweep hot path override it to fill per-chain entropy
        slabs and then run the elementwise math over the whole
        ``(K * n_sites, n_labels)`` block at once.
        """
        for index, sampler in enumerate(samplers):
            sampler.sample_into(energies[index], temperatures[index], out[index], scratch)
        return out


def select_first_to_fire(
    ttf: np.ndarray, tie_policy: str, rng: np.random.Generator
) -> np.ndarray:
    """Return the winning label per row of binned TTFs.

    The selection stage of the RSU pipeline keeps the label with the
    shortest time-to-fluorescence.  Binned TTFs tie; the policy decides
    who wins a tie (see :data:`repro.core.params.TIE_POLICIES`).
    """
    ttf = np.asarray(ttf)
    n_labels = ttf.shape[1]
    if tie_policy == "first":
        order = np.broadcast_to(np.arange(n_labels, dtype=np.int64), ttf.shape)
    elif tie_policy == "last":
        order = np.broadcast_to(
            np.arange(n_labels - 1, -1, -1, dtype=np.int64), ttf.shape
        )
    elif tie_policy == "random":
        order = np.argsort(rng.random(ttf.shape), axis=1).astype(np.int64)
    else:
        raise DataError(f"unknown tie policy {tie_policy!r}")
    if np.issubdtype(ttf.dtype, np.floating):
        # Continuous (float-time) TTFs tie with probability zero except
        # at +inf (all labels cut off); spread those by the tie order.
        big = np.float64(1e300)
        keys = np.where(np.isinf(ttf), big * (1.0 + order / (10.0 * n_labels)), ttf)
    else:
        keys = ttf.astype(np.int64) * np.int64(n_labels) + order
    return np.argmin(keys, axis=1).astype(np.int64)


def select_first_to_fire_into(
    ttf: np.ndarray,
    tie_policy: str,
    rng: np.random.Generator,
    out: np.ndarray,
    scratch: SampleScratch,
) -> np.ndarray:
    """Fused :func:`select_first_to_fire`: same winners, reused buffers.

    Byte-identical to the reference selection for every tie policy and
    TTF dtype, including the RNG stream: the ``random`` policy draws one
    ``rng.random(ttf.shape)`` block exactly as the reference does, just
    into a reused buffer.  (``random`` still pays one transient
    ``argsort`` allocation — NumPy's argsort has no ``out=`` — which the
    allocation-guard test bounds explicitly.)
    """
    n_labels = ttf.shape[-1]
    if tie_policy == "first":
        order = np.broadcast_to(np.arange(n_labels, dtype=np.int64), ttf.shape)
    elif tie_policy == "last":
        order = np.broadcast_to(
            np.arange(n_labels - 1, -1, -1, dtype=np.int64), ttf.shape
        )
    elif tie_policy == "random":
        uniforms = scratch.buf("select_uniforms", ttf.shape, np.float64)
        rng.random(out=uniforms)
        order = np.argsort(uniforms, axis=-1)
    else:
        raise DataError(f"unknown tie policy {tie_policy!r}")
    keys = _selection_keys(ttf, order, scratch)
    np.argmin(keys, axis=-1, out=out)
    return out


def _selection_keys(
    ttf: np.ndarray, order: np.ndarray, scratch: SampleScratch
) -> np.ndarray:
    """Fused selection-key construction shared by the 2-D and chain-batched
    ``select_first_to_fire*_into`` paths.  Purely elementwise, so it is
    shape-agnostic: a ``(K, n_sites, n_labels)`` block produces exactly
    the keys of K independent ``(n_sites, n_labels)`` calls.
    """
    n_labels = ttf.shape[-1]
    if np.issubdtype(ttf.dtype, np.floating):
        # Mirror the reference float-key construction op for op:
        # big * (1.0 + order / (10 * n_labels)) where the TTF is +inf.
        big = np.float64(1e300)
        tie_keys = scratch.buf("select_tie_keys", ttf.shape, np.float64)
        np.divide(order, 10.0 * n_labels, out=tie_keys)
        np.add(tie_keys, 1.0, out=tie_keys)
        np.multiply(tie_keys, big, out=tie_keys)
        infinite = scratch.buf("select_inf_mask", ttf.shape, np.bool_)
        np.isinf(ttf, out=infinite)
        keys = scratch.buf("select_float_keys", ttf.shape, np.float64)
        np.copyto(keys, ttf)
        np.copyto(keys, tie_keys, where=infinite)
    else:
        # Keys inherit the TTF's integer dtype (the caller guarantees
        # ``ttf * n_labels + order`` fits it); the values — and thus the
        # argmin winners — match the reference's int64 keys exactly.
        keys = scratch.buf("select_int_keys", ttf.shape, ttf.dtype)
        np.multiply(ttf, ttf.dtype.type(n_labels), out=keys)
        np.add(keys, order, out=keys)
    return keys


def select_first_to_fire_chains_into(
    ttf: np.ndarray,
    tie_policy: str,
    rngs,
    out: np.ndarray,
    scratch: SampleScratch,
) -> np.ndarray:
    """Chain-batched :func:`select_first_to_fire_into`.

    ``ttf`` is ``(K, n_sites, n_labels)`` and ``rngs[k]`` supplies chain
    ``k``'s tie-break entropy.  Byte-identical to K sequential
    :func:`select_first_to_fire_into` calls: the ``random`` policy fills
    one per-chain uniform slab from each chain's own generator — the
    same block, in the same order, that chain would draw running alone —
    and the key construction and argmin are elementwise/rowwise, so
    batching over the chain axis cannot change any winner.
    """
    n_labels = ttf.shape[-1]
    if tie_policy == "first":
        order = np.broadcast_to(np.arange(n_labels, dtype=np.int64), ttf.shape)
    elif tie_policy == "last":
        order = np.broadcast_to(
            np.arange(n_labels - 1, -1, -1, dtype=np.int64), ttf.shape
        )
    elif tie_policy == "random":
        uniforms = scratch.buf("select_uniforms", ttf.shape, np.float64)
        for index, rng in enumerate(rngs):
            rng.random(out=uniforms[index])
        order = np.argsort(uniforms, axis=-1)
    else:
        raise DataError(f"unknown tie policy {tie_policy!r}")
    keys = _selection_keys(ttf, order, scratch)
    np.argmin(keys, axis=-1, out=out)
    return out
