"""Device non-ideality models: SPAD dark counts and excitation bleed-through.

Two physical effects the paper discusses qualitatively:

* **Dark counts** (Sec. II-B): a SPAD occasionally fires with no photon.
  At ~kHz dark-count rates against a 1 GHz RSU-G clock the paper calls
  the effect negligible; :class:`NoisyTTFSampler` lets us verify that
  claim quantitatively and explore where it stops holding.
* **Excitation bleed-through** (Sec. IV-B.6): a RET network truncated at
  probability ``Truncation`` may still hold excited chromophores; if it
  is reused too soon, a leftover photon appears as a spuriously early
  sample.  After resting ``n`` windows the residual probability is
  ``Truncation**n``; the design reuses a network only when that falls
  below the 0.4% budget (hence 8 replicas at Truncation = 0.5).
"""

from __future__ import annotations

from typing import Optional

import numpy as np

from repro.core.params import RSUConfig
from repro.core.pipeline import RESIDUAL_BUDGET, ret_network_replicas
from repro.core.ttf import TTFSampler
from repro.util.errors import ConfigError
from repro.util.validation import check_finite


def dark_count_probability_per_window(
    config: RSUConfig, dark_count_rate_hz: float, frequency_hz: float = 1e9
) -> float:
    """Probability a dark count lands inside one observation window.

    The window spans ``2**time_bits`` bins at ``bins_per_cycle * f``
    bins/s; a Poisson dark-count process at ``dark_count_rate_hz``
    contributes ``1 - exp(-rate * window_seconds)``.
    """
    check_finite("dark_count_rate_hz", dark_count_rate_hz)
    check_finite("frequency_hz", frequency_hz)
    if dark_count_rate_hz < 0:
        raise ConfigError(f"dark_count_rate_hz must be >= 0, got {dark_count_rate_hz}")
    if frequency_hz <= 0:
        raise ConfigError(f"frequency_hz must be positive, got {frequency_hz}")
    from repro.core.pipeline import BINS_PER_CYCLE

    window_seconds = config.time_bins / (BINS_PER_CYCLE * frequency_hz)
    return 1.0 - np.exp(-dark_count_rate_hz * window_seconds)


def residual_excitation_probability(config: RSUConfig, rest_windows: int) -> float:
    """Probability a reused RET network still fires after resting.

    ``rest_windows`` counts the observation windows since the network
    was last excited (its own window included).
    """
    if rest_windows < 1:
        raise ConfigError(f"rest_windows must be >= 1, got {rest_windows}")
    return config.truncation**rest_windows


class NoisyTTFSampler(TTFSampler):
    """TTF sampler with injected device non-idealities.

    Parameters
    ----------
    dark_prob:
        Probability per label evaluation that a dark count fires at a
        uniformly random bin within the window.
    bleed_prob:
        Probability per label evaluation that leftover excitation from
        a previous sample fires, also at a uniform bin.  In a correctly
        replicated design this equals
        ``residual_excitation_probability(config, ret_network_replicas(config))``.

    A spurious photon *shortens* the observed TTF if it lands before
    the genuine one (SPADs report the first detection), which is
    exactly how these effects corrupt first-to-fire sampling.
    """

    def __init__(
        self,
        config: RSUConfig,
        rng: np.random.Generator,
        dark_prob: float = 0.0,
        bleed_prob: float = 0.0,
    ):
        super().__init__(config, rng)
        for name, value in (("dark_prob", dark_prob), ("bleed_prob", bleed_prob)):
            if not 0.0 <= value <= 1.0:
                raise ConfigError(f"{name} must be in [0, 1], got {value}")
        self.dark_prob = dark_prob
        self.bleed_prob = bleed_prob
        self._noise_rng = rng

    def sample(self, codes: np.ndarray) -> np.ndarray:
        ttf = super().sample(codes)
        if self.config.float_time:
            raise ConfigError("non-ideality injection requires binned time")
        spurious_prob = 1.0 - (1.0 - self.dark_prob) * (1.0 - self.bleed_prob)
        if spurious_prob <= 0.0:
            return ttf
        hit = self._noise_rng.random(ttf.shape) < spurious_prob
        spurious_bin = self._noise_rng.integers(
            1, self.config.time_bins + 1, size=ttf.shape
        )
        # A spurious photon is observed only if it precedes the real one
        # (or the real one never came).  Cut-off labels (code 0) have no
        # network illuminated, so they cannot produce spurious photons.
        active = np.asarray(codes) > 0
        corrupted = np.where(hit & active, np.minimum(ttf, spurious_bin), ttf)
        return corrupted.astype(np.int64)


def expected_spurious_rate(config: RSUConfig, replicas: Optional[int] = None) -> float:
    """Per-evaluation spurious-sample probability of a replica design.

    With ``replicas`` RET-network sets cycling, a network rests
    ``replicas`` windows between uses.  The paper's design point targets
    :data:`~repro.core.pipeline.RESIDUAL_BUDGET` (0.4%).
    """
    if replicas is None:
        replicas = ret_network_replicas(config)
    return residual_excitation_probability(config, replicas)


def meets_residual_budget(config: RSUConfig, replicas: Optional[int] = None) -> bool:
    """Whether a replica count meets the paper's 99.6% quiet target."""
    return expected_spurious_rate(config, replicas) <= RESIDUAL_BUDGET + 1e-12
