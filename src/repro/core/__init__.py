"""The paper's primary contribution: RSU-G functional and timing models.

Public surface:

* :class:`RSUConfig` and the :func:`new_design_config` /
  :func:`legacy_design_config` factory functions — the design space.
* Sampler backends implementing the shared
  :class:`~repro.core.base.SamplerBackend` contract:
  :class:`SoftwareSampler` (float baseline), :class:`RSUGSampler`
  (arbitrary design point), :class:`NewRSUG`, :class:`LegacyRSUG`, and
  :class:`CDFSampler` (pure-CMOS pseudo-RNG unit).
* Stage models — :class:`EnergyStage`, :func:`lambda_codes`,
  :class:`TTFSampler` — for design-space analysis (Figs. 5, 7, 8).
* Cycle-level pipeline timing in :mod:`repro.core.pipeline` and the
  entropy model in :mod:`repro.core.entropy`.
"""

from repro.core.analytic import (
    expected_ratio_error,
    outcome_distributions,
    win_probabilities,
)
from repro.core.base import (
    SamplerBackend,
    SampleScratch,
    select_first_to_fire,
    select_first_to_fire_chains_into,
    select_first_to_fire_into,
)
from repro.core.cdf_sampler import CDFSampler
from repro.core.convert import (
    boundary_table,
    conversion_lut,
    conversion_memory_bits,
    lambda_codes,
    lambda_codes_by_boundaries,
    lambda_codes_lut,
    lambda_codes_lut_into,
    lambda_codes_lut_stacked_into,
    legacy_lut,
    lut_enabled,
    set_lut_enabled,
    stacked_conversion_lut,
    use_lut,
)
from repro.core.distance import (
    DISTANCE_KINDS,
    get_distance,
    label_distance_matrix,
    vector_label_distance_matrix,
)
from repro.core.energy import EnergyStage
from repro.core.entropy import (
    empirical_entropy_bits,
    entropy_rate_gbps,
    sample_entropy_bits,
    shannon_entropy,
)
from repro.core.mh import RSUMHSampler, SoftwareMHSampler
from repro.core.nonideal import (
    NoisyTTFSampler,
    dark_count_probability_per_window,
    expected_spurious_rate,
    meets_residual_budget,
    residual_excitation_probability,
)
from repro.core.params import (
    TIE_POLICIES,
    RSUConfig,
    legacy_design_config,
    new_design_config,
)
from repro.core.phase_type import (
    PhaseTypeSampler,
    phase_type_mean,
    phase_type_variance,
    stage_moments,
)
from repro.core.rsu import LegacyRSUG, NewRSUG, RSUGSampler
from repro.core.software import GreedySampler, SoftwareSampler
from repro.core.ttf import TTFSampler, bin_probabilities, cutoff_bin, no_sample_bin

__all__ = [
    "expected_ratio_error",
    "outcome_distributions",
    "win_probabilities",
    "RSUMHSampler",
    "SoftwareMHSampler",
    "SamplerBackend",
    "SampleScratch",
    "select_first_to_fire",
    "select_first_to_fire_chains_into",
    "select_first_to_fire_into",
    "CDFSampler",
    "lambda_codes_lut_into",
    "lambda_codes_lut_stacked_into",
    "stacked_conversion_lut",
    "boundary_table",
    "conversion_lut",
    "conversion_memory_bits",
    "lambda_codes",
    "lambda_codes_by_boundaries",
    "lambda_codes_lut",
    "legacy_lut",
    "lut_enabled",
    "set_lut_enabled",
    "use_lut",
    "DISTANCE_KINDS",
    "get_distance",
    "label_distance_matrix",
    "vector_label_distance_matrix",
    "EnergyStage",
    "empirical_entropy_bits",
    "entropy_rate_gbps",
    "sample_entropy_bits",
    "shannon_entropy",
    "NoisyTTFSampler",
    "dark_count_probability_per_window",
    "expected_spurious_rate",
    "meets_residual_budget",
    "residual_excitation_probability",
    "PhaseTypeSampler",
    "phase_type_mean",
    "phase_type_variance",
    "stage_moments",
    "TIE_POLICIES",
    "RSUConfig",
    "legacy_design_config",
    "new_design_config",
    "LegacyRSUG",
    "NewRSUG",
    "RSUGSampler",
    "GreedySampler",
    "SoftwareSampler",
    "TTFSampler",
    "bin_probabilities",
    "cutoff_bin",
    "no_sample_bin",
]
