"""Exact win probabilities for binned first-to-fire selection.

The Monte-Carlo path (``TTFSampler`` + ``select_first_to_fire``) is the
hardware model; this module computes the same win probabilities in
closed form from the per-bin mass of each competitor, including tie
resolution.  It gives an exact version of Fig. 7 (no sampling error)
and powers property tests that pin the sampler to its distribution.

For labels with per-bin mass ``p_j(t)`` over bins ``1..T`` plus the
no-sample outcome, and survival ``S_j(t) = P(TTF_j > t)``:

* ``random`` ties — label ``i`` fires at ``t`` and beats the others,
  sharing uniformly with any that tie:
  ``P(i) = sum_t p_i(t) * E[1 / (1 + K_t)]`` where ``K_t`` counts the
  other labels landing in the same bin and the expectation is over the
  others' (tie, later) outcomes — computed exactly via the elementary
  symmetric polynomial in the tie probabilities.
* ``first`` ties — ``i`` wins iff every lower-index label fires
  strictly later and every higher-index label fires no earlier.
* ``last`` — the mirror image.

All-timeout outcomes (every label in the no-sample bin) are resolved by
the same tie rule over the sentinel bin.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.params import RSUConfig
from repro.core.ttf import bin_probabilities
from repro.util.errors import ConfigError


def outcome_distributions(codes: Sequence[int], config: RSUConfig) -> np.ndarray:
    """Per-label mass over bins 1..T plus the no-sample outcome.

    Shape ``(M, T + 1)``; cut-off labels (code 0) put all mass on the
    no-sample outcome but, unlike timed-out labels, can never win a tie
    there — callers must handle code 0 explicitly (this function treats
    it as never firing, which :func:`win_probabilities` does).
    """
    masses = []
    for code in codes:
        if code < 0:
            raise ConfigError("codes must be non-negative")
        if code == 0:
            mass = np.zeros(config.time_bins + 1)
            mass[-1] = 1.0
        else:
            mass = bin_probabilities(int(code), config)
        masses.append(mass)
    return np.asarray(masses)


def _tie_share_factor(tie_probs: np.ndarray, later_probs: np.ndarray) -> float:
    """``E[1 / (1 + K)]`` with K ~ sum of independent Bernoullis.

    ``tie_probs[j]`` is the probability competitor ``j`` ties and
    ``later_probs[j]`` that it fires strictly later; outcomes where a
    competitor fires *earlier* contribute nothing (the caller already
    restricted to the event that no one fired earlier), so the two
    probabilities need not sum to one — the remaining mass is "i has
    already lost", excluded by conditioning through multiplication.
    """
    # Polynomial coefficients of prod_j (later_j + tie_j * x).
    coeffs = np.array([1.0])
    for tie, later in zip(tie_probs, later_probs):
        updated = np.zeros(len(coeffs) + 1)
        updated[:-1] += coeffs * later
        updated[1:] += coeffs * tie
        coeffs = updated
    weights = 1.0 / (1.0 + np.arange(len(coeffs)))
    return float((coeffs * weights).sum())


def win_probabilities(
    codes: Sequence[int], config: RSUConfig, tie_policy: str = "random"
) -> np.ndarray:
    """Exact P(label i is selected) for a set of decay-rate codes.

    Cut-off labels (code 0) can only be selected when *every* label is
    cut off; then the tie rule applies over the cutoff outcome.
    """
    codes = list(codes)
    m = len(codes)
    if m < 1:
        raise ConfigError("codes must be non-empty")
    if tie_policy not in ("random", "first", "last"):
        raise ConfigError(f"unknown tie policy {tie_policy!r}")
    if all(c == 0 for c in codes):
        if tie_policy == "random":
            return np.full(m, 1.0 / m)
        winner = 0 if tie_policy == "first" else m - 1
        out = np.zeros(m)
        out[winner] = 1.0
        return out
    mass = outcome_distributions(codes, config)
    # Survival beyond each outcome index (the sentinel is the last).
    survival = 1.0 - np.cumsum(mass, axis=1)
    active = np.asarray([c > 0 for c in codes])
    # A cut-off label is excluded from the comparison entirely (the
    # conversion's MSB flags it): it never ties and never beats anyone —
    # model it as always firing later.
    for j in range(m):
        if not active[j]:
            mass[j, :] = 0.0
            survival[j, :] = 1.0
    n_outcomes = mass.shape[1]
    wins = np.zeros(m)
    for i in range(m):
        if not active[i]:
            continue  # beaten by any active label; never wins a tie at the sentinel
        others = [j for j in range(m) if j != i]
        total = 0.0
        for t in range(n_outcomes):
            p_here = mass[i, t]
            if p_here == 0.0:
                continue
            if tie_policy == "random":
                tie = mass[others, t]
                later = survival[others, t]
                total += p_here * _tie_share_factor(tie, later)
            else:
                factor = 1.0
                for j in others:
                    beats_tie = (j > i) if tie_policy == "first" else (j < i)
                    if beats_tie:
                        factor *= mass[j, t] + survival[j, t]  # tie or later
                    else:
                        factor *= survival[j, t]  # must be strictly later
                total += p_here * factor
        wins[i] = total
    # The sentinel row above already covers all-timeout ties among
    # active labels; cut-off labels keep probability zero.
    return wins


def expected_ratio_error(
    ratio: int, truncation: float, time_bits: int = 5, tie_policy: str = "random"
) -> float:
    """Exact version of Fig. 7's relative error at one design point."""
    if ratio < 1:
        raise ConfigError(f"ratio must be >= 1, got {ratio}")
    config = RSUConfig(time_bits=time_bits, truncation=truncation)
    lam_max = config.lambda_max_code
    if lam_max % ratio != 0:
        raise ConfigError(f"ratio {ratio} does not divide lambda_max {lam_max}")
    wins = win_probabilities([lam_max, lam_max // ratio], config, tie_policy)
    if wins[1] == 0:
        return float("inf")
    realized = wins[0] / wins[1]
    return abs(realized - ratio) / ratio
