"""Checksummed on-disk envelope shared by the result cache and checkpoints.

A crash — of this process, of a pool worker, or of the machine — can
leave a half-written pickle on disk.  Unpickling such a file either
raises (best case) or silently yields a truncated object (worst case).
Every durable artifact of the experiment runtime therefore goes through
one envelope format:

    ``MAGIC (4 bytes) | format version (u32 LE) | SHA-256(payload) | payload``

Readers verify the magic, the version, and the digest before a single
byte of the payload is unpickled; anything that fails is reported as a
structured :class:`EnvelopeError` so callers can quarantine the file and
recompute instead of propagating garbage.

Writes are atomic (write to a temporary sibling, ``os.replace``), and
the temporary file is removed in a ``finally`` guarded against
secondary ``OSError`` — a failing write never leaks ``*.tmp`` litter
and never masks the original exception.
"""

from __future__ import annotations

import hashlib
import os
import pickle
import struct
import tempfile
from pathlib import Path

from repro.util.errors import DataError

#: Leading bytes of every envelope; rejects foreign/legacy files cheaply.
MAGIC = b"RPR1"

#: MAGIC + u32 version + 32-byte SHA-256 digest.
HEADER_SIZE = len(MAGIC) + 4 + 32


class EnvelopeError(DataError):
    """A durable artifact failed integrity verification.

    ``reason`` is a stable machine-readable token: ``truncated``,
    ``bad_magic``, ``version_mismatch``, ``checksum_mismatch``, or
    ``unpicklable``.
    """

    def __init__(self, reason: str, message: str):
        super().__init__(message)
        self.reason = reason


def wrap_payload(payload: bytes, version: int) -> bytes:
    """Frame ``payload`` in the checksummed envelope."""
    digest = hashlib.sha256(payload).digest()
    return MAGIC + struct.pack("<I", version) + digest + payload


def unwrap_payload(blob: bytes, version: int) -> bytes:
    """Verify and strip the envelope; raises :class:`EnvelopeError`."""
    # Magic first: a short foreign/legacy file is "not an envelope"
    # (bad_magic), not a truncated one of ours.
    if blob[: len(MAGIC)] != MAGIC:
        raise EnvelopeError("bad_magic", "envelope magic mismatch")
    if len(blob) < HEADER_SIZE:
        raise EnvelopeError(
            "truncated", f"envelope shorter than its {HEADER_SIZE}-byte header"
        )
    (found_version,) = struct.unpack_from("<I", blob, len(MAGIC))
    if found_version != version:
        raise EnvelopeError(
            "version_mismatch",
            f"envelope format version {found_version} != expected {version}",
        )
    digest = blob[len(MAGIC) + 4 : HEADER_SIZE]
    payload = blob[HEADER_SIZE:]
    if hashlib.sha256(payload).digest() != digest:
        raise EnvelopeError("checksum_mismatch", "envelope checksum mismatch")
    return payload


def atomic_write_bytes(path: os.PathLike, blob: bytes) -> None:
    """Write ``blob`` to ``path`` atomically (temp sibling + rename).

    The temporary file lives in the target directory so the final
    ``os.replace`` is a same-filesystem rename; on any failure the
    temporary is unlinked without masking the original exception.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp = tempfile.mkstemp(dir=target.parent, suffix=".tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp, target)
        tmp = None
    finally:
        if tmp is not None:
            try:
                os.unlink(tmp)
            except OSError:
                pass


def dump_envelope(path: os.PathLike, value, version: int) -> None:
    """Pickle ``value`` and persist it atomically inside an envelope."""
    payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
    atomic_write_bytes(path, wrap_payload(payload, version))


def load_envelope(path: os.PathLike, version: int):
    """Load a value written by :func:`dump_envelope`.

    Raises ``FileNotFoundError``/``OSError`` for absent/unreadable files
    and :class:`EnvelopeError` for anything that fails verification —
    including a checksum-valid payload that no longer unpickles (code
    drift), reported as ``unpicklable``.
    """
    with open(path, "rb") as handle:
        blob = handle.read()
    payload = unwrap_payload(blob, version)
    try:
        return pickle.loads(payload)
    except Exception as exc:  # pickle raises a menagerie; all mean "bad entry"
        raise EnvelopeError("unpicklable", f"payload failed to unpickle: {exc}") from exc
