"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch one base type at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """An RSU or solver configuration is invalid or inconsistent."""


class DataError(ReproError, ValueError):
    """A dataset or input array does not satisfy a required contract."""
