"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers
can catch one base type at API boundaries.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigError(ReproError, ValueError):
    """An RSU or solver configuration is invalid or inconsistent."""


class DataError(ReproError, ValueError):
    """A dataset or input array does not satisfy a required contract."""


class FaultError(ReproError, RuntimeError):
    """An injected or detected hardware fault surfaced to the caller."""


class TransientFaultError(FaultError):
    """A fault that may clear on retry (e.g. a unit dropped one sample)."""


class UnrecoverableFaultError(FaultError):
    """The device cannot make progress: retries and spares are exhausted."""
