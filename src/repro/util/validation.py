"""Small argument-validation helpers used across the package."""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigError, DataError


def check_finite(name: str, value: float) -> None:
    """Raise :class:`ConfigError` unless ``value`` is a finite number."""
    if not np.isfinite(value):
        raise ConfigError(f"{name} must be finite, got {value!r}")


def check_positive(name: str, value: float) -> None:
    """Raise :class:`ConfigError` unless ``value`` is strictly positive."""
    if not value > 0:
        raise ConfigError(f"{name} must be > 0, got {value!r}")


def check_probability(name: str, value: float) -> None:
    """Raise :class:`ConfigError` unless ``value`` lies in the open (0, 1)."""
    if not 0.0 < value < 1.0:
        raise ConfigError(f"{name} must be in (0, 1), got {value!r}")


def check_in_range(name: str, value: float, low: float, high: float) -> None:
    """Raise :class:`ConfigError` unless ``low <= value <= high``."""
    if not low <= value <= high:
        raise ConfigError(f"{name} must be in [{low}, {high}], got {value!r}")


def check_shape_2d(name: str, array: np.ndarray) -> None:
    """Raise :class:`DataError` unless ``array`` is a non-empty 2-D array."""
    arr = np.asarray(array)
    if arr.ndim != 2 or arr.size == 0:
        raise DataError(f"{name} must be a non-empty 2-D array, got shape {arr.shape}")
