"""Shared low-level utilities: quantization, validation, and errors."""

from repro.util.errors import (
    ConfigError,
    DataError,
    FaultError,
    ReproError,
    TransientFaultError,
    UnrecoverableFaultError,
)
from repro.util.quantize import (
    clamp,
    nearest_pow2,
    pow2_floor,
    quantize_to_bits,
    quantize_unsigned,
    unsigned_max,
)
from repro.util.validation import (
    check_finite,
    check_in_range,
    check_positive,
    check_probability,
    check_shape_2d,
)

__all__ = [
    "ConfigError",
    "DataError",
    "FaultError",
    "ReproError",
    "TransientFaultError",
    "UnrecoverableFaultError",
    "clamp",
    "nearest_pow2",
    "pow2_floor",
    "quantize_to_bits",
    "quantize_unsigned",
    "unsigned_max",
    "check_finite",
    "check_in_range",
    "check_positive",
    "check_probability",
    "check_shape_2d",
]
