"""Fixed-point quantization helpers.

The RSU-G pipeline works with small unsigned integers: 8-bit energies,
``Lambda_bits``-wide decay-rate codes, ``Time_bits``-wide time bins.
These helpers centralize the rounding/clamping conventions so every
stage model quantizes the same way.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigError


def unsigned_max(bits: int) -> int:
    """Largest value representable in an unsigned ``bits``-wide field."""
    if bits < 1:
        raise ConfigError(f"bit width must be >= 1, got {bits}")
    return (1 << bits) - 1


def clamp(values: np.ndarray, low: float, high: float) -> np.ndarray:
    """Clamp ``values`` into ``[low, high]`` (returns a new array)."""
    if low > high:
        raise ConfigError(f"clamp range is empty: [{low}, {high}]")
    return np.clip(values, low, high)


def quantize_unsigned(values: np.ndarray, bits: int) -> np.ndarray:
    """Round ``values`` to the nearest integer and clamp to ``bits`` wide.

    Negative inputs clamp to zero; values above the field maximum clamp
    to the maximum.  The result dtype is ``int64`` so downstream integer
    arithmetic cannot overflow for any supported bit width.
    """
    top = unsigned_max(bits)
    rounded = np.rint(np.asarray(values, dtype=np.float64))
    return np.clip(rounded, 0, top).astype(np.int64)


def quantize_to_bits(values: np.ndarray, bits: int, full_scale: float) -> np.ndarray:
    """Map ``values`` in ``[0, full_scale]`` onto the unsigned grid.

    ``full_scale`` maps to the field maximum ``2**bits - 1``.  This is the
    scaling an energy-computation stage applies before emitting an
    ``Energy_bits``-wide value.
    """
    if full_scale <= 0:
        raise ConfigError(f"full_scale must be positive, got {full_scale}")
    top = unsigned_max(bits)
    scaled = np.asarray(values, dtype=np.float64) * (top / full_scale)
    return quantize_unsigned(scaled, bits)


def pow2_floor(values: np.ndarray) -> np.ndarray:
    """Largest power of two that is <= each positive value; 0 stays 0.

    Used by the 2^n lambda approximation: an integer decay-rate code is
    truncated down to a power of two so the RET circuit needs only
    ``Lambda_bits`` unique concentrations.
    """
    arr = np.asarray(values, dtype=np.int64)
    if np.any(arr < 0):
        raise ConfigError("pow2_floor expects non-negative integers")
    out = np.zeros_like(arr)
    positive = arr > 0
    exponents = np.floor(np.log2(arr[positive].astype(np.float64))).astype(np.int64)
    out[positive] = np.int64(1) << exponents
    return out


def nearest_pow2(values: np.ndarray) -> np.ndarray:
    """Power of two nearest to each positive value (ties round down); 0 stays 0."""
    arr = np.asarray(values, dtype=np.int64)
    if np.any(arr < 0):
        raise ConfigError("nearest_pow2 expects non-negative integers")
    lower = pow2_floor(arr)
    upper = np.where(arr > 0, lower * 2, 0)
    use_upper = (upper - arr) < (arr - lower)
    return np.where(use_upper, upper, lower)
