"""Unit tests for the telemetry core and its exporters."""

import json
import math
from concurrent.futures import ProcessPoolExecutor

import pytest

from repro.obs import telemetry as obs
from repro.obs.exporters import (
    derived_metrics,
    load_trace,
    parse_jsonl,
    prometheus_name,
    render_report,
    telemetry_from_events,
    to_jsonl,
    to_prometheus,
    write_jsonl,
)
from repro.obs.telemetry import (
    SNAPSHOT_VERSION,
    Counter,
    Gauge,
    Histogram,
    Telemetry,
)
from repro.util import ConfigError, DataError


@pytest.fixture(autouse=True)
def _no_ambient_telemetry():
    """Each test starts and ends with telemetry disabled."""
    obs.disable()
    yield
    obs.disable()


class TestInstruments:
    def test_counter_increments(self):
        counter = Counter()
        counter.inc()
        counter.inc(4)
        assert counter.value == 5

    def test_counter_rejects_negative(self):
        with pytest.raises(ConfigError):
            Counter().inc(-1)

    def test_gauge_nan_until_set(self):
        gauge = Gauge()
        assert math.isnan(gauge.value)
        gauge.set(3)
        assert gauge.value == 3.0

    def test_histogram_summary(self):
        histogram = Histogram()
        for value in (2.0, 1.0, 4.0):
            histogram.observe(value)
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(7.0 / 3)
        assert (histogram.min, histogram.max) == (1.0, 4.0)

    def test_empty_histogram_to_dict_has_null_bounds(self):
        assert Histogram().to_dict() == {
            "count": 0, "total": 0.0, "min": None, "max": None,
        }

    def test_histogram_merge(self):
        left, right = Histogram(), Histogram()
        left.observe(1.0)
        right.observe(5.0)
        right.observe(3.0)
        left.merge_dict(right.to_dict())
        assert left.count == 3
        assert (left.min, left.max) == (1.0, 5.0)
        left.merge_dict(Histogram().to_dict())  # empty merge is a no-op
        assert left.count == 3


class TestTelemetry:
    def test_instruments_created_on_demand(self):
        tel = Telemetry()
        tel.inc("a.b", 2)
        tel.set_gauge("c", 1.5)
        tel.observe("d", 0.25)
        assert tel.value("a.b") == 2
        assert tel.value("never.touched") == 0
        assert tel.value("never.touched", default=-1) == -1
        assert tel.gauges["c"].value == 1.5
        assert tel.histograms["d"].count == 1

    def test_ops_counts_every_recording(self):
        tel = Telemetry()
        tel.inc("a")
        tel.set_gauge("b", 1)
        tel.observe("c", 1)
        with tel.span("d"):
            pass
        assert tel.ops == 4

    def test_rejects_bad_ring_capacity(self):
        with pytest.raises(ConfigError):
            Telemetry(max_span_events=0)

    def test_span_nesting_depths(self):
        tel = Telemetry()
        with tel.span("outer"):
            with tel.span("inner"):
                pass
        events = list(tel.spans)
        # Inner closes first; depths record the nesting.
        assert [(e.name, e.depth) for e in events] == [("inner", 1), ("outer", 0)]
        assert tel.histograms["span.outer"].count == 1
        assert tel.histograms["span.inner"].count == 1
        assert all(e.duration_s >= 0 for e in events)

    def test_span_ring_drops_oldest(self):
        tel = Telemetry(max_span_events=2)
        for _ in range(5):
            with tel.span("s"):
                pass
        assert len(tel.spans) == 2
        assert tel.spans_dropped == 3
        assert tel.histograms["span.s"].count == 5  # histogram never drops

    def test_time_call_returns_result(self):
        tel = Telemetry()
        assert tel.time_call("f", lambda: 42) == 42
        assert tel.histograms["span.f"].count == 1


class TestAmbientSwitch:
    def test_disabled_by_default(self):
        assert obs.active() is None
        assert not obs.enabled()

    def test_enable_disable(self):
        tel = obs.enable()
        assert obs.active() is tel
        assert obs.enabled()
        assert obs.disable() is tel
        assert obs.active() is None

    def test_use_telemetry_restores_previous(self):
        outer = obs.enable()
        with obs.use_telemetry() as inner:
            assert obs.active() is inner
            assert inner is not outer
        assert obs.active() is outer

    def test_use_telemetry_accepts_instance(self):
        mine = Telemetry()
        with obs.use_telemetry(mine) as tel:
            assert tel is mine
        assert obs.active() is None


def _metered_worker(amount):
    """Meter inside a worker process and ship the snapshot home."""
    with obs.use_telemetry() as tel:
        tel.inc("worker.units", amount)
        tel.observe("worker.latency", amount / 10.0)
    return tel.snapshot()


class TestSnapshotMerge:
    def test_counters_add_gauges_last_write_wins(self):
        a, b = Telemetry(), Telemetry()
        a.inc("n", 2)
        a.set_gauge("g", 1)
        b.inc("n", 3)
        b.set_gauge("g", 9)
        b.observe("h", 4)
        a.merge(b.snapshot())
        assert a.value("n") == 5
        assert a.gauges["g"].value == 9
        assert a.histograms["h"].count == 1
        assert a.merged_snapshots == 1

    def test_snapshot_is_json_serializable(self):
        tel = Telemetry()
        tel.inc("n")
        tel.set_gauge("g", 2)
        with tel.span("s"):
            pass
        round_tripped = json.loads(json.dumps(tel.snapshot()))
        fresh = Telemetry()
        fresh.merge(round_tripped)
        assert fresh.value("n") == 1

    def test_merge_rejects_wrong_version(self):
        tel = Telemetry()
        snapshot = tel.snapshot()
        snapshot["version"] = SNAPSHOT_VERSION + 1
        with pytest.raises(DataError):
            Telemetry().merge(snapshot)

    def test_merge_rejects_non_snapshot(self):
        with pytest.raises(DataError):
            Telemetry().merge({"bogus": True})

    def test_merge_across_processes(self):
        parent = Telemetry()
        with ProcessPoolExecutor(max_workers=2) as pool:
            for snapshot in pool.map(_metered_worker, [10, 20, 30]):
                parent.merge(snapshot)
        assert parent.value("worker.units") == 60
        assert parent.histograms["worker.latency"].count == 3
        assert parent.merged_snapshots == 3


def _sample_telemetry():
    tel = Telemetry()
    tel.inc("solver.flips", 30)
    tel.inc("solver.site_updates", 100)
    tel.set_gauge("solver.temperature", 0.01)
    tel.observe("engine.task_seconds", 0.5)
    with tel.span("solver.sweep"):
        pass
    return tel


class TestJsonlTrace:
    def test_round_trip(self, tmp_path):
        tel = _sample_telemetry()
        path = tmp_path / "trace.jsonl"
        write_jsonl(tel, path)
        reloaded = load_trace(path)
        assert reloaded.value("solver.flips") == 30
        assert reloaded.gauges["solver.temperature"].value == 0.01
        assert reloaded.histograms["engine.task_seconds"].count == 1
        assert [e.name for e in reloaded.spans] == ["solver.sweep"]

    def test_meta_record_comes_first(self):
        lines = to_jsonl(_sample_telemetry()).splitlines()
        assert json.loads(lines[0])["type"] == "meta"

    def test_parse_rejects_bad_json(self):
        with pytest.raises(DataError, match="not JSON"):
            parse_jsonl('{"type": "meta", "version": 1}\nnot json\n')

    def test_parse_rejects_unknown_type(self):
        with pytest.raises(DataError, match="unknown type"):
            parse_jsonl('{"type": "meta", "version": 1}\n{"type": "surprise"}\n')

    def test_parse_rejects_missing_fields(self):
        with pytest.raises(DataError, match="missing fields"):
            parse_jsonl('{"type": "meta", "version": 1}\n{"type": "counter", "name": "n"}\n')

    def test_parse_requires_leading_meta(self):
        with pytest.raises(DataError, match="meta"):
            parse_jsonl('{"type": "counter", "name": "n", "value": 1}\n')

    def test_unset_gauge_round_trips_as_null(self):
        tel = Telemetry()
        tel.gauge("never.set")
        records = parse_jsonl(to_jsonl(tel))
        gauge_records = [r for r in records if r["type"] == "gauge"]
        assert gauge_records == [{"type": "gauge", "name": "never.set", "value": None}]
        assert math.isnan(telemetry_from_events(records).gauge("never.set").value)


class TestPrometheus:
    def test_name_sanitization(self):
        assert prometheus_name("solver.flips") == "repro_solver_flips"
        assert prometheus_name("9lives") == "repro__9lives"

    def test_exposition_format(self):
        text = to_prometheus(_sample_telemetry())
        assert "# TYPE repro_solver_flips counter" in text
        assert "repro_solver_flips 30" in text
        assert "# TYPE repro_solver_temperature gauge" in text
        assert "repro_engine_task_seconds_count 1" in text
        assert "repro_engine_task_seconds_sum 0.5" in text

    def test_unset_gauge_is_skipped(self):
        tel = Telemetry()
        tel.gauge("never.set")
        assert "never_set" not in to_prometheus(tel)


class TestReport:
    def test_derived_metrics(self):
        tel = _sample_telemetry()
        tel.inc("engine.cache_hits", 3)
        tel.inc("engine.cache_misses", 1)
        derived = derived_metrics(tel)
        assert derived["acceptance_rate"] == pytest.approx(0.3)
        assert derived["cache_hit_rate"] == pytest.approx(0.75)
        assert "swap_accept_rate" not in derived  # no tempering counters

    def test_render_report_sections(self):
        report = render_report(_sample_telemetry())
        assert "acceptance_rate" in report
        assert "solver.flips" in report
        assert "span.solver.sweep" in report

    def test_render_report_empty(self):
        assert "empty" in render_report(Telemetry())

    def test_render_report_notes_dropped_spans(self):
        tel = Telemetry(max_span_events=1)
        for _ in range(3):
            with tel.span("s"):
                pass
        assert "dropped 2 oldest" in render_report(tel)
