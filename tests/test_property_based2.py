"""Property-based tests (hypothesis) for the extension subsystems."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import RSUConfig, new_design_config, win_probabilities
from repro.core.datapath import EnergyDatapath
from repro.core.phase_type import phase_type_mean, phase_type_variance, stage_moments
from repro.core.pipeline import (
    legacy_variable_latency,
    new_variable_latency,
    ret_network_replicas,
    sampling_window_cycles,
)
from repro.metrics import label_accuracy, psnr
from repro.rng.battery import detect_period

# ---------------------------------------------------------------------------
# Analytic win probabilities
# ---------------------------------------------------------------------------

code_lists = st.lists(st.sampled_from([0, 1, 2, 4, 8]), min_size=1, max_size=6)


@settings(max_examples=60, deadline=None)
@given(code_lists, st.sampled_from(["random", "first", "last"]))
def test_win_probabilities_form_distribution(codes, policy):
    wins = win_probabilities(codes, new_design_config(), policy)
    assert np.all(wins >= -1e-12)
    assert np.isclose(wins.sum(), 1.0, atol=1e-9)


@settings(max_examples=40, deadline=None)
@given(code_lists)
def test_higher_code_never_less_likely(codes):
    wins = win_probabilities(codes, new_design_config(), "random")
    order = np.argsort(codes)
    sorted_wins = wins[order]
    sorted_codes = np.asarray(codes)[order]
    for i in range(len(codes) - 1):
        if sorted_codes[i + 1] > sorted_codes[i]:
            assert sorted_wins[i + 1] >= sorted_wins[i] - 1e-12


@settings(max_examples=30, deadline=None)
@given(st.sampled_from([1, 2, 4, 8]), st.floats(0.05, 0.9))
def test_cutoff_competitor_changes_nothing(code, truncation):
    config = RSUConfig(truncation=truncation)
    alone = win_probabilities([code, 0], config, "random")
    assert np.isclose(alone[0], 1.0)
    assert alone[1] == 0.0


# ---------------------------------------------------------------------------
# Phase-type moments
# ---------------------------------------------------------------------------

stage_chains = st.lists(st.sampled_from([1, 2, 4, 8]), min_size=1, max_size=5)


@settings(max_examples=40, deadline=None)
@given(stage_chains, st.integers(3, 8), st.floats(0.05, 0.9))
def test_phase_type_moments_additive(codes, time_bits, truncation):
    config = RSUConfig(time_bits=time_bits, truncation=truncation)
    mean = phase_type_mean(codes, config)
    variance = phase_type_variance(codes, config)
    assert mean > 0 and variance >= 0
    parts_mean = sum(stage_moments(c, config)[0] for c in codes)
    assert np.isclose(mean, parts_mean)
    # Binned stages live within the window.
    assert mean <= len(codes) * config.time_bins


@settings(max_examples=30, deadline=None)
@given(st.sampled_from([1, 2, 4, 8]), st.integers(3, 8), st.floats(0.05, 0.9))
def test_truncated_stage_mean_below_ideal(code, time_bits, truncation):
    binned = RSUConfig(time_bits=time_bits, truncation=truncation)
    ideal = binned.with_(float_time=True)
    # Conditioning on firing within the window can only shorten (or,
    # with the ceil quantization, slightly lengthen by < 1 bin) the mean.
    assert stage_moments(code, binned)[0] <= stage_moments(code, ideal)[0] + 1.0


# ---------------------------------------------------------------------------
# Datapath
# ---------------------------------------------------------------------------


@st.composite
def datapath_cases(draw):
    m = draw(st.integers(2, 12))
    distance = draw(st.sampled_from(["squared", "absolute", "binary"]))
    unit = EnergyDatapath(np.arange(m), distance=distance)
    n = draw(st.integers(1, 8))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    singleton = rng.integers(0, 200, n)
    labels = rng.integers(0, m, n)
    neighbors = rng.integers(0, m + 1, (n, 4))
    return unit, singleton, labels, neighbors


@settings(max_examples=50, deadline=None)
@given(datapath_cases())
def test_datapath_output_bounded_and_deterministic(case):
    unit, singleton, labels, neighbors = case
    out1 = unit.compute(singleton, labels, neighbors)
    out2 = unit.compute(singleton, labels, neighbors)
    assert np.array_equal(out1, out2)
    assert out1.min() >= 0 and out1.max() <= 255


@settings(max_examples=50, deadline=None)
@given(datapath_cases())
def test_datapath_monotone_in_singleton(case):
    unit, singleton, labels, neighbors = case
    base = unit.compute(singleton, labels, neighbors)
    bumped = unit.compute(singleton + 1, labels, neighbors)
    assert np.all(bumped >= base)


# ---------------------------------------------------------------------------
# Pipeline formulas
# ---------------------------------------------------------------------------


@settings(max_examples=50, deadline=None)
@given(st.integers(1, 64), st.integers(3, 8), st.floats(0.01, 0.9))
def test_latency_formulas_consistent(labels, time_bits, truncation):
    config = RSUConfig(time_bits=time_bits, truncation=truncation)
    window = sampling_window_cycles(config)
    latch = 1 if window == 1 else 0  # one-cycle windows latch next cycle
    legacy = legacy_variable_latency(
        labels, config.with_(scaling=False, cutoff=False, pow2_lambda=False)
    )
    new = new_variable_latency(labels, config)
    assert legacy == 2 + window + 1 + latch + (labels - 1)
    assert new == 2 * labels + window + 3 + latch
    assert new > legacy - window  # decoupling costs latency at any size


@settings(max_examples=50, deadline=None)
@given(st.floats(0.005, 0.95))
def test_replica_count_meets_budget(truncation):
    config = RSUConfig(truncation=truncation)
    replicas = ret_network_replicas(config)
    assert truncation**replicas <= 0.004 + 1e-12
    if replicas > 1:
        assert truncation ** (replicas - 1) > 0.004


# ---------------------------------------------------------------------------
# Metrics and battery
# ---------------------------------------------------------------------------

images = hnp.arrays(
    np.float64,
    st.tuples(st.integers(2, 10), st.integers(2, 10)),
    elements=st.floats(0, 1),
)


@settings(max_examples=40, deadline=None)
@given(images, st.floats(0.01, 0.3))
def test_psnr_decreases_with_noise(image, sigma):
    # Same noise realization at two amplitudes: clipping is monotone in
    # the perturbation size, so the smaller amplitude can't score worse.
    noise = np.random.default_rng(0).normal(0, 1, image.shape)
    little = np.clip(image + (sigma / 4) * noise, 0, 1)
    lots = np.clip(image + sigma * noise, 0, 1)
    assert psnr(little, image) >= psnr(lots, image) - 1e-9


@settings(max_examples=40, deadline=None)
@given(hnp.arrays(np.int64, st.tuples(st.integers(2, 8), st.integers(2, 8)),
                  elements=st.integers(0, 3)))
def test_label_accuracy_bounds(labels):
    assert label_accuracy(labels, labels) == 1.0
    assert 0.0 <= label_accuracy(labels, (labels + 1) % 4) <= 1.0


@settings(max_examples=20, deadline=None)
@given(st.integers(2, 24))
def test_period_detection_exact(period):
    pattern = np.random.default_rng(period).integers(0, 2, period)
    stream = np.tile(pattern, 20)
    detected = detect_period(stream, 2 * period)
    assert detected is not None
    assert period % detected == 0  # the true period is a multiple
