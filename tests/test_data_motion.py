"""Unit tests for the synthetic optical-flow dataset generator."""

import numpy as np
import pytest

from repro.data import (
    FLOW_NAMES,
    flow_cost_volume,
    flow_label_vectors,
    load_flow,
    make_flow_dataset,
)
from repro.util import ConfigError, DataError


class TestLabelVectors:
    def test_window_size(self):
        vectors = flow_label_vectors(3)
        assert vectors.shape == (49, 2)  # the paper's 7x7 window

    def test_contains_zero_vector(self):
        vectors = flow_label_vectors(2)
        assert [0, 0] in vectors.tolist()

    def test_unique_vectors(self):
        vectors = flow_label_vectors(3)
        assert len({tuple(v) for v in vectors.tolist()}) == 49

    def test_rejects_zero_radius(self):
        with pytest.raises(ConfigError):
            flow_label_vectors(0)


class TestPresets:
    def test_names(self):
        assert set(FLOW_NAMES) == {"venus", "rubberwhale", "dimetrodon"}

    def test_all_presets_valid(self):
        for name in FLOW_NAMES:
            ds = load_flow(name, scale=0.5)
            assert ds.n_labels == 49
            assert np.abs(ds.gt_flow).max() <= ds.window_radius

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigError):
            load_flow("grove")

    def test_deterministic(self):
        a = load_flow("venus", scale=0.5)
        b = load_flow("venus", scale=0.5)
        assert np.array_equal(a.frame2, b.frame2)


class TestGenerator:
    def test_warp_consistency_for_static_scene(self):
        ds = make_flow_dataset(
            "static", (30, 40), window_radius=2, moving_shapes=[], noise_sigma=0.0
        )
        assert np.allclose(ds.frame1, ds.frame2)

    def test_background_flow_shifts_frame(self):
        ds = make_flow_dataset(
            "shift", (30, 40), window_radius=2,
            moving_shapes=[], background_flow=(0, 1), noise_sigma=0.0,
        )
        # frame2 shifted right by one: interior columns match.
        assert np.allclose(ds.frame1[:, :-1], ds.frame2[:, 1:])

    def test_rejects_flow_outside_window(self):
        with pytest.raises(ConfigError):
            make_flow_dataset(
                "bad", (20, 20), window_radius=1,
                moving_shapes=[("rect", 0.5, 0.5, 0.2, 0.2, 3, 0)],
            )

    def test_rejects_background_outside_window(self):
        with pytest.raises(ConfigError):
            make_flow_dataset("bad", (20, 20), 1, [], background_flow=(0, 5))

    def test_dataset_validates_flow_range(self):
        from repro.data.motion_data import FlowDataset

        with pytest.raises(DataError):
            FlowDataset(
                name="bad",
                frame1=np.zeros((4, 4)),
                frame2=np.zeros((4, 4)),
                gt_flow=np.full((4, 4, 2), 9),
                window_radius=2,
            )


class TestCostVolume:
    def test_shape(self):
        ds = load_flow("venus", scale=0.4)
        cost = flow_cost_volume(ds)
        assert cost.shape == ds.shape + (49,)

    def test_true_flow_has_low_cost(self):
        ds = make_flow_dataset(
            "shift", (30, 40), window_radius=2,
            moving_shapes=[], background_flow=(1, 0), noise_sigma=0.0,
        )
        cost = flow_cost_volume(ds)
        vectors = flow_label_vectors(2)
        true_label = int(np.where((vectors == [1, 0]).all(axis=1))[0][0])
        interior = cost[2:-2, 2:-2, :]
        assert np.median(interior[:, :, true_label]) < 1e-9

    def test_off_image_targets_charged_max(self):
        ds = load_flow("venus", scale=0.4)
        cost = flow_cost_volume(ds, out_of_range_cost=1.0)
        vectors = flow_label_vectors(ds.window_radius)
        label = int(np.where((vectors == [-3, 0]).all(axis=1))[0][0])
        assert np.all(cost[:3, :, label] == 1.0)  # rows 0-2 can't move up 3
