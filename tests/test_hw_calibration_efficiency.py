"""Tests for the physical calibration and efficiency models."""

import pytest

from repro.core.params import legacy_design_config, new_design_config
from repro.hw.calibration import (
    MIN_BIN_SECONDS,
    operating_point,
    photon_budget,
    summarize,
)
from repro.hw.efficiency import (
    INTEL_DRNG_MW,
    drng_efficiency,
    efficiency_table,
    power_fraction_vs_drng,
    rsu_efficiency,
)
from repro.util import ConfigError

NEW = new_design_config()


class TestOperatingPoint:
    def test_paper_bin_is_125ps(self):
        point = operating_point(NEW)
        assert point.bin_seconds == pytest.approx(125e-12)

    def test_window_spans_time_bins(self):
        point = operating_point(NEW)
        assert point.window_bins == NEW.time_bins
        assert point.window_seconds == pytest.approx(32 * 125e-12)

    def test_lambda0_consistent_with_truncation(self):
        import math

        point = operating_point(NEW)
        # exp(-lambda0 * window) == Truncation by construction.
        assert math.exp(-point.lambda0_hz * point.window_seconds) == pytest.approx(0.5)

    def test_concentration_ladder(self):
        point = operating_point(NEW)
        assert point.concentrations == (1, 2, 4, 8)
        assert point.max_decay_rate_hz == pytest.approx(8 * point.lambda0_hz)

    def test_too_fast_clock_rejected(self):
        with pytest.raises(ConfigError):
            operating_point(NEW, clock_hz=4.0e9)  # 31 ps bins: infeasible

    def test_extreme_rate_rejected(self):
        # Tiny truncation at a long window needs huge lambda0 * 8... use
        # a config whose peak rate exceeds the RET ceiling.
        import repro.hw.calibration as cal

        aggressive = NEW.with_(truncation=0.000001, time_bits=1, lambda_bits=12)
        with pytest.raises(ConfigError):
            cal.operating_point(aggressive)

    def test_summary_keys(self):
        summary = summarize(NEW)
        assert summary["bin_ps"] == pytest.approx(125.0)
        assert summary["concentrations"] == 4
        assert summary["window_ns"] == pytest.approx(4.0)


class TestPhotonBudget:
    def test_higher_truncation_needs_more_photons(self):
        low = photon_budget(NEW.with_(truncation=0.1))
        high = photon_budget(NEW.with_(truncation=0.7))
        assert high > low

    def test_scales_with_detector_efficiency(self):
        assert photon_budget(NEW, 0.5) < photon_budget(NEW, 0.1)

    def test_validation(self):
        with pytest.raises(ConfigError):
            photon_budget(NEW, detection_efficiency=0.0)


class TestEfficiency:
    def test_paper_13_percent_headline(self):
        assert power_fraction_vs_drng(legacy=True) == pytest.approx(0.13, abs=0.005)

    def test_rsu_more_efficient_than_drng_per_gbps(self):
        table = efficiency_table()
        assert table["new RSU-G"].mw_per_gbps < table["Intel DRNG"].mw_per_gbps
        assert table["prev RSU-G"].mw_per_gbps < table["Intel DRNG"].mw_per_gbps

    def test_energy_per_sample_magnitude(self):
        row = rsu_efficiency()
        # ~5 mW at 1 Gsample/s -> ~5 pJ per sample.
        assert 1.0 < row.pj_per_sample < 20.0

    def test_drng_reference_row(self):
        row = drng_efficiency()
        assert row.entropy_gbps == 6.4
        assert row.power_mw == pytest.approx(INTEL_DRNG_MW)

    def test_row_validation(self):
        from repro.hw.efficiency import EfficiencyRow

        with pytest.raises(ConfigError):
            EfficiencyRow("bad", 0.0, 1.0, 1.0)
