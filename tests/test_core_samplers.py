"""Unit tests for the sampler backends (software, RSU-G, CDF)."""

import numpy as np
import pytest

from repro.core import (
    CDFSampler,
    GreedySampler,
    LegacyRSUG,
    NewRSUG,
    RSUGSampler,
    SoftwareSampler,
    new_design_config,
)
from repro.rng import LFSR, MT19937, NumpyBitSource
from repro.rng.streams import LFSRBitSource, MTBitSource
from repro.util import ConfigError


def softmax(energies, temperature):
    logits = -np.asarray(energies) / temperature
    weights = np.exp(logits - logits.max())
    return weights / weights.sum()


class TestSoftwareSampler:
    def test_matches_softmax_distribution(self):
        energies = np.array([0.0, 1.0, 2.0])
        temperature = 1.0
        backend = SoftwareSampler(np.random.default_rng(0))
        labels = backend.sample(np.tile(energies, (100_000, 1)), temperature)
        empirical = np.bincount(labels, minlength=3) / len(labels)
        assert np.allclose(empirical, softmax(energies, temperature), atol=0.01)

    def test_low_temperature_concentrates_on_minimum(self):
        backend = SoftwareSampler(np.random.default_rng(0))
        labels = backend.sample(np.tile([5.0, 0.0, 5.0], (2000, 1)), 1e-3)
        assert np.all(labels == 1)

    def test_handles_huge_energies_without_overflow(self):
        backend = SoftwareSampler(np.random.default_rng(0))
        labels = backend.sample(np.array([[1e9, 1e9 + 1.0]]), 1.0)
        assert labels[0] in (0, 1)


class TestGreedySampler:
    def test_picks_argmin(self):
        labels = GreedySampler().sample(np.array([[3.0, 1.0, 2.0]]), 1.0)
        assert labels.tolist() == [1]


class TestRSUGSampler:
    def test_new_design_tracks_softmax_roughly(self):
        energies = np.array([0.0, 0.05, 0.4])
        temperature = 0.1
        backend = NewRSUG(energy_full_scale=1.0, rng=np.random.default_rng(1))
        labels = backend.sample(np.tile(energies, (50_000, 1)), temperature)
        empirical = np.bincount(labels, minlength=3) / len(labels)
        exact = softmax(energies, temperature)
        # Coarse lambda quantization: same ordering, same ballpark.
        assert np.argmax(empirical) == np.argmax(exact)
        assert abs(empirical[0] - exact[0]) < 0.2

    def test_minimum_energy_label_always_selectable(self):
        backend = NewRSUG(energy_full_scale=1.0, rng=np.random.default_rng(2))
        labels = backend.sample(np.tile([0.0, 0.9, 0.9], (500, 1)), 0.001)
        assert np.all(labels == 0)

    def test_codes_for_exposes_conversion(self):
        backend = NewRSUG(energy_full_scale=255.0, rng=np.random.default_rng(0))
        codes = backend.codes_for(np.array([[0.0, 255.0]]), 10.0)
        assert codes[0, 0] == backend.config.lambda_max_code
        assert codes[0, 1] == 0

    def test_legacy_uniform_when_all_energies_large(self):
        # Without scaling, large absolute energies collapse every label
        # to lambda0 -> near-uniform sampling (the paper's failure mode).
        backend = LegacyRSUG(energy_full_scale=255.0, rng=np.random.default_rng(3))
        labels = backend.sample(np.tile([200.0, 210.0, 220.0], (60_000, 1)), 5.0)
        empirical = np.bincount(labels, minlength=3) / len(labels)
        assert np.all(np.abs(empirical - 1 / 3) < 0.02)

    def test_custom_config_respected(self):
        config = new_design_config(lambda_bits=6)
        backend = RSUGSampler(config, 1.0, np.random.default_rng(0))
        assert backend.config.lambda_max_code == 32

    def test_deterministic_given_seed(self):
        energies = np.random.default_rng(9).random((50, 4))
        a = NewRSUG(1.0, np.random.default_rng(5)).sample(energies, 0.1)
        b = NewRSUG(1.0, np.random.default_rng(5)).sample(energies, 0.1)
        assert np.array_equal(a, b)


class TestCDFSampler:
    def test_ideal_source_matches_quantized_softmax(self):
        energies = np.array([0.0, 0.2, 0.6])
        temperature = 0.2
        backend = CDFSampler(
            NumpyBitSource(np.random.default_rng(0)), energy_full_scale=1.0
        )
        labels = backend.sample(np.tile(energies, (80_000, 1)), temperature)
        empirical = np.bincount(labels, minlength=3) / len(labels)
        expected = backend.weights_for(energies[None, :], temperature)[0]
        expected = expected / expected.sum()
        assert np.allclose(empirical, expected, atol=0.01)

    def test_lfsr_and_mt_sources_work(self):
        energies = np.tile([0.0, 0.5], (512, 1))
        for source in (
            LFSRBitSource(LFSR(width=19, seed=7)),
            MTBitSource(MT19937(7)),
        ):
            labels = CDFSampler(source, energy_full_scale=1.0).sample(energies, 0.3)
            assert set(np.unique(labels)).issubset({0, 1})

    def test_weight_bits_quantization(self):
        backend = CDFSampler(
            NumpyBitSource(np.random.default_rng(0)),
            energy_full_scale=1.0,
            weight_bits=4,
        )
        weights = backend.weights_for(np.array([[0.0, 0.1, 0.9]]), 0.2)
        assert weights.max() == 15
        assert np.all(weights == np.rint(weights))

    def test_rejects_bad_weight_bits(self):
        with pytest.raises(ConfigError):
            CDFSampler(NumpyBitSource(np.random.default_rng(0)), weight_bits=0)
