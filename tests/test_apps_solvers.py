"""Integration tests for the three application drivers (quick scale)."""

import numpy as np
import pytest

from repro.apps import (
    MotionParams,
    SegmentationParams,
    StereoParams,
    build_motion_mrf,
    build_segmentation_mrf,
    build_stereo_mrf,
    solve_motion,
    solve_segmentation,
    solve_stereo,
)
from repro.data import load_flow, load_stereo, make_segmentation_dataset
from repro.util import ConfigError


@pytest.fixture(scope="module")
def stereo_ds():
    return load_stereo("poster", scale=0.3)


@pytest.fixture(scope="module")
def flow_ds():
    return load_flow("venus", scale=0.4)


@pytest.fixture(scope="module")
def seg_ds():
    return make_segmentation_dataset("t", (28, 36), 4, seed=9)


class TestStereo:
    def test_mrf_dimensions(self, stereo_ds):
        model = build_stereo_mrf(stereo_ds)
        assert model.shape == stereo_ds.shape
        assert model.n_labels == stereo_ds.n_labels

    def test_software_beats_noise_floor(self, stereo_ds):
        params = StereoParams(iterations=60)
        result = solve_stereo(stereo_ds, "software", params, seed=1)
        # Random labeling would have BP near 100 * (1 - 2/n_labels).
        assert result.bad_pixel < 50.0
        assert result.rms < stereo_ds.n_labels / 2

    def test_new_rsug_close_to_software(self, stereo_ds):
        params = StereoParams(iterations=60)
        sw = solve_stereo(stereo_ds, "software", params, seed=1)
        rsu = solve_stereo(stereo_ds, "new_rsug", params, seed=1)
        assert abs(rsu.bad_pixel - sw.bad_pixel) < 12.0

    def test_prev_rsug_much_worse(self, stereo_ds):
        params = StereoParams(iterations=60)
        sw = solve_stereo(stereo_ds, "software", params, seed=1)
        prev = solve_stereo(stereo_ds, "prev_rsug", params, seed=1)
        assert prev.bad_pixel > sw.bad_pixel + 20.0

    def test_disparity_in_label_range(self, stereo_ds):
        params = StereoParams(iterations=10)
        result = solve_stereo(stereo_ds, "software", params, seed=0)
        assert result.disparity.min() >= 0
        assert result.disparity.max() < stereo_ds.n_labels

    def test_rejects_too_few_iterations(self):
        with pytest.raises(ConfigError):
            StereoParams(iterations=1)


class TestMotion:
    def test_mrf_dimensions(self, flow_ds):
        model = build_motion_mrf(flow_ds)
        assert model.n_labels == flow_ds.n_labels

    def test_software_recovers_flow(self, flow_ds):
        params = MotionParams(iterations=50)
        result = solve_motion(flow_ds, "software", params, seed=1)
        assert result.epe < 1.5

    def test_new_rsug_close_to_software(self, flow_ds):
        params = MotionParams(iterations=50)
        sw = solve_motion(flow_ds, "software", params, seed=1)
        rsu = solve_motion(flow_ds, "new_rsug", params, seed=1)
        assert abs(rsu.epe - sw.epe) < 0.6

    def test_flow_field_shape(self, flow_ds):
        params = MotionParams(iterations=5)
        result = solve_motion(flow_ds, "greedy", params, seed=0)
        assert result.flow.shape == flow_ds.shape + (2,)


class TestSegmentation:
    def test_software_near_ground_truth(self, seg_ds):
        result = solve_segmentation(seg_ds, "software", seed=1)
        assert result.voi < 1.0
        assert result.metrics["pri"] > 0.8

    def test_new_rsug_close_to_software(self, seg_ds):
        sw = solve_segmentation(seg_ds, "software", seed=1)
        rsu = solve_segmentation(seg_ds, "new_rsug", seed=1)
        assert abs(rsu.voi - sw.voi) < 0.5

    def test_prev_rsug_much_worse(self, seg_ds):
        sw = solve_segmentation(seg_ds, "software", seed=1)
        prev = solve_segmentation(seg_ds, "prev_rsug", seed=1)
        assert prev.voi > sw.voi + 1.0

    def test_metrics_dict_complete(self, seg_ds):
        result = solve_segmentation(seg_ds, "greedy", SegmentationParams(iterations=2))
        assert set(result.metrics) == {"voi", "pri", "gce", "bde"}

    def test_rejects_bad_temperature(self):
        with pytest.raises(ConfigError):
            SegmentationParams(temperature=0.0)

    def test_mrf_is_potts(self, seg_ds):
        model = build_segmentation_mrf(seg_ds)
        off_diagonal = model.pairwise[~np.eye(4, dtype=bool)]
        assert np.all(off_diagonal == 1.0)
