"""Byte-identity matrix for the vectorized entropy subsystem.

The bit-sliced LFSR engine, the block MT19937 twist, and the
BufferedBitSource prefetcher are performance features with one hard
contract: *every* bit, word, and float — and the generator state after
every call — must equal the scalar oracles exactly, under any
interleaving of the draw styles.  These tests pin that contract, plus
the jump-ahead/substream algebra the block engine is built on.
"""

import numpy as np
import pytest

from repro.apps.common import make_backend
from repro.core.distance import label_distance_matrix
from repro.mrf.annealing import GeometricSchedule
from repro.mrf.model import GridMRF
from repro.mrf.solver import MCMCSolver
from repro.rng import (
    LFSR,
    MT19937,
    TAPS_BY_WIDTH,
    BufferedBitSource,
    LFSRBitSource,
    MTBitSource,
)
from repro.rng import gf2
from repro.util.errors import ReproError

ALL_WIDTHS = sorted(TAPS_BY_WIDTH)

#: Crosses the 256-bit scalar-dispatch floor, one lane block, many lanes.
COUNTS = (300, 5000, 70000)


def lfsr_pair(width, seed=0b1011):
    return (
        LFSR(width=width, seed=seed, use_vectorized=False),
        LFSR(width=width, seed=seed, use_vectorized=True),
    )


class TestGF2:
    def test_step_matrix_matches_one_step(self):
        for width in (3, 11, 19):
            reg = LFSR(width=width, seed=0b101, use_vectorized=False)
            step = gf2.lfsr_step_matrix(width, reg.taps)
            before = reg.state
            reg.step()
            assert gf2.mat_vec(step, before) == reg.state

    def test_mat_pow_identity_and_composition(self):
        step = gf2.lfsr_step_matrix(19, TAPS_BY_WIDTH[19])
        assert gf2.mat_pow(step, 0) == gf2.identity(19)
        assert gf2.mat_pow(step, 1) == step
        assert gf2.mat_pow(step, 13) == gf2.mat_mul(
            gf2.mat_pow(step, 6), gf2.mat_pow(step, 7)
        )

    def test_advance_state_rejects_negative(self):
        step = gf2.lfsr_step_matrix(19, TAPS_BY_WIDTH[19])
        with pytest.raises(ReproError):
            gf2.advance_state(step, 1, -1)

    def test_mat_vec_array_matches_scalar(self):
        step = gf2.lfsr_step_matrix(19, TAPS_BY_WIDTH[19])
        jump = gf2.mat_pow(step, 1234)
        states = np.arange(1, 200, dtype=np.uint64)
        vectorized = gf2.mat_vec_array(jump, states)
        scalar = [gf2.mat_vec(jump, int(s)) for s in states]
        assert vectorized.tolist() == scalar


class TestLFSRBitIdentity:
    @pytest.mark.parametrize("width", ALL_WIDTHS)
    def test_bits_identical_across_widths(self, width):
        scalar, vectorized = lfsr_pair(width)
        for count in COUNTS:
            np.testing.assert_array_equal(
                scalar.bits(count), vectorized.bits(count)
            )
            # State alignment: both registers sit at the same phase.
            assert scalar.state == vectorized.state

    def test_words_and_uniforms_identical(self):
        scalar, vectorized = lfsr_pair(19)
        np.testing.assert_array_equal(
            scalar.words(1000, 19), vectorized.words(1000, 19)
        )
        np.testing.assert_array_equal(
            scalar.uniforms(1000), vectorized.uniforms(1000)
        )
        out_s = np.empty(700)
        out_v = np.empty(700)
        scalar.uniforms(700, out=out_s)
        vectorized.uniforms(700, out=out_v)
        np.testing.assert_array_equal(out_s, out_v)
        assert scalar.state == vectorized.state

    def test_interleaved_draw_styles_stay_aligned(self):
        scalar, vectorized = lfsr_pair(19, seed=77)
        for reg in (scalar, vectorized):
            reg.bits(17)  # small: both take the scalar path
        np.testing.assert_array_equal(scalar.bits(4096), vectorized.bits(4096))
        assert scalar.next_word(19) == vectorized.next_word(19)
        np.testing.assert_array_equal(
            scalar.uniforms(500), vectorized.uniforms(500)
        )
        assert scalar.state == vectorized.state

    def test_small_requests_route_to_scalar_with_same_output(self):
        scalar, vectorized = lfsr_pair(19)
        np.testing.assert_array_equal(scalar.bits(255), vectorized.bits(255))
        assert scalar.state == vectorized.state


class TestJumpAndSpawn:
    def test_jump_equals_scalar_steps(self):
        stepped = LFSR(width=19, seed=5, use_vectorized=False)
        for _ in range(1000):
            stepped.step()
        jumped = LFSR(width=19, seed=5).jump(1000)
        assert jumped.state == stepped.state

    def test_jump_zero_is_identity_and_composes(self):
        reg = LFSR(width=19, seed=5)
        state = reg.state
        assert reg.jump(0).state == state
        split = LFSR(width=19, seed=5).jump(300).jump(700)
        assert LFSR(width=19, seed=5).jump(1000).state == split.state

    def test_spawn_children_cover_disjoint_parent_chunks(self):
        # Width 11, period 2047: spawn(4) strides 511 steps, so the
        # children's streams must literally be consecutive slices of the
        # parent's own future output.
        parent = LFSR(width=11, seed=0b1101)
        stride = parent.period // 4
        reference = LFSR(width=11, seed=0b1101).bits(stride * 4)
        children = parent.spawn(4)
        assert parent.state == 0b1101  # spawn leaves the parent untouched
        for index, child in enumerate(children):
            np.testing.assert_array_equal(
                child.bits(stride),
                reference[index * stride:(index + 1) * stride],
            )

    def test_spawn_rejects_bad_arguments(self):
        with pytest.raises(ReproError):
            LFSR(width=11, seed=3).spawn(0)
        with pytest.raises(ReproError):
            LFSR(width=3, seed=3).spawn(100)  # stride would round to zero


class TestMTIdentity:
    def test_published_vector(self):
        assert MT19937(seed=5489).next_u32() == 3499211612

    def test_block_twist_matches_scalar_oracle(self):
        scalar = MT19937(seed=42, use_vectorized=False)
        vectorized = MT19937(seed=42, use_vectorized=True)
        # Three full regenerations plus a partial block.
        np.testing.assert_array_equal(scalar.words(2000), vectorized.words(2000))
        assert scalar.getstate() == vectorized.getstate()

    def test_interleaved_scalar_and_block_draws(self):
        scalar = MT19937(seed=9, use_vectorized=False)
        vectorized = MT19937(seed=9, use_vectorized=True)
        for count in (3, 700, 1, 624, 50):
            assert scalar.next_u32() == vectorized.next_u32()
            np.testing.assert_array_equal(
                scalar.words(count), vectorized.words(count)
            )
        np.testing.assert_array_equal(
            scalar.uniforms(333), vectorized.uniforms(333)
        )
        assert scalar.getstate() == vectorized.getstate()

    def test_state_transfers_between_engines(self):
        vectorized = MT19937(seed=3)
        vectorized.words(1000)
        snapshot = vectorized.getstate()
        scalar = MT19937(seed=1, use_vectorized=False)
        scalar.setstate(snapshot)
        np.testing.assert_array_equal(scalar.words(800), vectorized.words(800))


class TestBufferedBitSource:
    def inner(self, seed=21):
        return LFSRBitSource(LFSR(width=19, seed=seed))

    def test_served_stream_identical_to_direct(self):
        direct = self.inner()
        buffered = BufferedBitSource(self.inner(), block=256)
        chunks = (100, 1, 400, 255, 7)  # mixes intra-slab and refill paths
        for count in chunks:
            np.testing.assert_array_equal(
                direct.uniforms(count), buffered.uniforms(count)
            )

    def test_out_buffer_path(self):
        buffered = BufferedBitSource(self.inner(), block=128)
        out = np.empty(300)
        assert buffered.uniforms(300, out=out) is out
        np.testing.assert_array_equal(out, self.inner().uniforms(300))
        with pytest.raises(ReproError):
            buffered.uniforms(10, out=np.empty(10, dtype=np.float32))

    def test_mid_block_snapshot_round_trip(self):
        buffered = BufferedBitSource(self.inner(), block=512)
        buffered.uniforms(100)  # cursor now mid-slab
        snapshot = buffered.getstate()
        assert snapshot["kind"] == "buffered" and snapshot["cursor"] == 100
        first = buffered.uniforms(600)  # crosses into the next slab
        restored = BufferedBitSource(self.inner(seed=1), block=512)
        restored.setstate(snapshot)
        np.testing.assert_array_equal(first, restored.uniforms(600))

    def test_snapshot_is_compact_no_floats(self):
        buffered = BufferedBitSource(self.inner(), block=1 << 14)
        buffered.uniforms(5000)
        snapshot = buffered.getstate()
        # The slab is regenerated on restore, never persisted.
        assert set(snapshot) == {"kind", "block", "inner", "drawn", "cursor"}
        assert isinstance(snapshot["inner"], dict)

    def test_accepts_bare_inner_snapshot(self):
        bare = self.inner()
        bare.uniforms(40)
        snapshot = bare.getstate()
        expected = bare.uniforms(64)
        buffered = BufferedBitSource(self.inner(seed=1))
        buffered.setstate(snapshot)
        np.testing.assert_array_equal(expected, buffered.uniforms(64))

    def test_rejects_bad_construction_and_cursor(self):
        with pytest.raises(ReproError):
            BufferedBitSource(self.inner(), block=0)
        buffered = BufferedBitSource(self.inner())
        with pytest.raises(ReproError):
            buffered.setstate(
                {"kind": "buffered", "block": 8, "inner": self.inner().getstate(),
                 "drawn": 8, "cursor": 9}
            )


def tiny_model(seed=0):
    rng = np.random.default_rng(seed)
    unary = rng.random((10, 12, 5))
    return GridMRF(unary, label_distance_matrix(5, "binary"), 1.2)


class TestEndToEndByteIdentity:
    """The whole point: flipping the engine cannot change any result."""

    @pytest.mark.parametrize("kind", ["cdf_lfsr", "cdf_mt19937"])
    def test_solve_results_identical_across_engines(self, kind):
        model = tiny_model()
        full_scale = model.max_energy()
        results = []
        for use_vectorized in (False, True):
            sampler = make_backend(
                kind, full_scale, seed=3, use_vectorized=use_vectorized
            )
            solver = MCMCSolver(
                model, sampler, GeometricSchedule(2.0, 0.8),
                seed=3, track_energy=True,
            )
            results.append(solver.run(12))
        np.testing.assert_array_equal(results[0].labels, results[1].labels)
        np.testing.assert_array_equal(
            results[0].energy_history, results[1].energy_history
        )

    def test_buffered_backend_kill_and_resume(self):
        # The solver checkpoints land mid-slab (the prefetch block far
        # exceeds a 10x12 solve's per-sweep draws); resume must rejoin
        # the oracle byte for byte anyway.
        model = tiny_model(seed=5)
        full_scale = model.max_energy()

        def solver():
            sampler = make_backend("cdf_lfsr", full_scale, seed=7)
            return MCMCSolver(
                model, sampler, GeometricSchedule(2.0, 0.8),
                seed=7, track_energy=True,
            )

        oracle = solver().run(8)
        captured = []
        solver().run(4, checkpoint_every=2, checkpoint_sink=captured.append)
        assert captured and captured[0].rng["sampler"]["source"]["kind"] == "buffered"
        for checkpoint in captured:
            resumed = solver().run(8, resume=checkpoint)
            np.testing.assert_array_equal(oracle.labels, resumed.labels)
            np.testing.assert_array_equal(
                oracle.energy_history, resumed.energy_history
            )

    def test_faulty_wrapper_rides_the_buffered_source(self):
        from repro.faults.models import EntropyFault, FaultyBitSource

        fault = EntropyFault(stuck_mask=0b11, stuck_value=0b10, word_bits=19)
        direct = FaultyBitSource(self.lfsr_source(), fault)
        buffered = FaultyBitSource(
            BufferedBitSource(self.lfsr_source(), block=128), fault
        )
        np.testing.assert_array_equal(
            direct.uniforms(500), buffered.uniforms(500)
        )
        out = np.empty(300)
        buffered.uniforms(300, out=out)
        np.testing.assert_array_equal(direct.uniforms(300), out)

    @staticmethod
    def lfsr_source(seed=13):
        return LFSRBitSource(LFSR(width=19, seed=seed))
