"""Kill-and-resume determinism for the MCMC solver front ends.

The contract (see ``repro/mrf/checkpoint.py``): a solve interrupted at
any checkpoint and resumed from it produces *byte-identical* labels,
histories, and downstream RNG draws to an uninterrupted oracle — for
the single-chain solver across backends (software, LFSR/MT19937-fed CDF
samplers, both RSU-G designs), for parallel tempering on both run
paths, and for batched ensembles.  Plus: on-disk round trip through the
checksummed envelope, and corrupt/foreign checkpoint files are refused
rather than resumed from garbage.
"""

import numpy as np
import pytest

from repro.apps.common import make_backend
from repro.core import label_distance_matrix, new_design_config
from repro.mrf import (
    CHECKPOINT_FORMAT_VERSION,
    CheckpointWriter,
    EnsembleSolver,
    GeometricSchedule,
    GridMRF,
    MCMCSolver,
    ParallelTempering,
    SolveCheckpoint,
    geometric_ladder,
    load_checkpoint,
    save_checkpoint,
)
from repro.util.errors import ConfigError
from repro.util.integrity import EnvelopeError

FULL_SCALE = 12.0

BACKENDS = ["software", "new_rsug", "prev_rsug", "rsu", "cdf_lfsr", "cdf_mt19937"]


def tiny_model(seed=0, shape=(10, 12), n_labels=5):
    rng = np.random.default_rng(seed)
    unary = rng.random(shape + (n_labels,))
    pairwise = label_distance_matrix(n_labels, "binary")
    return GridMRF(unary, pairwise, 1.2, connectivity=4)


def make_solver(kind, model, seed=7):
    sampler = make_backend(kind, FULL_SCALE, seed=seed, config=new_design_config())
    return MCMCSolver(
        model, sampler, GeometricSchedule(2.0, 0.8), init="random", seed=seed
    )


def assert_results_identical(a, b):
    np.testing.assert_array_equal(a.labels, b.labels)
    np.testing.assert_array_equal(a.energy_history, b.energy_history)
    np.testing.assert_array_equal(a.temperature_history, b.temperature_history)


class TestSolverResume:
    @pytest.mark.parametrize("kind", BACKENDS)
    def test_kill_and_resume_matches_oracle(self, kind):
        model = tiny_model()
        oracle = make_solver(kind, model).run(8)

        captured = []
        interrupted = make_solver(kind, model)
        interrupted.run(3, checkpoint_every=3, checkpoint_sink=captured.append)
        assert len(captured) == 1 and captured[0].sweep == 3

        resumed = make_solver(kind, model).run(8, resume=captured[0])
        assert_results_identical(oracle, resumed)

    def test_resume_from_every_checkpoint(self):
        # Not just one cut point: every interval of a chunked run
        # rejoins the oracle trajectory.
        model = tiny_model(seed=3)
        oracle = make_solver("software", model).run(9)
        captured = []
        make_solver("software", model).run(
            9, checkpoint_every=2, checkpoint_sink=captured.append
        )
        assert [c.sweep for c in captured] == [2, 4, 6, 8]
        for checkpoint in captured:
            resumed = make_solver("software", model).run(9, resume=checkpoint)
            assert_results_identical(oracle, resumed)

    def test_on_disk_round_trip(self, tmp_path):
        model = tiny_model()
        path = tmp_path / "solver.ckpt"
        oracle = make_solver("new_rsug", model).run(6)
        make_solver("new_rsug", model).run(4, checkpoint_every=2, checkpoint_path=path)
        resumed = make_solver("new_rsug", model).run(6, resume=path)
        assert_results_identical(oracle, resumed)

    def test_corrupt_checkpoint_is_refused(self, tmp_path):
        model = tiny_model()
        path = tmp_path / "solver.ckpt"
        make_solver("software", model).run(4, checkpoint_every=2, checkpoint_path=path)
        blob = bytearray(path.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        path.write_bytes(bytes(blob))
        with pytest.raises(EnvelopeError) as excinfo:
            make_solver("software", model).run(6, resume=path)
        assert excinfo.value.reason == "checksum_mismatch"

    def test_truncated_checkpoint_is_refused(self, tmp_path):
        model = tiny_model()
        path = tmp_path / "solver.ckpt"
        make_solver("software", model).run(4, checkpoint_every=2, checkpoint_path=path)
        path.write_bytes(path.read_bytes()[:-20])
        with pytest.raises(EnvelopeError):
            make_solver("software", model).run(6, resume=path)

    def test_wrong_kind_checkpoint_is_refused(self):
        model = tiny_model()
        captured = []
        make_solver("software", model).run(
            4, checkpoint_every=2, checkpoint_sink=captured.append
        )
        ladder = ParallelTempering(
            model,
            lambda i: make_backend("software", FULL_SCALE, seed=50 + i),
            geometric_ladder(0.5, 4.0, 3),
            seed=9,
        )
        with pytest.raises(ConfigError):
            ladder.run(6, resume=captured[0])

    def test_mismatched_sampler_is_refused(self):
        model = tiny_model()
        captured = []
        make_solver("software", model).run(
            4, checkpoint_every=2, checkpoint_sink=captured.append
        )
        with pytest.raises(ConfigError):
            make_solver("new_rsug", model).run(8, resume=captured[0])

    def test_exhausted_checkpoint_is_refused(self):
        model = tiny_model()
        captured = []
        make_solver("software", model).run(
            4, checkpoint_every=4, checkpoint_sink=captured.append
        )
        with pytest.raises(ConfigError):
            make_solver("software", model).run(4, resume=captured[0])


def ladder_under_test(model, use_batched=True):
    return ParallelTempering(
        model,
        lambda i: make_backend("new_rsug", FULL_SCALE, seed=40 + i),
        geometric_ladder(0.5, 4.0, 3),
        swap_interval=2,
        seed=11,
        use_batched=use_batched,
    )


def assert_tempering_identical(a, b):
    np.testing.assert_array_equal(a.labels, b.labels)
    np.testing.assert_array_equal(a.energy_history, b.energy_history)
    assert a.swap_attempts == b.swap_attempts
    assert a.swaps_accepted == b.swaps_accepted


class TestTemperingResume:
    @pytest.mark.parametrize("use_batched", [True, False], ids=["batched", "sequential"])
    def test_kill_and_resume_matches_oracle(self, use_batched):
        model = tiny_model(seed=4)
        oracle = ladder_under_test(model, use_batched).run(8)
        captured = []
        ladder_under_test(model, use_batched).run(
            4, checkpoint_every=4, checkpoint_sink=captured.append
        )
        resumed = ladder_under_test(model, use_batched).run(8, resume=captured[0])
        assert_tempering_identical(oracle, resumed)

    def test_cross_path_resume(self):
        # A checkpoint taken on the batched path resumes on the
        # sequential oracle path (and vice versa) — the snapshot is
        # path-agnostic because both paths are byte-identical.
        model = tiny_model(seed=4)
        oracle = ladder_under_test(model, use_batched=True).run(8)
        captured = []
        ladder_under_test(model, use_batched=True).run(
            4, checkpoint_every=4, checkpoint_sink=captured.append
        )
        resumed = ladder_under_test(model, use_batched=False).run(8, resume=captured[0])
        assert_tempering_identical(oracle, resumed)


def ensemble_under_test(model, use_batched=True):
    return EnsembleSolver(
        model,
        lambda i: make_backend("software", FULL_SCALE, seed=60 + i),
        GeometricSchedule(2.0, 0.85),
        chains=3,
        init="random",
        seed=21,
        use_batched=use_batched,
    )


class TestEnsembleResume:
    def test_kill_and_resume_matches_oracle(self):
        model = tiny_model(seed=8)
        oracle = ensemble_under_test(model).run(8)
        captured = []
        ensemble_under_test(model).run(
            4, checkpoint_every=4, checkpoint_sink=captured.append
        )
        resumed = ensemble_under_test(model).run(8, resume=captured[0])
        assert oracle.best_chain == resumed.best_chain
        np.testing.assert_array_equal(oracle.labels, resumed.labels)
        np.testing.assert_array_equal(oracle.chain_labels, resumed.chain_labels)
        for a, b in zip(oracle.energy_histories, resumed.energy_histories):
            np.testing.assert_array_equal(a, b)

    def test_cross_path_resume_into_sequential(self):
        model = tiny_model(seed=8)
        oracle = ensemble_under_test(model, use_batched=False).run(8)
        captured = []
        ensemble_under_test(model, use_batched=True).run(
            4, checkpoint_every=4, checkpoint_sink=captured.append
        )
        resumed = ensemble_under_test(model, use_batched=False).run(8, resume=captured[0])
        assert oracle.best_chain == resumed.best_chain
        np.testing.assert_array_equal(oracle.chain_labels, resumed.chain_labels)

    def test_sequential_path_refuses_checkpoint_emission(self):
        model = tiny_model(seed=8)
        with pytest.raises(ConfigError):
            ensemble_under_test(model, use_batched=False).run(
                8, checkpoint_every=2, checkpoint_sink=lambda c: None
            )


class TestCheckpointPlumbing:
    def test_save_load_round_trip(self, tmp_path):
        checkpoint = SolveCheckpoint(
            kind="solver",
            sweep=3,
            labels=np.arange(12, dtype=np.int64).reshape(3, 4),
            rng={"solver": {"kind": "numpy"}},
            history={"energy": [1.0, 2.0]},
            meta={"shape": (3, 4)},
        )
        path = tmp_path / "x.ckpt"
        save_checkpoint(checkpoint, path)
        loaded = load_checkpoint(path)
        assert loaded.kind == "solver" and loaded.sweep == 3
        np.testing.assert_array_equal(loaded.labels, checkpoint.labels)

    def test_writer_requires_destination(self):
        with pytest.raises(ConfigError):
            CheckpointWriter(2, None, None)

    def test_writer_cadence(self):
        emitted = []
        writer = CheckpointWriter(3, None, emitted.append)
        for completed in range(1, 10):
            writer.maybe_emit(completed, lambda: completed)
        assert emitted == [3, 6, 9]

    def test_disabled_writer_never_emits(self):
        writer = CheckpointWriter(0, None, None)
        writer.maybe_emit(5, lambda: pytest.fail("must not build a snapshot"))

    def test_format_version_gates_load(self, tmp_path):
        checkpoint = SolveCheckpoint(
            kind="solver",
            sweep=1,
            labels=np.zeros((2, 2), dtype=np.int64),
            rng={},
            history={},
            meta={},
        )
        path = tmp_path / "x.ckpt"
        save_checkpoint(checkpoint, path)
        assert CHECKPOINT_FORMAT_VERSION >= 1
        blob = bytearray(path.read_bytes())
        blob[4] ^= 0xFF  # flip the version word
        path.write_bytes(bytes(blob))
        with pytest.raises(EnvelopeError) as excinfo:
            load_checkpoint(path)
        assert excinfo.value.reason == "version_mismatch"
