"""Property-based tests (hypothesis) on core invariants."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra import numpy as hnp

from repro.core import (
    GreedySampler,
    RSUConfig,
    bin_probabilities,
    label_distance_matrix,
    lambda_codes,
    lambda_codes_by_boundaries,
    select_first_to_fire,
)
from repro.metrics import (
    global_consistency_error,
    probabilistic_rand_index,
    variation_of_information,
)
from repro.mrf import ConstantSchedule, GeometricSchedule, GridMRF, MCMCSolver
from repro.util.quantize import nearest_pow2, pow2_floor, quantize_unsigned

# ---------------------------------------------------------------------------
# Quantization
# ---------------------------------------------------------------------------

finite_floats = st.floats(
    min_value=-1e6, max_value=1e6, allow_nan=False, allow_infinity=False
)


@given(hnp.arrays(np.float64, st.integers(1, 30), elements=finite_floats),
       st.integers(1, 12))
def test_quantize_unsigned_bounds_and_idempotence(values, bits):
    out = quantize_unsigned(values, bits)
    assert out.min() >= 0 and out.max() <= (1 << bits) - 1
    assert np.array_equal(quantize_unsigned(out.astype(float), bits), out)


@given(hnp.arrays(np.int64, st.integers(1, 40), elements=st.integers(0, 10**9)))
def test_pow2_floor_properties(values):
    out = pow2_floor(values)
    positive = values > 0
    assert np.all(out[positive] <= values[positive])
    assert np.all(out[positive] * 2 > values[positive])
    assert np.all(out[~positive] == 0)


@given(hnp.arrays(np.int64, st.integers(1, 40), elements=st.integers(0, 10**9)))
def test_nearest_pow2_is_nearest(values):
    out = nearest_pow2(values)
    positive = values > 0
    floor = pow2_floor(values)
    ceil = np.where(positive, floor * 2, 0)
    chosen_error = np.abs(out - values)
    assert np.all(chosen_error[positive] <= np.abs(floor - values)[positive])
    assert np.all(chosen_error[positive] <= np.abs(ceil - values)[positive])


# ---------------------------------------------------------------------------
# Energy-to-lambda conversion
# ---------------------------------------------------------------------------

energy_rows = hnp.arrays(
    np.float64,
    st.tuples(st.integers(1, 6), st.integers(2, 10)),
    elements=st.floats(0, 255),
)


@given(energy_rows, st.floats(0.5, 200), st.integers(2, 7))
def test_lambda_codes_in_range_and_max_present(energies, temperature, lambda_bits):
    config = RSUConfig(lambda_bits=lambda_bits)
    codes = lambda_codes(energies, temperature, config)
    assert codes.min() >= 0 and codes.max() <= config.lambda_max_code
    # With scaling, every row's minimum-energy label receives the max code.
    assert np.all(codes.max(axis=1) == config.lambda_max_code)


@given(energy_rows, st.floats(0.5, 200), st.floats(0, 100))
def test_scaling_invariant_to_constant_shift(energies, temperature, shift):
    config = RSUConfig()
    base = lambda_codes(energies, temperature, config)
    shifted = lambda_codes(energies + shift, temperature, config)
    assert np.array_equal(base, shifted)


@given(energy_rows, st.floats(0.5, 200), st.integers(2, 6))
def test_boundary_conversion_equals_lut(energies, temperature, lambda_bits):
    config = RSUConfig(lambda_bits=lambda_bits)
    quantized = np.rint(energies)
    assert np.array_equal(
        lambda_codes(quantized, temperature, config),
        lambda_codes_by_boundaries(quantized, temperature, config),
    )


@given(st.integers(1, 8), st.integers(3, 8),
       st.floats(0.01, 0.95))
def test_bin_probabilities_normalized(code, time_bits, truncation):
    config = RSUConfig(time_bits=time_bits, truncation=truncation)
    mass = bin_probabilities(code, config)
    assert np.isclose(mass.sum(), 1.0)
    assert np.all(mass >= 0)


# ---------------------------------------------------------------------------
# Selection
# ---------------------------------------------------------------------------

ttf_matrices = hnp.arrays(
    np.int64,
    st.tuples(st.integers(1, 8), st.integers(1, 8)),
    elements=st.integers(1, 40),
)


@given(ttf_matrices, st.sampled_from(["first", "last", "random"]))
def test_selection_winner_is_row_minimum(ttf, policy):
    winners = select_first_to_fire(ttf, policy, np.random.default_rng(0))
    row_min = ttf.min(axis=1)
    assert np.all(ttf[np.arange(len(ttf)), winners] == row_min)


@given(ttf_matrices)
def test_selection_first_picks_lowest_tied_index(ttf):
    winners = select_first_to_fire(ttf, "first", np.random.default_rng(0))
    expected = np.argmin(ttf, axis=1)  # argmin returns the first minimum
    assert np.array_equal(winners, expected)


# ---------------------------------------------------------------------------
# MRF / solver
# ---------------------------------------------------------------------------


@st.composite
def small_mrfs(draw):
    h = draw(st.integers(2, 6))
    w = draw(st.integers(2, 6))
    m = draw(st.integers(2, 4))
    seed = draw(st.integers(0, 2**16))
    rng = np.random.default_rng(seed)
    unary = rng.random((h, w, m))
    weight = draw(st.floats(0.0, 1.0))
    return GridMRF(unary, label_distance_matrix(m, "binary"), weight)


@settings(max_examples=25, deadline=None)
@given(small_mrfs(), st.integers(0, 100))
def test_greedy_sweep_never_increases_energy(model, seed):
    solver = MCMCSolver(
        model, GreedySampler(), ConstantSchedule(1.0), init="random", seed=seed
    )
    labels = solver.initial_labels()
    energies = [model.total_energy(labels)]
    for _ in range(3):
        solver.sweep(labels, 1.0)
        energies.append(model.total_energy(labels))
    assert all(b <= a + 1e-9 for a, b in zip(energies, energies[1:]))


@settings(max_examples=15, deadline=None)
@given(small_mrfs())
def test_solver_labels_always_in_range(model):
    from repro.core import SoftwareSampler

    solver = MCMCSolver(
        model,
        SoftwareSampler(np.random.default_rng(0)),
        GeometricSchedule(t0=1.0, rate=0.8),
        init="random",
    )
    result = solver.run(3)
    assert result.labels.min() >= 0
    assert result.labels.max() < model.n_labels


# ---------------------------------------------------------------------------
# Segmentation metrics
# ---------------------------------------------------------------------------

label_grids = hnp.arrays(
    np.int64, st.tuples(st.integers(2, 8), st.integers(2, 8)), elements=st.integers(0, 3)
)


@settings(max_examples=40, deadline=None)
@given(label_grids, label_grids)
def test_metric_invariants(seg_a, seg_b):
    if seg_a.shape != seg_b.shape:
        seg_b = np.resize(seg_b, seg_a.shape)
    voi_ab = variation_of_information(seg_a, seg_b)
    voi_ba = variation_of_information(seg_b, seg_a)
    assert voi_ab >= -1e-9
    assert abs(voi_ab - voi_ba) < 1e-9
    pri = probabilistic_rand_index(seg_a, seg_b)
    assert -1e-9 <= pri <= 1 + 1e-9
    gce = global_consistency_error(seg_a, seg_b)
    assert -1e-9 <= gce <= 1 + 1e-9


@settings(max_examples=25, deadline=None)
@given(label_grids, st.integers(1, 3))
def test_voi_permutation_invariance(seg, offset):
    # A cyclic relabeling is the same partition, so VoI must be ~zero
    # and PRI must be ~one.
    permuted = (seg + offset) % 4
    assert abs(variation_of_information(seg, permuted)) < 1e-9
    assert abs(probabilistic_rand_index(seg, permuted) - 1.0) < 1e-12
