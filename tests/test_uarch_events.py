"""Cycle-identity proof of the event-driven engine vs the scalar oracles.

The contract of :mod:`repro.uarch.events` is *exactness*: the batched
event path must return the same :class:`MachineResult` — winners, winner
cycles, total cycles, stats — as the per-cycle scalar machine, and leave
the shared RNG in the identical final state, across designs, conflict
policies, window lengths, label counts and temperature schedules.
"""

import tracemalloc

import numpy as np
import pytest

import repro.core.convert as convert
from repro.core import legacy_design_config, new_design_config
from repro.core.pipeline import simulate, simulate_measured
from repro.uarch import (
    CycleCountingBackend,
    EventQueue,
    LegacyMachine,
    MachineBackend,
    NewDesignMachine,
    NewMachine,
    PipelineTrace,
    PreviousDesignMachine,
    VariableJob,
    jobs_from_energies,
)
from repro.util import ConfigError


def build_pair(design, policy, time_bits, tie_policy, seed):
    """Scalar-oracle and event-driven machines over lockstep RNGs."""
    if design == "legacy":
        config = legacy_design_config(time_bits=time_bits, tie_policy=tie_policy)
        make = lambda rng, event: LegacyMachine(  # noqa: E731
            config, 40.0, rng, use_event_driven=event
        )
    else:
        config = new_design_config(time_bits=time_bits, tie_policy=tie_policy)
        make = lambda rng, event: NewMachine(  # noqa: E731
            config, 40.0, rng, conflict_policy=policy, use_event_driven=event
        )
    rng_scalar = np.random.default_rng(seed)
    rng_event = np.random.default_rng(seed)
    return make(rng_scalar, False), make(rng_event, True), rng_scalar, rng_event


def assert_identical(result_scalar, result_event):
    assert result_event.winners == result_scalar.winners
    assert result_event.winner_cycle == result_scalar.winner_cycle
    assert result_event.total_cycles == result_scalar.total_cycles
    assert result_event.stats == result_scalar.stats


class TestCycleIdentityMatrix:
    @pytest.mark.parametrize(
        "design,policy",
        [("legacy", None), ("new", "count"), ("new", "stall")],
    )
    @pytest.mark.parametrize("time_bits", [3, 5, 8])
    @pytest.mark.parametrize("labels", [2, 16])
    @pytest.mark.parametrize("with_updates", [False, True])
    def test_matrix(self, design, policy, time_bits, labels, with_updates):
        schedule = {0: 20.0, 2: 60.0, 5: 30.0} if with_updates else {}
        jobs = jobs_from_energies(
            np.random.default_rng(17).integers(0, 256, (6, labels))
        )
        scalar, event, rng_scalar, rng_event = build_pair(
            design, policy, time_bits, "random", seed=11
        )
        assert_identical(
            scalar.run(jobs, temperature_schedule=schedule),
            event.run(jobs, temperature_schedule=schedule),
        )
        # The engines consumed the identical entropy stream: the two
        # generators are in the same state bit for bit.
        assert rng_scalar.bit_generator.state == rng_event.bit_generator.state

    @pytest.mark.parametrize("tie_policy", ["first", "last", "random"])
    def test_tie_policies(self, tie_policy):
        # Equal energies force ties in every variable.
        jobs = jobs_from_energies(np.full((5, 4), 7, dtype=np.int64))
        scalar, event, rng_scalar, rng_event = build_pair(
            "new", "count", 5, tie_policy, seed=3
        )
        assert_identical(scalar.run(jobs), event.run(jobs))
        assert rng_scalar.bit_generator.state == rng_event.bit_generator.state

    @pytest.mark.parametrize(
        "design,policy",
        [("legacy", None), ("new", "count"), ("new", "stall")],
    )
    def test_mixed_label_counts_and_single_job(self, design, policy):
        rng = np.random.default_rng(7)
        mixed = [
            VariableJob(i, rng.integers(0, 256, m))
            for i, m in enumerate([3, 1, 16, 2, 5])
        ]
        single = [VariableJob(0, np.array([4, 200]))]
        for jobs in (mixed, single):
            scalar, event, rng_scalar, rng_event = build_pair(
                design, policy, 5, "random", seed=5
            )
            assert_identical(
                scalar.run(jobs, temperature_schedule={1: 25.0}),
                event.run(jobs, temperature_schedule={1: 25.0}),
            )
            assert rng_scalar.bit_generator.state == rng_event.bit_generator.state

    def test_end_state_tables_match(self):
        """After a run with updates, both paths leave the machine with
        the same live conversion tables (the next run's starting state)."""
        jobs = jobs_from_energies(
            np.random.default_rng(0).integers(0, 256, (4, 3))
        )
        scalar, event, _, _ = build_pair("legacy", None, 5, "random", seed=1)
        scalar.run(jobs, temperature_schedule={2: 20.0})
        event.run(jobs, temperature_schedule={2: 20.0})
        assert np.array_equal(scalar._lut, event._lut)

        scalar, event, _, _ = build_pair("new", "count", 5, "random", seed=1)
        scalar.run(jobs, temperature_schedule={2: 20.0})
        event.run(jobs, temperature_schedule={2: 20.0})
        assert np.array_equal(scalar._bounds, event._bounds)
        assert scalar._shadow_bounds is None and event._shadow_bounds is None

    def test_run_matrix_equals_run(self):
        quantized = np.random.default_rng(2).integers(0, 256, (8, 6))
        a, b = np.random.default_rng(9), np.random.default_rng(9)
        config = new_design_config()
        via_jobs = NewMachine(config, 40.0, a).run(jobs_from_energies(quantized))
        via_matrix = NewMachine(config, 40.0, b).run_matrix(quantized)
        assert_identical(via_jobs, via_matrix)
        assert a.bit_generator.state == b.bit_generator.state

    def test_paper_facing_aliases(self):
        assert PreviousDesignMachine is LegacyMachine
        assert NewDesignMachine is NewMachine


class TestMachineInTheLoop:
    def test_end_to_end_solve_byte_identical(self):
        """A full machine-in-the-loop stereo solve produces the same
        labels and the same cycle counts on both paths."""
        from repro.apps.stereo import StereoParams, build_stereo_mrf
        from repro.data import load_stereo
        from repro.mrf import MCMCSolver, geometric_for_span

        def solve(use_event_driven):
            dataset = load_stereo("poster", scale=0.10)
            params = StereoParams(iterations=12)
            model = build_stereo_mrf(dataset, params)
            backend = CycleCountingBackend(
                new_design_config(),
                model.max_energy(),
                np.random.default_rng(5),
                use_event_driven=use_event_driven,
            )
            schedule = geometric_for_span(
                params.t0, params.t_final, params.iterations
            )
            solver = MCMCSolver(
                model, backend, schedule, seed=3, track_energy=False
            )
            labels = solver.run(params.iterations).labels
            return labels, backend.total_cycles, backend.batch_cycles

        labels_event, cycles_event, batches_event = solve(True)
        labels_scalar, cycles_scalar, batches_scalar = solve(False)
        assert np.array_equal(labels_event, labels_scalar)
        assert cycles_event == cycles_scalar
        assert batches_event == batches_scalar

    def test_legacy_backend_identical(self):
        energies = np.random.default_rng(1).random((10, 4))
        outs = []
        for use_event in (True, False):
            backend = MachineBackend(
                legacy_design_config(),
                1.0,
                np.random.default_rng(0),
                use_event_driven=use_event,
            )
            outs.append(
                (backend.sample(energies, 0.1), backend.total_cycles)
            )
        assert np.array_equal(outs[0][0], outs[1][0])
        assert outs[0][1] == outs[1][1]


class TestTableHoisting:
    def test_boundary_table_built_once_across_runs(self, monkeypatch):
        calls = {"n": 0}
        real = convert.boundary_table

        def counting(temperature, config):
            calls["n"] += 1
            return real(temperature, config)

        monkeypatch.setattr(convert, "boundary_table", counting)
        convert._cached_boundary_table.cache_clear()
        try:
            config = new_design_config()
            machine = NewMachine(config, 40.0, np.random.default_rng(0))
            quantized = np.random.default_rng(1).integers(0, 256, (5, 4))
            machine.run_matrix(quantized)
            machine.run_matrix(quantized)
            machine.run_matrix(quantized)
            assert calls["n"] == 1
            # A second machine at the same design point reuses the table.
            NewMachine(config, 40.0, np.random.default_rng(2))
            assert calls["n"] == 1
        finally:
            convert._cached_boundary_table.cache_clear()

    def test_legacy_lut_built_once_per_temperature(self, monkeypatch):
        calls = {"n": 0}
        real = convert.legacy_lut

        def counting(temperature, config):
            calls["n"] += 1
            return real(temperature, config)

        monkeypatch.setattr(convert, "legacy_lut", counting)
        convert._cached_legacy_lut.cache_clear()
        try:
            config = legacy_design_config()
            machine = LegacyMachine(config, 40.0, np.random.default_rng(0))
            quantized = np.random.default_rng(1).integers(0, 256, (5, 4))
            machine.run_matrix(quantized)
            machine.run_matrix(quantized)
            assert calls["n"] == 1
            machine.update_temperature(20.0)  # new temperature: one build
            assert calls["n"] == 2
            machine.update_temperature(40.0)  # cached from the ctor
            assert calls["n"] == 2
        finally:
            convert._cached_legacy_lut.cache_clear()

    def test_cached_tables_are_read_only(self):
        convert._cached_boundary_table.cache_clear()
        table = convert.cached_boundary_table(40.0, new_design_config())
        with pytest.raises(ValueError):
            table[0] = 0.0


class TestTraceRingBuffer:
    def test_keeps_most_recent_events(self):
        trace = PipelineTrace(max_events=5)
        for cycle in range(20):
            trace.record(cycle, "issue", 0, 0)
        assert len(trace.events) == 5
        assert trace.dropped == 15
        assert [e.cycle for e in trace.events] == [15, 16, 17, 18, 19]

    def test_rejects_nonpositive_capacity(self):
        with pytest.raises(ConfigError):
            PipelineTrace(max_events=0)

    def test_untraced_run_allocates_no_trace_memory(self):
        """Tracing is opt-in: an untraced run touches no trace storage
        (O(1) — in fact zero — trace allocations)."""
        quantized = np.random.default_rng(3).integers(0, 256, (20, 8))
        config = new_design_config()
        for use_event in (True, False):
            machine = NewMachine(
                config, 40.0, np.random.default_rng(0), use_event_driven=use_event
            )
            machine.run_matrix(quantized)  # warm caches outside the snapshot
            tracemalloc.start()
            try:
                machine.run_matrix(quantized)
                snapshot = tracemalloc.take_snapshot()
            finally:
                tracemalloc.stop()
            trace_bytes = sum(
                stat.size
                for stat in snapshot.filter_traces(
                    [tracemalloc.Filter(True, "*repro/uarch/trace.py")]
                ).statistics("filename")
            )
            assert trace_bytes == 0


class TestJobsFromEnergiesValidation:
    def test_accepts_integer_matrix(self):
        jobs = jobs_from_energies(np.arange(6, dtype=np.int64).reshape(2, 3))
        assert len(jobs) == 2

    def test_rejects_empty_job_list(self):
        with pytest.raises(ConfigError, match="non-empty"):
            jobs_from_energies(np.empty((0, 4), dtype=np.int64))

    def test_rejects_zero_label_jobs(self):
        with pytest.raises(ConfigError, match="non-empty"):
            jobs_from_energies(np.empty((4, 0), dtype=np.int64))

    def test_rejects_float_dtype(self):
        with pytest.raises(ConfigError, match="integer dtype"):
            jobs_from_energies(np.ones((2, 3)))

    def test_rejects_wrong_ndim(self):
        with pytest.raises(ConfigError):
            jobs_from_energies(np.arange(4, dtype=np.int64))


class TestEventQueue:
    def test_orders_by_cycle_then_insertion(self):
        queue = EventQueue()
        queue.push(5, "late")
        queue.push(1, "a")
        queue.push(1, "b")
        queue.push(3, "mid")
        assert queue.peek_cycle() == 1
        assert queue.pop_due(3) == [(1, "a"), (1, "b"), (3, "mid")]
        assert len(queue) == 1
        assert queue.pop_due(10) == [(5, "late")]
        assert queue.peek_cycle() is None


class TestSimulateMeasured:
    @pytest.mark.parametrize("time_bits", [3, 5, 8])
    @pytest.mark.parametrize("labels", [2, 10])
    def test_new_design_matches_closed_form(self, time_bits, labels):
        config = new_design_config(time_bits=time_bits)
        closed = simulate("new", labels, 12, 5, config)
        measured = simulate_measured("new", labels, 12, 5, config)
        assert measured.total_cycles == closed.total_cycles

    @pytest.mark.parametrize("time_bits", [3, 5, 8])
    def test_legacy_adds_update_issue_slots(self, time_bits):
        """The structural machine spends one issue slot per iteration on
        the update command; otherwise it matches the closed form."""
        config = legacy_design_config(time_bits=time_bits)
        iterations = 4
        closed = simulate("legacy", 6, 10, iterations, config)
        measured = simulate_measured("legacy", 6, 10, iterations, config)
        assert measured.total_cycles == closed.total_cycles + iterations
