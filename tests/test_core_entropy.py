"""Unit tests for the entropy models."""

import numpy as np
import pytest

from repro.core import (
    bin_probabilities,
    empirical_entropy_bits,
    entropy_rate_gbps,
    new_design_config,
    sample_entropy_bits,
    shannon_entropy,
)
from repro.core.params import legacy_design_config
from repro.util import ConfigError

NEW = new_design_config()


class TestShannonEntropy:
    def test_uniform_distribution(self):
        assert np.isclose(shannon_entropy(np.full(8, 1 / 8)), 3.0)

    def test_point_mass_is_zero(self):
        assert shannon_entropy(np.array([1.0, 0.0])) == 0.0

    def test_rejects_unnormalized(self):
        with pytest.raises(ConfigError):
            shannon_entropy(np.array([0.5, 0.4]))

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            shannon_entropy(np.array([1.5, -0.5]))


class TestSampleEntropy:
    def test_bounded_by_outcome_count(self):
        bits = sample_entropy_bits(1, NEW)
        assert 0 < bits <= np.log2(NEW.time_bins + 1)

    def test_matches_direct_computation(self):
        mass = bin_probabilities(2, NEW)
        assert np.isclose(sample_entropy_bits(2, NEW), shannon_entropy(mass))

    def test_legacy_design_entropy_near_paper_rate(self):
        # Paper: the previous RSU-G generates entropy at 2.89 Gb/s at
        # 1 GHz, i.e. ~2.9 bits per sample at its design point.
        legacy = legacy_design_config()
        rate = entropy_rate_gbps(legacy, code=1)
        assert 2.0 < rate < 4.5


class TestEntropyRate:
    def test_scales_with_frequency(self):
        assert np.isclose(
            entropy_rate_gbps(NEW, 1, 2e9), 2 * entropy_rate_gbps(NEW, 1, 1e9)
        )

    def test_rejects_nonpositive_frequency(self):
        with pytest.raises(ConfigError):
            entropy_rate_gbps(NEW, 1, 0.0)


class TestEmpiricalEntropy:
    def test_matches_analytic_on_large_sample(self):
        from repro.core import TTFSampler

        sampler = TTFSampler(NEW, np.random.default_rng(0))
        ttf = sampler.sample(np.full((300_000, 1), 2)).ravel()
        # Map the no-sample sentinel onto the overflow outcome index.
        outcomes = np.where(ttf > NEW.time_bins, NEW.time_bins, ttf - 1)
        empirical = empirical_entropy_bits(outcomes, NEW.time_bins + 1)
        assert abs(empirical - sample_entropy_bits(2, NEW)) < 0.02

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            empirical_entropy_bits(np.array([], dtype=int), 4)
