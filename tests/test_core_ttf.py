"""Unit tests for the RET-circuit TTF sampler."""

import numpy as np
import pytest

from repro.core import RSUConfig, TTFSampler, bin_probabilities, cutoff_bin, no_sample_bin
from repro.core.params import new_design_config
from repro.util import ConfigError

NEW = new_design_config()


def sampler(config=NEW, seed=0):
    return TTFSampler(config, np.random.default_rng(seed))


class TestBinnedSampling:
    def test_bins_within_window_or_sentinel(self):
        ttf = sampler().sample(np.full((2000, 3), 1))
        in_window = (ttf >= 1) & (ttf <= NEW.time_bins)
        sentinel = ttf == no_sample_bin(NEW)
        assert np.all(in_window | sentinel)

    def test_cutoff_code_gets_cutoff_bin(self):
        ttf = sampler().sample(np.array([[0, 8]]))
        assert ttf[0, 0] == cutoff_bin(NEW)

    def test_clamp_to_tmax_mode(self):
        config = NEW.with_(clamp_to_tmax=True)
        ttf = sampler(config).sample(np.full((5000, 1), 1))
        assert ttf.max() <= config.time_bins

    def test_truncation_fraction_matches_definition(self):
        # P(no sample | code 1) should equal the configured Truncation.
        ttf = sampler(seed=1).sample(np.full((200_000, 1), 1))
        fraction = (ttf == no_sample_bin(NEW)).mean()
        assert abs(fraction - NEW.truncation) < 0.01

    def test_higher_code_fires_sooner_on_average(self):
        ttf = sampler(seed=2).sample(np.tile([1, 8], (100_000, 1)))
        slow = ttf[:, 0][ttf[:, 0] <= NEW.time_bins]
        fast = ttf[:, 1][ttf[:, 1] <= NEW.time_bins]
        assert fast.mean() < slow.mean()

    def test_rejects_negative_codes(self):
        with pytest.raises(ConfigError):
            sampler().sample(np.array([[-1]]))

    def test_empirical_bins_match_analytic_mass(self):
        config = NEW
        code = 2
        ttf = sampler(seed=3).sample(np.full((400_000, 1), code)).ravel()
        expected = bin_probabilities(code, config)
        for bin_index in (1, 2, 4, 16):
            observed = (ttf == bin_index).mean()
            assert abs(observed - expected[bin_index - 1]) < 0.005


class TestFloatTime:
    def test_float_time_returns_continuous(self):
        config = NEW.with_(float_time=True)
        ttf = sampler(config).sample(np.full((100, 2), 4))
        assert np.issubdtype(ttf.dtype, np.floating)
        assert np.all(ttf > 0)

    def test_float_time_cutoff_is_infinite(self):
        config = NEW.with_(float_time=True)
        ttf = sampler(config).sample(np.array([[0, 1]]))
        assert np.isinf(ttf[0, 0])

    def test_float_time_mean_matches_exponential(self):
        config = NEW.with_(float_time=True)
        code = 4
        ttf = sampler(config, seed=4).sample(np.full((200_000, 1), code))
        expected_mean = 1.0 / (code * config.lambda0_per_bin)
        assert abs(ttf.mean() - expected_mean) / expected_mean < 0.02


class TestTruncationProbability:
    def test_code1_equals_config_truncation(self):
        assert np.isclose(sampler().truncation_probability(1), NEW.truncation)

    def test_code_zero_never_fires(self):
        assert sampler().truncation_probability(0) == 1.0

    def test_decreases_with_code(self):
        probs = [sampler().truncation_probability(c) for c in (1, 2, 4, 8)]
        assert probs == sorted(probs, reverse=True)

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            sampler().truncation_probability(-1)


class TestBinProbabilities:
    def test_sums_to_one(self):
        mass = bin_probabilities(3, NEW)
        assert np.isclose(mass.sum(), 1.0)

    def test_length_is_bins_plus_tail(self):
        assert len(bin_probabilities(1, NEW)) == NEW.time_bins + 1

    def test_tail_matches_truncation_for_code1(self):
        assert np.isclose(bin_probabilities(1, NEW)[-1], NEW.truncation)

    def test_rejects_zero_code(self):
        with pytest.raises(ConfigError):
            bin_probabilities(0, NEW)
