"""Integration tests for the resilient driver and robustness experiment."""

import numpy as np
import pytest

from repro.core.params import new_design_config
from repro.faults import (
    FaultPlan,
    FaultyRSUDevice,
    ResiliencePolicy,
    ResilientDriver,
    UnitArrayFault,
    WireFault,
)
from repro.isa import Configure, RSUDevice, RSUDriver
from repro.util import ConfigError, UnrecoverableFaultError

NEW = new_design_config()


def potts_problem(h=10, w=12, m=4, seed=0):
    rng = np.random.default_rng(seed)
    target = np.zeros((h, w), dtype=int)
    target[:, w // 2 :] = m - 1
    unary = rng.integers(0, 30, (h, w, m))
    rows = np.arange(h)[:, None]
    cols = np.arange(w)[None, :]
    unary[rows, cols, target] = 0
    return unary, target


CONFIGURE = Configure("binary", 1, 8, 4)
TEMPERATURES = [20.0 * 0.85**k + 1.0 for k in range(25)]


def resilient_solve(plan, seed=9, policy=ResiliencePolicy(), iterations=25):
    unary, target = potts_problem()
    device = FaultyRSUDevice(NEW, np.random.default_rng(seed), plan=plan)
    driver = ResilientDriver(device, unary, CONFIGURE, policy=policy)
    labels = driver.solve(iterations, TEMPERATURES[:iterations])
    return labels, target, driver


def units_plan(**kwargs):
    kwargs.setdefault("n_units", 4)
    kwargs.setdefault("spare_units", 2)
    return FaultPlan(units=UnitArrayFault(**kwargs))


class TestPolicy:
    def test_validation(self):
        with pytest.raises(ConfigError):
            ResiliencePolicy(max_retries=-1)
        with pytest.raises(ConfigError):
            ResiliencePolicy(backoff_factor=0.5)
        with pytest.raises(ConfigError):
            ResiliencePolicy(health_pvalue=0.0)
        with pytest.raises(ConfigError):
            ResiliencePolicy(nack_rate_threshold=1.5)
        with pytest.raises(ConfigError):
            ResiliencePolicy(probe_temperature=0.0)


class TestBitIdentity:
    def test_null_plan_matches_plain_driver_exactly(self):
        """Acceptance: with all fault rates at zero the resilient path
        is bit-identical to the unprotected driver."""
        unary, _ = potts_problem()

        plain_device = RSUDevice(NEW, np.random.default_rng(9), design="new")
        plain = RSUDriver(plain_device, unary, CONFIGURE)
        expected = plain.solve(25, TEMPERATURES)

        labels, _, driver = resilient_solve(FaultPlan.none(), seed=9)
        assert np.array_equal(labels, expected)
        assert not driver.fell_back
        assert driver.summary()["incident_counts"].get("unit_nack", 0) == 0
        assert driver.words_sent == plain.words_sent


class TestDeterminism:
    def test_same_seed_same_incidents_and_labels(self):
        """Acceptance: a seeded run under faults replays byte-identically —
        same incident log, same final labeling."""
        plan = FaultPlan(
            units=UnitArrayFault(
                n_units=4, spare_units=2, transient_rate=0.01, seed=5
            ),
            wire=WireFault(flip_rate=2e-4, drop_rate=1e-4, seed=6),
        )
        first_labels, _, first = resilient_solve(plan, seed=11)
        second_labels, _, second = resilient_solve(plan, seed=11)
        assert first.incidents.to_jsonl() == second.incidents.to_jsonl()
        assert np.array_equal(first_labels, second_labels)
        assert first.summary() == second.summary()


class TestTransientFaults:
    def test_one_percent_transients_recovered_within_2x_quality(self):
        """Acceptance: at a 1% transient rate the solve completes and the
        label error stays within 2x of the fault-free run."""
        clean_labels, target, _ = resilient_solve(FaultPlan.none(), seed=9)
        clean_error = (clean_labels != target).mean()

        labels, target, driver = resilient_solve(
            units_plan(transient_rate=0.01, seed=21), seed=9
        )
        error = (labels != target).mean()
        assert not driver.fell_back
        counts = driver.summary()["incident_counts"]
        assert counts.get("unit_nack", 0) > 0
        assert counts.get("recovered", 0) > 0
        assert error <= 2.0 * clean_error + 0.02
        assert driver.simulated_backoff_s > 0.0


class TestPersistentFaults:
    def test_dead_unit_is_quarantined_onto_a_spare(self):
        labels, target, driver = resilient_solve(
            units_plan(dead_units=(2,), seed=23), seed=9
        )
        summary = driver.summary()
        assert summary["quarantined_units"] == [2]
        assert not driver.fell_back
        assert summary["detection_sweep"] is not None
        assert (labels == target).mean() > 0.85
        # Once the spare takes over the NACKs stop: incidents are bounded.
        last_nack = max(i.sweep for i in driver.incidents.of_kind("unit_nack"))
        assert last_nack <= summary["detection_sweep"] + 2

    def test_stuck_unit_detected_by_probe_and_quarantined(self):
        # The passive screen's default threshold is tuned for array-scale
        # sample counts; on this small grid (~30 labels per unit per
        # epoch) the screen needs to be more sensitive.  The analytic
        # probe still guards against false positives.
        policy = ResiliencePolicy(health_pvalue=1e-3)
        labels, target, driver = resilient_solve(
            units_plan(stuck_units=((1, 0),), seed=25), seed=9, policy=policy
        )
        summary = driver.summary()
        assert summary["quarantined_units"] == [1]
        assert not driver.fell_back
        probes = driver.incidents.of_kind("probe")
        assert probes and probes[0].unit == 1
        quarantine = driver.incidents.of_kind("quarantine")[0]
        assert dict(quarantine.detail)["reason"] == "probe"
        assert (labels == target).mean() > 0.85

    def test_dead_beyond_spares_falls_back_to_software(self):
        """Acceptance: when persistent faults exceed the spare pool the
        driver degrades to the software sampler with an incident, and
        still completes the solve."""
        labels, target, driver = resilient_solve(
            units_plan(spare_units=1, dead_units=(0, 1, 2), seed=27), seed=9
        )
        assert driver.fell_back
        fallback = driver.incidents.of_kind("fallback")
        assert len(fallback) == 1 and fallback[0].severity == "error"
        assert (labels == target).mean() > 0.85

    def test_fallback_can_be_disabled(self):
        policy = ResiliencePolicy(allow_fallback=False)
        with pytest.raises(UnrecoverableFaultError):
            resilient_solve(
                units_plan(spare_units=1, dead_units=(0, 1, 2), seed=27),
                seed=9,
                policy=policy,
            )


class TestWireFaults:
    def test_corrupted_transfers_are_retried(self):
        plan = FaultPlan(
            units=UnitArrayFault(n_units=4, spare_units=2, seed=31),
            wire=WireFault(flip_rate=1e-3, drop_rate=5e-4, seed=33),
        )
        labels, target, driver = resilient_solve(plan, seed=9)
        counts = driver.summary()["incident_counts"]
        faults = counts.get("transfer_corrupt", 0) + counts.get("response_mismatch", 0)
        assert faults > 0
        assert not driver.fell_back
        assert (labels == target).mean() > 0.85
        # Retries resend whole batches: offered traffic exceeds what the
        # device actually consumed after drops and rejected transfers.
        assert driver.words_sent > driver.device.stats.words_consumed


@pytest.mark.slow
class TestRobustnessExperiment:
    def test_quick_profile_run(self):
        from repro.experiments.profiles import QUICK
        from repro.experiments.robustness import run

        result = run(QUICK, seed=3)
        assert result.experiment_id == "robustness"
        scenarios = [row[0] for row in result.rows]
        assert "transient 0" in scenarios and "dead beyond spares" in scenarios
        curve = result.extra["degradation_curve"]
        baseline = result.extra["baseline_bp"]
        # The headline acceptance number, at stereo scale: 1% transient
        # faults stay within 2x of the fault-free bad-pixel percentage.
        assert curve["0.01"] <= 2.0 * baseline
        fell_back = {row[0]: row[5] for row in result.rows}
        assert fell_back["dead beyond spares"] == 1
        assert fell_back["transient 0"] == 0
