"""Unit tests for the BISIP segmentation metrics."""

import numpy as np
import pytest

from repro.metrics import (
    bisip_metrics,
    boundary_displacement_error,
    boundary_map,
    global_consistency_error,
    probabilistic_rand_index,
    variation_of_information,
)
from repro.util import DataError


def halves(h=8, w=8):
    labels = np.zeros((h, w), dtype=np.int64)
    labels[:, w // 2 :] = 1
    return labels


class TestVoI:
    def test_identical_partitions_zero(self):
        seg = halves()
        assert variation_of_information(seg, seg) == 0.0

    def test_permutation_invariant(self):
        seg = halves()
        assert variation_of_information(1 - seg, seg) == pytest.approx(0.0, abs=1e-12)

    def test_independent_partitions(self):
        # Horizontal vs vertical halves: I = 0, VoI = H(A)+H(B) = 2 bits.
        seg_a = halves()
        seg_b = halves().T.copy()
        assert variation_of_information(seg_a, seg_b) == pytest.approx(2.0)

    def test_symmetry(self):
        rng = np.random.default_rng(0)
        a = rng.integers(0, 3, (10, 10))
        b = rng.integers(0, 4, (10, 10))
        assert variation_of_information(a, b) == pytest.approx(
            variation_of_information(b, a)
        )

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DataError):
            variation_of_information(np.zeros((2, 2), int), np.zeros((3, 3), int))


class TestPRI:
    def test_identical_is_one(self):
        seg = halves()
        assert probabilistic_rand_index(seg, seg) == 1.0

    def test_permutation_invariant(self):
        seg = halves()
        assert probabilistic_rand_index(1 - seg, seg) == 1.0

    def test_in_unit_interval(self):
        rng = np.random.default_rng(1)
        a = rng.integers(0, 3, (12, 12))
        b = rng.integers(0, 3, (12, 12))
        assert 0.0 <= probabilistic_rand_index(a, b) <= 1.0

    def test_single_region_vs_split(self):
        all_one = np.zeros((4, 4), int)
        split = halves(4, 4)
        # Agreeing pairs: those within each half of the split.
        value = probabilistic_rand_index(all_one, split)
        n = 16
        same_pairs = 2 * (8 * 7 / 2)
        total = n * (n - 1) / 2
        assert value == pytest.approx(same_pairs / total)


class TestGCE:
    def test_identical_is_zero(self):
        seg = halves()
        assert global_consistency_error(seg, seg) == 0.0

    def test_refinement_is_free(self):
        # A strict refinement of the other partition has zero GCE.
        coarse = halves(8, 8)
        fine = coarse.copy()
        fine[:4, :] += 2  # split each half horizontally
        assert global_consistency_error(fine, coarse) == 0.0

    def test_bounded_by_one(self):
        rng = np.random.default_rng(2)
        a = rng.integers(0, 4, (10, 10))
        b = rng.integers(0, 4, (10, 10))
        assert 0.0 <= global_consistency_error(a, b) <= 1.0


class TestBoundary:
    def test_boundary_of_halves(self):
        boundary = boundary_map(halves())
        assert boundary[:, 3].all() and boundary[:, 4].all()
        assert not boundary[:, 0].any()

    def test_uniform_has_no_boundary(self):
        assert not boundary_map(np.zeros((5, 5), int)).any()

    def test_bde_identical_zero(self):
        seg = halves()
        assert boundary_displacement_error(seg, seg) == 0.0

    def test_bde_shifted_boundary(self):
        a = np.zeros((8, 8), int)
        a[:, 4:] = 1
        b = np.zeros((8, 8), int)
        b[:, 6:] = 1
        # Boundaries are two pixels wide (cols 3,4 vs 5,6): distances
        # average to (1 + 2) / 2 on each side.
        assert boundary_displacement_error(a, b) == pytest.approx(1.5)

    def test_bde_one_side_uniform(self):
        uniform = np.zeros((8, 8), int)
        value = boundary_displacement_error(uniform, halves())
        assert value > 0.0

    def test_bde_both_uniform(self):
        uniform = np.zeros((8, 8), int)
        assert boundary_displacement_error(uniform, uniform) == 0.0


class TestBundle:
    def test_keys(self):
        seg = halves()
        metrics = bisip_metrics(seg, seg)
        assert set(metrics) == {"voi", "pri", "gce", "bde"}
        assert metrics["voi"] == 0.0 and metrics["pri"] == 1.0
