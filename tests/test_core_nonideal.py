"""Unit tests for the device non-ideality models."""

import numpy as np
import pytest

from repro.core import (
    NoisyTTFSampler,
    TTFSampler,
    dark_count_probability_per_window,
    expected_spurious_rate,
    meets_residual_budget,
    new_design_config,
    residual_excitation_probability,
)
from repro.core.pipeline import ret_network_replicas
from repro.util import ConfigError

NEW = new_design_config()


class TestDarkCounts:
    def test_khz_rate_is_negligible(self):
        # The paper's claim (Sec. II-B): kHz dark counts vs a 1 GHz
        # clock have negligible effect.
        prob = dark_count_probability_per_window(NEW, dark_count_rate_hz=1e3)
        assert prob < 1e-5

    def test_scales_with_rate(self):
        low = dark_count_probability_per_window(NEW, 1e3)
        high = dark_count_probability_per_window(NEW, 1e6)
        assert high > low * 100

    def test_scales_with_window(self):
        short = dark_count_probability_per_window(NEW.with_(time_bits=3), 1e6)
        long = dark_count_probability_per_window(NEW.with_(time_bits=8), 1e6)
        assert long > short

    def test_rejects_negative_rate(self):
        with pytest.raises(ConfigError):
            dark_count_probability_per_window(NEW, -1.0)

    def test_zero_rate_is_exactly_zero(self):
        assert dark_count_probability_per_window(NEW, 0.0) == 0.0

    def test_window_longer_than_mean_interarrival_saturates(self):
        # rate * window >> 1: the window almost surely contains a dark
        # count, but the probability stays a probability.
        prob = dark_count_probability_per_window(NEW, 1e9, frequency_hz=1.0)
        assert 0.99 < prob <= 1.0

    def test_rejects_nan_and_inf(self):
        for bad in (float("nan"), float("inf"), -float("inf")):
            with pytest.raises(ConfigError):
                dark_count_probability_per_window(NEW, bad)
            with pytest.raises(ConfigError):
                dark_count_probability_per_window(NEW, 1e3, frequency_hz=bad)


class TestResidualExcitation:
    def test_geometric_decay(self):
        assert residual_excitation_probability(NEW, 1) == pytest.approx(0.5)
        assert residual_excitation_probability(NEW, 8) == pytest.approx(0.5**8)

    def test_paper_replica_count_meets_budget(self):
        replicas = ret_network_replicas(NEW)
        assert replicas == 8
        assert meets_residual_budget(NEW, replicas)
        assert not meets_residual_budget(NEW, replicas - 1)

    def test_expected_rate_defaults_to_design_replicas(self):
        assert expected_spurious_rate(NEW) == pytest.approx(0.5**8)

    def test_rejects_zero_rest(self):
        with pytest.raises(ConfigError):
            residual_excitation_probability(NEW, 0)

    def test_residual_exactly_at_budget_boundary_passes(self):
        from repro.core.pipeline import RESIDUAL_BUDGET

        # One rest window at truncation == budget lands the residual
        # exactly on the 0.4% boundary, which the design accepts.
        config = NEW.with_(truncation=RESIDUAL_BUDGET)
        assert residual_excitation_probability(config, 1) == RESIDUAL_BUDGET
        assert meets_residual_budget(config, 1)
        # A rate just beyond the comparison tolerance is rejected.
        above = NEW.with_(truncation=RESIDUAL_BUDGET + 1e-9)
        assert not meets_residual_budget(above, 1)


class TestNoisyTTFSampler:
    def test_zero_noise_matches_clean_sampler(self):
        codes = np.full((5000, 2), 4)
        clean = TTFSampler(NEW, np.random.default_rng(3)).sample(codes)
        noisy = NoisyTTFSampler(NEW, np.random.default_rng(3)).sample(codes)
        assert np.array_equal(clean, noisy)

    def test_noise_shortens_ttf_statistically(self):
        codes = np.full((100_000, 1), 1)
        clean = TTFSampler(NEW, np.random.default_rng(5)).sample(codes)
        noisy = NoisyTTFSampler(
            NEW, np.random.default_rng(5), bleed_prob=0.3
        ).sample(codes)
        assert noisy.mean() < clean.mean()
        assert np.all(noisy <= clean)  # spurious photons only come earlier

    def test_cutoff_labels_immune(self):
        sampler = NoisyTTFSampler(NEW, np.random.default_rng(0), dark_prob=1.0)
        ttf = sampler.sample(np.zeros((100, 1), dtype=int))
        from repro.core import cutoff_bin

        assert np.all(ttf == cutoff_bin(NEW))

    def test_budget_level_noise_barely_moves_distribution(self):
        # At the design's 0.4% spurious rate the mean TTF shift is tiny.
        codes = np.full((200_000, 1), 2)
        clean = TTFSampler(NEW, np.random.default_rng(7)).sample(codes)
        noisy = NoisyTTFSampler(
            NEW, np.random.default_rng(7), bleed_prob=expected_spurious_rate(NEW)
        ).sample(codes)
        assert abs(noisy.mean() - clean.mean()) / clean.mean() < 0.01

    def test_rejects_bad_probabilities(self):
        with pytest.raises(ConfigError):
            NoisyTTFSampler(NEW, np.random.default_rng(0), dark_prob=1.5)

    def test_rejects_float_time(self):
        config = NEW.with_(float_time=True)
        sampler = NoisyTTFSampler(config, np.random.default_rng(0), dark_prob=0.1)
        with pytest.raises(ConfigError):
            sampler.sample(np.full((2, 2), 1))
