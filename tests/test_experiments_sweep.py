"""Tests for the custom design-point sweep harness and CLI command."""

import pytest

from repro.experiments import QUICK
from repro.experiments.cli import main
from repro.experiments.sweep import APPS, SWEEPABLE, parse_values, run_sweep
from repro.util import ConfigError

TINY = QUICK.with_(
    sweep_scale=0.2,
    sweep_iterations=25,
    motion_scale=0.3,
    motion_iterations=20,
    seg_shape=(20, 26),
    seg_iterations=6,
)


class TestParseValues:
    def test_ints(self):
        assert parse_values("time_bits", "3,5,8") == [3, 5, 8]

    def test_floats(self):
        assert parse_values("truncation", "0.1, 0.5") == [0.1, 0.5]

    def test_bools(self):
        assert parse_values("cutoff", "true,0") == [True, False]

    def test_strings(self):
        assert parse_values("tie_policy", "first,random") == ["first", "random"]

    def test_rejects_unknown_param(self):
        with pytest.raises(ConfigError):
            parse_values("voltage", "1,2")

    def test_rejects_empty(self):
        with pytest.raises(ConfigError):
            parse_values("time_bits", " , ")

    def test_all_sweepables_listed(self):
        assert {"lambda_bits", "time_bits", "truncation", "tie_policy"} <= set(SWEEPABLE)


class TestRunSweep:
    @pytest.mark.parametrize("app", APPS)
    def test_each_app_produces_rows(self, app):
        result = run_sweep("time_bits", [4, 6], app=app, profile=TINY)
        assert len(result.rows) == 2
        assert all(len(row) == 2 for row in result.rows)
        assert "series" in result.extra

    def test_tie_policy_sweep_shows_drift(self):
        # Needs enough labels/iterations for the drift to dominate noise.
        profile = TINY.with_(sweep_scale=0.35, sweep_iterations=60)
        result = run_sweep(
            "tie_policy", ["random", "first"], app="stereo", profile=profile
        )
        random_bp, first_bp = (row[1] for row in result.rows)
        assert first_bp > random_bp + 5.0  # deterministic ties hurt

    def test_rejects_unknown_app(self):
        with pytest.raises(ConfigError):
            run_sweep("time_bits", [4], app="ray_tracing", profile=TINY)


class TestCliSweep:
    def test_cli_sweep_prints_table(self, capsys):
        code = main([
            "sweep", "--param", "time_bits", "--values", "4,6",
            "--app", "segmentation", "--profile", "quick",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "VoI" in out and "time_bits" in out

    def test_cli_sweep_chart(self, capsys):
        code = main([
            "sweep", "--param", "truncation", "--values", "0.2,0.5",
            "--app", "segmentation", "--profile", "quick", "--chart",
        ])
        assert code == 0
        assert "quality vs truncation" in capsys.readouterr().out
