"""Tests for the RNG statistical battery, applied to all stream sources."""

import numpy as np
import pytest

from repro.rng import LFSR, MT19937
from repro.rng.battery import (
    block_chi_square_test,
    detect_period,
    monobit_test,
    run_battery,
    runs_test,
    serial_correlation_test,
)
from repro.util import ConfigError, DataError


def mt_bits(count, seed=7):
    words = MT19937(seed).words(count // 32 + 1)
    bits = ((words[:, None] >> np.arange(32, dtype=np.uint64)) & 1).ravel()
    return bits[:count].astype(np.int64)


class TestKnownGoodStreams:
    def test_mt19937_passes_battery(self):
        outcomes = run_battery(mt_bits(40_000))
        for outcome in outcomes.values():
            assert outcome.passed(), outcome

    def test_numpy_bits_pass_battery(self):
        bits = np.random.default_rng(0).integers(0, 2, 40_000)
        outcomes = run_battery(bits)
        for outcome in outcomes.values():
            assert outcome.passed(), outcome

    def test_lfsr_passes_short_range_tests(self):
        # Within one period a maximal LFSR is statistically balanced.
        bits = LFSR(width=19, seed=123).bits(40_000)
        assert monobit_test(bits).passed()
        assert runs_test(bits).passed()


class TestKnownBadStreams:
    def test_constant_stream_fails_monobit(self):
        assert not monobit_test(np.ones(1000, dtype=int)).passed()

    def test_alternating_stream_fails_runs(self):
        bits = np.tile([0, 1], 2000)
        assert not runs_test(bits).passed()

    def test_correlated_stream_fails_serial(self):
        rng = np.random.default_rng(1)
        base = rng.integers(0, 2, 5000)
        sticky = base.copy()
        sticky[1:] = np.where(rng.random(4999) < 0.8, sticky[:-1], base[1:])
        assert not serial_correlation_test(sticky).passed()

    def test_biased_blocks_fail_chi_square(self):
        bits = np.tile([1, 1, 1, 0], 3000)
        assert not block_chi_square_test(bits, block_bits=4).passed()


class TestPeriodDetection:
    def test_detects_short_lfsr_period(self):
        # A 5-bit maximal LFSR has period 31 — visible in 200 bits.
        bits = LFSR(width=5, seed=1).bits(200)
        assert detect_period(bits, 64) == 31

    def test_mt_has_no_short_period(self):
        assert detect_period(mt_bits(8000), 2000) is None

    def test_lfsr19_has_no_short_period(self):
        # The 19-bit LFSR's period is 2^19 - 1; nothing short shows up.
        bits = LFSR(width=19, seed=77).bits(8000)
        assert detect_period(bits, 2000) is None

    def test_validation(self):
        with pytest.raises(ConfigError):
            detect_period(np.zeros(10, dtype=int), 10)


class TestInputValidation:
    def test_rejects_non_binary(self):
        with pytest.raises(DataError):
            monobit_test(np.array([0, 1, 2] * 100))

    def test_rejects_short_stream(self):
        with pytest.raises(DataError):
            monobit_test(np.array([0, 1] * 10))

    def test_chi_square_needs_enough_blocks(self):
        with pytest.raises(DataError):
            block_chi_square_test(np.zeros(200, dtype=int) | 1, block_bits=8)

    def test_serial_lag_bounds(self):
        with pytest.raises(ConfigError):
            serial_correlation_test(mt_bits(200), lag=0)


class TestStreamSources:
    """run_battery accepts generators and BitSources directly."""

    def test_lfsr_source_matches_materialized_bits(self):
        from repro.rng.battery import stream_bits

        direct = np.asarray(LFSR(width=19, seed=123).bits(40_000))
        np.testing.assert_array_equal(
            stream_bits(LFSR(width=19, seed=123), 40_000), direct
        )

    def test_mt_source_unpacks_msb_first(self):
        from repro.rng.battery import stream_bits

        words = MT19937(seed=7).words(10)
        bits = stream_bits(MT19937(seed=7), 320)
        positions = np.arange(31, -1, -1, dtype=np.uint64)
        expected = ((words[:, None] >> positions) & np.uint64(1)).ravel()
        np.testing.assert_array_equal(bits, expected.astype(np.uint8))

    def test_uniform_source_recovers_lfsr_words(self):
        from repro.rng.battery import stream_bits
        from repro.rng import LFSRBitSource

        source = LFSRBitSource(LFSR(width=19, seed=21))
        via_uniforms = stream_bits(source, 1900, word_bits=19)
        # Requantizing the floats on the 19-bit grid is exact, so the
        # bits equal the generator's own MSB-first word packing.
        words = LFSR(width=19, seed=21).words(100, 19)
        positions = np.arange(18, -1, -1, dtype=np.uint64)
        direct = (
            (np.asarray(words, dtype=np.uint64)[:, None] >> positions) & np.uint64(1)
        ).ravel()
        np.testing.assert_array_equal(via_uniforms, direct.astype(np.uint8))

    def test_run_battery_on_source(self):
        outcomes = run_battery(MT19937(seed=4), n_bits=40_000)
        assert set(outcomes) == {
            "monobit", "runs", "serial_correlation", "block_chi_square"
        }
        for outcome in outcomes.values():
            assert outcome.passed(), outcome

    def test_source_requires_n_bits(self):
        with pytest.raises(ConfigError):
            run_battery(MT19937(seed=4))

    def test_stream_bits_validation(self):
        from repro.rng.battery import stream_bits
        from repro.rng import LFSRBitSource

        with pytest.raises(ConfigError):
            stream_bits(LFSR(width=19, seed=1), 0)
        with pytest.raises(ConfigError):
            stream_bits(LFSRBitSource(LFSR(width=19, seed=1)), 100, word_bits=60)
        with pytest.raises(ConfigError):
            stream_bits(object(), 100)


class TestRSUEntropyStream:
    def test_rsu_ttf_low_bit_is_usable_entropy(self):
        """The RSU's binned TTFs carry extractable physical entropy: the
        parity of the bin index of a mid-rate exponential passes the
        balance tests after von Neumann-style whitening is NOT even
        needed at this rate."""
        from repro.core import TTFSampler, new_design_config

        config = new_design_config()
        sampler = TTFSampler(config, np.random.default_rng(3))
        ttf = sampler.sample(np.full((60_000, 1), 1)).ravel()
        fired = ttf[ttf <= config.time_bins]
        bits = (fired & 1).astype(np.int64)[:40_000]
        assert monobit_test(bits).passed(alpha=0.001)
