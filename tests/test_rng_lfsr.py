"""Unit tests for the LFSR pseudo-RNG."""

import numpy as np
import pytest

from repro.rng import LFSR, TAPS_BY_WIDTH
from repro.rng.lfsr import cycle_states
from repro.util import ConfigError


class TestConstruction:
    def test_rejects_zero_seed(self):
        with pytest.raises(ConfigError):
            LFSR(width=19, seed=0)

    def test_rejects_unknown_width_without_taps(self):
        with pytest.raises(ConfigError):
            LFSR(width=6)

    def test_accepts_explicit_taps(self):
        reg = LFSR(width=6, seed=1, taps=(6, 5))
        assert reg.width == 6

    def test_rejects_out_of_range_taps(self):
        with pytest.raises(ConfigError):
            LFSR(width=4, seed=1, taps=(5,))

    def test_seed_wraps_modulo_width(self):
        reg = LFSR(width=4, seed=0x1F)  # 5 bits -> 0xF
        assert reg.state == 0xF


class TestMaximalPeriod:
    @pytest.mark.parametrize("width", [3, 4, 5, 7, 8, 11])
    def test_small_widths_are_maximal(self, width):
        states = cycle_states(width)
        assert len(states) == (1 << width) - 1
        assert len(set(states)) == len(states)

    def test_period_property(self):
        assert LFSR(width=19).period == (1 << 19) - 1


class TestOutput:
    def test_bits_are_binary(self):
        bits = LFSR(width=19, seed=12345).bits(500)
        assert set(np.unique(bits)).issubset({0, 1})

    def test_bit_balance_near_half(self):
        bits = LFSR(width=19, seed=99).bits(20000)
        assert 0.45 < bits.mean() < 0.55

    def test_words_pack_msb_first(self):
        reg = LFSR(width=3, seed=0b001)
        # Manually step a copy to predict the first 3 output bits.
        ref = LFSR(width=3, seed=0b001)
        expected_bits = [ref.step() for _ in range(3)]
        expected = expected_bits[0] * 4 + expected_bits[1] * 2 + expected_bits[2]
        assert reg.words(1, 3)[0] == expected

    def test_uniforms_in_unit_interval(self):
        u = LFSR(width=19, seed=7).uniforms(1000)
        assert np.all(u >= 0) and np.all(u < 1)

    def test_uniform_mean_near_half(self):
        u = LFSR(width=19, seed=7).uniforms(5000)
        assert abs(u.mean() - 0.5) < 0.02

    def test_deterministic_given_seed(self):
        a = LFSR(width=19, seed=42).bits(100)
        b = LFSR(width=19, seed=42).bits(100)
        assert np.array_equal(a, b)

    def test_iterator_protocol(self):
        reg = LFSR(width=19, seed=5)
        stream = iter(reg)
        first = [next(stream) for _ in range(10)]
        assert all(bit in (0, 1) for bit in first)


class TestTapsTable:
    def test_paper_width_present(self):
        assert 19 in TAPS_BY_WIDTH
