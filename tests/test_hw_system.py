"""Tests for the array-level scheduling model."""

import pytest

from repro.hw.system import (
    ArrayConfig,
    size_array_for_rate,
    solve_time_seconds,
    sweep_timing,
)
from repro.util import ConfigError


class TestSweepTiming:
    def test_more_units_fewer_cycles_until_memory_wall(self):
        small = sweep_timing(320, 320, 10, ArrayConfig(units=8))
        medium = sweep_timing(320, 320, 10, ArrayConfig(units=64))
        large = sweep_timing(320, 320, 10, ArrayConfig(units=4096))
        assert small.total_cycles > medium.total_cycles >= large.total_cycles

    def test_memory_bound_at_extreme_unit_counts(self):
        timing = sweep_timing(320, 320, 5, ArrayConfig(units=8192))
        assert timing.bottleneck == "memory"

    def test_compute_bound_for_small_arrays(self):
        timing = sweep_timing(320, 320, 64, ArrayConfig(units=8))
        assert timing.bottleneck == "compute"

    def test_utilization_in_unit_interval(self):
        for units in (8, 336, 4096):
            timing = sweep_timing(128, 128, 16, ArrayConfig(units=units))
            assert 0.0 < timing.utilization <= 1.0

    def test_total_is_max_of_components(self):
        timing = sweep_timing(100, 100, 12, ArrayConfig(units=100))
        assert timing.total_cycles == max(timing.compute_cycles, timing.memory_cycles)

    def test_validation(self):
        with pytest.raises(ConfigError):
            sweep_timing(0, 10, 5)
        with pytest.raises(ConfigError):
            ArrayConfig(units=0)


class TestSolveTime:
    def test_scales_linearly_with_iterations(self):
        one = solve_time_seconds(128, 128, 10, 1)
        hundred = solve_time_seconds(128, 128, 10, 100)
        assert hundred == pytest.approx(100 * one)

    def test_paper_scale_magnitude(self):
        # 336 units on an SD 64-label workload: the sampling stage alone
        # runs in milliseconds per 100 sweeps — consistent with the
        # prior work's accelerator speedups.
        t = solve_time_seconds(320, 320, 64, 100)
        assert 1e-3 < t < 1.0


class TestArraySizing:
    def test_finds_minimal_units(self):
        result = size_array_for_rate(320, 320, 10, 100, target_seconds=0.05)
        assert result["feasible"]
        assert result["achieved_s"] <= 0.05
        # One fewer unit must miss the target (minimality), unless the
        # answer is a single unit.
        units = int(result["units"])
        if units > 1:
            worse = solve_time_seconds(320, 320, 10, 100, ArrayConfig(units=units - 1))
            assert worse > 0.05

    def test_reports_memory_wall(self):
        result = size_array_for_rate(
            1080, 1920, 64, 1000, target_seconds=1e-6, max_units=512
        )
        assert not result["feasible"]
        assert result["achieved_s"] > 1e-6

    def test_validation(self):
        with pytest.raises(ConfigError):
            size_array_for_rate(10, 10, 5, 10, target_seconds=0.0)


class TestDegradedTiming:
    def test_expected_attempts(self):
        from repro.hw.system import expected_attempts

        assert expected_attempts(0.0, 4) == 1.0
        assert expected_attempts(0.5, 1) == pytest.approx(1.5)
        assert expected_attempts(0.1, 4) < expected_attempts(0.2, 4)
        with pytest.raises(ConfigError):
            expected_attempts(1.0, 4)
        with pytest.raises(ConfigError):
            expected_attempts(0.1, -1)

    def test_degraded_units_spares_absorb_quarantines(self):
        from repro.hw.system import degraded_units

        array = ArrayConfig(units=8)
        assert degraded_units(array, quarantined=0) == 8
        assert degraded_units(array, quarantined=2, spare_units=2) == 8
        assert degraded_units(array, quarantined=3, spare_units=2) == 7
        with pytest.raises(ConfigError):
            degraded_units(array, quarantined=10, spare_units=2)

    def test_zero_fault_matches_healthy_timing(self):
        from repro.hw.system import degraded_sweep_timing

        healthy = sweep_timing(320, 320, 10, ArrayConfig(units=16))
        degraded = degraded_sweep_timing(320, 320, 10, ArrayConfig(units=16))
        assert degraded == healthy

    def test_faults_cost_cycles(self):
        from repro.hw.system import degraded_sweep_timing

        array = ArrayConfig(units=16)
        healthy = degraded_sweep_timing(320, 320, 10, array)
        retried = degraded_sweep_timing(320, 320, 10, array, transient_rate=0.05)
        shrunk = degraded_sweep_timing(
            320, 320, 10, array, quarantined=5, spare_units=1
        )
        assert retried.total_cycles > healthy.total_cycles
        assert shrunk.total_cycles > healthy.total_cycles
        assert retried.utilization <= healthy.utilization
