"""Unit tests for the cycle-level pipeline timing models."""

import pytest

from repro.core.params import legacy_design_config, new_design_config
from repro.core.pipeline import (
    legacy_temperature_stall,
    legacy_variable_latency,
    new_temperature_stall,
    new_variable_latency,
    ret_circuit_replicas,
    ret_network_replicas,
    sampling_window_cycles,
    simulate,
)
from repro.util import ConfigError

NEW = new_design_config()
LEGACY = legacy_design_config()


class TestWindowAndReplicas:
    def test_window_cycles_formula(self):
        # Cycles = 2**Time_bits / 8 (Sec. IV-B.5).
        assert sampling_window_cycles(NEW.with_(time_bits=4)) == 2
        assert sampling_window_cycles(NEW) == 4
        assert sampling_window_cycles(NEW.with_(time_bits=8)) == 32

    def test_window_at_least_one_cycle(self):
        assert sampling_window_cycles(NEW.with_(time_bits=2)) == 1

    def test_circuit_replicas_equal_window(self):
        assert ret_circuit_replicas(NEW) == 4

    def test_network_replicas_paper_values(self):
        # Truncation=0.5 -> 8 replicas for the 99.6% goal (Sec. IV-B.6).
        assert ret_network_replicas(NEW) == 8
        # The previous design's 0.004 truncation needs no replication.
        assert ret_network_replicas(LEGACY) == 1

    def test_network_replicas_monotone_in_truncation(self):
        counts = [
            ret_network_replicas(NEW.with_(truncation=t))
            for t in (0.1, 0.3, 0.5, 0.7, 0.9)
        ]
        assert counts == sorted(counts)

    def test_network_replicas_rejects_bad_residual(self):
        with pytest.raises(ConfigError):
            ret_network_replicas(NEW, residual=0.0)


class TestLatency:
    def test_legacy_matches_paper_formula(self):
        # Paper: total latency 7 + (M - 1) at the 4-cycle window.
        for labels in (1, 5, 49, 64):
            assert legacy_variable_latency(labels, LEGACY) == 7 + (labels - 1)

    def test_new_latency_exceeds_legacy(self):
        # The FIFO decoupling lengthens single-variable latency.
        assert new_variable_latency(10, NEW) > legacy_variable_latency(10, LEGACY)

    def test_rejects_zero_labels(self):
        with pytest.raises(ConfigError):
            legacy_variable_latency(0, LEGACY)


class TestTemperatureStalls:
    def test_legacy_stall_is_lut_rewrite(self):
        # 256 entries x 4 bits over an 8-bit interface = 128 cycles.
        assert legacy_temperature_stall(LEGACY) == 128

    def test_new_design_is_stall_free(self):
        assert new_temperature_stall() == 0


class TestSimulate:
    def test_steady_state_throughput_new_design(self):
        timing = simulate("new", labels=16, variables=4096, iterations=50, config=NEW)
        assert timing.stall_cycles_per_iteration == 0
        assert timing.throughput_labels_per_cycle > 0.99

    def test_legacy_throughput_loses_to_stalls(self):
        legacy = simulate("legacy", labels=16, variables=256, iterations=50, config=LEGACY)
        new = simulate("new", labels=16, variables=256, iterations=50, config=NEW)
        assert legacy.total_cycles > new.total_cycles
        assert legacy.throughput_labels_per_cycle < new.throughput_labels_per_cycle

    def test_total_cycles_composition(self):
        timing = simulate("new", labels=8, variables=10, iterations=3, config=NEW)
        work = 8 * 10 * 3
        assert timing.total_cycles == timing.fill_latency + work

    def test_rejects_unknown_design(self):
        with pytest.raises(ConfigError):
            simulate("quantum", labels=4, variables=4, iterations=1, config=NEW)

    def test_rejects_nonpositive_run(self):
        with pytest.raises(ConfigError):
            simulate("new", labels=4, variables=0, iterations=1, config=NEW)
