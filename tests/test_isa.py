"""Tests for the architectural interface: commands, device, driver."""

import numpy as np
import pytest

from repro.core.params import legacy_design_config, new_design_config
from repro.isa import (
    Configure,
    Evaluate,
    ReadStatus,
    RSUDevice,
    RSUDriver,
    SetTemperature,
    decode_stream,
    encode_stream,
)
from repro.util import ConfigError, DataError

NEW = new_design_config()
LEGACY = legacy_design_config()


def new_device(seed=1):
    return RSUDevice(NEW, np.random.default_rng(seed), design="new")


def potts_problem(h=10, w=12, m=4, seed=0):
    rng = np.random.default_rng(seed)
    target = np.zeros((h, w), dtype=int)
    target[:, w // 2 :] = m - 1
    unary = rng.integers(0, 30, (h, w, m))
    rows = np.arange(h)[:, None]
    cols = np.arange(w)[None, :]
    unary[rows, cols, target] = 0
    return unary, target


class TestEncoding:
    def test_round_trip_all_commands(self):
        commands = [
            Configure("absolute", 3, 7, 16, output_shift=2),
            SetTemperature(2, 200),
            Evaluate(site=12345, neighbors=(1, 63, 0, 7), valid_mask=0b1011),
            ReadStatus(),
        ]
        assert decode_stream(encode_stream(commands)) == commands

    def test_evaluate_is_two_words(self):
        words = encode_stream([Evaluate(0, (0, 0, 0, 0), 0)])
        assert len(words) == 2

    def test_words_fit_32_bits(self):
        words = encode_stream(
            [Configure("binary", 63, 63, 64, 15), Evaluate((1 << 28) - 1, (63,) * 4, 0xF)]
        )
        assert all(0 <= w <= 0xFFFFFFFF for w in words)

    def test_truncated_evaluate_rejected(self):
        words = encode_stream([Evaluate(5, (1, 2, 3, 4), 0xF)])[:1]
        with pytest.raises(DataError):
            decode_stream(words)

    def test_unknown_opcode_rejected(self):
        with pytest.raises(DataError):
            decode_stream([0xF0000000])

    def test_malformed_word_reports_byte_offset(self):
        good = encode_stream([SetTemperature(0, 1), SetTemperature(1, 2)])
        with pytest.raises(DataError, match=r"word 2 \(byte 8\)"):
            decode_stream(good + [0xF0000000])

    def test_truncated_evaluate_reports_offset_of_missing_word(self):
        words = encode_stream([SetTemperature(0, 1), Evaluate(5, (1, 2, 3, 4), 0xF)])
        with pytest.raises(DataError, match=r"word 1 \(byte 4\).*truncated"):
            decode_stream(words[:2])

    def test_non_integer_word_rejected(self):
        with pytest.raises(DataError, match="integer word"):
            decode_stream(["0x10000000"])

    def test_out_of_range_word_rejected(self):
        with pytest.raises(DataError, match="32 bits"):
            decode_stream([1 << 32])
        with pytest.raises(DataError, match="32 bits"):
            decode_stream([-1])

    def test_corrupted_field_contents_rejected(self):
        # CONFIGURE with a zero label count: structurally a valid word,
        # but the command's own validation must reject it with the
        # stream offset attached.
        word = (1 << 28) | (0 << 26) | (1 << 20) | (1 << 14) | (0 << 7)
        with pytest.raises(DataError, match=r"word 0 \(byte 0\).*field"):
            decode_stream([word])

    def test_numpy_integer_words_accepted(self):
        commands = [Evaluate(7, (1, 0, 2, 0), 0b0101), ReadStatus()]
        words = np.array(encode_stream(commands), dtype=np.uint32)
        assert decode_stream(words) == commands

    def test_command_validation(self):
        with pytest.raises(ConfigError):
            Configure("cosine", 1, 1, 4)
        with pytest.raises(ConfigError):
            Configure("binary", 64, 1, 4)
        with pytest.raises(ConfigError):
            Evaluate(0, (64, 0, 0, 0), 0)
        with pytest.raises(ConfigError):
            SetTemperature(0, 300)


class TestDeviceOrdering:
    def test_evaluate_requires_configure(self):
        device = new_device()
        device.load_unary(np.zeros((4, 4), dtype=int))
        with pytest.raises(ConfigError):
            device.execute([Evaluate(0, (0, 0, 0, 0), 0)])

    def test_evaluate_requires_temperature(self):
        device = new_device()
        device.load_unary(np.zeros((4, 4), dtype=int))
        device.execute([Configure("binary", 1, 1, 4)])
        with pytest.raises(ConfigError):
            device.execute([Evaluate(0, (0, 0, 0, 0), 0)])

    def test_evaluate_requires_unary(self):
        device = new_device()
        device.execute([Configure("binary", 1, 1, 4)])
        with pytest.raises(ConfigError):
            device.execute([Evaluate(0, (0, 0, 0, 0), 0)])

    def test_design_config_cross_checks(self):
        with pytest.raises(ConfigError):
            RSUDevice(LEGACY, np.random.default_rng(0), design="new")
        with pytest.raises(ConfigError):
            RSUDevice(NEW, np.random.default_rng(0), design="legacy")

    def test_read_status_snapshot(self):
        device = new_device()
        responses = device.execute([ReadStatus()])
        assert responses[0]["evaluations"] == 0


class TestTemperatureInterface:
    def test_new_update_is_four_bytes_atomic(self):
        device = new_device()
        device.execute([SetTemperature(i, 10 * (i + 1)) for i in range(3)])
        assert device.stats.temperature_updates == 0  # not yet complete
        device.execute([SetTemperature(3, 200)])
        assert device.stats.temperature_updates == 1
        assert device.stats.stall_cycles == 0

    def test_legacy_update_streams_128_bytes_with_stalls(self):
        device = RSUDevice(LEGACY, np.random.default_rng(0), design="legacy")
        device.execute([SetTemperature(i, 0x21) for i in range(128)])
        assert device.stats.temperature_updates == 1
        assert device.stats.stall_cycles == 128

    def test_new_rejects_out_of_range_register(self):
        device = new_device()
        with pytest.raises(DataError):
            device.execute([SetTemperature(9, 1)])


class TestDeviceSampling:
    def test_distribution_tracks_functional_model(self):
        """Device EVALUATE matches the functional RSU sampler on the
        same (integer) energies within Monte-Carlo error."""
        from repro.core import RSUGSampler

        device = new_device(seed=5)
        m = 4
        unary = np.array([[0, 3, 9, 40]])
        device.load_unary(unary)
        device.execute([Configure("binary", 1, 0, m)])
        # Grid temperature 5: boundaries floor(5*ln(8/L)).
        from repro.core.convert import boundary_table

        bounds = np.clip(np.floor(boundary_table(5.0, NEW)), 0, 255).astype(int)
        device.execute(
            [SetTemperature(i, int(b)) for i, b in enumerate(bounds)]
        )
        n = 30_000
        responses = device.execute(
            [Evaluate(0, (0, 0, 0, 0), 0) for _ in range(n)]
        )
        empirical = np.bincount(responses, minlength=m) / n

        sampler = RSUGSampler(NEW, 255.0, np.random.default_rng(6))
        reference = sampler.sample(np.tile(unary[0], (n, 1)).astype(float), 5.0)
        expected = np.bincount(reference, minlength=m) / n
        assert np.allclose(empirical, expected, atol=0.03)

    def test_neighbors_shift_energies(self):
        device = new_device(seed=7)
        m = 3
        device.load_unary(np.zeros((1, m), dtype=int))
        device.execute([Configure("binary", 0, 20, m)])
        from repro.core.convert import boundary_table

        bounds = np.clip(np.floor(boundary_table(8.0, NEW)), 0, 255).astype(int)
        device.execute([SetTemperature(i, int(b)) for i, b in enumerate(bounds)])
        # All four neighbours have label 1: the Potts doubleton makes
        # label 1 dominant.
        responses = device.execute(
            [Evaluate(0, (1, 1, 1, 1), 0xF) for _ in range(2000)]
        )
        share = (np.asarray(responses) == 1).mean()
        assert share > 0.9


class TestDriver:
    def test_over_the_wire_solve_recovers_target(self):
        unary, target = potts_problem()
        device = new_device(seed=9)
        driver = RSUDriver(device, unary, Configure("binary", 1, 8, 4))
        temperatures = [20.0 * 0.85**k + 1.0 for k in range(25)]
        labels = driver.solve(25, temperatures)
        assert (labels == target).mean() > 0.9

    def test_interface_traffic_much_lower_on_new_design(self):
        unary, _ = potts_problem()
        iterations = 10
        temperatures = [15.0] * iterations

        new_dev = new_device(seed=3)
        new_driver = RSUDriver(new_dev, unary, Configure("binary", 1, 8, 4))
        new_driver.solve(iterations, temperatures)

        legacy_dev = RSUDevice(LEGACY, np.random.default_rng(3), design="legacy")
        legacy_driver = RSUDriver(legacy_dev, unary, Configure("binary", 1, 8, 4))
        legacy_driver.solve(iterations, temperatures)

        new_traffic = new_driver.interface_traffic()
        legacy_traffic = legacy_driver.interface_traffic()
        assert legacy_traffic["update_bytes"] == 32 * new_traffic["update_bytes"]
        assert new_traffic["stall_cycles"] == 0
        assert legacy_traffic["stall_cycles"] == iterations * 128

    def test_driver_validation(self):
        unary, _ = potts_problem()
        device = new_device()
        with pytest.raises(ConfigError):
            RSUDriver(device, unary, Configure("binary", 1, 8, n_labels=7))
        driver = RSUDriver(new_device(), unary, Configure("binary", 1, 8, 4))
        with pytest.raises(ConfigError):
            driver.solve(0, [])
        with pytest.raises(ConfigError):
            driver.solve(5, [1.0, 2.0])

    def test_words_accounting_matches_device(self):
        unary, _ = potts_problem(h=6, w=6)
        driver = RSUDriver(new_device(), unary, Configure("binary", 1, 8, 4))
        driver.sweep(np.zeros((6, 6), dtype=np.int64), 10.0)
        traffic = driver.interface_traffic()
        assert traffic["words_sent"] == traffic["device_words"]
