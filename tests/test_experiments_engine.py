"""Tests for the parallel experiment engine and its result cache.

The load-bearing guarantee: a registry experiment produces byte-identical
results whether its solves run sequentially, over a ``jobs=4`` process
pool, or out of a warm content-addressed cache.
"""

import numpy as np
import pytest

from repro.apps.stereo import StereoParams
from repro.core.params import new_design_config
from repro.experiments import QUICK, run_experiment
from repro.experiments.ablations import run as run_ablations
from repro.experiments.engine import (
    ExperimentEngine,
    SolveTask,
    _load_dataset,
    execute_task,
    get_engine,
    set_default_engine,
    solve_task,
    use_engine,
)
from repro.experiments.sweep import run_sweep
from repro.util import ConfigError

#: Minutes-scale profile shrunk to seconds for engine plumbing tests.
SUPERTINY = QUICK.with_(
    sweep_scale=0.12,
    sweep_iterations=6,
    motion_scale=0.2,
    motion_iterations=4,
    seg_shape=(14, 18),
    seg_iterations=3,
)

PARAMS = StereoParams(iterations=6)
SPEC = {"name": "poster", "scale": 0.12}


def tiny_task(seed=3, **config_overrides):
    return solve_task(
        "stereo", SPEC, config=new_design_config(**config_overrides),
        params=PARAMS, seed=seed,
    )


class TestSolveTask:
    def test_key_is_stable(self):
        assert tiny_task().key() == tiny_task().key()

    def test_key_depends_on_seed_and_config(self):
        keys = {tiny_task().key(), tiny_task(seed=4).key(), tiny_task(time_bits=3).key()}
        assert len(keys) == 3

    def test_key_ignores_dict_ordering(self):
        a = solve_task("stereo", {"name": "poster", "scale": 0.12},
                       config=new_design_config(), params=PARAMS)
        b = solve_task("stereo", {"scale": 0.12, "name": "poster"},
                       config=new_design_config(), params=PARAMS)
        assert a.key() == b.key()

    def test_rejects_unknown_app(self):
        with pytest.raises(ConfigError):
            solve_task("ray_tracing", SPEC, config=new_design_config())

    def test_rsu_backend_requires_config(self):
        with pytest.raises(ConfigError):
            SolveTask(app="stereo", dataset=(("name", "poster"),))

    def test_execute_task_solves(self):
        result = execute_task(tiny_task())
        assert np.isfinite(result.bad_pixel)


class TestEngineExecution:
    def test_duplicate_tasks_solved_once(self):
        engine = ExperimentEngine(jobs=1)
        first, second = engine.run_tasks([tiny_task(), tiny_task()])
        assert engine.stats.executed == 1
        assert engine.stats.deduplicated == 1
        assert np.array_equal(first.disparity, second.disparity)

    def test_parallel_results_match_sequential(self):
        tasks = [tiny_task(time_bits=bits) for bits in (3, 4, 5, 6)]
        sequential = ExperimentEngine(jobs=1).run_tasks(tasks)
        parallel = ExperimentEngine(jobs=4).run_tasks(tasks)
        for seq, par in zip(sequential, parallel):
            assert seq.bad_pixel == par.bad_pixel
            assert np.array_equal(seq.disparity, par.disparity)

    def test_rejects_nonpositive_jobs(self):
        with pytest.raises(ConfigError):
            ExperimentEngine(jobs=0)

    def test_ambient_engine_scoping(self):
        default = get_engine()
        engine = ExperimentEngine(jobs=1)
        with use_engine(engine):
            assert get_engine() is engine
        assert get_engine() is default

    def test_set_default_engine_returns_previous(self):
        engine = ExperimentEngine(jobs=1)
        previous = set_default_engine(engine)
        try:
            assert get_engine() is engine
        finally:
            set_default_engine(previous)


class TestResultCache:
    def test_cold_then_warm_cache_identical(self, tmp_path):
        tasks = [tiny_task(time_bits=bits) for bits in (4, 5)]
        cold_engine = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
        cold = cold_engine.run_tasks(tasks)
        assert cold_engine.stats.executed == 2

        warm_engine = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
        warm = warm_engine.run_tasks(tasks)
        assert warm_engine.stats.cache_hits == 2
        assert warm_engine.stats.executed == 0
        for a, b in zip(cold, warm):
            assert a.bad_pixel == b.bad_pixel
            assert np.array_equal(a.disparity, b.disparity)

    def test_corrupt_cache_entry_is_a_miss(self, tmp_path):
        engine = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
        task = tiny_task()
        engine.run_tasks([task])
        engine.cache.path(task.key()).write_bytes(b"not a pickle")
        again = ExperimentEngine(jobs=1, cache_dir=tmp_path, use_cache=True)
        result = again.run_tasks([task])[0]
        assert again.stats.executed == 1
        assert np.isfinite(result.bad_pixel)


class TestRegistryDeterminism:
    """Satellite regression: jobs=1 == jobs=4 == warm cache, byte for byte."""

    def _rows(self, engine):
        with use_engine(engine):
            return run_ablations(profile=SUPERTINY, seed=3)

    def test_parallel_and_cached_rows_byte_identical(self, tmp_path):
        sequential = self._rows(ExperimentEngine(jobs=1, use_cache=False))
        parallel = self._rows(ExperimentEngine(jobs=4, use_cache=False))
        cold = self._rows(ExperimentEngine(jobs=4, cache_dir=tmp_path, use_cache=True))
        warm_engine = ExperimentEngine(jobs=4, cache_dir=tmp_path, use_cache=True)
        warm = self._rows(warm_engine)
        assert warm_engine.stats.cache_hits == warm_engine.stats.tasks
        baseline = sequential.to_json()
        assert parallel.to_json() == baseline
        assert cold.to_json() == baseline
        assert warm.to_json() == baseline

    def test_run_experiment_accepts_engine(self):
        engine = ExperimentEngine(jobs=1)
        result = run_experiment("table3", profile="quick", engine=engine)
        assert result.experiment_id == "table3"


class TestSweepDatasetHoisting:
    def test_sweep_loads_dataset_once(self):
        _load_dataset.cache_clear()
        result = run_sweep("time_bits", [4, 5, 6], app="stereo", profile=SUPERTINY)
        info = _load_dataset.cache_info()
        assert info.misses == 1
        assert info.hits == 2
        assert len(result.rows) == 3
