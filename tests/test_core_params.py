"""Unit tests for RSUConfig and the design-point factories."""

import math

import pytest

from repro.core import RSUConfig, legacy_design_config, new_design_config
from repro.util import ConfigError


class TestValidation:
    def test_defaults_are_the_new_design(self):
        config = RSUConfig()
        assert config.energy_bits == 8
        assert config.lambda_bits == 4
        assert config.time_bits == 5
        assert config.truncation == 0.5
        assert config.scaling and config.cutoff and config.pow2_lambda

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"energy_bits": 0},
            {"energy_bits": 17},
            {"lambda_bits": 0},
            {"time_bits": 0},
            {"truncation": 0.0},
            {"truncation": 1.0},
            {"tie_policy": "alphabetical"},
            {"lambda_scale_exponent": -1},
        ],
    )
    def test_rejects_invalid(self, kwargs):
        with pytest.raises(ConfigError):
            RSUConfig(**kwargs)

    def test_rejects_non_integer_bits(self):
        with pytest.raises(ConfigError):
            RSUConfig(energy_bits=8.5)


class TestDerivedProperties:
    def test_lambda_max_code_default(self):
        assert RSUConfig(lambda_bits=4).lambda_max_code == 8
        assert RSUConfig(lambda_bits=7).lambda_max_code == 64

    def test_lambda_scale_exponent_override(self):
        config = RSUConfig(lambda_bits=4, lambda_scale_exponent=4)
        assert config.lambda_max_code == 16

    def test_time_bins(self):
        assert RSUConfig(time_bits=5).time_bins == 32
        assert RSUConfig(time_bits=8).time_bins == 256

    def test_lambda0_matches_truncation_definition(self):
        config = RSUConfig(time_bits=5, truncation=0.5)
        # Truncation = exp(-lambda0 * t_max)
        assert math.isclose(
            math.exp(-config.lambda0_per_bin * config.time_bins), 0.5
        )

    def test_unique_lambdas_with_pow2(self):
        assert RSUConfig(lambda_bits=4, pow2_lambda=True).unique_lambdas == 4

    def test_unique_lambdas_without_pow2(self):
        assert RSUConfig(lambda_bits=4, pow2_lambda=False).unique_lambdas == 8

    def test_with_returns_modified_copy(self):
        base = RSUConfig()
        other = base.with_(time_bits=6)
        assert other.time_bits == 6
        assert base.time_bits == 5


class TestFactories:
    def test_new_design_point(self):
        config = new_design_config()
        assert (config.time_bits, config.truncation) == (5, 0.5)
        assert config.scaling and config.cutoff and config.pow2_lambda

    def test_legacy_design_point(self):
        config = legacy_design_config()
        assert config.truncation == 0.004
        assert not (config.scaling or config.cutoff or config.pow2_lambda)

    def test_factories_accept_overrides(self):
        assert new_design_config(time_bits=7).time_bits == 7
        assert legacy_design_config(lambda_bits=6).lambda_bits == 6


class TestSerialization:
    def test_round_trip(self):
        import json

        config = RSUConfig(time_bits=7, truncation=0.3, tie_policy="first")
        payload = json.loads(json.dumps(config.to_dict()))
        assert RSUConfig.from_dict(payload) == config

    def test_round_trip_factories(self):
        for config in (new_design_config(), legacy_design_config()):
            assert RSUConfig.from_dict(config.to_dict()) == config

    def test_unknown_field_rejected(self):
        with pytest.raises(ConfigError):
            RSUConfig.from_dict({"voltage": 3})

    def test_invalid_values_still_validated(self):
        payload = RSUConfig().to_dict()
        payload["truncation"] = 2.0
        with pytest.raises(ConfigError):
            RSUConfig.from_dict(payload)
