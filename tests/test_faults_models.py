"""Unit tests for the fault models, faulty device, and health checks."""

import numpy as np
import pytest

from repro.core.params import new_design_config
from repro.core.ttf import TTFSampler, no_sample_bin
from repro.faults import (
    EntropyFault,
    FaultPlan,
    FaultyBitSource,
    FaultyRSUDevice,
    FaultySPADSampler,
    IncidentLog,
    SPADFault,
    UnitArrayFault,
    UnitNack,
    WireChannel,
    WireFault,
    chi_square_goodness,
    chi_square_two_sample,
    ks_distance,
    ks_pvalue,
    label_counts,
)
from repro.isa.commands import Configure, Evaluate, SetTemperature
from repro.isa.device import RSUDevice
from repro.rng.streams import NumpyBitSource
from repro.util import ConfigError, DataError, UnrecoverableFaultError

NEW = new_design_config()


class TestEntropyFault:
    def test_validation(self):
        with pytest.raises(ConfigError):
            EntropyFault(stuck_mask=1 << 19, word_bits=19)  # outside the word
        with pytest.raises(ConfigError):
            EntropyFault(stuck_mask=0b01, stuck_value=0b10)  # value off-mask
        with pytest.raises(ConfigError):
            EntropyFault(word_bits=0)

    def test_null_fault_passes_floats_through(self):
        source = NumpyBitSource(np.random.default_rng(3))
        faulty = FaultyBitSource(NumpyBitSource(np.random.default_rng(3)), EntropyFault())
        assert np.array_equal(source.uniforms(100), faulty.uniforms(100))

    def test_stuck_msb_halves_the_range(self):
        msb = 1 << 18
        fault = EntropyFault(stuck_mask=msb, stuck_value=msb, word_bits=19)
        faulty = FaultyBitSource(NumpyBitSource(np.random.default_rng(5)), fault)
        u = faulty.uniforms(2000)
        assert np.all(u >= 0.5)  # the top bit is forced on
        fault_low = EntropyFault(stuck_mask=msb, stuck_value=0, word_bits=19)
        faulty_low = FaultyBitSource(NumpyBitSource(np.random.default_rng(5)), fault_low)
        assert np.all(faulty_low.uniforms(2000) < 0.5)


class TestSPADFault:
    def test_validation(self):
        with pytest.raises(ConfigError):
            SPADFault(dead_prob=1.5)
        with pytest.raises(ConfigError):
            SPADFault(jitter_bins=-1)

    def test_null_fault_bit_identical(self):
        codes = np.full((2000, 3), 4)
        clean = TTFSampler(NEW, np.random.default_rng(3)).sample(codes)
        faulty = FaultySPADSampler(NEW, np.random.default_rng(3), SPADFault()).sample(codes)
        assert np.array_equal(clean, faulty)

    def test_fully_dead_detector_never_samples(self):
        codes = np.full((200, 2), 4)
        sampler = FaultySPADSampler(NEW, np.random.default_rng(3), SPADFault(dead_prob=1.0))
        assert np.all(sampler.sample(codes) == no_sample_bin(NEW))

    def test_hot_pixels_shorten_ttf(self):
        codes = np.full((20_000, 1), 1)
        clean = TTFSampler(NEW, np.random.default_rng(5)).sample(codes)
        hot = FaultySPADSampler(
            NEW, np.random.default_rng(5), SPADFault(hot_prob=0.5, seed=1)
        ).sample(codes)
        assert hot.mean() < clean.mean()
        assert np.all(hot <= clean)

    def test_jitter_stays_inside_window(self):
        codes = np.full((5000, 2), 8)
        jittered = FaultySPADSampler(
            NEW, np.random.default_rng(7), SPADFault(jitter_bins=4, seed=2)
        ).sample(codes)
        genuine = jittered <= NEW.time_bins
        assert np.all(jittered[genuine] >= 1)

    def test_fault_schedule_is_seeded_separately(self):
        codes = np.full((500, 2), 4)
        fault = SPADFault(dead_prob=0.2, seed=11)
        a = FaultySPADSampler(NEW, np.random.default_rng(3), fault).sample(codes)
        b = FaultySPADSampler(NEW, np.random.default_rng(3), fault).sample(codes)
        assert np.array_equal(a, b)


class TestWireChannel:
    def test_null_fault_is_identity(self):
        channel = WireChannel(WireFault())
        words = [1, 2, 3]
        delivered, flips, drops = channel.transmit(words)
        assert delivered == words and flips == 0 and drops == 0

    def test_certain_flip_changes_exactly_one_bit(self):
        channel = WireChannel(WireFault(flip_rate=1.0, seed=3))
        words = [0x12345678] * 50
        delivered, flips, drops = channel.transmit(words)
        assert flips == 50 and drops == 0
        for sent, got in zip(words, delivered):
            assert bin(sent ^ got).count("1") == 1

    def test_certain_drop_loses_everything(self):
        channel = WireChannel(WireFault(drop_rate=1.0, seed=3))
        delivered, flips, drops = channel.transmit([1, 2, 3])
        assert delivered == [] and drops == 3
        assert channel.words_dropped == 3

    def test_same_seed_same_corruption(self):
        words = list(range(200))
        a = WireChannel(WireFault(flip_rate=0.1, drop_rate=0.05, seed=9))
        b = WireChannel(WireFault(flip_rate=0.1, drop_rate=0.05, seed=9))
        assert a.transmit(words) == b.transmit(words)


class TestUnitArrayFault:
    def test_validation(self):
        with pytest.raises(ConfigError):
            UnitArrayFault(n_units=0)
        with pytest.raises(ConfigError):
            UnitArrayFault(n_units=2, spare_units=0, dead_units=(5,))
        with pytest.raises(ConfigError):
            UnitArrayFault(stuck_units=((0, 1), (0, 2)))  # duplicate unit

    def test_plan_nullness(self):
        assert FaultPlan.none().is_null
        assert FaultPlan(units=UnitArrayFault()).is_null
        assert not FaultPlan(units=UnitArrayFault(transient_rate=0.1)).is_null
        assert not FaultPlan(wire=WireFault(flip_rate=0.5)).is_null


def _configured_device(plan, seed=3, n_sites=8, m=4):
    device = FaultyRSUDevice(NEW, np.random.default_rng(seed), plan=plan)
    device.load_unary(np.zeros((n_sites, m), dtype=int))
    device.execute([Configure("binary", 1, 1, m)])
    device.execute([SetTemperature(i, 200) for i in range(4)])
    return device


class TestFaultyDevice:
    def test_null_plan_bit_identical_to_plain_device(self):
        plain = RSUDevice(NEW, np.random.default_rng(3))
        plain.load_unary(np.zeros((8, 4), dtype=int))
        plain.execute([Configure("binary", 1, 1, 4)])
        plain.execute([SetTemperature(i, 200) for i in range(4)])
        faulty = _configured_device(FaultPlan.none())
        evals = [Evaluate(i % 8, (0, 0, 0, 0), 0) for i in range(64)]
        assert plain.execute(list(evals)) == faulty.execute(list(evals))

    def test_dead_unit_nacks(self):
        plan = FaultPlan(units=UnitArrayFault(n_units=2, spare_units=1, dead_units=(1,)))
        device = _configured_device(plan)
        responses = device.execute([Evaluate(0, (0, 0, 0, 0), 0) for _ in range(4)])
        nacks = [r for r in responses if isinstance(r, UnitNack)]
        assert len(nacks) == 2  # round-robin: every other eval hits unit 1
        assert all(n.unit == 1 and n.kind == "dead" for n in nacks)
        assert device.nack_counts == {"dead": 2}

    def test_stuck_unit_always_reports_its_label(self):
        plan = FaultPlan(units=UnitArrayFault(n_units=2, spare_units=0, stuck_units=((0, 3),)))
        device = _configured_device(plan)
        responses = device.execute([Evaluate(0, (0, 0, 0, 0), 0) for _ in range(20)])
        from_stuck = responses[0::2]  # unit 0 serves even slots
        assert all(r == 3 for r in from_stuck)

    def test_quarantine_remaps_to_spare(self):
        plan = FaultPlan(units=UnitArrayFault(n_units=2, spare_units=1, dead_units=(1,)))
        device = _configured_device(plan)
        spare = device.quarantine_unit(1)
        assert spare == 2
        assert device.active_units == [0, 2]
        assert device.quarantined_units == [1]
        assert device.spares_remaining == 0
        responses = device.execute([Evaluate(0, (0, 0, 0, 0), 0) for _ in range(4)])
        assert not any(isinstance(r, UnitNack) for r in responses)

    def test_quarantine_errors(self):
        plan = FaultPlan(units=UnitArrayFault(n_units=2, spare_units=1))
        device = _configured_device(plan)
        with pytest.raises(ConfigError):
            device.quarantine_unit(7)
        device.quarantine_unit(0)
        with pytest.raises(UnrecoverableFaultError):
            device.quarantine_unit(1)

    def test_unit_trace_records_striping(self):
        plan = FaultPlan(units=UnitArrayFault(n_units=3, spare_units=0))
        device = _configured_device(plan)
        device.execute([Evaluate(0, (0, 0, 0, 0), 0) for _ in range(7)])
        assert device.unit_trace == [0, 1, 2, 0, 1, 2, 0]


class TestHealthChecks:
    def test_goodness_accepts_matching_counts(self):
        probs = np.array([0.25, 0.25, 0.25, 0.25])
        counts = np.array([250, 260, 240, 250])
        assert chi_square_goodness(counts, probs) > 0.1

    def test_goodness_rejects_stuck_counts(self):
        probs = np.array([0.25, 0.25, 0.25, 0.25])
        stuck = np.array([1000, 0, 0, 0])
        assert chi_square_goodness(stuck, probs) < 1e-10

    def test_goodness_zero_probability_bin_is_fatal(self):
        probs = np.array([0.5, 0.5, 0.0])
        counts = np.array([10, 10, 1])
        assert chi_square_goodness(counts, probs) == 0.0

    def test_goodness_validation(self):
        with pytest.raises(ConfigError):
            chi_square_goodness(np.array([0, 0]), np.array([0.5, 0.5]))
        with pytest.raises(ConfigError):
            chi_square_goodness(np.array([1, 2, 3]), np.array([0.5, 0.5]))

    def test_two_sample_same_distribution(self):
        rng = np.random.default_rng(3)
        a = np.bincount(rng.integers(0, 4, 2000), minlength=4)
        b = np.bincount(rng.integers(0, 4, 2000), minlength=4)
        assert chi_square_two_sample(a, b) > 1e-3

    def test_two_sample_detects_divergence(self):
        a = np.array([500, 0, 0, 0])
        b = np.array([500, 500, 500, 500])
        assert chi_square_two_sample(a, b) < 1e-10

    def test_ks_distance_matches_exact_cdf(self):
        probs = np.array([0.5, 0.3, 0.2])
        samples = [1] * 50 + [2] * 30 + [3] * 20
        assert ks_distance(samples, probs) == pytest.approx(0.0)
        assert ks_pvalue(samples, probs) > 0.99

    def test_ks_flags_shifted_samples(self):
        probs = np.array([0.5, 0.3, 0.2])
        samples = [3] * 100
        assert ks_distance(samples, probs) == pytest.approx(0.8)
        assert ks_pvalue(samples, probs) < 1e-6

    def test_label_counts_validation(self):
        assert np.array_equal(label_counts([0, 1, 1], 3), [1, 2, 0])
        with pytest.raises(DataError):
            label_counts([5], 3)


class TestIncidentLog:
    def test_records_are_ordered_and_typed(self):
        log = IncidentLog()
        log.record(0, "unit_nack", "warning", unit=2, site=5, attempt=0)
        log.record(1, "quarantine", "error", unit=2, reason="probe")
        assert len(log) == 2
        assert log[0].seq == 0 and log[1].seq == 1
        assert log.counts_by_kind() == {"quarantine": 1, "unit_nack": 1}
        assert log.worst_severity() == "error"
        assert len(log.of_kind("unit_nack")) == 1

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            IncidentLog().record(0, "oops", "catastrophic")

    def test_jsonl_is_deterministic(self):
        def build():
            log = IncidentLog()
            log.record(0, "transfer_corrupt", "warning", attempt=1, backoff_s=2e-4, drops=1)
            log.record(3, "fallback", "error", reason="spares exhausted")
            return log.to_jsonl()

        first, second = build(), build()
        assert first == second
        assert '"severity":"error"' in first
