"""Unit tests for repro.util.validation and the error hierarchy."""

import numpy as np
import pytest

from repro.util import (
    ConfigError,
    DataError,
    ReproError,
    check_in_range,
    check_positive,
    check_probability,
    check_shape_2d,
)


class TestErrorHierarchy:
    def test_config_error_is_repro_and_value_error(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(ConfigError, ValueError)

    def test_data_error_is_repro_and_value_error(self):
        assert issubclass(DataError, ReproError)
        assert issubclass(DataError, ValueError)


class TestCheckPositive:
    def test_accepts_positive(self):
        check_positive("x", 0.1)

    @pytest.mark.parametrize("value", [0.0, -1.0])
    def test_rejects_nonpositive(self, value):
        with pytest.raises(ConfigError, match="x"):
            check_positive("x", value)


class TestCheckProbability:
    def test_accepts_interior(self):
        check_probability("p", 0.5)

    @pytest.mark.parametrize("value", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_boundary_and_outside(self, value):
        with pytest.raises(ConfigError):
            check_probability("p", value)


class TestCheckInRange:
    def test_accepts_inclusive_bounds(self):
        check_in_range("v", 0.0, 0.0, 1.0)
        check_in_range("v", 1.0, 0.0, 1.0)

    def test_rejects_outside(self):
        with pytest.raises(ConfigError):
            check_in_range("v", 1.1, 0.0, 1.0)


class TestCheckShape2D:
    def test_accepts_2d(self):
        check_shape_2d("a", np.zeros((2, 3)))

    def test_rejects_1d(self):
        with pytest.raises(DataError):
            check_shape_2d("a", np.zeros(3))

    def test_rejects_empty(self):
        with pytest.raises(DataError):
            check_shape_2d("a", np.zeros((0, 3)))
