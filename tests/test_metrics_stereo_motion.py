"""Unit tests for the stereo and motion quality metrics."""

import numpy as np
import pytest

from repro.metrics import (
    bad_pixel_percentage,
    endpoint_error,
    flow_from_labels,
    rms_error,
)
from repro.util import DataError


class TestBadPixel:
    def test_perfect_estimate(self):
        gt = np.arange(12).reshape(3, 4)
        assert bad_pixel_percentage(gt, gt) == 0.0

    def test_threshold_is_strict(self):
        gt = np.zeros((2, 2))
        est = np.full((2, 2), 1.0)
        assert bad_pixel_percentage(est, gt, threshold=1.0) == 0.0  # |err| == 1 ok
        assert bad_pixel_percentage(est + 0.5, gt, threshold=1.0) == 100.0

    def test_partial(self):
        gt = np.zeros((2, 2))
        est = np.array([[0.0, 5.0], [0.0, 5.0]])
        assert bad_pixel_percentage(est, gt) == 50.0

    def test_rejects_shape_mismatch(self):
        with pytest.raises(DataError):
            bad_pixel_percentage(np.zeros((2, 2)), np.zeros((3, 3)))

    def test_rejects_negative_threshold(self):
        with pytest.raises(DataError):
            bad_pixel_percentage(np.zeros((2, 2)), np.zeros((2, 2)), threshold=-1)


class TestRms:
    def test_constant_offset(self):
        gt = np.zeros((4, 4))
        assert rms_error(gt + 3.0, gt) == 3.0

    def test_zero_for_exact(self):
        gt = np.random.default_rng(0).random((4, 4))
        assert rms_error(gt, gt) == 0.0


class TestEndpointError:
    def test_zero_for_exact(self):
        flow = np.random.default_rng(0).random((4, 4, 2))
        assert endpoint_error(flow, flow) == 0.0

    def test_unit_offset(self):
        gt = np.zeros((4, 4, 2))
        est = gt.copy()
        est[..., 0] = 3.0
        est[..., 1] = 4.0
        assert endpoint_error(est, gt) == 5.0

    def test_rejects_wrong_last_axis(self):
        with pytest.raises(DataError):
            endpoint_error(np.zeros((4, 4, 3)), np.zeros((4, 4, 3)))


class TestFlowFromLabels:
    def test_expands_vectors(self):
        vectors = np.array([[0, 0], [1, -1]])
        labels = np.array([[0, 1], [1, 0]])
        flow = flow_from_labels(labels, vectors)
        assert flow.shape == (2, 2, 2)
        assert flow[0, 1].tolist() == [1, -1]

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(DataError):
            flow_from_labels(np.array([[5]]), np.array([[0, 0]]))
