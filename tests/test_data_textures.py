"""Unit tests for the texture generators."""

import numpy as np
import pytest

from repro.data import add_noise, smooth_fields, value_noise
from repro.util import ConfigError


class TestValueNoise:
    def test_shape_and_range(self):
        out = value_noise((30, 40), np.random.default_rng(0))
        assert out.shape == (30, 40)
        assert out.min() >= 0.0 and out.max() <= 1.0

    def test_full_dynamic_range(self):
        out = value_noise((50, 50), np.random.default_rng(1))
        assert out.min() == 0.0 and out.max() == 1.0

    def test_deterministic_given_seed(self):
        a = value_noise((20, 20), np.random.default_rng(7))
        b = value_noise((20, 20), np.random.default_rng(7))
        assert np.array_equal(a, b)

    def test_has_fine_scale_detail(self):
        out = value_noise((64, 64), np.random.default_rng(2), octaves=5)
        gradient = np.abs(np.diff(out, axis=1)).mean()
        assert gradient > 0.005  # textured, not flat

    def test_rejects_tiny_shape(self):
        with pytest.raises(ConfigError):
            value_noise((1, 10), np.random.default_rng(0))

    def test_rejects_zero_octaves(self):
        with pytest.raises(ConfigError):
            value_noise((10, 10), np.random.default_rng(0), octaves=0)


class TestSmoothFields:
    def test_stack_shape(self):
        fields = smooth_fields((16, 24), 5, np.random.default_rng(0))
        assert fields.shape == (5, 16, 24)

    def test_fields_are_independent(self):
        fields = smooth_fields((16, 16), 2, np.random.default_rng(0))
        assert not np.allclose(fields[0], fields[1])

    def test_rejects_zero_count(self):
        with pytest.raises(ConfigError):
            smooth_fields((16, 16), 0, np.random.default_rng(0))


class TestAddNoise:
    def test_clips_to_unit_interval(self):
        noisy = add_noise(np.full((50, 50), 0.99), 0.3, np.random.default_rng(0))
        assert noisy.max() <= 1.0 and noisy.min() >= 0.0

    def test_zero_sigma_is_identity(self):
        image = np.random.default_rng(0).random((10, 10))
        assert np.array_equal(add_noise(image, 0.0, np.random.default_rng(1)), image)

    def test_rejects_negative_sigma(self):
        with pytest.raises(ConfigError):
            add_noise(np.zeros((4, 4)), -0.1, np.random.default_rng(0))
