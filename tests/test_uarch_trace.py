"""Tests for pipeline tracing and rendering."""

import numpy as np
import pytest

from repro.core import legacy_design_config, new_design_config
from repro.uarch import LegacyMachine, NewMachine, jobs_from_energies
from repro.uarch.trace import STAGE_LETTERS, PipelineTrace
from repro.util import ConfigError


def traced_new_run(n_vars=2, labels=4, seed=0):
    trace = PipelineTrace()
    jobs = jobs_from_energies(
        np.random.default_rng(seed).integers(0, 256, (n_vars, labels))
    )
    machine = NewMachine(
        new_design_config(), 40.0, np.random.default_rng(seed + 1), trace=trace
    )
    result = machine.run(jobs)
    return trace, result


class TestRecording:
    def test_every_evaluation_passes_all_new_stages(self):
        trace, _ = traced_new_run()
        grouped = trace.by_evaluation()
        assert len(grouped) == 2 * 4
        for events in grouped.values():
            stages = [e.stage for e in events]
            for required in ("issue", "energy", "fifo", "scale", "convert", "select"):
                assert required in stages
            # Cut-off labels skip RET; others occupy it for the window.
            if "ret" in stages:
                assert stages.count("ret") == 4

    def test_stage_order_monotone_in_cycles(self):
        trace, _ = traced_new_run()
        order = ["issue", "energy", "fifo", "scale", "convert"]
        for events in trace.by_evaluation().values():
            cycles = {e.stage: e.cycle for e in events if e.stage in order}
            observed = [cycles[s] for s in order if s in cycles]
            assert observed == sorted(observed)

    def test_legacy_trace_records_stalls(self):
        trace = PipelineTrace()
        jobs = jobs_from_energies(
            np.random.default_rng(0).integers(0, 256, (3, 4))
        )
        machine = LegacyMachine(
            legacy_design_config(), 40.0, np.random.default_rng(1), trace=trace
        )
        machine.run(jobs, temperature_schedule={1: 20.0})
        stalls = [e for e in trace.events if e.stage == "stall"]
        assert len(stalls) == 128

    def test_bounded_events(self):
        trace = PipelineTrace(max_events=5)
        for cycle in range(20):
            trace.record(cycle, "issue", 0, 0)
        assert len(trace.events) == 5

    def test_rejects_unknown_stage(self):
        with pytest.raises(ConfigError):
            PipelineTrace().record(0, "teleport", 0, 0)


class TestRendering:
    def test_render_contains_stage_letters(self):
        trace, _ = traced_new_run()
        text = trace.render()
        for letter in ("I", "E", "F", "S", "C", "R", "W"):
            assert letter in text

    def test_render_row_cap(self):
        trace, _ = traced_new_run(n_vars=4, labels=8)
        text = trace.render(max_rows=3)
        assert "more evaluations" in text

    def test_render_window(self):
        trace, _ = traced_new_run()
        text = trace.render(start_cycle=0, end_cycle=5)
        header = text.splitlines()[0]
        assert header.endswith("012345")

    def test_render_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            PipelineTrace().render()

    def test_occupancy_profile(self):
        trace, result = traced_new_run()
        ret = trace.occupancy("ret")
        # Steady state: at most `window` concurrent RET observations.
        assert max(ret.values()) <= 4
        assert sum(ret.values()) > 0

    def test_stage_letter_table_complete(self):
        assert set(STAGE_LETTERS) >= {
            "issue", "energy", "convert", "fifo", "scale", "ret", "select", "stall",
        }


class TestWindowedTrace:
    """Dropped-event surfacing: render note and machine stats keys."""

    def test_render_notes_dropped_events(self):
        trace = PipelineTrace(max_events=3)
        for cycle in range(10):
            trace.record(cycle, "issue", 0, 0)
        assert trace.dropped == 7
        text = trace.render()
        assert "windowed trace: 7 oldest events dropped, 3 retained" in text

    def test_render_of_complete_trace_has_no_note(self):
        trace, _ = traced_new_run()
        assert trace.dropped == 0
        assert "windowed" not in trace.render()

    def test_traced_run_reports_trace_stats(self):
        trace, result = traced_new_run()
        assert result.stats["trace_events"] == len(trace.events)
        assert result.stats["trace_dropped"] == 0

    def test_traced_run_counts_drops_in_stats(self):
        trace = PipelineTrace(max_events=8)
        jobs = jobs_from_energies(
            np.random.default_rng(0).integers(0, 256, (3, 4))
        )
        machine = NewMachine(
            new_design_config(), 40.0, np.random.default_rng(1), trace=trace
        )
        result = machine.run(jobs)
        assert result.stats["trace_dropped"] == trace.dropped > 0
        assert result.stats["trace_events"] == 8

    def test_untraced_run_has_no_trace_stats(self):
        """The event-vs-scalar stats identity must not change: untraced
        runs (the event path) carry no trace keys."""
        jobs = jobs_from_energies(
            np.random.default_rng(0).integers(0, 256, (2, 4))
        )
        machine = NewMachine(new_design_config(), 40.0, np.random.default_rng(1))
        result = machine.run(jobs)
        assert "trace_events" not in result.stats
        assert "trace_dropped" not in result.stats
