"""Machine-in-the-loop tests: structural pipeline driving real solves."""

import numpy as np
import pytest

from repro.core import legacy_design_config, new_design_config
from repro.uarch import CycleCountingBackend, MachineBackend
from repro.util import ConfigError


class TestBackendContract:
    def test_new_style_sampling(self):
        backend = MachineBackend(new_design_config(), 1.0, np.random.default_rng(0))
        energies = np.random.default_rng(1).random((12, 5))
        labels = backend.sample(energies, 0.1)
        assert labels.shape == (12,)
        assert backend.total_cycles > 0 and backend.batches == 1

    def test_legacy_style_sampling(self):
        backend = MachineBackend(legacy_design_config(), 1.0, np.random.default_rng(0))
        labels = backend.sample(np.random.default_rng(1).random((8, 4)), 0.1)
        assert labels.shape == (8,)

    def test_rejects_mixed_technique_stack(self):
        mixed = new_design_config(cutoff=False)
        with pytest.raises(ConfigError):
            MachineBackend(mixed, 1.0, np.random.default_rng(0))

    def test_dominant_label_always_wins(self):
        backend = MachineBackend(new_design_config(), 1.0, np.random.default_rng(2))
        energies = np.full((30, 4), 0.9)
        energies[:, 1] = 0.0
        labels = backend.sample(energies, 0.01)
        assert np.all(labels == 1)


class TestCycleCounting:
    def test_throughput_near_one_label_per_cycle(self):
        backend = CycleCountingBackend(
            new_design_config(), 1.0, np.random.default_rng(3)
        )
        energies = np.random.default_rng(4).random((200, 8))
        backend.sample(energies, 0.1)
        backend.sample(energies, 0.1)
        # Fill latency amortizes over 200 variables -> close to 1.0.
        assert 0.9 < backend.measured_throughput() <= 1.0

    def test_throughput_requires_batches(self):
        backend = CycleCountingBackend(
            new_design_config(), 1.0, np.random.default_rng(0)
        )
        with pytest.raises(ConfigError):
            backend.measured_throughput()


class TestEndToEndSolve:
    def test_machine_solves_a_small_stereo_problem(self):
        """The cycle-driven pipeline, used as the solver's sampler,
        reaches quality comparable to the functional RSU model."""
        from repro.apps.stereo import StereoParams, build_stereo_mrf, solve_stereo
        from repro.data import load_stereo
        from repro.metrics import bad_pixel_percentage
        from repro.mrf import MCMCSolver, geometric_for_span

        dataset = load_stereo("poster", scale=0.18)
        params = StereoParams(iterations=40)
        model = build_stereo_mrf(dataset, params)
        backend = CycleCountingBackend(
            new_design_config(), model.max_energy(), np.random.default_rng(5)
        )
        schedule = geometric_for_span(params.t0, params.t_final, params.iterations)
        solver = MCMCSolver(model, backend, schedule, seed=3, track_energy=False)
        labels = solver.run(params.iterations).labels
        machine_bp = bad_pixel_percentage(labels, dataset.gt_disparity)

        functional = solve_stereo(dataset, "new_rsug", params, seed=3)
        assert abs(machine_bp - functional.bad_pixel) < 15.0
        assert backend.measured_throughput() > 0.8
