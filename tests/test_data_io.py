"""Unit tests for the PGM image I/O helpers."""

import numpy as np
import pytest

from repro.data import read_pgm, to_gray_levels, write_pgm
from repro.util import DataError


class TestToGrayLevels:
    def test_scales_to_255(self):
        gray = to_gray_levels(np.array([[0.0, 0.5, 1.0]]), v_max=1.0)
        assert gray.tolist() == [[0, 128, 255]]

    def test_infers_v_max(self):
        gray = to_gray_levels(np.array([[0, 10]]))
        assert gray.tolist() == [[0, 255]]

    def test_all_zero_map(self):
        gray = to_gray_levels(np.zeros((2, 2)))
        assert gray.max() == 0

    def test_rejects_1d(self):
        with pytest.raises(DataError):
            to_gray_levels(np.zeros(4))


class TestRoundTrip:
    def test_write_then_read(self, tmp_path):
        values = np.arange(12).reshape(3, 4)
        path = write_pgm(tmp_path / "map.pgm", values, v_max=11)
        back = read_pgm(path)
        assert back.shape == (3, 4)
        assert back[0, 0] == 0 and back[2, 3] == 255

    def test_creates_parent_directories(self, tmp_path):
        path = write_pgm(tmp_path / "a" / "b" / "map.pgm", np.ones((2, 2)))
        assert path.exists()

    def test_read_rejects_non_pgm(self, tmp_path):
        bad = tmp_path / "bad.pgm"
        bad.write_text("P5 2 2 255")
        with pytest.raises(DataError):
            read_pgm(bad)

    def test_read_rejects_truncated(self, tmp_path):
        bad = tmp_path / "trunc.pgm"
        bad.write_text("P2\n2 2\n255\n1 2 3")
        with pytest.raises(DataError):
            read_pgm(bad)
