"""Unit tests for repro.util.quantize."""

import numpy as np
import pytest

from repro.util import (
    ConfigError,
    clamp,
    nearest_pow2,
    pow2_floor,
    quantize_to_bits,
    quantize_unsigned,
    unsigned_max,
)


class TestUnsignedMax:
    def test_common_widths(self):
        assert unsigned_max(1) == 1
        assert unsigned_max(4) == 15
        assert unsigned_max(8) == 255

    def test_rejects_zero_width(self):
        with pytest.raises(ConfigError):
            unsigned_max(0)


class TestClamp:
    def test_clamps_both_ends(self):
        out = clamp(np.array([-1.0, 0.5, 2.0]), 0.0, 1.0)
        assert out.tolist() == [0.0, 0.5, 1.0]

    def test_rejects_empty_range(self):
        with pytest.raises(ConfigError):
            clamp(np.array([1.0]), 2.0, 1.0)


class TestQuantizeUnsigned:
    def test_rounds_to_nearest(self):
        out = quantize_unsigned(np.array([0.4, 0.6, 2.5]), 8)
        assert out.tolist() == [0, 1, 2]  # banker's rounding at .5

    def test_clamps_to_field(self):
        out = quantize_unsigned(np.array([-3.0, 300.0]), 8)
        assert out.tolist() == [0, 255]

    def test_output_dtype_is_int64(self):
        assert quantize_unsigned(np.array([1.0]), 4).dtype == np.int64


class TestQuantizeToBits:
    def test_full_scale_maps_to_top(self):
        out = quantize_to_bits(np.array([0.0, 5.0, 10.0]), 8, full_scale=10.0)
        assert out.tolist() == [0, 128, 255]

    def test_rejects_nonpositive_full_scale(self):
        with pytest.raises(ConfigError):
            quantize_to_bits(np.array([1.0]), 8, full_scale=0.0)

    def test_above_full_scale_clamps(self):
        out = quantize_to_bits(np.array([20.0]), 8, full_scale=10.0)
        assert out.tolist() == [255]


class TestPow2Floor:
    def test_exact_powers_fixed(self):
        values = np.array([0, 1, 2, 4, 8, 16])
        assert pow2_floor(values).tolist() == values.tolist()

    def test_intermediate_values_floor(self):
        assert pow2_floor(np.array([3, 5, 6, 7, 9, 15])).tolist() == [2, 4, 4, 4, 8, 8]

    def test_rejects_negative(self):
        with pytest.raises(ConfigError):
            pow2_floor(np.array([-1]))


class TestNearestPow2:
    def test_ties_round_down(self):
        # 3 is equidistant between 2 and 4; 6 between 4 and 8.
        assert nearest_pow2(np.array([3, 6, 12])).tolist() == [2, 4, 8]

    def test_rounds_up_when_closer(self):
        assert nearest_pow2(np.array([7, 13, 15])).tolist() == [8, 16, 16]

    def test_zero_stays_zero(self):
        assert nearest_pow2(np.array([0])).tolist() == [0]

    def test_all_outputs_are_powers_or_zero(self):
        values = np.arange(0, 300)
        out = nearest_pow2(values)
        nonzero = out[out > 0]
        assert np.all((nonzero & (nonzero - 1)) == 0)
